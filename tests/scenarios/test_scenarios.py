"""Cell replay, oracle, and matrix tests for the scenario suite.

The tier-1 tests run a reduced grid; the full CI smoke grid runs via
``scripts/run_scenarios.py --tiny`` (the scenario-matrix-smoke job), and
the complete default grid is exercised by the ``slow``-marked matrix
test below.
"""

import dataclasses

import pytest

from repro.scenarios.cells import CellResult, EngineConfig, replay_cell
from repro.scenarios.matrix import (
    DEFAULT_CONFIGS,
    DEFAULT_SEED,
    TINY_CONFIGS,
    default_patterns,
    run_matrix,
    tiny_patterns,
)
from repro.scenarios.oracle import OracleDivergence, compare_cells
from repro.scenarios.stream import build_stream
from repro.workloads.patterns import make_pattern

N_PAGES = 32
N_OPS = 120


def small_stream(pattern="zipf-0.9", seed=DEFAULT_SEED):
    return build_stream(
        make_pattern(pattern),
        n_pages=N_PAGES,
        n_ops=N_OPS,
        page_size=256,
        seed=seed,
    )


class TestEngineConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig("x", "OPU", backend="network")
        with pytest.raises(ValueError):
            EngineConfig("x", "OPU", buffer_pages=-1)
        with pytest.raises(ValueError):
            EngineConfig("x", "OPU", writeback="sometimes", buffer_pages=4)
        with pytest.raises(ValueError):
            EngineConfig("x", "OPU", writeback="background")  # no pool

    def test_describe_mentions_every_axis(self):
        config = EngineConfig(
            "x", "PDL (256B)", backend="file", buffer_pages=8,
            buffer_policy="2q", writeback="background",
        )
        text = config.describe()
        assert "PDL (256B)" in text and "file" in text
        assert "buffer=8/2q/background" in text

    def test_grids_have_unique_names(self):
        for grid in (DEFAULT_CONFIGS, TINY_CONFIGS):
            names = [c.name for c in grid]
            assert len(set(names)) == len(names)


class TestReplayCell:
    def test_cell_matches_expected_images(self):
        stream = small_stream()
        cell = replay_cell(EngineConfig("pdl", "PDL (256B)"), stream)
        assert cell.n_reads == stream.n_reads
        assert cell.n_updates == stream.n_updates
        assert cell.check_ok is True
        assert cell.audit_ok, cell.audit_notes
        assert cell.device_writes > 0

    def test_state_hash_is_the_expected_images_hash(self):
        import hashlib

        stream = small_stream("sequential")
        cell = replay_cell(EngineConfig("opu", "OPU"), stream)
        digest = hashlib.sha256()
        expected = stream.expected_images()
        for pid in range(stream.n_pages):
            digest.update(expected[pid])
        assert cell.state_hash == digest.hexdigest()

    def test_methods_without_checker_report_none(self):
        cell = replay_cell(EngineConfig("ipu", "IPU"), small_stream())
        assert cell.check_ok is None

    def test_buffered_cell_replays_identically(self):
        stream = small_stream("ycsb-a")
        direct = replay_cell(EngineConfig("d", "PDL (256B)"), stream)
        buffered = replay_cell(
            EngineConfig("b", "PDL (256B)", buffer_pages=8), stream
        )
        assert buffered.state_hash == direct.state_hash

    def test_file_backend_writes_under_workdir(self, tmp_path):
        cell = replay_cell(
            EngineConfig("f", "PDL (256B)", backend="file"),
            small_stream(),
            workdir=tmp_path,
        )
        assert cell.audit_ok
        assert list(tmp_path.glob("*.flash"))


class TestOracle:
    def _cell(self, **overrides):
        base = CellResult(
            scenario="s",
            config="a",
            state_hash="abc123" * 8,
            n_reads=10,
            n_updates=20,
            device_reads=30,
            device_writes=25,
            device_erases=2,
            io_time_us=1000.0,
            check_ok=True,
        )
        return dataclasses.replace(base, **overrides)

    def test_identical_cells_are_equivalent(self):
        verdict = compare_cells([self._cell(), self._cell(config="b")])
        assert verdict.equivalent
        verdict.raise_if_diverged()  # must not raise

    def test_device_counters_may_differ(self):
        verdict = compare_cells(
            [self._cell(), self._cell(config="b", device_writes=999, io_time_us=5.0)]
        )
        assert verdict.equivalent

    def test_state_hash_divergence_detected(self):
        verdict = compare_cells(
            [self._cell(), self._cell(config="b", state_hash="f" * 48)]
        )
        assert not verdict.equivalent
        with pytest.raises(OracleDivergence, match="state hash"):
            verdict.raise_if_diverged()

    def test_traffic_divergence_detected(self):
        verdict = compare_cells([self._cell(), self._cell(config="b", n_updates=19)])
        assert not verdict.equivalent
        assert any("logical traffic" in f for f in verdict.failures)

    def test_failed_check_flags_cell(self):
        verdict = compare_cells(
            [self._cell(check_ok=False, check_violations=["bad table"])]
        )
        assert not verdict.equivalent
        assert any("consistency check" in f for f in verdict.failures)

    def test_none_check_is_vacuously_clean(self):
        assert compare_cells([self._cell(check_ok=None)]).equivalent

    def test_failed_audit_flags_cell(self):
        verdict = compare_cells(
            [self._cell(audit_ok=False, audit_notes=["erase split"])]
        )
        assert not verdict.equivalent

    def test_mixed_scenarios_rejected(self):
        with pytest.raises(ValueError):
            compare_cells([self._cell(), self._cell(scenario="other")])
        with pytest.raises(ValueError):
            compare_cells([])


class TestMatrix:
    def test_small_matrix_is_equivalent(self):
        patterns = [make_pattern("sequential"), make_pattern("ycsb-a")]
        configs = [
            EngineConfig("pdl", "PDL (256B)"),
            EngineConfig("opu", "OPU"),
            EngineConfig("pdl-x2", "PDL (256B) x2"),
        ]
        result = run_matrix(patterns, configs, n_pages=N_PAGES, n_ops=N_OPS)
        assert result.equivalent, result.divergences
        assert len(result.cells) == len(patterns) * len(configs)
        result.raise_if_diverged()
        data = result.table.to_dict()
        assert len(data["rows"]) == len(result.cells)

    def test_matrix_validation(self):
        with pytest.raises(ValueError):
            run_matrix([], [EngineConfig("a", "OPU")])
        with pytest.raises(ValueError):
            run_matrix([make_pattern("sequential")], [])
        with pytest.raises(ValueError, match="duplicate"):
            run_matrix(
                [make_pattern("sequential")],
                [EngineConfig("a", "OPU"), EngineConfig("a", "IPU")],
            )

    def test_pattern_set_helpers_include_trace(self, tmp_path):
        from repro.workloads.patterns import ZipfPattern, record_pattern

        path = record_pattern(ZipfPattern(0.9), 16, 40, seed=3).save(
            tmp_path / "t.trace"
        )
        assert len(default_patterns(path)) == len(default_patterns()) + 1
        assert len(tiny_patterns(path)) == len(tiny_patterns()) + 1


@pytest.mark.slow
class TestFullMatrix:
    """The complete default grid — the CI slow tier's oracle sweep."""

    def test_default_grid_is_equivalent(self):
        result = run_matrix(
            default_patterns(),
            DEFAULT_CONFIGS,
            n_pages=96,
            n_ops=600,
        )
        assert result.equivalent, result.divergences
        assert len(result.verdicts) == len(default_patterns())

    def test_every_registered_pattern_is_equivalent_on_the_tiny_grid(self):
        from repro.workloads.patterns import default_pattern_set

        result = run_matrix(
            default_pattern_set(), TINY_CONFIGS, n_pages=48, n_ops=240
        )
        assert result.equivalent, result.divergences
