"""Unit tests for resolved scenario streams."""

import pytest

from repro.scenarios.stream import ResolvedOp, ScenarioStream, build_stream
from repro.workloads.patterns import READ, UPDATE, ZipfPattern, make_pattern

N_PAGES = 24
PAGE = 256


def stream(pattern_name="zipf-0.9", n_ops=200, seed=42, **kwargs):
    return build_stream(
        make_pattern(pattern_name),
        n_pages=N_PAGES,
        n_ops=n_ops,
        page_size=PAGE,
        seed=seed,
        **kwargs,
    )


class TestBuildStream:
    def test_resolves_every_op(self):
        s = stream()
        assert len(s.ops) == 200
        assert s.n_reads + s.n_updates == 200

    def test_updates_carry_runs_reads_do_not(self):
        s = stream("ycsb-a")
        for op in s.ops:
            if op.kind == UPDATE:
                assert op.runs and all(len(r.data) > 0 for r in op.runs)
            else:
                assert op.kind == READ and op.runs == ()

    def test_same_seed_same_stream(self):
        assert stream().ops == stream().ops

    def test_different_seed_different_stream(self):
        assert stream(seed=1).ops != stream(seed=2).ops

    def test_mutation_lane_isolated_from_pattern_lane(self):
        """Re-tuning mutation sizing must not shift which pages the
        pattern touches — the two RNG lanes are independent."""
        small = stream(change_size=4)
        large = stream(change_size=64)
        assert [(op.kind, op.pid) for op in small.ops] == [
            (op.kind, op.pid) for op in large.ops
        ]
        assert small.ops != large.ops  # payload sizes differ

    def test_every_eighth_update_is_near_full_rewrite(self):
        s = stream("sequential", n_ops=64)
        sizes = [sum(len(r.data) for r in op.runs) for op in s.ops]
        big = [sz for sz in sizes if sz >= (PAGE * 15) // 16]
        assert len(big) == 64 // 8

    def test_runs_stay_inside_the_page(self):
        for op in stream("scan-hot").ops:
            for run in op.runs:
                assert 0 <= run.offset
                assert run.offset + len(run.data) <= PAGE

    def test_validation(self):
        with pytest.raises(ValueError):
            build_stream(
                ZipfPattern(0.9), n_pages=0, n_ops=1, page_size=PAGE, seed=1
            )
        with pytest.raises(ValueError):
            build_stream(
                ZipfPattern(0.9), n_pages=4, n_ops=-1, page_size=PAGE, seed=1
            )


class TestScenarioStream:
    def test_initial_images_deterministic_and_full_size(self):
        s = stream()
        a, b = s.initial_images(), s.initial_images()
        assert a == b
        assert len(a) == N_PAGES
        assert all(len(data) == PAGE for _pid, data in a)

    def test_expected_images_apply_all_updates(self):
        s = stream("sequential", n_ops=N_PAGES)  # one update per page
        initial = dict(s.initial_images())
        final = s.expected_images()
        assert set(final) == set(initial)
        assert all(final[pid] != initial[pid] for pid in final)

    def test_read_only_stream_leaves_images_untouched(self):
        s = stream("ycsb-c")
        assert s.n_updates == 0
        assert s.expected_images() == dict(s.initial_images())

    def test_resolved_op_is_hashable_record(self):
        op = ResolvedOp(READ, 3)
        assert op.pid == 3 and op.runs == ()
        assert isinstance(hash(op), int)

    def test_counts(self):
        s = ScenarioStream("x", 4, PAGE, 1, ops=[ResolvedOp(READ, 0)])
        assert s.n_reads == 1 and s.n_updates == 0
