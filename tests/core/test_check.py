"""Tests for the PDL consistency checker (fsck)."""

import random

import pytest

from repro.core.check import check_driver
from repro.core.pdl import PdlDriver
from repro.core.recovery import recover_driver
from repro.flash.chip import FlashChip
from repro.flash.errors import CrashError


def _soak(driver, rng, n_pages=12, steps=300, flush_every=11):
    images = {}
    for pid in range(n_pages):
        images[pid] = rng.randbytes(driver.page_size)
        driver.load_page(pid, images[pid])
    for i in range(steps):
        pid = rng.randrange(n_pages)
        image = bytearray(images[pid])
        off = rng.randrange(len(image) - 6)
        image[off : off + 6] = rng.randbytes(6)
        images[pid] = bytes(image)
        driver.write_page(pid, images[pid])
        if i % flush_every == 0:
            driver.flush()
    return images


class TestConsistentStates:
    def test_fresh_driver(self, tiny_spec):
        chip = FlashChip(tiny_spec)
        driver = PdlDriver(chip, max_differential_size=64)
        report = check_driver(driver)
        assert report.consistent
        report.raise_if_inconsistent()

    def test_after_soak_with_gc(self, tiny_spec):
        chip = FlashChip(tiny_spec)
        driver = PdlDriver(chip, max_differential_size=64)
        _soak(driver, random.Random(1), steps=500)
        assert chip.stats.total_erases > 0
        report = check_driver(driver)
        assert report.consistent, report.violations

    def test_after_recovery(self, tiny_spec):
        chip = FlashChip(tiny_spec)
        driver = PdlDriver(chip, max_differential_size=64)
        rng = random.Random(2)
        chip.crash_after(rng.randrange(40, 150))
        try:
            _soak(driver, rng, steps=400)
        except CrashError:
            pass
        recovered, _ = recover_driver(chip, max_differential_size=64)
        report = check_driver(recovered)
        assert report.consistent, report.violations


class TestDetectsCorruption:
    def test_detects_wrong_base_pointer(self, tiny_spec):
        chip = FlashChip(tiny_spec)
        driver = PdlDriver(chip, max_differential_size=64)
        driver.load_page(0, bytes(driver.page_size))
        driver.load_page(1, bytes(driver.page_size))
        # corrupt the table: point pid 0's base at pid 1's page
        driver.ppmt.require(0).base_addr = driver.ppmt.require(1).base_addr
        report = check_driver(driver)
        assert not report.consistent

    def test_detects_vdct_drift(self, tiny_spec):
        chip = FlashChip(tiny_spec)
        driver = PdlDriver(chip, max_differential_size=64)
        driver.load_page(0, bytes(driver.page_size))
        image = bytearray(driver.page_size)
        image[0] = 1
        driver.write_page(0, bytes(image))
        driver.flush()
        driver.vdct.increment(driver.ppmt.require(0).diff_addr)  # drift
        report = check_driver(driver)
        assert not report.consistent
        with pytest.raises(AssertionError):
            report.raise_if_inconsistent()

    def test_detects_bitmap_drift(self, tiny_spec):
        chip = FlashChip(tiny_spec)
        driver = PdlDriver(chip, max_differential_size=64)
        driver.load_page(0, bytes(driver.page_size))
        driver.blocks.note_valid(driver.ppmt.require(0).base_addr + 1)
        report = check_driver(driver)
        assert not report.consistent
