"""PDL driver tests: the three design principles, the three write cases,
GC compaction, and bookkeeping invariants."""

import random

import pytest

from repro.core.pdl import PdlDriver, format_size
from repro.flash.chip import FlashChip
from repro.flash.spare import PageType
from repro.flash.stats import GC, READ_STEP, WRITE_STEP


@pytest.fixture
def pdl(chip):
    return PdlDriver(chip, max_differential_size=64)


def _page(driver, fill=0x11):
    return bytes([fill]) * driver.page_size


def _patched(data, offset, patch):
    image = bytearray(data)
    image[offset : offset + len(patch)] = patch
    return bytes(image)


class TestNaming:
    def test_format_size(self):
        assert format_size(256) == "256B"
        assert format_size(2048) == "2KB"
        assert format_size(18 * 1024) == "18KB"

    def test_labels(self, chip):
        assert PdlDriver(chip, max_differential_size=256).name == "PDL (256B)"

    def test_rejects_bad_size(self, chip):
        with pytest.raises(ValueError):
            PdlDriver(chip, max_differential_size=0)


class TestAtMostTwoPageReading:
    """Design principle 3: recreating a page reads at most two pages."""

    def test_unmodified_page_one_read(self, pdl, chip):
        pdl.load_page(0, _page(pdl))
        snap = chip.stats.snapshot()
        pdl.read_page(0)
        assert chip.stats.delta_since(snap).of_phase(READ_STEP).reads == 1

    def test_buffered_diff_one_read(self, pdl, chip):
        pdl.load_page(0, _page(pdl))
        pdl.write_page(0, _patched(_page(pdl), 0, b"\x99"))
        snap = chip.stats.snapshot()
        pdl.read_page(0)
        # differential still in the write buffer: base read only
        assert chip.stats.delta_since(snap).of_phase(READ_STEP).reads == 1

    def test_flushed_diff_two_reads(self, pdl, chip):
        pdl.load_page(0, _page(pdl))
        pdl.write_page(0, _patched(_page(pdl), 0, b"\x99"))
        pdl.flush()
        snap = chip.stats.snapshot()
        pdl.read_page(0)
        assert chip.stats.delta_since(snap).of_phase(READ_STEP).reads == 2

    def test_never_more_than_two_reads(self, pdl, chip):
        """Even after many updates — unlike log-based methods."""
        pdl.load_page(0, _page(pdl))
        data = _page(pdl)
        rng = random.Random(1)
        for i in range(30):
            data = _patched(data, rng.randrange(pdl.page_size - 1), bytes([i]))
            pdl.write_page(0, data)
            pdl.flush()
        snap = chip.stats.snapshot()
        assert pdl.read_page(0) == data
        assert chip.stats.delta_since(snap).of_phase(READ_STEP).reads <= 2


class TestWritingCases:
    def test_case1_buffers_without_flash_write(self, pdl, chip):
        pdl.load_page(0, _page(pdl))
        snap = chip.stats.snapshot()
        pdl.write_page(0, _patched(_page(pdl), 5, b"\x99"))
        delta = chip.stats.delta_since(snap)
        assert pdl.case_counts[1] == 1
        assert delta.of_phase(WRITE_STEP).writes == 0  # only the base read
        assert delta.of_phase(WRITE_STEP).reads == 1

    def test_case2_flushes_buffer(self, pdl, chip):
        for pid in range(20):
            pdl.load_page(pid, _page(pdl))
        # fill the buffer with ~16-byte-unit diffs until a flush happens
        writes_before = chip.stats.totals().writes
        for pid in range(20):
            pdl.write_page(pid, _patched(_page(pdl), 0, bytes([pid + 1]) * 16))
        assert pdl.case_counts[2] + pdl.buffer_flushes >= 1 or (
            chip.stats.totals().writes > writes_before
        )

    def test_case3_writes_new_base(self, pdl, chip):
        pdl.load_page(0, _page(pdl))
        old_base = pdl.ppmt.require(0).base_addr
        new = _page(pdl, 0xEE)  # whole page changed -> diff > 64 bytes
        pdl.write_page(0, new)
        assert pdl.case_counts[3] == 1
        entry = pdl.ppmt.require(0)
        assert entry.base_addr != old_base
        assert entry.diff_addr is None
        assert chip.peek_spare(old_base).obsolete
        assert pdl.read_page(0) == new

    def test_case3_drops_flushed_diff(self, pdl, chip):
        pdl.load_page(0, _page(pdl))
        pdl.write_page(0, _patched(_page(pdl), 0, b"\x99"))
        pdl.flush()
        diff_page = pdl.ppmt.require(0).diff_addr
        assert diff_page is not None
        pdl.write_page(0, _page(pdl, 0xEE))  # Case 3
        assert pdl.ppmt.require(0).diff_addr is None
        # the old differential page held only pid 0 -> now obsolete
        assert chip.peek_spare(diff_page).obsolete

    def test_noop_write_costs_nothing_in_flash_writes(self, pdl, chip):
        pdl.load_page(0, _page(pdl))
        snap = chip.stats.snapshot()
        pdl.write_page(0, _page(pdl))  # identical content
        delta = chip.stats.delta_since(snap)
        assert delta.totals().writes == 0

    def test_revert_to_base_content_with_stale_diff(self, pdl):
        """Writing content equal to the base while a differential exists
        must supersede that differential."""
        base = _page(pdl)
        pdl.load_page(0, base)
        pdl.write_page(0, _patched(base, 0, b"\x99"))
        pdl.flush()
        pdl.write_page(0, base)  # back to base content exactly
        pdl.flush()
        assert pdl.read_page(0) == base


class TestAtMostOnePageWriting:
    """Design principle 2: one reflection writes at most one page."""

    def test_updates_accumulate_in_one_differential(self, pdl, chip):
        pdl.load_page(0, _page(pdl))
        data = _page(pdl)
        for i in range(3):
            data = _patched(data, 2, bytes([i + 1]))
            pdl.write_page(0, data)
        # the paper's aaaaaa->bbbbba->bcccba: one differential, not a history
        diff = pdl.buffer.get(0)
        assert diff is not None
        assert len(diff.runs) == 1

    def test_reflection_writes_at_most_one_page(self, pdl, chip):
        for pid in range(8):
            pdl.load_page(pid, _page(pdl))
        for pid in range(8):
            snap = chip.stats.snapshot()
            pdl.write_page(pid, _patched(_page(pdl), 0, bytes([pid + 1]) * 8))
            delta = chip.stats.delta_since(snap)
            # data-page programs (excluding obsolete marks): at most 1
            assert delta.of_phase(WRITE_STEP).writes <= 2


class TestBookkeeping:
    def test_vdct_counts_match_flash(self, pdl, chip):
        for pid in range(10):
            pdl.load_page(pid, _page(pdl, pid))
        rng = random.Random(2)
        images = {pid: _page(pdl, pid) for pid in range(10)}
        for _ in range(200):
            pid = rng.randrange(10)
            images[pid] = _patched(
                images[pid], rng.randrange(pdl.page_size - 8), rng.randbytes(8)
            )
            pdl.write_page(pid, images[pid])
        pdl.flush()
        # every vdct entry equals the number of pids whose ppmt points there
        from collections import Counter

        refs = Counter(
            entry.diff_addr
            for _pid, entry in pdl.ppmt.items()
            if entry.diff_addr is not None
        )
        assert refs == Counter(dict(pdl.vdct.items()))

    def test_diff_pages_marked_obsolete_when_empty(self, pdl, chip):
        pdl.load_page(0, _page(pdl))
        pdl.write_page(0, _patched(_page(pdl), 0, b"\x01"))
        pdl.flush()
        first = pdl.ppmt.require(0).diff_addr
        pdl.write_page(0, _patched(_page(pdl), 0, b"\x02"))
        pdl.flush()
        second = pdl.ppmt.require(0).diff_addr
        assert first != second
        assert chip.peek_spare(first).obsolete

    def test_timestamps_strictly_increase(self, pdl):
        pdl.load_page(0, _page(pdl))
        t0 = pdl.current_ts
        pdl.write_page(0, _patched(_page(pdl), 0, b"\x01"))
        assert pdl.current_ts > t0


class TestGarbageCollection:
    def test_gc_compaction_preserves_data(self, tiny_spec):
        chip = FlashChip(tiny_spec)
        pdl = PdlDriver(chip, max_differential_size=64)
        rng = random.Random(3)
        images = {}
        for pid in range(16):
            images[pid] = rng.randbytes(pdl.page_size)
            pdl.load_page(pid, images[pid])
        for step in range(600):
            pid = rng.randrange(16)
            images[pid] = _patched(
                images[pid], rng.randrange(pdl.page_size - 8), rng.randbytes(8)
            )
            pdl.write_page(pid, images[pid])
        assert chip.stats.of_phase(GC).erases > 0, "GC never ran"
        for pid, expected in images.items():
            assert pdl.read_page(pid) == expected

    def test_relocated_base_keeps_timestamp(self, tiny_spec):
        """GC copies preserve timestamps so recovery tie-breaks are safe."""
        chip = FlashChip(tiny_spec)
        pdl = PdlDriver(chip, max_differential_size=64)
        rng = random.Random(4)
        for pid in range(16):
            pdl.load_page(pid, rng.randbytes(pdl.page_size))
        ts_before = {pid: pdl.ppmt.require(pid).base_ts for pid in range(16)}
        data = {pid: pdl.read_page(pid) for pid in range(16)}
        # churn only pids 0..3 so the others' bases get relocated by GC
        for step in range(600):
            pid = rng.randrange(4)
            data[pid] = _patched(
                data[pid], rng.randrange(pdl.page_size - 8), rng.randbytes(8)
            )
            pdl.write_page(pid, data[pid])
        for pid in range(4, 16):
            entry = pdl.ppmt.require(pid)
            assert entry.base_ts == ts_before[pid]
            assert chip.peek_spare(entry.base_addr).timestamp == ts_before[pid]
