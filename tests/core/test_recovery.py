"""Crash-recovery tests: Figure 11's reconstruction algorithm."""

import random

import pytest

from repro.core.pdl import PdlDriver
from repro.core.recovery import RECOVERY_PHASE, recover_driver
from repro.flash.chip import FlashChip
from repro.flash.errors import CrashError
from repro.flash.spare import PageType


def _page(driver, fill=0x11):
    return bytes([fill]) * driver.page_size


def _patched(data, offset, patch):
    image = bytearray(data)
    image[offset : offset + len(patch)] = patch
    return bytes(image)


def _fresh(tiny_spec):
    chip = FlashChip(tiny_spec)
    return chip, PdlDriver(chip, max_differential_size=64)


class TestCleanRecovery:
    def test_tables_match_after_flush(self, tiny_spec):
        chip, pdl = _fresh(tiny_spec)
        rng = random.Random(1)
        images = {}
        for pid in range(12):
            images[pid] = rng.randbytes(pdl.page_size)
            pdl.load_page(pid, images[pid])
        for _ in range(100):
            pid = rng.randrange(12)
            images[pid] = _patched(
                images[pid], rng.randrange(pdl.page_size - 6), rng.randbytes(6)
            )
            pdl.write_page(pid, images[pid])
        pdl.flush()
        recovered, report = recover_driver(chip, max_differential_size=64)
        for pid, expected in images.items():
            assert recovered.read_page(pid) == expected
        # recovered tables equal the live ones
        for pid in range(12):
            live = pdl.ppmt.require(pid)
            rec = recovered.ppmt.require(pid)
            assert (live.base_addr, live.base_ts, live.diff_addr) == (
                rec.base_addr,
                rec.base_ts,
                rec.diff_addr,
            )
        assert dict(recovered.vdct.items()) == dict(pdl.vdct.items())

    def test_recovery_scan_cost(self, tiny_spec):
        """One spare read per page, plus data reads for differential pages
        (the paper estimates ~60 s per GB from exactly this scan)."""
        chip, pdl = _fresh(tiny_spec)
        for pid in range(8):
            pdl.load_page(pid, _page(pdl, pid))
        pdl.write_page(0, _patched(_page(pdl, 0), 0, b"\x01"))
        pdl.flush()
        snap = chip.stats.snapshot()
        recover_driver(chip, max_differential_size=64)
        delta = snap and chip.stats.delta_since(snap)
        reads = delta.of_phase(RECOVERY_PHASE).reads
        # n_pages spare reads + 1 differential-page data read
        assert reads == tiny_spec.n_pages + 1

    def test_timestamp_counter_resumes(self, tiny_spec):
        chip, pdl = _fresh(tiny_spec)
        pdl.load_page(0, _page(pdl))
        pdl.write_page(0, _patched(_page(pdl), 0, b"\x01"))
        pdl.flush()
        recovered, report = recover_driver(chip, max_differential_size=64)
        assert recovered.current_ts >= report.max_timestamp
        # new writes must get fresh timestamps
        recovered.write_page(0, _patched(_page(pdl), 0, b"\x02"))
        assert recovered.current_ts > report.max_timestamp

    def test_unflushed_buffer_is_lost(self, tiny_spec):
        """The paper's file-buffer analogy: RAM-only differentials do not
        survive; the page recovers to its last durable version."""
        chip, pdl = _fresh(tiny_spec)
        base = _page(pdl)
        pdl.load_page(0, base)
        pdl.write_page(0, _patched(base, 0, b"\x01"))  # buffered only
        recovered, _ = recover_driver(chip, max_differential_size=64)
        assert recovered.read_page(0) == base


class TestCrashWindows:
    def test_crash_between_program_and_obsolete(self, tiny_spec):
        """Both base copies survive; recovery picks the newer timestamp
        and obsoletes the stale copy."""
        chip, pdl = _fresh(tiny_spec)
        base = _page(pdl)
        pdl.load_page(0, base)
        old_addr = pdl.ppmt.require(0).base_addr
        new = _page(pdl, 0xEE)  # whole page -> Case 3 (program + obsolete)
        chip.crash_after(1)  # allow the program, crash on the obsolete mark
        with pytest.raises(CrashError):
            pdl.write_page(0, new)
        recovered, report = recover_driver(chip, max_differential_size=64)
        assert recovered.read_page(0) == new
        assert chip.peek_spare(old_addr).obsolete  # cleaned by recovery
        assert report.stale_pages_obsoleted >= 1

    def test_recovery_is_idempotent(self, tiny_spec):
        """Crashing during recovery and re-running it must converge —
        the scan only obsoletes useless pages (Section 4.5)."""
        chip, pdl = _fresh(tiny_spec)
        base = _page(pdl)
        pdl.load_page(0, base)
        chip.crash_after(1)
        with pytest.raises(CrashError):
            pdl.write_page(0, _page(pdl, 0xEE))
        # first recovery attempt crashes midway through its own writes
        chip.crash_after(0)
        with pytest.raises(CrashError):
            recover_driver(chip, max_differential_size=64)
        recovered, _ = recover_driver(chip, max_differential_size=64)
        assert recovered.read_page(0) == _page(pdl, 0xEE)

    def test_orphan_differentials_dropped(self, tiny_spec):
        chip, pdl = _fresh(tiny_spec)
        # fill block 0 with base pages so the differential page lands in
        # block 1, then destroy block 0 (simulates an interrupted load)
        for pid in range(tiny_spec.pages_per_block):
            pdl.load_page(pid, _page(pdl, pid))
        pdl.write_page(0, _patched(_page(pdl, 0), 0, b"\x01"))
        pdl.flush()
        base_addr = pdl.ppmt.require(0).base_addr
        diff_addr = pdl.ppmt.require(0).diff_addr
        assert diff_addr // tiny_spec.pages_per_block != 0
        assert base_addr // tiny_spec.pages_per_block == 0
        chip.erase_block(0)
        recovered, report = recover_driver(chip, max_differential_size=64)
        assert 0 in report.orphan_pids
        assert recovered.ppmt.get(0) is None


class TestRecoveryEdgeCases:
    def test_empty_chip_recovers_to_empty_driver(self, tiny_spec):
        """Recovering a factory-fresh chip yields an empty but fully
        operational driver — the scan finds nothing, adopts nothing,
        writes nothing."""
        chip = FlashChip(tiny_spec)
        recovered, report = recover_driver(chip, max_differential_size=64)
        assert report.pages_scanned == tiny_spec.n_pages
        assert report.base_pages_adopted == 0
        assert report.differentials_adopted == 0
        assert report.stale_pages_obsoleted == 0
        assert report.orphan_pids == []
        assert len(list(recovered.ppmt.items())) == 0
        # the scan must not have programmed or erased anything
        assert chip.stats.totals().writes == 0
        assert chip.stats.total_erases == 0
        # and the driver is usable from scratch
        recovered.load_page(0, _page(recovered, 0x42))
        assert recovered.read_page(0) == _page(recovered, 0x42)

    def test_buffer_only_differential_lost_older_flush_survives(self, tiny_spec):
        """Section 4.4 semantics: a differential still in the RAM write
        buffer at crash time vanishes, but an OLDER flushed differential
        for the same page must still be adopted — the page rolls back to
        its last durable version, not to its base."""
        chip, pdl = _fresh(tiny_spec)
        base = _page(pdl)
        pdl.load_page(0, base)
        v1 = _patched(base, 0, b"\x01")
        pdl.write_page(0, v1)
        pdl.flush()  # v1's differential is durable
        v2 = _patched(v1, 0, b"\x02")
        pdl.write_page(0, v2)  # v2's differential is buffer-only
        assert pdl.buffer.get(0) is not None
        recovered, report = recover_driver(chip, max_differential_size=64)
        assert recovered.read_page(0) == v1
        assert report.differentials_adopted == 1

    def test_duplicate_gc_base_copies_with_equal_timestamps(self, tiny_spec):
        """A crash between GC's copy-out and the victim erase leaves two
        byte-identical base pages with EQUAL timestamps.  Recovery may
        keep either (they are identical); the other must end obsolete."""
        chip, pdl = _fresh(tiny_spec)
        image = _page(pdl, 0x5A)
        pdl.load_page(0, image)
        entry = pdl.ppmt.require(0)
        original = entry.base_addr
        # Simulate the GC relocation: identical data + spare (timestamp
        # preserved) programmed at a far-away erased address.
        copy_addr = (tiny_spec.n_blocks - 1) * tiny_spec.pages_per_block
        chip.program_page(copy_addr, chip.peek_data(original), chip.peek_spare(original))
        assert chip.peek_spare(copy_addr).timestamp == chip.peek_spare(original).timestamp
        recovered, report = recover_driver(chip, max_differential_size=64)
        assert recovered.read_page(0) == image
        kept = recovered.ppmt.require(0).base_addr
        assert kept in (original, copy_addr)
        stale = copy_addr if kept == original else original
        assert chip.peek_spare(stale).obsolete
        assert not chip.peek_spare(kept).obsolete
        assert report.stale_pages_obsoleted >= 1

    def test_duplicate_gc_differential_copies_with_equal_timestamps(self, tiny_spec):
        """Same crash window for a differential page: GC compaction wrote
        the copy, the victim survived.  Recovery adopts exactly one copy
        per pid and obsoletes the page left with zero adopted entries."""
        chip, pdl = _fresh(tiny_spec)
        base = _page(pdl)
        pdl.load_page(0, base)
        v1 = _patched(base, 0, b"\x07")
        pdl.write_page(0, v1)
        pdl.flush()
        diff_addr = pdl.ppmt.require(0).diff_addr
        assert diff_addr is not None
        assert chip.peek_spare(diff_addr).type is PageType.DIFFERENTIAL
        copy_addr = (tiny_spec.n_blocks - 1) * tiny_spec.pages_per_block
        chip.program_page(copy_addr, chip.peek_data(diff_addr), chip.peek_spare(diff_addr))
        recovered, _ = recover_driver(chip, max_differential_size=64)
        assert recovered.read_page(0) == v1
        kept = recovered.ppmt.require(0).diff_addr
        assert kept in (diff_addr, copy_addr)
        assert recovered.vdct.count(kept) == 1
        stale = copy_addr if kept == diff_addr else diff_addr
        assert chip.peek_spare(stale).obsolete


class TestRandomizedCrashRecovery:
    """The strongest invariant: after a crash at an arbitrary point,
    every page recovers to SOME version it actually held, never older
    than the last write-through."""

    @pytest.mark.parametrize("seed", range(8))
    def test_crash_anywhere(self, tiny_spec, seed):
        rng = random.Random(seed)
        chip, pdl = _fresh(tiny_spec)
        history = {}
        floor = {}
        for pid in range(10):
            data = rng.randbytes(pdl.page_size)
            pdl.load_page(pid, data)
            history[pid] = [data]
            floor[pid] = 0
        chip.crash_after(rng.randrange(1, 120))
        try:
            for i in range(400):
                pid = rng.randrange(10)
                image = _patched(
                    history[pid][-1],
                    rng.randrange(pdl.page_size - 8),
                    rng.randbytes(8),
                )
                history[pid].append(image)  # record before the attempt
                pdl.write_page(pid, image)
                if i % 9 == 0:
                    pdl.flush()
                    for q in history:
                        floor[q] = len(history[q]) - 1
        except CrashError:
            pass
        recovered, _ = recover_driver(chip, max_differential_size=64)
        for pid, versions in history.items():
            got = recovered.read_page(pid)
            assert got in versions, f"pid {pid}: content never existed"
            newest = max(i for i, v in enumerate(versions) if v == got)
            assert newest >= floor[pid], f"pid {pid}: lost durable data"
        # and the recovered driver keeps working
        for pid in range(10):
            new = _patched(recovered.read_page(pid), 0, b"\xAA\xBB")
            recovered.write_page(pid, new)
            assert recovered.read_page(pid) == new


class TestTimestampResume:
    """Recovery must resume the timestamp counter past *everything* on
    flash — including differential-page header stamps, which are issued
    at flush time and are strictly newer than the entries inside, and
    stamps on stale/obsolete copies.  (Regression: the counter used to
    resume from the adopted entries only, so post-recovery programs
    could re-issue stamps already present on flash, violating the
    strictly-larger invariant the adoption rules rely on.)
    """

    @staticmethod
    def _max_stamp_on_flash(chip):
        return max(
            (chip.peek_spare(addr).timestamp or 0)
            for addr in chip.iter_programmed_pages()
        )

    def test_recover_resumes_past_diff_page_header_stamp(self, tiny_spec):
        chip, pdl = _fresh(tiny_spec)
        pdl.load_page(0, _page(pdl))
        pdl.write_page(0, _patched(_page(pdl), 3, b"\x01\x02"))
        pdl.flush()  # differential page header gets the newest stamp
        recovered, report = recover_driver(chip, max_differential_size=64)
        top = self._max_stamp_on_flash(chip)
        assert report.max_timestamp >= top
        assert recovered.current_ts >= top, (
            "post-recovery writes would reuse a stamp already on flash"
        )

    def test_post_recovery_write_gets_fresh_stamp(self, tiny_spec):
        chip, pdl = _fresh(tiny_spec)
        images = {pid: _page(pdl, 0x20 + pid) for pid in range(3)}
        for pid, image in images.items():
            pdl.load_page(pid, image)
        for pid in images:
            images[pid] = _patched(images[pid], 8, b"\x07\x08\x09")
            pdl.write_page(pid, images[pid])
        pdl.flush()
        recovered, _ = recover_driver(chip, max_differential_size=64)
        before = self._max_stamp_on_flash(chip)
        images[1] = _patched(images[1], 40, b"\x55\x66")
        recovered.write_page(1, images[1])
        recovered.flush()
        assert self._max_stamp_on_flash(chip) > before
        # A second recovery must adopt the newer differential, not tie
        # with (or lose to) a stale stamp.
        again, _ = recover_driver(chip, max_differential_size=64)
        assert again.read_page(1) == images[1]

    def test_recover_tables_resumes_supplied_driver(self, tiny_spec):
        from repro.core.recovery import recover_tables
        from repro.core.tables import (
            PhysicalPageMappingTable,
            ValidDifferentialCountTable,
        )

        chip, pdl = _fresh(tiny_spec)
        pdl.load_page(0, _page(pdl))
        pdl.write_page(0, _patched(_page(pdl), 0, b"\x01"))
        pdl.flush()
        fresh = PdlDriver(FlashChip(tiny_spec), max_differential_size=64)
        fresh.ppmt = PhysicalPageMappingTable()
        fresh.vdct = ValidDifferentialCountTable()
        report = recover_tables(chip, fresh.ppmt, fresh.vdct, driver=fresh)
        assert fresh.current_ts == report.max_timestamp > 0


class TestCorruptionDuringScan:
    """Single-page damage must be quarantined by the scan, never adopted."""

    def _injected(self, tiny_spec, seed=0):
        from repro.flash.backend import FaultInjector, MemoryBackend

        injector = FaultInjector(MemoryBackend(tiny_spec), seed=seed)
        chip = FlashChip(tiny_spec, backend=injector)
        return injector, chip, PdlDriver(chip, max_differential_size=64)

    def test_base_without_pid_is_quarantined(self, tiny_spec):
        """Regression: a base page whose spare lost its pid used to be
        miscounted as a corrupt differential AND left valid."""
        injector, chip, pdl = self._injected(tiny_spec)
        pdl.load_page(0, _page(pdl))
        addr = pdl.ppmt.require(0).base_addr
        injector.inject("torn_spare", addr, tear_at=2)  # keeps type, loses pid
        recovered, report = recover_driver(chip, max_differential_size=64)
        assert report.corrupt_base_pages == 1
        assert report.corrupt_differential_pages == 0
        assert chip.peek_spare(addr).obsolete
        assert 0 not in recovered.ppmt

    def test_corrupt_type_byte_is_quarantined(self, tiny_spec):
        chip = FlashChip(tiny_spec)
        pdl = PdlDriver(chip, max_differential_size=64)
        pdl.load_page(0, _page(pdl))
        # Damage the type byte of an unrelated programmed page directly.
        victim = (tiny_spec.n_blocks - 2) * tiny_spec.pages_per_block
        from repro.flash.spare import SpareArea

        chip.program_page(
            victim, _page(pdl), SpareArea(type=PageType.BASE, pid=9, timestamp=1)
        )
        raw = bytearray(chip.backend.read_spare(victim))
        raw[0] &= 0x70  # clears bits only: NAND-legal damage, unknown type
        chip.backend.write_spare(victim, bytes(raw), chip.backend.spare_programs(victim))
        recovered, report = recover_driver(chip, max_differential_size=64)
        assert report.corrupt_spare_pages == 1
        assert chip.peek_spare(victim).obsolete
        assert 9 not in recovered.ppmt
        assert recovered.read_page(0) == _page(pdl)

    def test_checksum_corrupt_differential_dropped(self, tiny_spec):
        """A rotted differential page fails verification during the scan;
        its pid must roll back to the base image, not crash recovery."""
        injector, chip, pdl = self._injected(tiny_spec)
        base = _page(pdl)
        pdl.load_page(0, base)
        pdl.write_page(0, _patched(base, 0, b"\x01"))
        pdl.flush()
        diff_addr = pdl.ppmt.require(0).diff_addr
        injector.inject("bit_rot", diff_addr)
        recovered, report = recover_driver(chip, max_differential_size=64)
        assert report.corrupt_differential_pages == 1
        assert chip.peek_spare(diff_addr).obsolete
        assert recovered.read_page(0) == base
        assert recovered.ppmt.require(0).diff_addr is None

    def test_corrupt_page_with_exhausted_spare_budget_does_not_abort(self, tiny_spec):
        """Regression: quarantining a corrupt page whose spare-program
        budget is already spent used to raise SpareProgramError and
        abort the whole scan."""
        from repro.flash.spare import SpareArea

        chip = FlashChip(tiny_spec)
        pdl = PdlDriver(chip, max_differential_size=64)
        pdl.load_page(0, _page(pdl))
        victim = (tiny_spec.n_blocks - 2) * tiny_spec.pages_per_block
        chip.program_page(
            victim, _page(pdl), SpareArea(type=PageType.BASE, pid=9, timestamp=1)
        )
        raw = bytearray(chip.backend.read_spare(victim))
        raw[0] &= 0x70  # clears bits only: NAND-legal damage, unknown type
        chip.backend.write_spare(victim, bytes(raw), tiny_spec.max_spare_programs)
        recovered, report = recover_driver(chip, max_differential_size=64)
        assert report.corrupt_spare_pages == 1
        assert not chip.peek_spare(victim).obsolete  # no budget left to mark
        assert 9 not in recovered.ppmt
        assert recovered.read_page(0) == _page(pdl)

    def test_pidless_base_with_exhausted_spare_budget_does_not_abort(self, tiny_spec):
        injector, chip, pdl = self._injected(tiny_spec)
        pdl.load_page(0, _page(pdl))
        addr = pdl.ppmt.require(0).base_addr
        injector.inject("torn_spare", addr, tear_at=2)  # keeps type, loses pid
        backend = injector.inner
        backend.write_spare(
            addr, backend.read_spare(addr), tiny_spec.max_spare_programs
        )
        recovered, report = recover_driver(chip, max_differential_size=64)
        assert report.corrupt_base_pages == 1
        assert 0 not in recovered.ppmt

    def test_checksum_corrupt_base_not_adopted_when_copy_exists(self, tiny_spec):
        """With a stale duplicate present, recovery adopts by timestamp —
        a rotted newer copy still wins adoption (the scan reads spares
        only); fsck is the layer that validates data areas."""
        injector, chip, pdl = self._injected(tiny_spec)
        image = _page(pdl, 0x5A)
        pdl.load_page(0, image)
        addr = pdl.ppmt.require(0).base_addr
        injector.inject("bit_rot", addr)
        recovered, _ = recover_driver(chip, max_differential_size=64)
        fsck_report = recovered.fsck()
        assert fsck_report.lost_pids == [0]
        assert 0 not in recovered.ppmt
