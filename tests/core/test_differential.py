"""Unit tests for differential computation, codecs, and application."""

import pytest

from repro.core.differential import (
    DIFF_PAGE_MAGIC,
    ENTRY_HEADER_SIZE,
    PAGE_HEADER_SIZE,
    RUN_HEADER_SIZE,
    Differential,
    DifferentialError,
    compute_runs,
    compute_unit_runs,
    decode_differential_page,
    encode_differential_page,
    find_differential,
)
from repro.ftl.base import ChangeRun


class TestComputeRuns:
    def test_identical_pages(self):
        assert compute_runs(b"abc" * 10, b"abc" * 10) == ()

    def test_single_byte(self):
        base = b"\x00" * 32
        new = b"\x00" * 16 + b"\x01" + b"\x00" * 15
        runs = compute_runs(base, new)
        assert runs == (ChangeRun(16, b"\x01"),)

    def test_contiguous_run(self):
        base = bytearray(b"\x00" * 32)
        new = bytearray(base)
        new[4:9] = b"ABCDE"
        runs = compute_runs(bytes(base), bytes(new))
        assert runs == (ChangeRun(4, b"ABCDE"),)

    def test_distant_runs_stay_separate(self):
        base = b"\x00" * 64
        new = b"\x01" + b"\x00" * 31 + b"\x02" + b"\x00" * 31
        runs = compute_runs(base, new, coalesce_gap=4)
        assert len(runs) == 2

    def test_close_runs_coalesce(self):
        base = b"\x00" * 32
        new = bytearray(base)
        new[0] = 1
        new[3] = 1  # gap of 2 unchanged bytes <= coalesce_gap
        runs = compute_runs(base, bytes(new), coalesce_gap=4)
        assert len(runs) == 1
        assert runs[0].offset == 0
        assert runs[0].length == 4

    def test_gap_zero_disables_coalescing(self):
        base = b"\x00" * 32
        new = bytearray(base)
        new[0] = 1
        new[2] = 1
        assert len(compute_runs(base, bytes(new), coalesce_gap=0)) == 2

    def test_paper_example(self):
        """... aaaaaa ... -> ... bcccba ...: the differential is bcccb."""
        base = b"xx" + b"aaaaaa" + b"yy"
        new = b"xx" + b"bcccba" + b"yy"
        runs = compute_runs(base, new)
        assert runs == (ChangeRun(2, b"bcccb"),)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            compute_runs(b"ab", b"abc")

    def test_applying_runs_recreates_page(self, rng):
        base = rng.randbytes(256)
        new = bytearray(base)
        for _ in range(10):
            off = rng.randrange(250)
            new[off : off + 5] = rng.randbytes(5)
        diff = Differential(0, 1, compute_runs(base, bytes(new)))
        assert diff.apply(base) == bytes(new)


class TestComputeUnitRuns:
    def test_identical(self):
        assert compute_unit_runs(b"\x00" * 64, b"\x00" * 64, unit=16) == ()

    def test_one_changed_unit(self):
        base = b"\x00" * 64
        new = bytearray(base)
        new[20] = 9
        runs = compute_unit_runs(base, bytes(new), unit=16)
        assert len(runs) == 1
        assert runs[0].offset == 16
        assert runs[0].length == 16

    def test_adjacent_units_not_coalesced(self):
        """Per-unit entries keep metadata proportional to coverage."""
        base = b"\x00" * 64
        new = b"\x01" * 64
        runs = compute_unit_runs(base, bytes(new), unit=16)
        assert len(runs) == 4

    def test_tail_smaller_than_unit(self):
        base = b"\x00" * 70  # 4 full units + 6-byte tail
        new = bytearray(base)
        new[68] = 1
        runs = compute_unit_runs(base, bytes(new), unit=16)
        assert runs == (ChangeRun(64, bytes(new[64:])),)

    def test_apply_recreates(self, rng):
        base = rng.randbytes(256)
        new = bytearray(base)
        for _ in range(6):
            off = rng.randrange(250)
            new[off : off + 5] = rng.randbytes(5)
        diff = Differential(0, 1, compute_unit_runs(base, bytes(new), unit=16))
        assert diff.apply(base) == bytes(new)

    def test_bad_unit(self):
        with pytest.raises(ValueError):
            compute_unit_runs(b"", b"", unit=0)

    def test_full_page_exceeds_page_size(self):
        """A fully-changed page's differential overflows one page: the
        mechanism behind PDL_Writing's Case 3 (footnote 16)."""
        base = b"\x00" * 2048
        new = b"\x01" * 2048
        diff = Differential(0, 1, compute_unit_runs(base, new, unit=16))
        assert diff.size > 2048


class TestDifferentialProperties:
    def test_size_formula(self):
        diff = Differential(1, 2, (ChangeRun(0, b"abc"), ChangeRun(9, b"x")))
        assert diff.size == ENTRY_HEADER_SIZE + 2 * RUN_HEADER_SIZE + 4

    def test_empty(self):
        diff = Differential(1, 2, ())
        assert diff.is_empty
        assert diff.size == ENTRY_HEADER_SIZE
        assert diff.apply(b"abc") == b"abc"

    def test_apply_out_of_range(self):
        diff = Differential(1, 2, (ChangeRun(10, b"abc"),))
        with pytest.raises(DifferentialError):
            diff.apply(b"short")


class TestEntryCodec:
    def test_roundtrip(self):
        diff = Differential(7, 99, (ChangeRun(3, b"hello"), ChangeRun(64, b"\x00\x01")))
        decoded, pos = Differential.decode_from(diff.encode(), 0)
        assert decoded == diff
        assert pos == diff.size

    def test_roundtrip_empty(self):
        diff = Differential(0, 0, ())
        decoded, _ = Differential.decode_from(diff.encode(), 0)
        assert decoded == diff

    def test_truncated_header(self):
        with pytest.raises(DifferentialError):
            Differential.decode_from(b"\x00" * 4, 0)

    def test_truncated_data(self):
        encoded = Differential(1, 1, (ChangeRun(0, b"abcdef"),)).encode()
        with pytest.raises(DifferentialError):
            Differential.decode_from(encoded[:-3], 0)

    def test_data_len_validation(self):
        encoded = bytearray(Differential(1, 1, (ChangeRun(0, b"ab"),)).encode())
        encoded[14] ^= 0xFF  # corrupt the declared data_len
        with pytest.raises(DifferentialError):
            Differential.decode_from(bytes(encoded), 0)


class TestPageCodec:
    def _diffs(self):
        return [
            Differential(1, 10, (ChangeRun(0, b"aa"),)),
            Differential(2, 11, (ChangeRun(5, b"bbb"), ChangeRun(20, b"c"))),
            Differential(3, 12, ()),
        ]

    def test_roundtrip(self):
        payload = encode_differential_page(self._diffs(), 512)
        assert decode_differential_page(payload) == self._diffs()

    def test_find(self):
        payload = encode_differential_page(self._diffs(), 512)
        assert find_differential(payload, 2).pid == 2
        assert find_differential(payload, 99) is None

    def test_magic_checked(self):
        with pytest.raises(DifferentialError):
            decode_differential_page(b"\x00\x00\x00\x00")

    def test_overflow_rejected(self):
        diffs = [Differential(i, i, (ChangeRun(0, b"x" * 40),)) for i in range(5)]
        with pytest.raises(DifferentialError):
            encode_differential_page(diffs, 128)

    def test_empty_page(self):
        payload = encode_differential_page([], 128)
        assert decode_differential_page(payload) == []

    def test_sizes_account_for_page_header(self):
        diffs = self._diffs()
        payload = encode_differential_page(diffs, 512)
        assert len(payload) == PAGE_HEADER_SIZE + sum(d.size for d in diffs)
