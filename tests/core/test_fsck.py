"""Online single-page repair: the fsck engine's decision tree."""

import pytest

from repro.core import check_driver, fsck_driver
from repro.core.pdl import PdlDriver
from repro.core.recovery import recover_driver
from repro.flash.backend import FaultInjector, MemoryBackend
from repro.flash.chip import FlashChip
from repro.ftl.errors import UnknownPageError
from repro.flash.spare import PageType, SpareArea


def _page(driver, fill=0x11):
    return bytes([fill]) * driver.page_size


def _patched(data, offset, patch):
    image = bytearray(data)
    image[offset : offset + len(patch)] = patch
    return bytes(image)


@pytest.fixture
def rig(tiny_spec):
    injector = FaultInjector(MemoryBackend(tiny_spec), seed=7)
    chip = FlashChip(tiny_spec, backend=injector)
    driver = PdlDriver(chip, max_differential_size=64)
    return injector, chip, driver


def _populate(driver, n=8):
    images = {}
    for pid in range(n):
        images[pid] = _page(driver, pid + 1)
        driver.load_page(pid, images[pid])
    driver.end_of_load()
    for pid in range(n):
        images[pid] = _patched(images[pid], 3, b"\xaa")
        driver.write_page(pid, images[pid])
    driver.flush()
    return images


class TestCleanScan:
    def test_clean_device_reports_clean(self, rig):
        _injector, chip, driver = rig
        _populate(driver)
        report = fsck_driver(driver)
        assert report.clean
        assert report.detected == 0
        assert report.pages_scanned == chip.spec.n_pages
        assert report.repair_writes == 0
        assert report.check is not None and report.check.consistent

    def test_scan_charges_real_io(self, rig):
        _injector, chip, driver = rig
        _populate(driver)
        before = chip.stats.totals().reads
        report = fsck_driver(driver)
        assert chip.stats.totals().reads - before == report.scan_reads
        # one spare read per page + one data read per programmed page
        assert report.scan_reads > chip.spec.n_pages

    def test_dry_run_repairs_nothing(self, rig):
        injector, chip, driver = rig
        _populate(driver)
        addr = driver.ppmt.require(2).base_addr
        injector.inject("bit_rot", addr)
        report = fsck_driver(driver, repair=False)
        assert [f.action for f in report.faults] == ["reported"]
        assert report.repair_writes == 0
        assert report.check is None  # no post-repair invariant pass
        assert driver.ppmt.require(2).base_addr == addr  # untouched


class TestBaseRepair:
    def test_exact_copy_relocated_chain_preserved(self, rig):
        """An identical surviving copy lets fsck relocate the base while
        the differential chain keeps replaying on reads."""
        injector, chip, driver = rig
        images = _populate(driver)
        entry = driver.ppmt.require(4)
        # GC-crash residue: a byte-identical copy at an erased address.
        copy_addr = driver.blocks.allocate(stream=driver._base_stream)
        data, _ = chip.read_page(entry.base_addr)
        chip.program_page(
            copy_addr,
            data,
            SpareArea(
                type=PageType.BASE, pid=4, timestamp=entry.base_ts, obsolete=True
            ),
        )
        injector.inject("bit_rot", entry.base_addr)
        report = fsck_driver(driver)
        assert report.repaired_base_pages == 1
        assert [f.action for f in report.faults] == ["repaired_copy"]
        assert report.check.consistent
        assert driver.read_page(4) == images[4]

    def test_stale_copy_adopted_and_diffs_dropped(self, rig):
        """Only an older copy survives: the page rolls back to it and the
        now-inapplicable differentials are dropped."""
        injector, chip, driver = rig
        driver.load_page(0, _page(driver, 0x10))
        old_addr = driver.ppmt.require(0).base_addr
        old_ts = driver.ppmt.require(0).base_ts
        # Rewrite heavily so Case 3 programs a NEW base page.
        big = _page(driver, 0x20)
        driver.write_page(0, big)
        driver.flush()
        entry = driver.ppmt.require(0)
        assert entry.base_addr != old_addr, "test needs a relocated base"
        assert not chip.peek_spare(old_addr).obsolete or True
        injector.inject("bit_rot", entry.base_addr)
        report = fsck_driver(driver)
        assert report.stale_pids == [0]
        assert [f.action for f in report.faults] == ["repaired_stale"]
        assert report.check.consistent
        assert driver.read_page(0) == _page(driver, 0x10)  # rolled back
        assert driver.ppmt.require(0).base_ts == old_ts

    def test_no_copy_declares_loss(self, rig):
        injector, chip, driver = rig
        _populate(driver)
        entry = driver.ppmt.require(3)
        injector.inject("bit_rot", entry.base_addr)
        report = fsck_driver(driver)
        assert report.lost_pids == [3]
        assert report.data_loss_pids == [3]
        assert report.check.consistent
        with pytest.raises(UnknownPageError):
            driver.read_page(3)
        # Other pages still serve.
        driver.read_page(2)


class TestDifferentialRepair:
    def test_obsolete_predecessor_salvaged(self, rig):
        """The previous flush's differential page survives on flash
        (obsolete); fsck re-flushes its entry when the current one rots —
        the page rolls back one durable version instead of to its base."""
        injector, chip, driver = rig
        base = _page(driver, 0x30)
        driver.load_page(0, base)
        v1 = _patched(base, 0, b"\x01")
        driver.write_page(0, v1)
        driver.flush()
        first_diff = driver.ppmt.require(0).diff_addr
        v2 = _patched(v1, 0, b"\x02")
        driver.write_page(0, v2)
        driver.flush()
        entry = driver.ppmt.require(0)
        assert entry.diff_addr != first_diff
        injector.inject("bit_rot", entry.diff_addr)
        report = fsck_driver(driver)
        assert report.repaired_differentials == 1
        assert [f.action for f in report.faults] == ["repaired_chain"]
        assert report.check.consistent
        assert driver.read_page(0) == v1  # the surviving version

    def test_no_survivor_reverts_to_base(self, rig):
        injector, chip, driver = rig
        base = _page(driver, 0x40)
        driver.load_page(0, base)
        driver.write_page(0, _patched(base, 0, b"\x01"))
        driver.flush()
        entry = driver.ppmt.require(0)
        injector.inject("bit_rot", entry.diff_addr)
        report = fsck_driver(driver)
        assert report.reverted_pids == [0]
        assert report.check.consistent
        assert driver.read_page(0) == base

    def test_buffered_differential_supersedes_damage(self, rig):
        """A newer unflushed differential shadows the damaged flash page,
        so detaching it loses nothing."""
        injector, chip, driver = rig
        base = _page(driver, 0x50)
        driver.load_page(0, base)
        v1 = _patched(base, 0, b"\x01")
        driver.write_page(0, v1)
        driver.flush()
        diff_addr = driver.ppmt.require(0).diff_addr
        v2 = _patched(v1, 0, b"\x02")
        driver.write_page(0, v2)  # buffered only
        assert driver.buffer.get(0) is not None
        injector.inject("bit_rot", diff_addr)
        report = fsck_driver(driver)
        assert report.repaired_differentials == 1
        assert report.check.consistent
        assert driver.read_page(0) == v2  # newest version intact


class TestQuarantine:
    def test_unreferenced_rot_is_quarantined(self, rig):
        injector, chip, driver = rig
        _populate(driver, n=4)
        # A live page no table references (crash residue of an
        # interrupted load): program one directly, then rot it.
        victim = (chip.spec.n_blocks - 1) * chip.spec.pages_per_block
        chip.program_page(
            victim,
            _page(driver, 0x77),
            SpareArea(type=PageType.BASE, pid=77, timestamp=1),
        )
        injector.inject("bit_rot", victim)
        report = fsck_driver(driver)
        roles = {f.role for f in report.faults}
        assert roles == {"unreferenced"}
        assert report.check.consistent

    def test_checkpoint_damage_reported_not_touched(self, tiny_spec):
        from repro.ext.checkpoint import CheckpointManager

        injector = FaultInjector(MemoryBackend(tiny_spec), seed=7)
        chip = FlashChip(tiny_spec, backend=injector)
        driver = PdlDriver(
            chip, max_differential_size=64, checkpoint_region_blocks=2
        )
        manager = CheckpointManager(driver, 2)
        driver.load_page(0, _page(driver))
        manager.checkpoint()
        # Rot the snapshot header page (the ping-pong half seq 1 used).
        snapshot_addr = manager._half_pages(1)[0]
        injector.inject("bit_rot", snapshot_addr)
        before = injector.inner.read_data(snapshot_addr)
        report = fsck_driver(driver)
        assert [(f.role, f.action) for f in report.faults] == [
            ("checkpoint", "reported")
        ]
        assert injector.inner.read_data(snapshot_addr) == before  # untouched
        assert report.check.consistent


def _strip_checksums(backend, addrs=None):
    """Rewrite spare areas with an erased checksum slot — simulating an
    image written before checksums existed (or a torn CRC slot when
    ``addrs`` targets specific pages)."""
    from repro.flash.spare import CHECKSUM_OFFSET, CHECKSUM_SIZE

    targets = list(backend.iter_programmed()) if addrs is None else addrs
    for addr in targets:
        raw = bytearray(backend.read_spare(addr))
        raw[CHECKSUM_OFFSET : CHECKSUM_OFFSET + CHECKSUM_SIZE] = (
            b"\xff" * CHECKSUM_SIZE
        )
        backend.write_spare(addr, bytes(raw), backend.spare_programs(addr))


class TestChecksumEvidence:
    """The torn-spare inference needs proof the image carries checksums."""

    def test_checksum_free_image_is_not_torn(self, rig):
        """Regression: on a wide-spare chip with no checksum anywhere (a
        pre-checksum image), fsck used to flag every live page as a torn
        spare and declare every pid lost."""
        injector, _chip, driver = rig
        images = _populate(driver)
        _strip_checksums(injector.inner)
        report = fsck_driver(driver)
        assert report.clean
        assert report.lost_pids == []
        assert report.check.consistent
        for pid, expected in images.items():
            assert driver.read_page(pid) == expected

    def test_checksum_only_tear_still_detected(self, rig):
        """A tear past the header (byte 16) removes only the CRC; with
        verified checksums elsewhere as evidence, fsck must still flag
        the page as torn."""
        injector, _chip, driver = rig
        _populate(driver)
        addr = driver.ppmt.require(3).base_addr
        injector.inject("torn_spare", addr, tear_at=16)
        report = fsck_driver(driver)
        assert [f.kind for f in report.faults if f.addr == addr] == ["spare"]
        assert report.lost_pids == [3]
        assert report.check.consistent

    def test_unverifiable_donor_is_not_trusted(self, rig):
        """A salvage donor whose own checksum was torn away must not be
        re-flushed as a repair; the pid reverts to its base instead."""
        injector, _chip, driver = rig
        base = _page(driver, 0x30)
        driver.load_page(0, base)
        v1 = _patched(base, 0, b"\x01")
        driver.write_page(0, v1)
        driver.flush()
        first_diff = driver.ppmt.require(0).diff_addr
        driver.write_page(0, _patched(v1, 0, b"\x02"))
        driver.flush()
        entry = driver.ppmt.require(0)
        assert entry.diff_addr != first_diff
        _strip_checksums(injector.inner, [first_diff])
        injector.inject("bit_rot", entry.diff_addr)
        report = fsck_driver(driver)
        assert report.reverted_pids == [0]
        assert report.repaired_differentials == 0
        assert report.check.consistent
        assert driver.read_page(0) == base

    def test_missing_base_is_lost_but_not_quarantined(self, rig):
        """A referenced address that reads back erased leaves nothing on
        flash to mark obsolete: the pid is lost, but no quarantine may
        be counted for it."""
        injector, chip, driver = rig
        _populate(driver, n=4)
        backend = injector.inner
        addr = driver.ppmt.require(1).base_addr
        # A program whose pulse never reached the media: both areas read
        # back erased while the tables still reference the address.
        backend.write_data(addr, b"\xff" * chip.spec.page_data_size, 0)
        backend.write_spare(addr, b"\xff" * chip.spec.page_spare_size, 0)
        report = fsck_driver(driver)
        assert [f.kind for f in report.faults if f.addr == addr] == ["missing"]
        assert report.lost_pids == [1]
        assert report.quarantined_pages == 0
        assert report.check.consistent


class TestEndToEnd:
    def test_recovery_roundtrips_after_repair(self, rig):
        """After fsck repairs, a crash-recovery scan of the same chip must
        rebuild matching tables — repairs leave flash self-describing."""
        injector, chip, driver = rig
        images = _populate(driver)
        e2, e5 = driver.ppmt.require(2), driver.ppmt.require(5)
        injector.inject("bit_rot", e2.base_addr)
        injector.inject("torn_spare", e5.base_addr)
        report = fsck_driver(driver)
        assert report.check.consistent
        assert set(report.lost_pids) == {2, 5}
        driver.flush()
        recovered, _ = recover_driver(chip, max_differential_size=64)
        assert sorted(recovered.ppmt.pids()) == sorted(driver.ppmt.pids())
        for pid in recovered.ppmt.pids():
            assert recovered.read_page(pid) == images[pid]
        assert check_driver(recovered).consistent

    def test_fsck_is_idempotent(self, rig):
        injector, chip, driver = rig
        _populate(driver)
        injector.inject("bit_rot", driver.ppmt.require(1).base_addr)
        first = fsck_driver(driver)
        assert not first.clean
        second = fsck_driver(driver)
        assert second.clean
        assert second.check.consistent

    def test_merge_sums_reports(self):
        from repro.core.fsck import FsckReport, PageFault

        a = FsckReport(pages_scanned=10, checksum_failures=1, lost_pids=[1])
        a.add(PageFault(0, "base", "checksum", 1, "lost"))
        b = FsckReport(pages_scanned=10, repaired_base_pages=1)
        merged = FsckReport.merge([a, b])
        assert merged.pages_scanned == 20
        assert merged.detected == 1
        assert merged.lost_pids == [1]
        assert merged.repaired == 1
        assert merged.per_shard == [a, b]
