"""Unit tests for the ppmt and vdct tables."""

import pytest

from repro.core.tables import (
    MappingEntry,
    PhysicalPageMappingTable,
    ValidDifferentialCountTable,
)


class TestMappingTable:
    def test_empty(self):
        ppmt = PhysicalPageMappingTable()
        assert ppmt.get(0) is None
        assert 0 not in ppmt
        assert len(ppmt) == 0
        with pytest.raises(KeyError):
            ppmt.require(0)

    def test_set_base_creates_entry(self):
        ppmt = PhysicalPageMappingTable()
        ppmt.set_base(1, 100, 5)
        entry = ppmt.require(1)
        assert entry == MappingEntry(base_addr=100, base_ts=5, diff_addr=None)

    def test_set_base_clears_diff(self):
        ppmt = PhysicalPageMappingTable()
        ppmt.set_base(1, 100, 5)
        ppmt.set_diff(1, 200)
        ppmt.set_base(1, 300, 9)
        entry = ppmt.require(1)
        assert entry.base_addr == 300
        assert entry.diff_addr is None

    def test_move_base_preserves_diff(self):
        ppmt = PhysicalPageMappingTable()
        ppmt.set_base(1, 100, 5)
        ppmt.set_diff(1, 200)
        ppmt.move_base(1, 101)
        entry = ppmt.require(1)
        assert entry.base_addr == 101
        assert entry.base_ts == 5
        assert entry.diff_addr == 200

    def test_set_diff_requires_entry(self):
        ppmt = PhysicalPageMappingTable()
        with pytest.raises(KeyError):
            ppmt.set_diff(1, 200)

    def test_remove(self):
        ppmt = PhysicalPageMappingTable()
        ppmt.set_base(1, 100, 5)
        assert ppmt.remove(1) is not None
        assert ppmt.remove(1) is None
        assert 1 not in ppmt

    def test_iteration(self):
        ppmt = PhysicalPageMappingTable()
        ppmt.set_base(1, 100, 5)
        ppmt.set_base(2, 101, 6)
        assert sorted(ppmt.pids()) == [1, 2]
        assert {pid for pid, _ in ppmt.items()} == {1, 2}


class TestCountTable:
    def test_increment_and_count(self):
        vdct = ValidDifferentialCountTable()
        vdct.increment(10)
        vdct.increment(10)
        assert vdct.count(10) == 2
        assert vdct.count(11) == 0

    def test_decrement_to_zero_reports_garbage(self):
        vdct = ValidDifferentialCountTable()
        vdct.increment(10)
        vdct.increment(10)
        assert vdct.decrement(10) is False
        assert vdct.decrement(10) is True
        assert vdct.count(10) == 0

    def test_decrement_untracked_raises(self):
        vdct = ValidDifferentialCountTable()
        with pytest.raises(KeyError):
            vdct.decrement(10)

    def test_remove(self):
        vdct = ValidDifferentialCountTable()
        vdct.increment(10)
        assert vdct.remove(10) == 1
        assert vdct.remove(10) == 0

    def test_total_and_len(self):
        vdct = ValidDifferentialCountTable()
        vdct.increment(1)
        vdct.increment(1)
        vdct.increment(2)
        assert vdct.total_valid() == 3
        assert len(vdct) == 2
        assert sorted(vdct.pages()) == [1, 2]
        assert dict(vdct.items()) == {1: 2, 2: 1}
