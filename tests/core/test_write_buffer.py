"""Unit tests for the differential write buffer."""

import pytest

from repro.core.differential import Differential
from repro.core.write_buffer import BufferFullError, DifferentialWriteBuffer
from repro.ftl.base import ChangeRun


def _diff(pid, ts=1, nbytes=10):
    return Differential(pid, ts, (ChangeRun(0, b"x" * nbytes),))


@pytest.fixture
def buf():
    return DifferentialWriteBuffer(capacity=128)


class TestSpaceAccounting:
    def test_empty(self, buf):
        assert buf.is_empty
        assert buf.used == 0
        assert buf.free_space == 128
        assert len(buf) == 0

    def test_put_updates_used(self, buf):
        d = _diff(1)
        buf.put(d)
        assert buf.used == d.size
        assert buf.free_space == 128 - d.size

    def test_replacement_frees_old_space(self, buf):
        buf.put(_diff(1, ts=1, nbytes=30))
        buf.put(_diff(1, ts=2, nbytes=10))
        assert buf.used == _diff(1, nbytes=10).size
        assert len(buf) == 1

    def test_overflow_raises(self, buf):
        buf.put(_diff(1, nbytes=80))
        with pytest.raises(BufferFullError):
            buf.put(_diff(2, nbytes=80))

    def test_replacement_that_grows_too_big(self, buf):
        buf.put(_diff(1, nbytes=40))
        buf.put(_diff(2, nbytes=40))
        # replacing pid 1 with something too large fails after removal
        with pytest.raises(BufferFullError):
            buf.put(_diff(1, nbytes=120))
        assert 1 not in buf  # the old entry was removed first (Figure 7)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DifferentialWriteBuffer(0)


class TestEntryManagement:
    def test_get(self, buf):
        d = _diff(5)
        buf.put(d)
        assert buf.get(5) == d
        assert buf.get(6) is None

    def test_contains(self, buf):
        buf.put(_diff(5))
        assert 5 in buf
        assert 6 not in buf

    def test_remove(self, buf):
        d = _diff(5)
        buf.put(d)
        assert buf.remove(5) == d
        assert buf.remove(5) is None
        assert buf.is_empty

    def test_newest_wins(self, buf):
        buf.put(_diff(1, ts=1))
        buf.put(_diff(1, ts=2))
        assert buf.get(1).timestamp == 2

    def test_drain_returns_in_insertion_order(self, buf):
        buf.put(_diff(3))
        buf.put(_diff(1))
        buf.put(_diff(2))
        assert [d.pid for d in buf.drain()] == [3, 1, 2]
        assert buf.is_empty

    def test_pids(self, buf):
        buf.put(_diff(3))
        buf.put(_diff(1))
        assert set(buf.pids()) == {1, 3}
