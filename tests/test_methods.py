"""Tests for the driver registry / label parsing."""

import pytest

from repro.core.pdl import PdlDriver
from repro.flash.chip import FlashChip
from repro.ftl.ipl import IplDriver
from repro.ftl.ipu import IpuDriver
from repro.ftl.opu import OpuDriver
from repro.methods import (
    PAPER_METHODS,
    PAPER_METHODS_NO_IPU,
    make_method,
    method_labels,
    parse_parallel_label,
)


class TestParallelToken:
    """The ``par`` / ``proc`` tokens: pure parsing (driver behaviour is
    covered by tests/sharding/test_parallel_driver.py and
    tests/sharding/test_process_executor.py)."""

    def test_token_stripped_from_anywhere(self):
        assert parse_parallel_label("PDL (256B) x4 par") == (
            "PDL (256B) x4",
            "thread",
        )
        assert parse_parallel_label("PDL (256B) par x4") == (
            "PDL (256B) x4",
            "thread",
        )
        assert parse_parallel_label("OPU x2") == ("OPU x2", False)

    def test_proc_token(self):
        assert parse_parallel_label("PDL (256B) x8 proc") == (
            "PDL (256B) x8",
            "process",
        )
        assert parse_parallel_label("PDL (256B) proc x8") == (
            "PDL (256B) x8",
            "process",
        )

    def test_modes_are_truthy(self):
        # Callers that treat the mode as a boolean must keep working.
        assert parse_parallel_label("PDL (256B) x4 par")[1]
        assert parse_parallel_label("PDL (256B) x4 proc")[1]
        assert not parse_parallel_label("PDL (256B) x4")[1]

    def test_token_is_word_bounded(self):
        # 'par' / 'proc' inside another word must not trigger.
        assert parse_parallel_label("parquet x2") == ("parquet x2", False)
        assert parse_parallel_label("proctor x2") == ("proctor x2", False)
        assert parse_parallel_label("OPU")[1] is False

    def test_duplicate_token_rejected(self):
        with pytest.raises(ValueError):
            parse_parallel_label("OPU x2 par par")
        with pytest.raises(ValueError):
            parse_parallel_label("OPU x2 proc proc")

    def test_both_tokens_rejected(self):
        with pytest.raises(ValueError):
            parse_parallel_label("PDL (256B) x4 par proc")


class TestLabelParsing:
    def test_opu(self, chip):
        assert isinstance(make_method("OPU", chip), OpuDriver)

    def test_ipu(self, chip):
        assert isinstance(make_method("ipu", chip), IpuDriver)

    def test_pdl_bytes(self, chip):
        driver = make_method("PDL (64B)", chip)
        assert isinstance(driver, PdlDriver)
        assert driver.max_differential_size == 64

    def test_pdl_kilobytes(self, tiny_spec):
        from repro.flash.spec import SAMSUNG_K9L8G08U0M

        chip = FlashChip(SAMSUNG_K9L8G08U0M.scaled(8))
        driver = make_method("PDL (2KB)", chip)
        assert driver.max_differential_size == 2048

    def test_ipl(self, chip):
        driver = make_method("IPL (512B)", chip)
        assert isinstance(driver, IplDriver)
        assert driver.log_region_bytes == 512

    def test_whitespace_and_case_tolerated(self, chip):
        assert isinstance(make_method("  pdl( 64 B )".replace(" ", ""), chip), PdlDriver)
        assert isinstance(make_method("opu", chip), OpuDriver)

    def test_unknown_label(self, chip):
        with pytest.raises(ValueError):
            make_method("LSM (4KB)", chip)
        with pytest.raises(ValueError):
            make_method("PDL", chip)

    def test_kwargs_forwarded(self, chip):
        driver = make_method("PDL (64B)", chip, diff_unit=None)
        assert driver.diff_unit is None


class TestShardedLabels:
    """The ``xN`` suffix builds a ShardedDriver over N chips."""

    def _chips(self, n):
        from repro.flash.spec import TINY_SPEC

        return [FlashChip(TINY_SPEC) for _ in range(n)]

    def test_sharded_pdl(self):
        from repro.sharding.driver import ShardedDriver

        driver = make_method("PDL (64B) x2", self._chips(2))
        assert isinstance(driver, ShardedDriver)
        assert driver.name == "PDL (64B) x2"
        assert all(s.max_differential_size == 64 for s in driver.shards)

    def test_sharded_labels_roundtrip_to_names(self):
        for base in ("PDL (256B)", "OPU", "IPU", "IPL (512B)"):
            driver = make_method(f"{base} x2", self._chips(2))
            assert driver.name == f"{base} x2"

    def test_case_and_whitespace_tolerated(self):
        driver = make_method("  pdl (64 B)  X3 ", self._chips(3))
        assert driver.n_shards == 3

    def test_unknown_base_method_still_rejected(self):
        with pytest.raises(ValueError):
            make_method("LSM (4KB) x2", self._chips(2))

    def test_sequence_of_one_chip_for_plain_label(self):
        driver = make_method("PDL (64B)", self._chips(1))
        assert isinstance(driver, PdlDriver)

    def test_many_chips_for_plain_label_rejected(self):
        from repro.ftl.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_method("PDL (64B)", self._chips(2))


class TestMethodLists:
    def test_paper_methods_complete(self):
        assert set(PAPER_METHODS) == {
            "IPL (18KB)", "IPL (64KB)", "PDL (2KB)", "PDL (256B)", "OPU", "IPU",
        }

    def test_no_ipu_variant(self):
        assert "IPU" not in PAPER_METHODS_NO_IPU
        assert len(PAPER_METHODS_NO_IPU) == 5

    def test_method_labels(self):
        assert method_labels() == list(PAPER_METHODS)
        assert method_labels(include_ipu=False) == list(PAPER_METHODS_NO_IPU)

    def test_labels_roundtrip_to_names(self):
        """Constructed drivers report the exact label they were made from."""
        from repro.flash.spec import SAMSUNG_K9L8G08U0M

        for label in PAPER_METHODS:
            chip = FlashChip(SAMSUNG_K9L8G08U0M.scaled(8))
            assert make_method(label, chip).name == label


class TestGcLabelToken:
    """The ``gc=<policy>`` token: per-driver GC policy from the label."""

    def _chips(self, n):
        from repro.flash.spec import TINY_SPEC

        return [FlashChip(TINY_SPEC) for _ in range(n)]

    def test_parse_gc_label(self):
        from repro.methods import parse_gc_label

        assert parse_gc_label("PDL (256B)") == ("PDL (256B)", None)
        assert parse_gc_label("PDL (256B) x4 gc=cb") == ("PDL (256B) x4", "cb")
        assert parse_gc_label("PDL (256B) gc=cb x4") == ("PDL (256B) x4", "cb")
        assert parse_gc_label("OPU gc=WEAR") == ("OPU", "wear")
        with pytest.raises(ValueError):
            parse_gc_label("PDL (256B) gc=cb gc=wear")

    def test_single_driver_gets_policy(self, chip):
        from repro.ftl.gc import cost_benefit_policy

        driver = make_method("PDL (256B) gc=cb", chip)
        assert driver.gc.policy is cost_benefit_policy
        assert driver.gc.config.policy == "cb"
        assert driver.name == "PDL (256B) gc=cb"

    def test_sharded_label_builds_per_shard_configs(self):
        from repro.ftl.gc import wear_aware_policy  # noqa: F401

        driver = make_method("PDL (64B) x2 gc=wear", self._chips(2))
        for shard in driver.shards:
            assert shard.gc.config.policy == "wear"
        # Fresh policy instance per shard (stateful policies must not share).
        assert driver.shards[0].gc.policy is not driver.shards[1].gc.policy
        assert driver.name == "PDL (64B) gc=wear x2"

    def test_driver_name_roundtrips_through_the_parser(self):
        driver = make_method("PDL (64B) x2 gc=cb", self._chips(2))
        rebuilt = make_method(driver.name, self._chips(2))
        assert rebuilt.name == driver.name

    def test_opu_accepts_gc_token(self, chip):
        driver = make_method("OPU gc=cb", chip)
        assert driver.gc.config.policy == "cb"
        assert driver.name == "OPU gc=cb"

    def test_ipu_and_ipl_reject_gc_token(self, chip):
        from repro.ftl.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_method("IPU gc=cb", chip)
        with pytest.raises(ConfigurationError):
            make_method("IPL (18KB) gc=cb", chip)

    def test_gc_token_conflicts_with_explicit_kwargs(self, chip):
        from repro.ftl.errors import ConfigurationError
        from repro.ftl.gc import GcConfig, greedy_policy

        with pytest.raises(ConfigurationError):
            make_method("PDL (256B) gc=cb", chip, gc_config=GcConfig())
        with pytest.raises(ConfigurationError):
            make_method("PDL (256B) gc=cb", chip, victim_policy=greedy_policy)

    def test_unknown_policy_name_rejected(self, chip):
        from repro.ftl.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown victim policy"):
            make_method("PDL (256B) gc=mystery", chip)

    def test_incremental_config_through_kwargs(self, chip):
        from repro.ftl.gc import GcConfig

        driver = make_method(
            "PDL (256B)", chip, gc_config=GcConfig(incremental_steps=4, hot_cold=True)
        )
        assert driver.gc.config.incremental_steps == 4
        assert driver.gc_config.hot_cold
