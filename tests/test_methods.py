"""Tests for the driver registry / label parsing."""

import pytest

from repro.core.pdl import PdlDriver
from repro.flash.chip import FlashChip
from repro.ftl.ipl import IplDriver
from repro.ftl.ipu import IpuDriver
from repro.ftl.opu import OpuDriver
from repro.methods import (
    PAPER_METHODS,
    PAPER_METHODS_NO_IPU,
    make_method,
    method_labels,
)


class TestLabelParsing:
    def test_opu(self, chip):
        assert isinstance(make_method("OPU", chip), OpuDriver)

    def test_ipu(self, chip):
        assert isinstance(make_method("ipu", chip), IpuDriver)

    def test_pdl_bytes(self, chip):
        driver = make_method("PDL (64B)", chip)
        assert isinstance(driver, PdlDriver)
        assert driver.max_differential_size == 64

    def test_pdl_kilobytes(self, tiny_spec):
        from repro.flash.spec import SAMSUNG_K9L8G08U0M

        chip = FlashChip(SAMSUNG_K9L8G08U0M.scaled(8))
        driver = make_method("PDL (2KB)", chip)
        assert driver.max_differential_size == 2048

    def test_ipl(self, chip):
        driver = make_method("IPL (512B)", chip)
        assert isinstance(driver, IplDriver)
        assert driver.log_region_bytes == 512

    def test_whitespace_and_case_tolerated(self, chip):
        assert isinstance(make_method("  pdl( 64 B )".replace(" ", ""), chip), PdlDriver)
        assert isinstance(make_method("opu", chip), OpuDriver)

    def test_unknown_label(self, chip):
        with pytest.raises(ValueError):
            make_method("LSM (4KB)", chip)
        with pytest.raises(ValueError):
            make_method("PDL", chip)

    def test_kwargs_forwarded(self, chip):
        driver = make_method("PDL (64B)", chip, diff_unit=None)
        assert driver.diff_unit is None


class TestMethodLists:
    def test_paper_methods_complete(self):
        assert set(PAPER_METHODS) == {
            "IPL (18KB)", "IPL (64KB)", "PDL (2KB)", "PDL (256B)", "OPU", "IPU",
        }

    def test_no_ipu_variant(self):
        assert "IPU" not in PAPER_METHODS_NO_IPU
        assert len(PAPER_METHODS_NO_IPU) == 5

    def test_method_labels(self):
        assert method_labels() == list(PAPER_METHODS)
        assert method_labels(include_ipu=False) == list(PAPER_METHODS_NO_IPU)

    def test_labels_roundtrip_to_names(self):
        """Constructed drivers report the exact label they were made from."""
        from repro.flash.spec import SAMSUNG_K9L8G08U0M

        for label in PAPER_METHODS:
            chip = FlashChip(SAMSUNG_K9L8G08U0M.scaled(8))
            assert make_method(label, chip).name == label
