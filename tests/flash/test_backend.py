"""Unit tests for the device-backend layer (memory + file images)."""

import os

import pytest

from repro.flash.backend import (
    FORMAT_VERSION,
    BackendError,
    FileBackend,
    MemoryBackend,
    _address_runs,
)
from repro.flash.chip import FlashChip
from repro.flash.errors import AddressError, ProgramError, SimulatedPowerLoss
from repro.flash.spare import PageType, SpareArea
from repro.flash.spec import TINY_SPEC, FlashSpec

SPEC = FlashSpec(n_blocks=4, pages_per_block=4, page_data_size=64, page_spare_size=16)


def _spare(pid, ts):
    return SpareArea(type=PageType.BASE, pid=pid, timestamp=ts).encode(
        SPEC.page_spare_size
    )


@pytest.fixture(params=["memory", "file"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield MemoryBackend(SPEC)
    else:
        b = FileBackend(tmp_path / "chip.flash", SPEC)
        yield b
        b.close()


class TestBackendContract:
    def test_fresh_backend_is_fully_erased(self, backend):
        for addr in range(SPEC.n_pages):
            assert backend.read_data(addr) is None
            assert backend.read_spare(addr) is None
            assert backend.data_programs(addr) == 0
        for block in range(SPEC.n_blocks):
            assert backend.is_block_erased(block)
            assert backend.erase_count(block) == 0
        assert list(backend.iter_programmed()) == []

    def test_program_read_roundtrip(self, backend):
        data = bytes(range(64))
        backend.program_page(5, data, _spare(1, 10))
        assert backend.read_data(5) == data
        assert backend.read_spare(5) == _spare(1, 10)
        assert backend.data_programs(5) == 1
        assert backend.spare_programs(5) == 1
        assert list(backend.iter_programmed()) == [5]
        assert not backend.is_block_erased(1)

    def test_erase_resets_pages_and_counts_wear(self, backend):
        backend.program_page(4, b"\x00" * 64, _spare(0, 1))
        backend.program_page(5, b"\x11" * 64, _spare(1, 2))
        backend.erase_block(1)
        assert backend.read_data(4) is None
        assert backend.read_spare(5) is None
        assert backend.is_block_erased(1)
        assert backend.erase_count(1) == 1
        backend.erase_block(1)
        assert backend.erase_count(1) == 2

    def test_write_spare_updates_counter(self, backend):
        backend.program_page(0, b"\x00" * 64, _spare(0, 1))
        obsolete = bytearray(_spare(0, 1))
        obsolete[1] = 0x00
        backend.write_spare(0, bytes(obsolete), 2)
        assert backend.spare_programs(0) == 2
        assert backend.read_spare(0) == bytes(obsolete)
        assert backend.data_programs(0) == 1  # untouched

    def test_batched_reads_match_single_reads(self, backend):
        for addr in (0, 2, 3, 9, 10, 11):
            backend.program_page(addr, bytes([addr]) * 64, _spare(addr, addr + 1))
        addrs = list(range(SPEC.n_pages))
        pairs = backend.read_pages(addrs)
        spares = backend.read_spares(addrs)
        for addr, (data, spare), spare_only in zip(addrs, pairs, spares):
            assert data == backend.read_data(addr)
            assert spare == backend.read_spare(addr)
            assert spare_only == backend.read_spare(addr)

    def test_batched_program_matches_single(self, backend):
        items = [
            (addr, bytes([addr + 1]) * 64, _spare(addr, addr + 1))
            for addr in (4, 5, 6, 12)  # contiguous run + a stray
        ]
        backend.program_pages(items)
        for addr, data, spare in items:
            assert backend.read_data(addr) == data
            assert backend.read_spare(addr) == spare
            assert backend.data_programs(addr) == 1

    def test_address_validation(self, backend):
        with pytest.raises(AddressError):
            backend.read_data(SPEC.n_pages)
        with pytest.raises(AddressError):
            backend.erase_block(SPEC.n_blocks)


class TestFileBackendPersistence:
    def test_state_survives_close_and_reopen(self, tmp_path):
        path = tmp_path / "chip.flash"
        b = FileBackend(path, SPEC)
        b.program_page(3, b"\xab" * 64, _spare(7, 42))
        b.erase_block(3)
        b.close()

        b2 = FileBackend.open(path)
        assert b2.read_data(3) == b"\xab" * 64
        assert b2.read_spare(3) == _spare(7, 42)
        assert b2.data_programs(3) == 1
        assert b2.erase_count(3) == 1
        assert b2.spec.n_pages == SPEC.n_pages
        b2.close()

    def test_open_missing_and_create_existing_fail(self, tmp_path):
        with pytest.raises(BackendError):
            FileBackend.open(tmp_path / "nope.flash")
        path = tmp_path / "chip.flash"
        FileBackend.create(path, SPEC).close()
        with pytest.raises(BackendError):
            FileBackend.create(path, SPEC)

    def test_geometry_mismatch_rejected(self, tmp_path):
        path = tmp_path / "chip.flash"
        FileBackend(path, SPEC).close()
        with pytest.raises(BackendError):
            FileBackend.open(path, TINY_SPEC)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "chip.flash"
        path.write_bytes(b"NOTFLASH" + b"\x00" * 100)
        with pytest.raises(BackendError):
            FileBackend.open(path)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "chip.flash"
        FileBackend(path, SPEC).close()
        raw = bytearray(path.read_bytes())
        raw[8] = FORMAT_VERSION + 1
        path.write_bytes(bytes(raw))
        with pytest.raises(BackendError):
            FileBackend.open(path)

    def test_erased_data_region_stays_sparse(self, tmp_path):
        """Erase and creation never write the data region (the counters
        are the truth), so a fresh image's payload is a hole."""
        path = tmp_path / "chip.flash"
        b = FileBackend(path, SPEC)
        b.program_page(0, b"\x00" * 64, _spare(0, 1))
        b.erase_block(0)
        b.close()
        meta_bytes = 64 + 4 * SPEC.n_blocks + 2 * SPEC.n_pages
        assert os.path.getsize(path) > meta_bytes  # logical size is full
        b2 = FileBackend.open(path)
        assert b2.read_data(0) is None
        b2.close()


class TestAddressRuns:
    def test_runs_are_maximal_and_ordered(self):
        assert list(_address_runs([0, 1, 2, 5, 6, 9])) == [(0, 3), (5, 2), (9, 1)]
        assert list(_address_runs([])) == []
        assert list(_address_runs([3])) == [(3, 1)]
        assert list(_address_runs([4, 2, 3])) == [(4, 1), (2, 2)]


class TestChipOverBackends:
    """The chip's policy must be backend-independent."""

    @pytest.fixture(params=["memory", "file"])
    def chip(self, request, tmp_path):
        if request.param == "memory":
            yield FlashChip(SPEC)
        else:
            backend = FileBackend(tmp_path / "chip.flash", SPEC)
            chip = FlashChip(SPEC, backend=backend)
            yield chip
            chip.close()

    def test_nand_overwrite_rule_enforced(self, chip):
        chip.program_page(0, b"\x01" * 64, SpareArea(type=PageType.BASE, pid=0))
        with pytest.raises(ProgramError):
            chip.program_page(0, b"\x02" * 64, SpareArea(type=PageType.BASE, pid=0))

    def test_batched_program_crash_persists_prefix(self, chip):
        chip.crash_after(2)
        items = [
            (addr, bytes([addr + 1]) * 64, SpareArea(type=PageType.BASE, pid=addr))
            for addr in range(4)
        ]
        with pytest.raises(SimulatedPowerLoss):
            chip.program_pages(items)
        # Exactly the two admitted pages are on flash.
        assert chip.peek_data(0) == b"\x01" * 64
        assert chip.peek_data(1) == b"\x02" * 64
        assert chip.is_page_erased(2)
        assert chip.is_page_erased(3)
        assert chip.stats.totals().writes == 2

    def test_batched_duplicate_address_rejected(self, chip):
        spare = SpareArea(type=PageType.BASE, pid=0)
        with pytest.raises(ProgramError):
            chip.program_pages(
                [(0, b"\x01" * 64, spare), (0, b"\x02" * 64, spare)]
            )

    def test_batched_reads_charge_per_page(self, chip):
        spare = SpareArea(type=PageType.BASE, pid=0, timestamp=1)
        chip.program_pages([(a, bytes([a]) * 64, spare) for a in range(3)])
        before = chip.stats.totals().reads
        pages = chip.read_pages([0, 1, 2])
        spares = chip.read_spares(range(SPEC.n_pages))
        assert chip.stats.totals().reads == before + 3 + SPEC.n_pages
        assert [d[:1] for d, _ in pages] == [b"\x00", b"\x01", b"\x02"]
        assert sum(1 for s in spares if not s.is_erased) == 3

    def test_spec_backend_geometry_mismatch_rejected(self, tmp_path):
        backend = FileBackend(tmp_path / "chip.flash", SPEC)
        try:
            with pytest.raises(ValueError):
                FlashChip(TINY_SPEC, backend=backend)
        finally:
            backend.close()
