"""Unit tests for address arithmetic."""

import pytest

from repro.flash.address import (
    PageAddress,
    block_of,
    page_range_of_block,
    split_address,
)
from repro.flash.errors import AddressError


class TestSplit:
    def test_first_page(self, tiny_spec):
        assert split_address(0, tiny_spec) == PageAddress(0, 0)

    def test_mid_page(self, tiny_spec):
        assert split_address(8 * 3 + 5, tiny_spec) == PageAddress(3, 5)

    def test_last_page(self, tiny_spec):
        assert split_address(tiny_spec.n_pages - 1, tiny_spec) == PageAddress(15, 7)

    def test_out_of_range(self, tiny_spec):
        with pytest.raises(AddressError):
            split_address(tiny_spec.n_pages, tiny_spec)
        with pytest.raises(AddressError):
            split_address(-1, tiny_spec)

    def test_flat_roundtrip(self, tiny_spec):
        for addr in range(tiny_spec.n_pages):
            assert split_address(addr, tiny_spec).flat(tiny_spec) == addr


class TestBlockOf:
    def test_block_of(self, tiny_spec):
        assert block_of(0, tiny_spec) == 0
        assert block_of(7, tiny_spec) == 0
        assert block_of(8, tiny_spec) == 1

    def test_block_of_bounds(self, tiny_spec):
        with pytest.raises(AddressError):
            block_of(tiny_spec.n_pages, tiny_spec)


class TestPageRange:
    def test_range_covers_block(self, tiny_spec):
        assert list(page_range_of_block(2, tiny_spec)) == list(range(16, 24))

    def test_range_bounds(self, tiny_spec):
        with pytest.raises(AddressError):
            page_range_of_block(16, tiny_spec)
