"""Unit tests for the spare-area codec."""

import pytest

from repro.flash.spare import (
    HEADER_SIZE,
    NO_PID,
    NO_TS,
    PageType,
    SpareArea,
    erased_spare,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "spare",
        [
            SpareArea(type=PageType.BASE, pid=0, timestamp=0),
            SpareArea(type=PageType.BASE, pid=12345, timestamp=999),
            SpareArea(type=PageType.DIFFERENTIAL, timestamp=7),
            SpareArea(type=PageType.DATA, pid=42),
            SpareArea(type=PageType.LOG),
            SpareArea(type=PageType.CHECKPOINT, pid=1, timestamp=2),
            SpareArea(type=PageType.BASE, obsolete=True, pid=9, timestamp=8),
        ],
    )
    def test_encode_decode(self, spare):
        assert SpareArea.decode(spare.encode(64)) == spare

    def test_max_pid_and_ts(self):
        spare = SpareArea(type=PageType.BASE, pid=NO_PID - 1, timestamp=NO_TS - 1)
        assert SpareArea.decode(spare.encode(64)) == spare

    def test_none_fields_survive(self):
        spare = SpareArea(type=PageType.DIFFERENTIAL)
        decoded = SpareArea.decode(spare.encode(16))
        assert decoded.pid is None
        assert decoded.timestamp is None


class TestErasedSemantics:
    def test_erased_spare_is_all_ones(self):
        assert erased_spare(64) == b"\xff" * 64

    def test_erased_decodes_as_erased(self):
        decoded = SpareArea.decode(erased_spare(64))
        assert decoded.type is PageType.ERASED
        assert decoded.is_erased
        assert not decoded.obsolete
        assert decoded.pid is None
        assert decoded.timestamp is None

    def test_unknown_type_byte_decodes_erased(self):
        raw = bytearray(erased_spare(64))
        raw[0] = 0x77
        assert SpareArea.decode(bytes(raw)).type is PageType.ERASED


class TestObsolete:
    def test_as_obsolete_sets_flag(self):
        spare = SpareArea(type=PageType.BASE, pid=1, timestamp=2)
        assert spare.as_obsolete().obsolete

    def test_as_obsolete_is_bit_clearing(self):
        """Re-encoding an obsoleted spare only clears bits (NAND-legal)."""
        spare = SpareArea(type=PageType.BASE, pid=1, timestamp=2)
        before = int.from_bytes(spare.encode(64), "little")
        after = int.from_bytes(spare.as_obsolete().encode(64), "little")
        assert before & after == after

    def test_validity_flags(self):
        live = SpareArea(type=PageType.BASE, pid=1)
        dead = live.as_obsolete()
        assert live.is_valid and not dead.is_valid
        assert not SpareArea().is_valid  # erased is not "valid data"


class TestErrors:
    def test_encode_needs_room(self):
        with pytest.raises(ValueError):
            SpareArea().encode(HEADER_SIZE - 1)

    def test_decode_needs_header(self):
        with pytest.raises(ValueError):
            SpareArea.decode(b"\xff" * (HEADER_SIZE - 1))

    def test_pid_out_of_range(self):
        with pytest.raises(ValueError):
            SpareArea(type=PageType.BASE, pid=1 << 33).encode(64)

    def test_ts_out_of_range(self):
        with pytest.raises(ValueError):
            SpareArea(type=PageType.BASE, timestamp=1 << 65).encode(64)

    def test_padding_is_erased(self):
        encoded = SpareArea(type=PageType.BASE, pid=1).encode(64)
        assert encoded[HEADER_SIZE:] == b"\xff" * (64 - HEADER_SIZE)
