"""Unit tests for the spare-area codec."""

import pytest

from repro.flash.spare import (
    CHECKSUM_HEADER_SIZE,
    HEADER_SIZE,
    NO_CHECKSUM,
    NO_PID,
    NO_TS,
    PageType,
    SpareArea,
    data_checksum,
    erased_spare,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "spare",
        [
            SpareArea(type=PageType.BASE, pid=0, timestamp=0),
            SpareArea(type=PageType.BASE, pid=12345, timestamp=999),
            SpareArea(type=PageType.DIFFERENTIAL, timestamp=7),
            SpareArea(type=PageType.DATA, pid=42),
            SpareArea(type=PageType.LOG),
            SpareArea(type=PageType.CHECKPOINT, pid=1, timestamp=2),
            SpareArea(type=PageType.BASE, obsolete=True, pid=9, timestamp=8),
        ],
    )
    def test_encode_decode(self, spare):
        assert SpareArea.decode(spare.encode(64)) == spare

    def test_max_pid_and_ts(self):
        spare = SpareArea(type=PageType.BASE, pid=NO_PID - 1, timestamp=NO_TS - 1)
        assert SpareArea.decode(spare.encode(64)) == spare

    def test_none_fields_survive(self):
        spare = SpareArea(type=PageType.DIFFERENTIAL)
        decoded = SpareArea.decode(spare.encode(16))
        assert decoded.pid is None
        assert decoded.timestamp is None


class TestErasedSemantics:
    def test_erased_spare_is_all_ones(self):
        assert erased_spare(64) == b"\xff" * 64

    def test_erased_decodes_as_erased(self):
        decoded = SpareArea.decode(erased_spare(64))
        assert decoded.type is PageType.ERASED
        assert decoded.is_erased
        assert not decoded.obsolete
        assert decoded.pid is None
        assert decoded.timestamp is None

    def test_unknown_type_byte_decodes_corrupt(self):
        """A damaged type byte must not masquerade as an erased page —
        recovery would re-allocate over it (the old behaviour)."""
        raw = bytearray(erased_spare(64))
        raw[0] = 0x77
        decoded = SpareArea.decode(bytes(raw))
        assert decoded.type is PageType.CORRUPT
        assert decoded.is_corrupt
        assert not decoded.is_erased
        assert not decoded.is_valid


class TestObsolete:
    def test_as_obsolete_sets_flag(self):
        spare = SpareArea(type=PageType.BASE, pid=1, timestamp=2)
        assert spare.as_obsolete().obsolete

    def test_as_obsolete_is_bit_clearing(self):
        """Re-encoding an obsoleted spare only clears bits (NAND-legal)."""
        spare = SpareArea(type=PageType.BASE, pid=1, timestamp=2)
        before = int.from_bytes(spare.encode(64), "little")
        after = int.from_bytes(spare.as_obsolete().encode(64), "little")
        assert before & after == after

    def test_validity_flags(self):
        live = SpareArea(type=PageType.BASE, pid=1)
        dead = live.as_obsolete()
        assert live.is_valid and not dead.is_valid
        assert not SpareArea().is_valid  # erased is not "valid data"


class TestErrors:
    def test_encode_needs_room(self):
        with pytest.raises(ValueError):
            SpareArea().encode(HEADER_SIZE - 1)

    def test_decode_needs_header(self):
        with pytest.raises(ValueError):
            SpareArea.decode(b"\xff" * (HEADER_SIZE - 1))

    def test_pid_out_of_range(self):
        with pytest.raises(ValueError):
            SpareArea(type=PageType.BASE, pid=1 << 33).encode(64)

    def test_ts_out_of_range(self):
        with pytest.raises(ValueError):
            SpareArea(type=PageType.BASE, timestamp=1 << 65).encode(64)

    def test_padding_is_erased(self):
        encoded = SpareArea(type=PageType.BASE, pid=1).encode(64)
        assert encoded[CHECKSUM_HEADER_SIZE:] == b"\xff" * (64 - CHECKSUM_HEADER_SIZE)


class TestChecksum:
    def test_roundtrip(self):
        spare = SpareArea(type=PageType.BASE, pid=3, timestamp=9, checksum=0xDEADBEEF)
        decoded = SpareArea.decode(spare.encode(64))
        assert decoded.checksum == 0xDEADBEEF
        assert decoded == spare

    def test_absent_checksum_encodes_sentinel(self):
        encoded = SpareArea(type=PageType.BASE, pid=1).encode(64)
        slot = encoded[HEADER_SIZE:CHECKSUM_HEADER_SIZE]
        assert slot == b"\xff" * 4  # NO_CHECKSUM: the erased state
        assert SpareArea.decode(encoded).checksum is None

    def test_small_spare_drops_checksum(self):
        """A 16-byte spare (pre-checksum layout) has no room for the CRC;
        encode drops it, decode yields None — the compatibility story."""
        spare = SpareArea(type=PageType.BASE, pid=1, checksum=123)
        encoded = spare.encode(HEADER_SIZE)
        assert len(encoded) == HEADER_SIZE
        assert SpareArea.decode(encoded).checksum is None

    def test_with_checksum(self):
        spare = SpareArea(type=PageType.BASE, pid=1, timestamp=2)
        stamped = spare.with_checksum(77)
        assert stamped.checksum == 77
        assert (stamped.type, stamped.pid, stamped.timestamp) == (
            spare.type, spare.pid, spare.timestamp,
        )

    def test_as_obsolete_preserves_checksum(self):
        spare = SpareArea(type=PageType.BASE, pid=1, timestamp=2, checksum=55)
        assert spare.as_obsolete().checksum == 55

    def test_data_checksum_never_returns_sentinel(self):
        assert data_checksum(b"") != NO_CHECKSUM
        assert 0 <= data_checksum(b"abc") < NO_CHECKSUM

    def test_checksum_out_of_range(self):
        with pytest.raises(ValueError):
            SpareArea(type=PageType.BASE, checksum=1 << 33).encode(64)
