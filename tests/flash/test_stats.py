"""Unit tests for phase accounting and snapshots."""

import pytest

from repro.flash.stats import GC, READ_STEP, WRITE_STEP, FlashStats, OpCounts


@pytest.fixture
def stats() -> FlashStats:
    return FlashStats(n_blocks=4, t_read_us=10.0, t_write_us=100.0, t_erase_us=1000.0)


class TestPhases:
    def test_default_phase(self, stats):
        stats.record_read()
        assert stats.of_phase("unattributed").reads == 1

    def test_named_phase(self, stats):
        with stats.phase(READ_STEP):
            stats.record_read()
        assert stats.of_phase(READ_STEP).reads == 1
        assert stats.of_phase(WRITE_STEP).reads == 0

    def test_nested_phase_charges_innermost(self, stats):
        with stats.phase(WRITE_STEP):
            stats.record_write()
            with stats.phase(GC):
                stats.record_erase(0)
            stats.record_write()
        assert stats.of_phase(WRITE_STEP).writes == 2
        assert stats.of_phase(GC).erases == 1
        assert stats.of_phase(WRITE_STEP).erases == 0

    def test_phase_restored_after_exception(self, stats):
        with pytest.raises(RuntimeError):
            with stats.phase(GC):
                raise RuntimeError()
        assert stats.current_phase == "unattributed"


class TestTimeAccounting:
    def test_time_per_op(self, stats):
        stats.record_read()
        stats.record_write()
        stats.record_erase(1)
        assert stats.total_time_us == 10.0 + 100.0 + 1000.0

    def test_per_block_wear(self, stats):
        stats.record_erase(2)
        stats.record_erase(2)
        stats.record_erase(3)
        assert stats.block_erases == [0, 0, 2, 1]
        assert stats.total_erases == 3


class TestSnapshots:
    def test_delta_isolates_window(self, stats):
        with stats.phase(WRITE_STEP):
            stats.record_write()
        snap = stats.snapshot()
        with stats.phase(WRITE_STEP):
            stats.record_write()
            stats.record_write()
        delta = stats.delta_since(snap)
        assert delta.of_phase(WRITE_STEP).writes == 2
        assert stats.of_phase(WRITE_STEP).writes == 3

    def test_delta_block_erases(self, stats):
        stats.record_erase(0)
        snap = stats.snapshot()
        stats.record_erase(0)
        stats.record_erase(1)
        delta = stats.delta_since(snap)
        assert delta.block_erases == [1, 1, 0, 0]
        assert delta.max_block_erases() == 1

    def test_snapshot_is_frozen(self, stats):
        snap = stats.snapshot()
        stats.record_read()
        assert snap.totals().reads == 0

    def test_time_of_sums_phases(self, stats):
        with stats.phase(WRITE_STEP):
            stats.record_write()
        with stats.phase(GC):
            stats.record_erase(0)
        snap = stats.snapshot()
        assert snap.time_of(WRITE_STEP, GC) == 100.0 + 1000.0

    def test_reset(self, stats):
        stats.record_read()
        stats.record_erase(0)
        stats.reset()
        assert stats.total_time_us == 0
        assert stats.block_erases == [0, 0, 0, 0]


class TestOpCounts:
    def test_add_sub(self):
        a = OpCounts(reads=2, writes=1, erases=0, time_us=30.0)
        b = OpCounts(reads=1, writes=1, erases=1, time_us=20.0)
        assert a.add(b).reads == 3
        assert a.add(b).time_us == 50.0
        assert a.sub(b).reads == 1
        assert a.sub(b).time_us == 10.0

    def test_total_ops(self):
        assert OpCounts(reads=1, writes=2, erases=3).total_ops == 6

    def test_copy_is_independent(self):
        a = OpCounts(reads=1)
        b = a.copy()
        b.reads = 9
        assert a.reads == 1
