"""Unit tests for phase accounting and snapshots."""

import pytest

from repro.flash.stats import GC, READ_STEP, WRITE_STEP, FlashStats, OpCounts


@pytest.fixture
def stats() -> FlashStats:
    return FlashStats(n_blocks=4, t_read_us=10.0, t_write_us=100.0, t_erase_us=1000.0)


class TestPhases:
    def test_default_phase(self, stats):
        stats.record_read()
        assert stats.of_phase("unattributed").reads == 1

    def test_named_phase(self, stats):
        with stats.phase(READ_STEP):
            stats.record_read()
        assert stats.of_phase(READ_STEP).reads == 1
        assert stats.of_phase(WRITE_STEP).reads == 0

    def test_nested_phase_charges_innermost(self, stats):
        with stats.phase(WRITE_STEP):
            stats.record_write()
            with stats.phase(GC):
                stats.record_erase(0)
            stats.record_write()
        assert stats.of_phase(WRITE_STEP).writes == 2
        assert stats.of_phase(GC).erases == 1
        assert stats.of_phase(WRITE_STEP).erases == 0

    def test_phase_restored_after_exception(self, stats):
        with pytest.raises(RuntimeError):
            with stats.phase(GC):
                raise RuntimeError()
        assert stats.current_phase == "unattributed"


class TestTimeAccounting:
    def test_time_per_op(self, stats):
        stats.record_read()
        stats.record_write()
        stats.record_erase(1)
        assert stats.total_time_us == 10.0 + 100.0 + 1000.0

    def test_per_block_wear(self, stats):
        stats.record_erase(2)
        stats.record_erase(2)
        stats.record_erase(3)
        assert stats.block_erases == [0, 0, 2, 1]
        assert stats.total_erases == 3


class TestSnapshots:
    def test_delta_isolates_window(self, stats):
        with stats.phase(WRITE_STEP):
            stats.record_write()
        snap = stats.snapshot()
        with stats.phase(WRITE_STEP):
            stats.record_write()
            stats.record_write()
        delta = stats.delta_since(snap)
        assert delta.of_phase(WRITE_STEP).writes == 2
        assert stats.of_phase(WRITE_STEP).writes == 3

    def test_delta_block_erases(self, stats):
        stats.record_erase(0)
        snap = stats.snapshot()
        stats.record_erase(0)
        stats.record_erase(1)
        delta = stats.delta_since(snap)
        assert delta.block_erases == [1, 1, 0, 0]
        assert delta.max_block_erases() == 1

    def test_snapshot_is_frozen(self, stats):
        snap = stats.snapshot()
        stats.record_read()
        assert snap.totals().reads == 0

    def test_time_of_sums_phases(self, stats):
        with stats.phase(WRITE_STEP):
            stats.record_write()
        with stats.phase(GC):
            stats.record_erase(0)
        snap = stats.snapshot()
        assert snap.time_of(WRITE_STEP, GC) == 100.0 + 1000.0

    def test_reset(self, stats):
        stats.record_read()
        stats.record_erase(0)
        stats.reset()
        assert stats.total_time_us == 0
        assert stats.block_erases == [0, 0, 0, 0]


class TestOpCounts:
    def test_add_sub(self):
        a = OpCounts(reads=2, writes=1, erases=0, time_us=30.0)
        b = OpCounts(reads=1, writes=1, erases=1, time_us=20.0)
        assert a.add(b).reads == 3
        assert a.add(b).time_us == 50.0
        assert a.sub(b).reads == 1
        assert a.sub(b).time_us == 10.0

    def test_total_ops(self):
        assert OpCounts(reads=1, writes=2, erases=3).total_ops == 6

    def test_copy_is_independent(self):
        a = OpCounts(reads=1)
        b = a.copy()
        b.reads = 9
        assert a.reads == 1


class TestWriteStalls:
    def test_percentile_nearest_rank(self, stats):
        for us in (0.0, 0.0, 0.0, 100.0, 1000.0):
            stats.record_write_stall(us)
        assert stats.write_stall_percentile(50) == 0.0
        assert stats.write_stall_percentile(80) == 100.0
        assert stats.write_stall_percentile(99) == 1000.0
        assert stats.write_stall_percentile(100) == 1000.0
        assert stats.max_write_stall_us == 1000.0

    def test_empty_and_invalid_percentiles(self, stats):
        assert stats.write_stall_percentile(99) == 0.0
        stats.record_write_stall(5.0)
        with pytest.raises(ValueError):
            stats.write_stall_percentile(0)
        with pytest.raises(ValueError):
            stats.write_stall_percentile(101)

    def test_gc_step_counters_and_reset(self, stats):
        stats.record_gc_step(3)
        stats.record_gc_step(0)
        stats.record_write_stall(7.0)
        assert stats.gc_steps == 2
        assert stats.gc_step_pages == 3
        stats.reset()
        assert stats.gc_steps == 0
        assert stats.gc_step_pages == 0
        assert stats.write_stall_us == []


class TestPhasePartition:
    """Regression (GC phase accounting audit): every device operation of
    a GC-heavy PDL workload is charged to exactly one phase — the
    per-phase totals must equal independently counted raw device ops,
    and write_step + gc + load must partition the mutating traffic."""

    def test_phase_totals_equal_raw_device_ops(self):
        import random

        from repro.core.pdl import PdlDriver
        from repro.flash.chip import FlashChip
        from repro.flash.spec import FlashSpec
        from repro.ftl.gc import GcConfig

        spec = FlashSpec(
            n_blocks=12, pages_per_block=8, page_data_size=256, page_spare_size=16
        )
        chip = FlashChip(spec)
        raw = {"reads": 0, "writes": 0, "erases": 0}

        def count_mutating(op):
            raw["erases" if op == "erase_block" else "writes"] += 1

        chip.on_operation(count_mutating)
        # Reads have no observer hook; wrap the chip's read entry points.
        for name, weight in (
            ("read_page", lambda a: 1),
            ("read_spare", lambda a: 1),
            ("read_pages", len),
            ("read_spares", len),
        ):
            original = getattr(chip, name)

            def wrapped(arg, _original=original, _weight=weight):
                raw["reads"] += _weight(arg)
                return _original(arg)

            setattr(chip, name, wrapped)

        driver = PdlDriver(
            chip,
            max_differential_size=64,
            gc_config=GcConfig(incremental_steps=2, hot_cold=True),
        )
        rng = random.Random(5)
        images = {pid: rng.randbytes(256) for pid in range(10)}
        for pid, data in images.items():
            driver.load_page(pid, data)
        for i in range(400):
            pid = rng.randrange(10)
            image = bytearray(images[pid])
            offset = rng.randrange(200)
            image[offset : offset + 40] = rng.randbytes(40)
            images[pid] = bytes(image)
            driver.write_page(pid, images[pid])
            if i % 16 == 15:
                driver.flush()
            if i % 32 == 31:
                driver.read_page(rng.randrange(10))

        assert driver.gc.collections > 0, "workload never exercised GC"
        assert chip.stats.gc_steps > 0, "workload never stepped incrementally"
        totals = chip.stats.totals()
        assert totals.reads == raw["reads"]
        assert totals.writes == raw["writes"]
        assert totals.erases == raw["erases"]
        # The write path is partitioned between write_step and gc, with
        # nothing falling into the default (unattributed) phase.
        assert set(chip.stats.phases) <= {"load", WRITE_STEP, READ_STEP, GC}
        assert chip.stats.of_phase(GC).erases == totals.erases
        by_phase = sum(counts.total_ops for counts in chip.stats.phases.values())
        assert by_phase == totals.total_ops
