"""Unit tests for FlashSpec geometry, validation, and presets."""

import pytest

from repro.flash.spec import (
    BENCH_SPEC,
    BENCH_SPEC_8K,
    SAMSUNG_K9L8G08U0M,
    TINY_SPEC,
    FlashSpec,
    spec_for_database,
)


class TestTable1Values:
    """The default spec must match the paper's Table 1 exactly."""

    def test_block_count(self):
        assert SAMSUNG_K9L8G08U0M.n_blocks == 32768

    def test_pages_per_block(self):
        assert SAMSUNG_K9L8G08U0M.pages_per_block == 64

    def test_page_size(self):
        assert SAMSUNG_K9L8G08U0M.page_size == 2112

    def test_data_area(self):
        assert SAMSUNG_K9L8G08U0M.page_data_size == 2048

    def test_spare_area(self):
        assert SAMSUNG_K9L8G08U0M.page_spare_size == 64

    def test_block_size(self):
        assert SAMSUNG_K9L8G08U0M.block_size == 135_168

    def test_timings(self):
        assert SAMSUNG_K9L8G08U0M.t_read_us == 110.0
        assert SAMSUNG_K9L8G08U0M.t_write_us == 1010.0
        assert SAMSUNG_K9L8G08U0M.t_erase_us == 1500.0

    def test_read_write_ratio_matches_paper(self):
        """The paper: read is 9.2x faster than write."""
        ratio = SAMSUNG_K9L8G08U0M.t_write_us / SAMSUNG_K9L8G08U0M.t_read_us
        assert ratio == pytest.approx(9.18, abs=0.01)

    def test_endurance(self):
        assert SAMSUNG_K9L8G08U0M.erase_endurance == 100_000


class TestDerivedGeometry:
    def test_n_pages(self, tiny_spec):
        assert tiny_spec.n_pages == 16 * 8

    def test_data_capacity(self, tiny_spec):
        assert tiny_spec.data_capacity == 16 * 8 * 256

    def test_block_data_size(self, tiny_spec):
        assert tiny_spec.block_data_size == 8 * 256

    def test_8k_preset_page(self):
        assert BENCH_SPEC_8K.page_data_size == 8192

    def test_bench_preset_shares_geometry(self):
        assert BENCH_SPEC.pages_per_block == SAMSUNG_K9L8G08U0M.pages_per_block
        assert BENCH_SPEC.page_data_size == SAMSUNG_K9L8G08U0M.page_data_size


class TestValidation:
    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            FlashSpec(n_blocks=0)

    def test_rejects_zero_pages(self):
        with pytest.raises(ValueError):
            FlashSpec(pages_per_block=0)

    def test_rejects_tiny_spare(self):
        with pytest.raises(ValueError):
            FlashSpec(page_spare_size=8)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            FlashSpec(t_read_us=-1.0)


class TestModifiers:
    def test_with_timings_replaces_selected(self):
        spec = SAMSUNG_K9L8G08U0M.with_timings(t_read_us=10.0)
        assert spec.t_read_us == 10.0
        assert spec.t_write_us == 1010.0

    def test_with_timings_keeps_original(self):
        SAMSUNG_K9L8G08U0M.with_timings(t_read_us=10.0)
        assert SAMSUNG_K9L8G08U0M.t_read_us == 110.0

    def test_scaled_changes_only_blocks(self):
        spec = SAMSUNG_K9L8G08U0M.scaled(100)
        assert spec.n_blocks == 100
        assert spec.page_data_size == 2048

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SAMSUNG_K9L8G08U0M.n_blocks = 1  # type: ignore[misc]


class TestSpecForDatabase:
    def test_utilization_honoured(self):
        spec = spec_for_database(1024, utilization=0.25)
        assert spec.n_pages >= 4096

    def test_has_headroom_at_full_utilization(self):
        spec = spec_for_database(640, utilization=1.0)
        assert spec.n_pages >= 640 + 2 * spec.pages_per_block

    def test_rejects_bad_utilization(self):
        with pytest.raises(ValueError):
            spec_for_database(100, utilization=0.0)

    def test_rejects_bad_pages(self):
        with pytest.raises(ValueError):
            spec_for_database(0)

    def test_preserves_base_geometry(self):
        spec = spec_for_database(100, base=TINY_SPEC)
        assert spec.page_data_size == TINY_SPEC.page_data_size
        assert spec.pages_per_block == TINY_SPEC.pages_per_block
