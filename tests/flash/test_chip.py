"""Unit tests for the NAND chip emulator: semantics, costs, faults."""

import pytest

from repro.flash.chip import FlashChip
from repro.flash.errors import (
    AddressError,
    CrashError,
    ProgramError,
    SpareProgramError,
    WearOutError,
)
from repro.flash.spare import PageType, SpareArea
from repro.flash.spec import FlashSpec


def _page(chip: FlashChip, fill: int = 0xAB) -> bytes:
    return bytes([fill]) * chip.spec.page_data_size


class TestReadSemantics:
    def test_erased_page_reads_all_ones(self, chip):
        data, spare = chip.read_page(0)
        assert data == b"\xff" * chip.spec.page_data_size
        assert spare.is_erased

    def test_program_then_read(self, chip):
        chip.program_page(3, _page(chip), SpareArea(type=PageType.DATA, pid=7))
        data, spare = chip.read_page(3)
        assert data == _page(chip)
        assert spare.pid == 7
        assert spare.type is PageType.DATA

    def test_short_data_padded_with_ones(self, chip):
        chip.program_page(0, b"\x00\x01", SpareArea(type=PageType.DATA))
        data, _ = chip.read_page(0)
        assert data[:2] == b"\x00\x01"
        assert data[2:] == b"\xff" * (chip.spec.page_data_size - 2)

    def test_read_spare_only(self, chip):
        chip.program_page(1, _page(chip), SpareArea(type=PageType.BASE, pid=5))
        assert chip.read_spare(1).pid == 5

    def test_out_of_range_read(self, chip):
        with pytest.raises(AddressError):
            chip.read_page(chip.spec.n_pages)


class TestProgramSemantics:
    def test_reprogram_without_erase_fails(self, chip):
        chip.program_page(0, _page(chip), SpareArea(type=PageType.DATA))
        with pytest.raises(ProgramError):
            chip.program_page(0, _page(chip), SpareArea(type=PageType.DATA))

    def test_oversized_data_fails(self, chip):
        with pytest.raises(ProgramError):
            chip.program_page(
                0, b"\x00" * (chip.spec.page_data_size + 1), SpareArea()
            )

    def test_erase_then_reprogram(self, chip):
        chip.program_page(0, _page(chip, 0x01), SpareArea(type=PageType.DATA))
        chip.erase_block(0)
        chip.program_page(0, _page(chip, 0x02), SpareArea(type=PageType.DATA))
        assert chip.read_page(0)[0] == _page(chip, 0x02)

    def test_erase_resets_whole_block(self, chip):
        for page in range(chip.spec.pages_per_block):
            chip.program_page(page, _page(chip), SpareArea(type=PageType.DATA))
        chip.erase_block(0)
        assert chip.is_block_erased(0)

    def test_erase_leaves_other_blocks(self, chip):
        other = chip.spec.pages_per_block  # first page of block 1
        chip.program_page(other, _page(chip), SpareArea(type=PageType.DATA))
        chip.erase_block(0)
        assert not chip.is_page_erased(other)


class TestPartialProgram:
    def test_partial_fills_slice(self, chip):
        chip.program_partial(0, 16, b"\x01\x02", SpareArea(type=PageType.LOG))
        data, spare = chip.read_page(0)
        assert data[16:18] == b"\x01\x02"
        assert data[:16] == b"\xff" * 16
        assert spare.type is PageType.LOG

    def test_partial_over_programmed_region_fails(self, chip):
        chip.program_partial(0, 0, b"\x01")
        with pytest.raises(ProgramError):
            chip.program_partial(0, 0, b"\x02")

    def test_partial_budget_enforced(self):
        spec = FlashSpec(
            n_blocks=4, pages_per_block=4, page_data_size=256,
            page_spare_size=16, max_log_page_programs=2,
        )
        chip = FlashChip(spec)
        chip.program_partial(0, 0, b"\x01")
        chip.program_partial(0, 8, b"\x02")
        with pytest.raises(ProgramError):
            chip.program_partial(0, 16, b"\x03")

    def test_partial_outside_page_fails(self, chip):
        with pytest.raises(ProgramError):
            chip.program_partial(0, chip.spec.page_data_size - 1, b"\x00\x00")


class TestObsoleteMarking:
    def test_mark_obsolete(self, chip):
        chip.program_page(0, _page(chip), SpareArea(type=PageType.BASE, pid=1))
        chip.mark_obsolete(0)
        spare = chip.read_spare(0)
        assert spare.obsolete
        assert spare.pid == 1  # other fields preserved

    def test_mark_erased_page_fails(self, chip):
        with pytest.raises(ProgramError):
            chip.mark_obsolete(0)

    def test_spare_program_budget(self, chip):
        chip.program_page(0, _page(chip), SpareArea(type=PageType.BASE, pid=1))
        for _ in range(chip.spec.max_spare_programs - 1):
            chip.mark_obsolete(0)  # idempotent bit-clear, counts programs
        with pytest.raises(SpareProgramError):
            chip.mark_obsolete(0)

    def test_spare_reprogram_rejects_bit_setting(self, chip):
        chip.program_page(
            0, _page(chip), SpareArea(type=PageType.BASE, pid=1, timestamp=0)
        )
        with pytest.raises(SpareProgramError):
            # timestamp 0 has all ts bits cleared; None would set them to 1
            chip.program_spare(0, SpareArea(type=PageType.BASE, pid=1))


class TestCostAccounting:
    def test_read_cost(self, chip):
        chip.read_page(0)
        chip.read_spare(1)
        assert chip.stats.totals().reads == 2
        assert chip.clock_us == 2 * chip.spec.t_read_us

    def test_write_cost(self, chip):
        chip.program_page(0, _page(chip), SpareArea(type=PageType.DATA))
        chip.program_partial(1, 0, b"\x00")
        chip.mark_obsolete(0)
        assert chip.stats.totals().writes == 3
        assert chip.clock_us == 3 * chip.spec.t_write_us

    def test_erase_cost_and_wear(self, chip):
        chip.erase_block(2)
        chip.erase_block(2)
        assert chip.stats.totals().erases == 2
        assert chip.erase_count(2) == 2
        assert chip.stats.block_erases[2] == 2
        assert chip.clock_us == 2 * chip.spec.t_erase_us

    def test_clock_survives_stats_reset(self, chip):
        chip.read_page(0)
        chip.stats.reset()
        assert chip.stats.total_time_us == 0
        assert chip.clock_us == chip.spec.t_read_us

    def test_peek_is_free(self, chip):
        chip.program_page(0, _page(chip), SpareArea(type=PageType.DATA))
        before = chip.clock_us
        chip.peek_data(0)
        chip.peek_spare(0)
        assert chip.clock_us == before


class TestEndurance:
    def test_wearout_enforced_when_enabled(self):
        spec = FlashSpec(
            n_blocks=4, pages_per_block=4, page_data_size=256,
            page_spare_size=16, erase_endurance=3, enforce_endurance=True,
        )
        chip = FlashChip(spec)
        for _ in range(3):
            chip.erase_block(0)
        with pytest.raises(WearOutError):
            chip.erase_block(0)

    def test_wear_counted_but_not_enforced_by_default(self, chip):
        for _ in range(10):
            chip.erase_block(0)
        assert chip.erase_count(0) == 10


class TestCrashInjection:
    def test_crash_fires_before_nth_mutation(self, chip):
        chip.crash_after(1)
        chip.program_page(0, _page(chip), SpareArea(type=PageType.DATA))  # survives
        with pytest.raises(CrashError):
            chip.program_page(1, _page(chip), SpareArea(type=PageType.DATA))
        # the failed operation must not have happened
        assert chip.is_page_erased(1)
        assert not chip.is_page_erased(0)

    def test_crash_zero_fails_immediately(self, chip):
        chip.crash_after(0)
        with pytest.raises(CrashError):
            chip.erase_block(0)

    def test_reads_do_not_consume_countdown(self, chip):
        chip.crash_after(1)
        for _ in range(10):
            chip.read_page(0)
        chip.program_page(0, _page(chip), SpareArea(type=PageType.DATA))
        with pytest.raises(CrashError):
            chip.erase_block(0)

    def test_disarm(self, chip):
        chip.crash_after(0)
        chip.crash_after(None)
        chip.erase_block(0)  # no crash

    def test_crash_is_one_shot(self, chip):
        chip.crash_after(0)
        with pytest.raises(CrashError):
            chip.erase_block(0)
        chip.erase_block(0)  # hook disarmed after firing

    def test_operation_observer(self, chip):
        seen = []
        chip.on_operation(seen.append)
        chip.program_page(0, _page(chip), SpareArea(type=PageType.DATA))
        chip.erase_block(0)
        assert seen == ["program_page", "erase_block"]


class TestIteration:
    def test_iter_programmed_pages(self, chip):
        chip.program_page(3, _page(chip), SpareArea(type=PageType.DATA))
        chip.program_partial(9, 0, b"\x00", SpareArea(type=PageType.LOG))
        assert sorted(chip.iter_programmed_pages()) == [3, 9]


class TestBitsCompatible:
    """The vectorized NAND legality check must agree with the big-int
    path on every input — the numpy fast path is an optimisation, not a
    semantic change."""

    @staticmethod
    def _reference(old, new):
        # The original formulation: one big-int AND over the whole buffer.
        old_int = int.from_bytes(old, "little")
        new_int = int.from_bytes(new, "little")
        return old_int & new_int == new_int

    @pytest.mark.parametrize("size", [1, 16, 127, 128, 129, 256, 2048])
    def test_matches_reference_on_random_pairs(self, size, rng):
        from repro.flash.chip import _bits_compatible

        for _ in range(50):
            old = rng.randbytes(size)
            kind = rng.randrange(3)
            if kind == 0:
                new = rng.randbytes(size)  # usually illegal
            elif kind == 1:
                # Legal program: only clears bits.
                new = bytes(b & rng.randrange(256) for b in old)
            else:
                # Near-legal: clear bits, then set one back somewhere.
                cleared = bytearray(b & rng.randrange(256) for b in old)
                i = rng.randrange(size)
                cleared[i] |= (~old[i]) & 0xFF
                new = bytes(cleared)
            assert _bits_compatible(old, new) == self._reference(old, new), (
                size,
                old.hex(),
                new.hex(),
            )

    def test_accepts_memoryviews_and_bytearrays(self):
        from repro.flash.chip import _bits_compatible

        old = bytes(range(256))
        new = bytes(b & 0x7F for b in old)
        assert _bits_compatible(memoryview(old), bytearray(new))
        assert not _bits_compatible(memoryview(new), bytearray(old))

    def test_erased_accepts_anything(self):
        from repro.flash.chip import _bits_compatible

        erased = b"\xff" * 512
        assert _bits_compatible(erased, bytes(512))
        assert _bits_compatible(erased, erased)
