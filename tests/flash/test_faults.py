"""The device fault injector and the chip's checksum verification."""

import pytest

from repro.flash.backend import (
    FAULT_KINDS,
    FaultInjectionError,
    FaultInjector,
    FileBackend,
    MemoryBackend,
)
from repro.flash.chip import FlashChip
from repro.flash.errors import ChecksumError
from repro.flash.spare import (
    CHECKSUM_HEADER_SIZE,
    PageType,
    SpareArea,
    data_checksum,
)
from repro.flash.spec import FlashSpec

SPEC = FlashSpec(n_blocks=4, pages_per_block=4, page_data_size=64, page_spare_size=32)


def _backend(kind, spec, tmp_path):
    if kind == "memory":
        return MemoryBackend(spec)
    return FileBackend(tmp_path / "chip.flash", spec)


def _chip(tmp_path, kind="memory", seed=0, **chip_kwargs):
    injector = FaultInjector(_backend(kind, SPEC, tmp_path), seed=seed)
    chip = FlashChip(SPEC, backend=injector, **chip_kwargs)
    return injector, chip


def _load(chip, n=6):
    for addr in range(n):
        chip.program_page(
            addr,
            bytes([addr + 1]) * SPEC.page_data_size,
            SpareArea(type=PageType.BASE, pid=addr, timestamp=addr + 1),
        )


@pytest.mark.parametrize("kind", ["memory", "file"])
class TestInjection:
    def test_bit_rot_breaks_checksum(self, tmp_path, kind):
        injector, chip = _chip(tmp_path, kind)
        _load(chip)
        injector.inject("bit_rot", 2)
        with pytest.raises(ChecksumError):
            chip.read_page(2)
        assert chip.stats.checksum_failures == 1
        # Other pages are untouched.
        chip.read_page(1)

    def test_bit_rot_flips_exactly_n_bits(self, tmp_path, kind):
        injector, chip = _chip(tmp_path, kind)
        _load(chip)
        before = injector.inner.read_data(2)
        injector.inject("bit_rot", 2, n_bits=3)
        after = injector.inner.read_data(2)
        flipped = sum(bin(a ^ b).count("1") for a, b in zip(before, after))
        assert flipped == 3

    def test_misdirected_write_is_self_consistent(self, tmp_path, kind):
        """The overwritten page carries the donor's data *and* spare, so
        its checksum verifies — only the mapping layer can catch it."""
        injector, chip = _chip(tmp_path, kind)
        _load(chip)
        injector.inject("misdirected_write", 3, donor=1)
        data, spare = chip.read_page(3)  # verifies: no ChecksumError
        assert data == bytes([2]) * SPEC.page_data_size
        assert spare.pid == 1

    def test_torn_spare_reverts_tail_bytes(self, tmp_path, kind):
        injector, chip = _chip(tmp_path, kind)
        _load(chip)
        injector.inject("torn_spare", 4, tear_at=2)
        raw = injector.inner.read_spare(4)
        assert raw[2:] == b"\xff" * (len(raw) - 2)
        spare = chip.read_spare(4)
        assert spare.pid is None  # the pid field tore away

    def test_default_tear_point_is_inside_header(self, tmp_path, kind):
        injector, chip = _chip(tmp_path, kind)
        _load(chip)
        injector.inject("torn_spare", 0)
        raw = injector.inner.read_spare(0)
        torn_from = len(raw)
        while torn_from > 0 and raw[torn_from - 1] == 0xFF:
            torn_from -= 1
        assert torn_from < CHECKSUM_HEADER_SIZE

    def test_erased_page_rejects_faults(self, tmp_path, kind):
        injector, chip = _chip(tmp_path, kind)
        _load(chip, n=2)
        with pytest.raises(FaultInjectionError):
            injector.inject("bit_rot", 15)
        with pytest.raises(FaultInjectionError):
            injector.inject("torn_spare", 15)

    def test_unknown_kind_rejected(self, tmp_path, kind):
        injector, chip = _chip(tmp_path, kind)
        _load(chip, n=1)
        with pytest.raises(FaultInjectionError):
            injector.inject("cosmic_ray", 0)

    def test_fault_log_and_counters(self, tmp_path, kind):
        injector, chip = _chip(tmp_path, kind)
        _load(chip)
        injector.inject("bit_rot", 0)
        injector.inject("torn_spare", 1)
        assert injector.total_injected == 2
        assert injector.injected["bit_rot"] == 1
        assert injector.injected["torn_spare"] == 1
        assert [entry[0] for entry in injector.fault_log] == ["bit_rot", "torn_spare"]
        assert set(injector.injected) <= set(FAULT_KINDS)


class TestDeterminism:
    def test_same_seed_same_faults(self, tmp_path):
        logs = []
        for run in range(2):
            injector, chip = _chip(tmp_path / str(run), seed=42)
            _load(chip)
            injector.inject("bit_rot", 2)
            injector.inject("torn_spare", 3)
            injector.inject("misdirected_write", 4)
            logs.append(
                (injector.fault_log, injector.inner.read_data(2),
                 injector.inner.read_spare(3), injector.inner.read_data(4))
            )
        assert logs[0] == logs[1]

    def test_different_seed_differs(self, tmp_path):
        datas = []
        for run, seed in enumerate([1, 2]):
            injector, chip = _chip(tmp_path / str(run), seed=seed)
            _load(chip)
            injector.inject("bit_rot", 2, n_bits=4)
            datas.append(injector.inner.read_data(2))
        assert datas[0] != datas[1]


class TestInjectorDelegation:
    def test_chip_behaves_normally_through_injector(self, tmp_path):
        """Until a fault is injected the wrapper is transparent."""
        injector, chip = _chip(tmp_path)
        _load(chip)
        for addr in range(6):
            data, spare = chip.read_page(addr)
            assert data == bytes([addr + 1]) * SPEC.page_data_size
            assert spare.pid == addr
        chip.erase_block(0)
        assert injector.inner.is_block_erased(0)

    def test_mutations_do_not_consume_program_budget(self, tmp_path):
        injector, chip = _chip(tmp_path)
        _load(chip)
        before = injector.inner.spare_programs(1)
        injector.inject("torn_spare", 1)
        assert injector.inner.spare_programs(1) == before
        # The spare program budget is still available for mark_obsolete.
        chip.mark_obsolete(1)


class TestChipVerification:
    def test_verified_read_counts_check(self, tmp_path):
        _injector, chip = _chip(tmp_path)
        _load(chip, n=1)
        chip.read_page(0)
        assert chip.stats.checksum_checks == 1
        assert chip.stats.checksum_failures == 0

    def test_unverified_read_skips_check(self, tmp_path):
        injector, chip = _chip(tmp_path)
        _load(chip, n=1)
        injector.inject("bit_rot", 0)
        data, _spare = chip.read_page(0, verify=False)  # no raise
        assert chip.stats.checksum_checks == 0

    def test_batch_read_verifies_each_page(self, tmp_path):
        injector, chip = _chip(tmp_path)
        _load(chip)
        injector.inject("bit_rot", 3)
        with pytest.raises(ChecksumError):
            chip.read_pages(range(6))
        assert chip.stats.checksum_failures == 1

    def test_checksum_failure_evicts_cached_copy(self, tmp_path):
        injector, chip = _chip(tmp_path, read_cache_pages=4)
        _load(chip, n=2)
        chip.read_page(0)  # populates the cache
        assert 0 in chip.cache
        injector.inject("bit_rot", 0)
        # The cache would happily serve the stale (pre-rot) copy; reads
        # bypassing it must evict on failure so nothing resurrects it.
        chip.cache.invalidate(0)
        with pytest.raises(ChecksumError):
            chip.read_page(0)
        assert 0 not in chip.cache

    def test_unverified_reads_never_populate_cache(self, tmp_path):
        _injector, chip = _chip(tmp_path, read_cache_pages=4)
        _load(chip, n=1)
        chip.read_page(0, verify=False)
        assert 0 not in chip.cache

    def test_pre_checksum_spare_reads_without_verification(self, tmp_path):
        """A 16-byte spare has no checksum slot: reads must not fail."""
        spec = FlashSpec(
            n_blocks=4, pages_per_block=4, page_data_size=64, page_spare_size=16
        )
        chip = FlashChip(spec)
        chip.program_page(
            0, b"\x5a" * 64, SpareArea(type=PageType.BASE, pid=0, timestamp=1)
        )
        data, spare = chip.read_page(0)
        assert spare.checksum is None
        assert chip.stats.checksum_checks == 0

    def test_data_checksum_sentinel_collision_maps_to_zero(self, tmp_path):
        # Any payload hashes somewhere != the NO_CHECKSUM sentinel.
        assert data_checksum(b"anything") != 0xFFFFFFFF
