"""The LRU base-page read cache: hits, misses, invalidation, accounting."""

import pytest

from repro.flash.cache import ReadCache
from repro.flash.chip import FlashChip
from repro.flash.spare import PageType, SpareArea
from repro.flash.spec import FlashSpec

SPEC = FlashSpec(n_blocks=4, pages_per_block=4, page_data_size=64, page_spare_size=16)


def _base(pid, ts=1):
    return SpareArea(type=PageType.BASE, pid=pid, timestamp=ts)


def _loaded_chip(read_cache_pages=2):
    chip = FlashChip(SPEC, read_cache_pages=read_cache_pages)
    for addr in range(4):
        chip.program_page(addr, bytes([addr]) * 64, _base(addr))
    return chip


class TestReadCacheUnit:
    def test_lru_eviction(self):
        cache = ReadCache(2)
        s = _base(0)
        cache.put(0, b"a", s)
        cache.put(1, b"b", s)
        cache.get(0)  # 0 becomes MRU
        cache.put(2, b"c", s)  # evicts 1
        assert 0 in cache and 2 in cache and 1 not in cache

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ReadCache(0)

    def test_hit_miss_bookkeeping(self):
        cache = ReadCache(2)
        cache.put(0, b"a", _base(0))
        assert cache.get(0) is not None and cache.get(1) is None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_clear_resets_bookkeeping(self):
        """Regression: ``clear()`` must reset hit/miss counters along
        with the entries, or hit ratios span unrelated measurement
        windows."""
        cache = ReadCache(2)
        cache.put(0, b"a", _base(0))
        cache.get(0)
        cache.get(9)
        cache.clear()
        assert (cache.hits, cache.misses) == (0, 0)
        assert 0 not in cache
        assert cache.get(0) is None  # counts fresh after the clear
        assert (cache.hits, cache.misses) == (0, 1)

    def test_invalidate_drops_only_target(self):
        cache = ReadCache(4)
        cache.put(0, b"a", _base(0))
        cache.put(1, b"b", _base(1))
        cache.invalidate(0)
        assert 0 not in cache and 1 in cache
        cache.invalidate(0)  # absent: a no-op, not an error

    def test_invalidate_range(self):
        cache = ReadCache(8)
        for addr in range(6):
            cache.put(addr, b"x", _base(addr))
        cache.invalidate_range(2, 5)
        assert sorted(a for a in range(6) if a in cache) == [0, 1, 5]


class TestChipReadCache:
    def test_disabled_by_default(self):
        chip = FlashChip(SPEC)
        assert chip.cache is None
        chip.program_page(0, b"\x00" * 64, _base(0))
        chip.read_page(0)
        assert chip.stats.cache_hits == 0 and chip.stats.cache_misses == 0

    def test_hit_skips_tread_and_is_counted(self):
        chip = _loaded_chip()
        data1, spare1 = chip.read_page(0)  # miss: charged
        reads_after_miss = chip.stats.totals().reads
        clock_after_miss = chip.clock_us
        data2, spare2 = chip.read_page(0)  # hit: free
        assert (data1, spare1) == (data2, spare2)
        assert chip.stats.totals().reads == reads_after_miss
        assert chip.clock_us == clock_after_miss
        assert chip.stats.cache_hits == 1
        assert chip.stats.cache_misses == 1
        assert chip.stats.cache_hit_ratio == 0.5

    def test_results_identical_with_and_without_cache(self):
        plain = FlashChip(SPEC)
        cached = _loaded_chip(read_cache_pages=3)
        for addr in range(4):
            plain.program_page(addr, bytes([addr]) * 64, _base(addr))
        for addr in [0, 1, 0, 2, 3, 0, 1]:
            assert plain.read_page(addr) == cached.read_page(addr)

    def test_program_and_obsolete_invalidate(self):
        chip = _loaded_chip()
        chip.read_page(0)
        chip.mark_obsolete(0)
        _data, spare = chip.read_page(0)
        assert spare.obsolete  # stale cached copy was dropped
        assert chip.stats.cache_misses == 2

    def test_erase_invalidates_whole_block(self):
        chip = _loaded_chip(read_cache_pages=4)
        chip.read_page(0)
        chip.read_page(1)
        chip.erase_block(0)
        data, spare = chip.read_page(0)
        assert spare.is_erased
        assert data == b"\xff" * 64

    def test_only_base_pages_are_admitted(self):
        chip = FlashChip(SPEC, read_cache_pages=4)
        chip.program_page(
            0, b"\x01" * 64, SpareArea(type=PageType.DIFFERENTIAL, timestamp=1)
        )
        chip.program_page(1, b"\x02" * 64, _base(1))
        chip.read_page(0)
        chip.read_page(1)
        assert 0 not in chip.cache
        assert 1 in chip.cache

    def test_stats_reset_clears_cache_counters(self):
        chip = _loaded_chip()
        chip.read_page(0)
        chip.read_page(0)
        chip.stats.reset()
        assert chip.stats.cache_hits == 0
        assert chip.stats.cache_misses == 0


class TestCachedPdlEquivalence:
    def test_pdl_reads_identical_with_cache(self):
        """A cached driver must serve exactly the bytes an uncached one
        does across a write-heavy window (invalidations included)."""
        import random

        from repro.core.pdl import PdlDriver

        spec = FlashSpec(
            n_blocks=8, pages_per_block=8, page_data_size=256, page_spare_size=16
        )
        plain = PdlDriver(FlashChip(spec), max_differential_size=64)
        cached = PdlDriver(
            FlashChip(spec, read_cache_pages=8), max_differential_size=64
        )
        rng = random.Random(7)
        images = {}
        for pid in range(6):
            img = rng.randbytes(256)
            images[pid] = img
            plain.load_page(pid, img)
            cached.load_page(pid, img)
        for _ in range(120):
            pid = rng.randrange(6)
            img = bytearray(images[pid])
            off = rng.randrange(232)
            img[off : off + 24] = rng.randbytes(24)
            images[pid] = bytes(img)
            plain.write_page(pid, images[pid])
            cached.write_page(pid, images[pid])
            check = rng.randrange(6)
            assert plain.read_page(check) == cached.read_page(check) == images[check]
        assert cached.chip.stats.cache_hits > 0


class TestCoherenceUnderRelocation:
    """Satellite regression: after GC relocates pages and erases blocks,
    a cached frame must never be served for a reused physical address."""

    def test_batched_program_pages_invalidates_cached_frames(self):
        chip = _loaded_chip(read_cache_pages=4)
        chip.read_page(0)  # frame cached
        assert chip.cache is not None and 0 in chip.cache
        chip.erase_block(0)  # erase drops the whole block's frames
        assert 0 not in chip.cache
        # Re-read while erased: the erased image must not be admitted as
        # a base frame (its spare decodes as erased).
        erased, _ = chip.read_page(0)
        assert erased == b"\xff" * SPEC.page_data_size
        assert 0 not in chip.cache
        # Batched reprogram of the erased block at the same addresses.
        chip.program_pages(
            [(addr, bytes([0xA0 + addr]) * 64, _base(addr, ts=9)) for addr in range(4)]
        )
        for addr in range(4):
            data, spare = chip.read_page(addr)
            assert data == bytes([0xA0 + addr]) * 64
            assert spare.timestamp == 9

    def test_program_pages_crash_prefix_still_invalidates(self):
        from repro.flash.chip import CrashPoint
        from repro.flash.errors import SimulatedPowerLoss

        chip = _loaded_chip(read_cache_pages=4)
        chip.erase_block(1)
        # Cache an erased-block neighbour read path first: prime frames
        # for addresses 4..7 is impossible (erased), so prime 0..3.
        for addr in range(4):
            chip.read_page(addr)
        chip.erase_block(0)
        assert len(chip.cache) == 0
        # Now crash mid-batch: the persisted prefix must be invalidated.
        chip.set_crash_point(CrashPoint(after=2, ops=("program_page",)))
        with pytest.raises(SimulatedPowerLoss):
            chip.program_pages(
                [(addr, bytes([0xB0 + addr]) * 64, _base(addr, ts=5)) for addr in range(4)]
            )
        chip.set_crash_point(None)
        data, _ = chip.read_page(0)
        assert data == bytes([0xB0]) * 64  # prefix page persisted, fresh read

    def test_gc_relocation_never_serves_stale_frames(self):
        """End-to-end: a cached PDL driver under GC churn reads exactly
        what an uncached model run reads, after every single update."""
        import random

        from repro.core.pdl import PdlDriver
        from repro.ftl.gc import GcConfig

        spec = FlashSpec(
            n_blocks=12, pages_per_block=8, page_data_size=256, page_spare_size=16
        )
        chip = FlashChip(spec, read_cache_pages=8)
        driver = PdlDriver(
            chip,
            max_differential_size=64,
            gc_config=GcConfig(incremental_steps=2, hot_cold=True),
        )
        rng = random.Random(17)
        images = {pid: rng.randbytes(256) for pid in range(10)}
        for pid, data in images.items():
            driver.load_page(pid, data)
        for i in range(400):
            pid = rng.randrange(10)
            image = bytearray(images[pid])
            offset = rng.randrange(180)
            image[offset : offset + 60] = rng.randbytes(60)
            images[pid] = bytes(image)
            driver.write_page(pid, images[pid])
            probe = rng.randrange(10)
            assert driver.read_page(probe) == images[probe], (
                f"stale read for pid {probe} after update {i}"
            )
            if i % 16 == 15:
                driver.flush()
        assert driver.gc.collections > 0, "workload never exercised GC"
        assert chip.stats.cache_hits > 0, "cache never hit; test is vacuous"
