"""Smoke + shape tests for the experiment orchestrators at tiny scale.

These run the real experiment code paths end-to-end on miniature
configurations (the full-size shape assertions live in benchmarks/).
"""

import pytest

from repro.bench.config import SCALES, BenchScale, current_scale
from repro.bench.experiments import (
    ablation_max_differential_size,
    experiment1,
    table1_chip_parameters,
)
from repro.workloads.tpcc.schema import TpccScale

TINY = BenchScale(
    name="tiny",
    database_pages=128,
    measure_ops=60,
    tpcc_scale=TpccScale(
        warehouses=1,
        districts_per_warehouse=2,
        customers_per_district=20,
        items=60,
        initial_orders_per_district=15,
    ),
    tpcc_transactions=40,
    sweep_measure_ops=40,
)


class TestConfig:
    def test_scales_exist(self):
        assert {"smoke", "small", "paper"} <= set(SCALES)

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert current_scale().name == "smoke"

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ValueError):
            current_scale()

    def test_runner_override(self):
        runner = TINY.runner(measure_ops=5)
        assert runner.measure_ops == 5
        assert runner.database_pages == TINY.database_pages


class TestTable1:
    def test_matches_paper(self):
        table = table1_chip_parameters()
        assert table.value("value", symbol="Npage") == 64
        assert table.value("value", symbol="Tread") == 110.0
        assert table.value("value", symbol="Sdata") == 2048


class TestExperiment1Tiny:
    def test_runs_and_orders_sanely(self):
        table = experiment1(TINY)
        methods = set(table.column("method"))
        assert "PDL (256B)" in methods and "IPU" in methods
        ipu = table.value("overall_us", method="IPU")
        opu = table.value("overall_us", method="OPU")
        pdl = table.value("overall_us", method="PDL (256B)")
        # the paper's headline orderings hold even at tiny scale
        assert ipu > opu > pdl
        # OPU read step is exactly one page read
        assert table.value("read_us", method="OPU") == pytest.approx(110.0)


class TestAblationTiny:
    def test_max_diff_sweep_runs(self):
        table = ablation_max_differential_size(TINY, sizes=(64, 256))
        assert len(table.rows) == 2
        assert table.column("max_diff_size") == [64, 256]
