"""Tests for result tables: rendering, persistence, queries."""

import json

import pytest

from repro.bench.reporting import ResultTable


@pytest.fixture
def table():
    t = ResultTable(
        experiment="exp_test",
        title="A test table",
        columns=("method", "x", "value"),
    )
    t.add_row("OPU", 1, 2130.0)
    t.add_row("OPU", 2, 2130.0)
    t.add_row("PDL (256B)", 1, 700.5)
    return t


class TestRows:
    def test_row_arity_checked(self, table):
        with pytest.raises(ValueError):
            table.add_row("OPU", 1)

    def test_column(self, table):
        assert table.column("method") == ["OPU", "OPU", "PDL (256B)"]

    def test_lookup(self, table):
        rows = table.lookup(method="OPU", x=2)
        assert rows == [["OPU", 2, 2130.0]]

    def test_value(self, table):
        assert table.value("value", method="PDL (256B)", x=1) == 700.5

    def test_value_requires_unique_match(self, table):
        with pytest.raises(KeyError):
            table.value("value", method="OPU")
        with pytest.raises(KeyError):
            table.value("value", method="IPU", x=1)


class TestRendering:
    def test_render_contains_everything(self, table):
        table.note("a note")
        text = table.render()
        assert "A test table" in text
        assert "PDL (256B)" in text
        assert "700.5" in text
        assert "note: a note" in text

    def test_columns_aligned(self, table):
        lines = table.render().splitlines()
        header = lines[1]
        assert header.index("x") == lines[3].index("1") or True  # smoke only


class TestPersistence:
    def test_save_and_reload(self, table, tmp_path):
        path = table.save(str(tmp_path))
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["experiment"] == "exp_test"
        assert data["columns"] == ["method", "x", "value"]
        assert len(data["rows"]) == 3

    def test_to_dict(self, table):
        d = table.to_dict()
        assert d["title"] == "A test table"
