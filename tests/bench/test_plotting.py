"""Tests for the ASCII figure renderer."""

import pytest

from repro.bench.plotting import bar_chart, line_chart, render_figure
from repro.bench.reporting import ResultTable


@pytest.fixture
def exp1_table():
    t = ResultTable(
        experiment="exp1_fig12",
        title="t",
        columns=("method", "overall_us"),
    )
    t.add_row("PDL (256B)", 800.0)
    t.add_row("OPU", 2200.0)
    t.add_row("IPU", 73000.0)
    return t


@pytest.fixture
def exp2_table():
    t = ResultTable(
        experiment="exp2_fig13_2k",
        title="t",
        columns=("method", "n_updates", "overall_us"),
    )
    for n in (1, 2, 4, 8):
        t.add_row("OPU", n, 2200.0)
        t.add_row("PDL (256B)", n, 700.0 + 200.0 * n)
    return t


class TestBarChart:
    def test_contains_all_labels_and_values(self, exp1_table):
        chart = bar_chart(exp1_table, "method", "overall_us")
        assert "PDL (256B)" in chart
        assert "73,000" in chart

    def test_log_scale_notes_itself(self, exp1_table):
        chart = bar_chart(exp1_table, "method", "overall_us", log_scale=True)
        assert "(log scale)" in chart

    def test_largest_bar_is_longest(self, exp1_table):
        chart = bar_chart(exp1_table, "method", "overall_us")
        lines = {line.split("|")[0].strip(): line.count("█")
                 for line in chart.splitlines() if "|" in line}
        assert lines["IPU"] >= lines["OPU"] >= lines["PDL (256B)"]


class TestLineChart:
    def test_contains_legend_and_bounds(self, exp2_table):
        chart = line_chart(exp2_table, "n_updates", "overall_us", "method")
        assert "o=" in chart or "x=" in chart
        assert "n_updates" in chart

    def test_series_filter(self, exp2_table):
        chart = line_chart(
            exp2_table, "n_updates", "overall_us", "method",
            series_filter=["OPU"],
        )
        assert "OPU" in chart
        assert "PDL" not in chart

    def test_empty_series(self, exp2_table):
        chart = line_chart(
            exp2_table, "n_updates", "overall_us", "method",
            series_filter=["nope"],
        )
        assert chart == "(no series)"


class TestRenderFigure:
    def test_dispatches_by_experiment(self, exp1_table, exp2_table):
        assert "Figure 12" in render_figure(exp1_table)
        assert "Figure 13" in render_figure(exp2_table)

    def test_unknown_falls_back_to_table(self):
        t = ResultTable(experiment="other", title="x", columns=("a",))
        t.add_row(1)
        assert "x" in render_figure(t)
