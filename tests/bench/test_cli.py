"""Tests for the repro-bench command-line interface."""

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "exp1" in out
        assert "exp7" in out
        assert "ablation_max_diff" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["not_an_experiment"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--scale", "galactic"])

    def test_runs_table1(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path))
        # note: RESULTS_DIR is read at import time; use --no-save instead
        assert main(["table1", "--no-save", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Tread" in out

    def test_figure_flag(self, capsys):
        assert main(["table1", "--no-save", "--figure"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
