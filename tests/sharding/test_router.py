"""Unit tests for shard routers (hash / range / factory)."""

import pytest

from repro.sharding.router import HashRouter, RangeRouter, ShardRouter, make_router


class TestHashRouter:
    def test_in_range_and_deterministic(self):
        router = HashRouter(4)
        for pid in range(500):
            shard = router.shard_of(pid)
            assert 0 <= shard < 4
            assert router.shard_of(pid) == shard

    def test_single_shard_degenerates(self):
        router = HashRouter(1)
        assert all(router.shard_of(pid) == 0 for pid in range(100))

    def test_balance_on_sequential_pids(self):
        """The mixer must spread a sequential id space near-uniformly —
        within 25% of the ideal share on a 4-way split of 4096 pids."""
        router = HashRouter(4)
        counts = [0] * 4
        for pid in range(4096):
            counts[router.shard_of(pid)] += 1
        ideal = 4096 / 4
        for count in counts:
            assert abs(count - ideal) < ideal * 0.25

    def test_decorrelated_from_low_bits(self):
        """Strided access (every 4th page) must not collapse to one shard
        the way a bare ``pid % 4`` would."""
        router = HashRouter(4)
        hit = {router.shard_of(pid) for pid in range(0, 512, 4)}
        assert len(hit) == 4


class TestRangeRouter:
    def test_contiguous_ranges(self):
        router = RangeRouter(3, pages_per_shard=10)
        assert [router.shard_of(p) for p in (0, 9, 10, 19, 20, 29)] == [0, 0, 1, 1, 2, 2]

    def test_tail_clamps_to_last_shard(self):
        router = RangeRouter(3, pages_per_shard=10)
        assert router.shard_of(30) == 2
        assert router.shard_of(10**9) == 2

    def test_for_database_splits_evenly(self):
        router = RangeRouter.for_database(4, 100)
        assert router.pages_per_shard == 25
        counts = [0] * 4
        for pid in range(100):
            counts[router.shard_of(pid)] += 1
        assert counts == [25, 25, 25, 25]

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            RangeRouter(2, pages_per_shard=0)
        with pytest.raises(ValueError):
            RangeRouter.for_database(2, 0)


class TestRouterContract:
    def test_shard_count_validation(self):
        with pytest.raises(ValueError):
            HashRouter(0)
        with pytest.raises(ValueError):
            RangeRouter(-1, 10)

    def test_negative_pid_rejected(self):
        with pytest.raises(ValueError):
            HashRouter(2).shard_of(-5)

    def test_abstract_base(self):
        with pytest.raises(TypeError):
            ShardRouter(2)  # type: ignore[abstract]


class TestMakeRouter:
    def test_hash(self):
        router = make_router("hash", 3)
        assert isinstance(router, HashRouter)
        assert router.n_shards == 3

    def test_range_by_width(self):
        router = make_router("range", 2, pages_per_shard=7)
        assert isinstance(router, RangeRouter)
        assert router.pages_per_shard == 7

    def test_range_by_database(self):
        router = make_router("range", 2, database_pages=11)
        assert router.pages_per_shard == 6

    def test_errors(self):
        with pytest.raises(ValueError):
            make_router("consistent-hashing", 2)
        with pytest.raises(ValueError):
            make_router("range", 2)
        with pytest.raises(ValueError):
            make_router("hash", 2, pages_per_shard=5)
