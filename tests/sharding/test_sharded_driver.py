"""Unit tests for the sharded multi-chip driver and aggregate stats."""

import random

import pytest

from repro.core.pdl import PdlDriver
from repro.flash.chip import FlashChip
from repro.flash.spec import FlashSpec
from repro.flash.stats import WRITE_STEP
from repro.ftl.errors import ConfigurationError
from repro.ftl.opu import OpuDriver
from repro.methods import make_method, parse_sharded_label, sharded_labels
from repro.sharding.driver import ShardedDriver
from repro.sharding.recovery import recover_all
from repro.sharding.router import HashRouter, RangeRouter

SPEC = FlashSpec(n_blocks=8, pages_per_block=8, page_data_size=256, page_spare_size=16)
PAGE = SPEC.page_data_size


def _chips(n):
    return [FlashChip(SPEC) for _ in range(n)]


def _sharded(n, label="PDL (64B)", **kwargs):
    chips = _chips(n)
    return chips, make_method(f"{label} x{n}", chips, **kwargs)


class TestConstruction:
    def test_label_builds_sharded_driver(self):
        chips, driver = _sharded(3)
        assert isinstance(driver, ShardedDriver)
        assert driver.name == "PDL (64B) x3"
        assert driver.n_shards == 3
        assert driver.chips == chips
        assert driver.total_blocks == 3 * SPEC.n_blocks
        assert all(isinstance(s, PdlDriver) for s in driver.shards)

    def test_x1_still_builds_the_facade(self):
        _, driver = _sharded(1)
        assert isinstance(driver, ShardedDriver)
        assert driver.n_shards == 1

    def test_any_base_method_shards(self):
        _, driver = _sharded(2, label="OPU")
        assert all(isinstance(s, OpuDriver) for s in driver.shards)

    def test_kwargs_forwarded_per_shard(self):
        _, driver = _sharded(2, diff_unit=None)
        assert all(s.diff_unit is None for s in driver.shards)

    def test_single_chip_for_sharded_label_rejected(self):
        with pytest.raises(ConfigurationError):
            make_method("PDL (64B) x2", FlashChip(SPEC))

    def test_chip_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            make_method("PDL (64B) x3", _chips(2))

    def test_router_shard_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            make_method("PDL (64B) x2", _chips(2), router=HashRouter(3))

    def test_router_on_unsharded_label_rejected(self):
        with pytest.raises(ConfigurationError):
            make_method("PDL (64B)", FlashChip(SPEC), router=HashRouter(1))

    def test_page_size_mismatch_rejected(self):
        other = FlashSpec(
            n_blocks=8, pages_per_block=8, page_data_size=512, page_spare_size=16
        )
        shards = [
            PdlDriver(FlashChip(SPEC), max_differential_size=64),
            PdlDriver(FlashChip(other), max_differential_size=64),
        ]
        with pytest.raises(ConfigurationError):
            ShardedDriver(shards)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedDriver([])

    def test_label_parsing(self):
        assert parse_sharded_label("PDL (256B) x4") == ("PDL (256B)", 4)
        assert parse_sharded_label("opu X2") == ("opu", 2)
        assert parse_sharded_label("PDL (256B)") == ("PDL (256B)", None)
        assert parse_sharded_label("IPU") == ("IPU", None)
        assert sharded_labels("OPU", [1, 2]) == ["OPU x1", "OPU x2"]


class TestRoutingBehaviour:
    def test_pages_land_on_router_chosen_shard(self):
        chips, driver = _sharded(4)
        for pid in range(24):
            driver.load_page(pid, bytes([pid]) * PAGE)
        for pid in range(24):
            owner = driver.router.shard_of(pid)
            assert pid in driver.shards[owner].ppmt
            for i, shard in enumerate(driver.shards):
                if i != owner:
                    assert pid not in shard.ppmt

    def test_range_router_keeps_ranges_together(self):
        chips = _chips(2)
        driver = make_method(
            "PDL (64B) x2", chips, router=RangeRouter.for_database(2, 16)
        )
        for pid in range(16):
            driver.load_page(pid, bytes([pid]) * PAGE)
        assert sorted(list(driver.shards[0].ppmt.pids())) == list(range(8))
        assert sorted(list(driver.shards[1].ppmt.pids())) == list(range(8, 16))

    def test_read_write_round_trip(self):
        _, driver = _sharded(3)
        rng = random.Random(11)
        images = {}
        for pid in range(18):
            images[pid] = rng.randbytes(PAGE)
            driver.load_page(pid, images[pid])
        for _ in range(150):
            pid = rng.randrange(18)
            image = bytearray(images[pid])
            offset = rng.randrange(PAGE - 8)
            image[offset : offset + 8] = rng.randbytes(8)
            images[pid] = bytes(image)
            driver.write_page(pid, images[pid])
        for pid, expected in images.items():
            assert driver.read_page(pid) == expected


class TestGroupFlush:
    def test_group_flush_drains_every_shard_buffer(self):
        _, driver = _sharded(3)
        for pid in range(12):
            driver.load_page(pid, bytes([pid]) * PAGE)
        for pid in range(12):
            image = bytearray(bytes([pid]) * PAGE)
            image[0:4] = b"beef"
            driver.write_page(pid, bytes(image))
        assert any(not s.buffer.is_empty for s in driver.shards)
        driver.group_flush()
        assert all(s.buffer.is_empty for s in driver.shards)
        assert driver.group_flushes == 1

    def test_flush_is_group_flush(self):
        _, driver = _sharded(2)
        driver.flush()
        assert driver.group_flushes == 1

    def test_flushed_state_survives_recovery(self):
        chips, driver = _sharded(2)
        rng = random.Random(5)
        images = {}
        for pid in range(10):
            images[pid] = rng.randbytes(PAGE)
            driver.load_page(pid, images[pid])
        for pid in range(10):
            image = bytearray(images[pid])
            image[10:16] = rng.randbytes(6)
            images[pid] = bytes(image)
            driver.write_page(pid, images[pid])
        driver.group_flush()
        recovered, reports = recover_all(chips, max_differential_size=64)
        assert len(reports) == 2
        for pid, expected in images.items():
            assert recovered.read_page(pid) == expected
        # recovered array keeps accepting traffic
        recovered.write_page(0, bytes(PAGE))
        assert recovered.read_page(0) == bytes(PAGE)

    def test_recover_all_validates_router(self):
        chips, driver = _sharded(2)
        with pytest.raises(ConfigurationError):
            recover_all(chips, router=HashRouter(3))
        with pytest.raises(ConfigurationError):
            recover_all([])


class TestAggregateStats:
    def test_totals_sum_over_shards(self):
        chips, driver = _sharded(3)
        for pid in range(12):
            driver.load_page(pid, bytes([pid]) * PAGE)
        agg = driver.stats.totals()
        per_chip = [chip.stats.totals() for chip in chips]
        assert agg.writes == sum(c.writes for c in per_chip)
        assert agg.time_us == pytest.approx(sum(c.time_us for c in per_chip))

    def test_snapshot_delta_window(self):
        chips, driver = _sharded(2)
        for pid in range(8):
            driver.load_page(pid, bytes([pid]) * PAGE)
        snap = driver.stats.snapshot()
        image = bytearray(bytes([0]) * PAGE)
        image[0:4] = b"wxyz"
        driver.write_page(0, bytes(image))
        driver.group_flush()
        delta = driver.stats.delta_since(snap)
        assert delta.of_phase(WRITE_STEP).writes >= 1
        assert delta.totals().reads >= 1
        assert len(delta.block_erases) == 2 * SPEC.n_blocks

    def test_reset_clears_every_shard(self):
        chips, driver = _sharded(2)
        for pid in range(8):
            driver.load_page(pid, bytes([pid]) * PAGE)
        driver.stats.reset()
        assert driver.stats.totals().total_ops == 0
        assert all(chip.stats.totals().total_ops == 0 for chip in chips)

    def test_wear_report_shape(self):
        _, driver = _sharded(2)
        report = driver.wear_report()
        assert report["per_shard_erases"] == [0, 0]
        assert report["total_erases"] == 0
        assert report["max_block_erases"] == 0

    def test_chip_clocks_advance_independently(self):
        chips, driver = _sharded(2)
        pid = 0
        while driver.router.shard_of(pid) != 0:
            pid += 1
        driver.load_page(pid, bytes(PAGE))
        clocks = driver.chip_clocks()
        assert clocks[0] > 0.0
        assert clocks[1] == 0.0


class TestGcReport:
    def test_fresh_array_reports_zeros(self):
        _, driver = _sharded(2)
        report = driver.gc_report()
        assert len(report["per_shard"]) == 2
        assert report["total_collections"] == 0
        assert report["total_incremental_steps"] == 0
        assert report["write_stall_p99_us"] == 0.0
        assert all(entry["policy"] == "greedy" for entry in report["per_shard"])

    def test_report_aggregates_incremental_work(self):
        from repro.ftl.gc import GcConfig

        chips, driver = _sharded(
            2, gc_config=GcConfig(incremental_steps=2, hot_cold=True)
        )
        rng = random.Random(23)
        images = {pid: rng.randbytes(PAGE) for pid in range(12)}
        for pid, data in images.items():
            driver.load_page(pid, data)
        for _ in range(600):
            pid = rng.randrange(12)
            image = bytearray(images[pid])
            offset = rng.randrange(PAGE - 40)
            image[offset : offset + 40] = rng.randbytes(40)
            images[pid] = bytes(image)
            driver.write_page(pid, images[pid])
        report = driver.gc_report()
        assert report["total_collections"] > 0
        assert report["total_incremental_steps"] > 0
        assert report["total_pages_relocated"] == sum(
            shard.gc.pages_relocated for shard in driver.shards
        )
        # Stall samples pooled across shards: one per logical write.
        assert len(driver.stats.write_stall_us) == 600
        assert report["write_stall_p99_us"] >= 0.0
        for entry, shard in zip(report["per_shard"], driver.shards):
            assert entry["collections"] == shard.gc.collections
            assert entry["debt_blocks"] == shard.gc.gc_debt()

    def test_shards_without_collector_report_none(self):
        chips = _chips(1)
        from repro.ftl.ipu import IpuDriver

        driver = ShardedDriver([IpuDriver(chips[0])])
        report = driver.gc_report()
        assert report["per_shard"] == [None]
        assert report["total_collections"] == 0
