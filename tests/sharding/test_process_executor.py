"""Process-per-shard execution: spawn safety, equivalence, plumbing.

These tests exercise the GIL-free execution path end to end: the
:class:`ShardFactory` recipes that rebuild drivers inside spawned
workers, the :class:`ProcessShardExecutor` wire protocol, and the
:class:`ProcessShardedDriver` façade — including the headline claim
that a seeded workload produces *byte-identical* flash images and equal
merged statistics whether it runs on the thread or the process backend.

Worker functions submitted over the pipe are pickled by reference, so
every helper here is module-level (spawn-safety rule #1; see
docs/concurrency.md).
"""

import multiprocessing
import pickle
import random

import pytest

from repro.flash.backend import FileBackend
from repro.flash.chip import FlashChip
from repro.flash.spec import FlashSpec
from repro.ftl.errors import (
    ConcurrencyError,
    ConfigurationError,
)
from repro.methods import make_method
from repro.sharding.executor import make_executor
from repro.sharding.executor_proc import (
    ProcessShardExecutor,
    ProcessShardedDriver,
    ShardFactory,
    WorkerCrashError,
    dump_chip_image,
    factories_from_chips,
)
from repro.sharding.recovery import recover_all

SPEC = FlashSpec(n_blocks=12, pages_per_block=8, page_data_size=256, page_spare_size=16)
PAGE = SPEC.page_data_size
N_PAGES = 40


def _chips(n):
    return [FlashChip(SPEC) for _ in range(n)]


def _factories(n, label="PDL (64B)"):
    return [ShardFactory(label=label, spec=SPEC) for _ in range(n)]


def _workload(driver, n_updates=200, seed=3):
    """A deterministic mixed single/batched workload; returns the model."""
    rng = random.Random(seed)
    model = {pid: rng.randbytes(PAGE) for pid in range(N_PAGES)}
    driver.load_pages(model.items())
    driver.end_of_load()
    batch = {}
    for i in range(n_updates):
        pid = rng.randrange(N_PAGES)
        image = bytearray(model[pid])
        offset = rng.randrange(PAGE - 32)
        image[offset : offset + 32] = rng.randbytes(32)
        model[pid] = bytes(image)
        if i % 3 == 0 or pid in batch:
            batch[pid] = model[pid]
            if len(batch) >= 8:
                driver.write_pages(list(batch.items()))
                batch.clear()
        else:
            driver.write_page(pid, model[pid])
        if i % 32 == 31:
            driver.group_flush()
    if batch:
        driver.write_pages(list(batch.items()))
    driver.group_flush()
    return model


# Worker-side functions must be module-level so pickle can find them by
# qualified name inside the spawned interpreter.
def _w_add(driver, a, b=0):
    return a + b


def _w_fail(driver):
    return 1 / 0


def _w_driver_label(driver):
    return driver.name


def _assert_reaped(executor):
    # Other tests may have live pools (class-scoped fixtures), so check
    # this executor's own workers rather than active_children() globally.
    assert all(not proc.is_alive() for proc in executor._procs)


@pytest.fixture(scope="module", autouse=True)
def _no_leaked_children_at_module_exit():
    yield
    # Every fixture in this module has been torn down by now; the
    # multiprocessing resource tracker is not a Process, so an empty
    # list means every shard worker was joined.
    assert multiprocessing.active_children() == []


class TestShardFactory:
    def test_pickle_round_trip(self):
        factory = ShardFactory(
            label="PDL (128B)",
            spec=SPEC,
            read_cache_pages=4,
            driver_kwargs={"coalesce_gap": 2},
        )
        clone = pickle.loads(pickle.dumps(factory))
        assert clone == factory

    def test_build_makes_working_driver(self):
        driver, report = ShardFactory(label="PDL (64B)", spec=SPEC).build()
        assert report is None
        assert driver.name == "PDL (64B)"
        driver.load_page(0, b"\x07" * PAGE)
        driver.end_of_load()
        assert driver.read_page(0) == b"\x07" * PAGE
        driver.chip.close()

    def test_factories_from_chips_captures_config(self):
        chips = [
            FlashChip(SPEC, read_cache_pages=8),
            FlashChip(SPEC),
        ]
        factories = factories_from_chips(chips, "PDL (64B)", {})
        assert [f.read_cache_pages for f in factories] == [8, 0]
        assert all(f.path is None for f in factories)
        assert all(f.spec == SPEC for f in factories)

    def test_programmed_chip_rejected(self, chip):
        driver = make_method("PDL (64B)", chip)
        driver.load_page(0, bytes(chip.spec.page_data_size))
        driver.end_of_load()
        driver.flush()
        with pytest.raises(ConfigurationError, match="recover_all"):
            factories_from_chips([chip], "PDL (64B)", {})


class TestProcessExecutor:
    @pytest.fixture(scope="class")
    def pool(self):
        executor = ProcessShardExecutor(_factories(2))
        yield executor
        executor.shutdown()
        _assert_reaped(executor)

    def test_result_round_trip(self, pool):
        assert pool.submit(0, _w_add, 40, b=2).result() == 42

    def test_worker_has_real_driver(self, pool):
        assert pool.run(1, _w_driver_label) == "PDL (64B)"

    def test_exception_type_survives_the_pipe(self, pool):
        future = pool.submit(0, _w_fail)
        with pytest.raises(ZeroDivisionError):
            future.result()

    def test_worker_survives_exceptions(self, pool):
        # A failed op must not wedge the worker for later ops.
        with pytest.raises(ZeroDivisionError):
            pool.run(0, _w_fail)
        assert pool.run(0, _w_add, 1, b=1) == 2

    def test_invalid_worker_index_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.submit(2, _w_add, 0)

    def test_broadcast_hits_every_worker(self, pool):
        assert pool.broadcast(_w_add, 20, b=1) == [21, 21]

    def test_needs_at_least_one_factory(self):
        with pytest.raises(ConfigurationError):
            ProcessShardExecutor([])

    def test_shutdown_is_idempotent_and_rejects_submits(self):
        executor = ProcessShardExecutor(_factories(1))
        assert executor.run(0, _w_add, 1, b=1) == 2
        executor.shutdown()
        executor.shutdown()
        with pytest.raises(ConcurrencyError):
            executor.submit(0, _w_add, 0)
        _assert_reaped(executor)

    def test_context_manager_reaps_workers(self):
        with ProcessShardExecutor(_factories(1)) as executor:
            assert executor.run(0, _w_add, 2, b=2) == 4
        assert executor.is_shutdown
        _assert_reaped(executor)


class TestMakeExecutor:
    def test_thread_kind_default(self):
        executor = make_executor(n_workers=2)
        try:
            assert executor.submit(0, lambda: 1).result() == 1
        finally:
            executor.shutdown()

    def test_process_kind_builds_process_pool(self):
        executor = make_executor(kind="process", factories=_factories(1))
        try:
            assert isinstance(executor, ProcessShardExecutor)
            assert executor.run(0, _w_add, 3, b=4) == 7
        finally:
            executor.shutdown()
        _assert_reaped(executor)

    def test_process_kind_needs_factories(self):
        with pytest.raises(ConfigurationError):
            make_executor(kind="process", n_workers=2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_executor(kind="fiber", n_workers=2)


class TestThreadProcessEquivalence:
    """The satellite claim: same seed, same bytes, same merged stats."""

    @pytest.fixture(scope="class")
    def pair(self):
        thread_driver = make_method("PDL (64B) x2 par", _chips(2))
        proc_driver = make_method("PDL (64B) x2 proc", _chips(2))
        model_t = _workload(thread_driver)
        model_p = _workload(proc_driver)
        assert model_t == model_p
        yield thread_driver, proc_driver, model_t
        executor = proc_driver.executor
        proc_driver.close()
        thread_driver.close()
        _assert_reaped(executor)

    def test_reads_match_the_model(self, pair):
        thread_driver, proc_driver, model = pair
        for pid in range(N_PAGES):
            assert proc_driver.read_page(pid) == model[pid]
            assert thread_driver.read_page(pid) == model[pid]

    def test_flash_images_byte_identical(self, pair):
        thread_driver, proc_driver, _model = pair
        thread_images = [dump_chip_image(chip) for chip in thread_driver.chips]
        assert proc_driver.dump_images() == thread_images

    def test_merged_stats_equal(self, pair):
        thread_driver, proc_driver, _model = pair
        t, p = thread_driver.stats, proc_driver.stats
        assert p.totals() == t.totals()
        assert p.phases == t.phases
        assert p.block_erases == t.block_erases
        assert p.total_time_us == t.total_time_us

    def test_clocks_and_counters_equal(self, pair):
        thread_driver, proc_driver, _model = pair
        assert proc_driver.chip_clocks() == thread_driver.chip_clocks()
        assert (
            proc_driver.differential_page_count()
            == thread_driver.differential_page_count()
        )
        assert proc_driver.gc_report() == thread_driver.gc_report()

    def test_fsck_clean_on_both(self, pair):
        thread_driver, proc_driver, _model = pair
        t = thread_driver.fsck(repair=False)
        p = proc_driver.fsck(repair=False)
        assert p.pages_scanned == t.pages_scanned
        assert p.checksum_failures == t.checksum_failures == 0

    def test_file_backend_images_byte_identical(self, tmp_path):
        # The same seeded workload through thread and process drivers
        # over file-backed chips must leave bit-identical image files.
        for mode in ("par", "proc"):
            chips = [
                FlashChip(
                    SPEC,
                    backend=FileBackend.create(
                        str(tmp_path / f"{mode}-{i}.img"), SPEC
                    ),
                )
                for i in range(2)
            ]
            driver = make_method(f"PDL (64B) x2 {mode}", chips)
            _workload(driver, n_updates=120, seed=5)
            driver.close()
        for i in range(2):
            thread_image = (tmp_path / f"par-{i}.img").read_bytes()
            proc_image = (tmp_path / f"proc-{i}.img").read_bytes()
            assert thread_image == proc_image


class TestLabelPlumbing:
    def test_proc_label_builds_process_driver(self):
        driver = make_method("PDL (64B) x2 proc", _chips(2))
        try:
            assert isinstance(driver, ProcessShardedDriver)
            assert driver.name == "PDL (64B) x2 proc"
        finally:
            driver.close()
        _assert_reaped(driver.executor)

    def test_proc_without_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            make_method("PDL (64B) proc", FlashChip(SPEC))


class TestStatePastShutdown:
    """Benchmarks shut the pool down and then read counters; the driver
    snapshots worker state in a shutdown finalizer to keep that order
    legal."""

    def test_counters_survive_executor_shutdown(self):
        driver = make_method("PDL (64B) x2 proc", _chips(2))
        _workload(driver, n_updates=60)
        live_clocks = driver.chip_clocks()
        live_diff = driver.differential_page_count()
        driver.executor.shutdown()
        assert driver.chip_clocks() == live_clocks
        assert driver.differential_page_count() == live_diff
        assert driver.stats.total_time_us > 0
        driver.close()
        _assert_reaped(driver.executor)


class TestProcessRecovery:
    def _build_images(self, tmp_path, n_shards=2):
        chips = []
        for i in range(n_shards):
            backend = FileBackend.create(str(tmp_path / f"shard{i}.img"), SPEC)
            chips.append(FlashChip(SPEC, backend=backend))
        driver = make_method(f"PDL (64B) x{n_shards}", chips)
        model = _workload(driver, n_updates=120, seed=9)
        driver.close()
        return model

    def _reopen(self, tmp_path, n_shards=2):
        return [
            FlashChip(
                SPEC, backend=FileBackend.open(str(tmp_path / f"shard{i}.img"), SPEC)
            )
            for i in range(n_shards)
        ]

    def test_process_recovery_matches_serial(self, tmp_path):
        model = self._build_images(tmp_path)

        serial_driver, serial_reports = recover_all(self._reopen(tmp_path))
        serial_pages = {pid: serial_driver.read_page(pid) for pid in model}
        serial_driver.close()

        proc_driver, proc_reports = recover_all(
            self._reopen(tmp_path), parallel="process"
        )
        try:
            assert isinstance(proc_driver, ProcessShardedDriver)
            assert len(proc_reports) == len(serial_reports)
            assert [r.pages_scanned for r in proc_reports] == [
                r.pages_scanned for r in serial_reports
            ]
            for pid, data in model.items():
                assert proc_driver.read_page(pid) == data == serial_pages[pid]
            # The recovered array keeps working.
            proc_driver.write_page(0, bytes(PAGE))
            assert proc_driver.read_page(0) == bytes(PAGE)
        finally:
            proc_driver.close()
        _assert_reaped(proc_driver.executor)

    def test_memory_chips_rejected_for_process_recovery(self):
        with pytest.raises(ConfigurationError):
            recover_all(_chips(2), parallel="process")

    def test_existing_images_must_go_through_recovery(self, tmp_path):
        self._build_images(tmp_path)
        with pytest.raises(ConfigurationError, match="recover_all"):
            make_method("PDL (64B) x2 proc", self._reopen(tmp_path))


class TestWorkerFailureHandling:
    def test_startup_failure_reaps_and_raises(self):
        bad = ShardFactory(label="definitely-not-a-method", spec=SPEC)
        with pytest.raises(ValueError, match="unknown method label"):
            ProcessShardExecutor([bad])

    def test_dead_worker_reported_as_crash(self):
        executor = ProcessShardExecutor(_factories(1))
        try:
            executor._procs[0].terminate()
            executor._procs[0].join()
            with pytest.raises(ConcurrencyError):
                executor.run(0, _w_add, 1, b=1)
        finally:
            executor.shutdown()
        _assert_reaped(executor)

    def test_worker_crash_error_is_concurrency_error(self):
        assert issubclass(WorkerCrashError, ConcurrencyError)
