"""Unit tests for the shard worker pool (ShardExecutor)."""

import threading
import time

import pytest

from repro.ftl.errors import ConcurrencyError
from repro.sharding.executor import ShardExecutor, gather


@pytest.fixture
def pool():
    executor = ShardExecutor(4)
    yield executor
    executor.shutdown()


class TestSubmission:
    def test_result_round_trip(self, pool):
        assert pool.submit(0, lambda: 41 + 1).result() == 42

    def test_args_and_kwargs_forwarded(self, pool):
        future = pool.submit(1, lambda a, b=0: a + b, 40, b=2)
        assert future.result() == 42

    def test_exception_delivered_via_future(self, pool):
        future = pool.submit(2, lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            future.result()

    def test_invalid_worker_index_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.submit(4, lambda: None)

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError):
            ShardExecutor(0)


class TestSingleWriterInvariant:
    def test_tasks_for_one_worker_run_on_one_thread_in_order(self, pool):
        seen = []

        def task(i):
            seen.append((i, threading.get_ident()))

        futures = [pool.submit(0, task, i) for i in range(50)]
        gather(futures)
        assert [i for i, _ in seen] == list(range(50))  # FIFO per mailbox
        assert {ident for _, ident in seen} == {pool.worker_ident(0)}

    def test_workers_are_distinct_threads(self, pool):
        idents = {pool.worker_ident(i) for i in range(4)}
        assert len(idents) == 4
        assert threading.get_ident() not in idents

    def test_workers_run_concurrently(self, pool):
        """Two blocking tasks on different workers overlap in time."""
        barrier = threading.Barrier(2, timeout=5.0)
        futures = [pool.submit(i, barrier.wait) for i in range(2)]
        gather(futures)  # would raise BrokenBarrierError if serialized

    def test_run_executes_inline_on_own_worker(self, pool):
        """A task running on worker 0 may re-enter run() for worker 0
        without deadlocking on its own mailbox."""

        def outer():
            return pool.run(0, lambda: threading.get_ident())

        assert pool.submit(0, outer).result() == pool.worker_ident(0)


class TestGather:
    def test_gather_preserves_order(self, pool):
        futures = [pool.submit(i % 4, lambda i=i: i * i) for i in range(8)]
        assert gather(futures) == [i * i for i in range(8)]

    def test_gather_raises_first_error_after_joining_all(self, pool):
        done = threading.Event()

        def slow_ok():
            time.sleep(0.05)
            done.set()

        futures = [
            pool.submit(0, lambda: 1 / 0),
            pool.submit(1, slow_ok),
        ]
        with pytest.raises(ZeroDivisionError):
            gather(futures)
        # The failing future must not abandon the in-flight sibling.
        assert done.is_set()


class TestLifecycle:
    def test_map_runs_tasks_on_named_workers(self, pool):
        results = pool.map(
            [(i, lambda i=i: (i, threading.get_ident())) for i in range(4)]
        )
        assert [i for i, _ in results] == [0, 1, 2, 3]
        assert [ident for _, ident in results] == [
            pool.worker_ident(i) for i in range(4)
        ]

    def test_broadcast_touches_every_worker(self, pool):
        assert sorted(pool.broadcast(lambda i: i)) == [0, 1, 2, 3]

    def test_shutdown_drains_queued_tasks(self):
        executor = ShardExecutor(1)
        counter = []
        for i in range(20):
            executor.submit(0, counter.append, i)
        executor.shutdown(wait=True)
        assert counter == list(range(20))

    def test_submit_after_shutdown_rejected(self):
        executor = ShardExecutor(1)
        executor.shutdown()
        with pytest.raises(ConcurrencyError):
            executor.submit(0, lambda: None)

    def test_shutdown_idempotent(self):
        executor = ShardExecutor(2)
        executor.shutdown()
        executor.shutdown()

    def test_context_manager_shuts_down(self):
        with ShardExecutor(1) as executor:
            assert executor.submit(0, lambda: "ok").result() == "ok"
        with pytest.raises(ConcurrencyError):
            executor.submit(0, lambda: None)
