"""Spawn-safety: everything that crosses a process boundary must pickle.

The ``spawn`` start method ships :class:`ShardFactory` recipes to fresh
interpreters and returns results, reports and exceptions over a pipe —
all via pickle.  These tests pin the contract for every public config,
report and error type so a new field (or a closure smuggled into a
default) cannot silently break ``"... xN proc"`` execution.
"""

import pickle

import pytest

from repro.core.fsck import FsckReport, PageFault
from repro.core.recovery import RecoveryReport
from repro.flash.errors import (
    AddressError,
    ChecksumError,
    CrashError,
    EraseError,
    FlashError,
    ProgramError,
    SimulatedPowerLoss,
    SpareProgramError,
    WearOutError,
)
from repro.flash.spare import PageType, SpareArea
from repro.flash.spec import TINY_SPEC, FlashSpec
from repro.flash.stats import FlashStats
from repro.ftl.base import ChangeRun
from repro.ftl.errors import (
    ConcurrencyError,
    ConfigurationError,
    FtlError,
    OutOfSpaceError,
    UnallocatedPageError,
    UnknownPageError,
)
from repro.ftl.gc import GcConfig
from repro.sharding.executor_proc import ShardFactory, WorkerCrashError


def _round_trip(obj):
    return pickle.loads(pickle.dumps(obj))


CONFIG_OBJECTS = [
    TINY_SPEC,
    FlashSpec(n_blocks=8, pages_per_block=4, page_data_size=128, page_spare_size=16),
    GcConfig(),
    GcConfig(policy="cb", incremental_steps=4, hot_cold=True),
    ChangeRun(offset=12, data=b"\x01\x02"),
    SpareArea(),
    SpareArea(type=PageType.BASE, pid=7, timestamp=42, checksum=0xDEAD),
    RecoveryReport(pages_scanned=64, orphan_pids=[3, 9], max_timestamp=17),
    PageFault(addr=5, role="base", kind="checksum", pid=2, action="repaired_copy"),
    FsckReport(pages_scanned=64, stale_pids=[1], scan_reads=70),
    ShardFactory(label="PDL (256B)", spec=TINY_SPEC),
    ShardFactory(
        label="PDL (64B)",
        spec=TINY_SPEC,
        path="/tmp/x.img",
        recover=True,
        read_cache_pages=8,
        realtime_scale=0.5,
        driver_kwargs={"coalesce_gap": 2},
    ),
]


@pytest.mark.parametrize(
    "obj", CONFIG_OBJECTS, ids=lambda o: type(o).__name__
)
def test_config_objects_pickle_round_trip(obj):
    assert _round_trip(obj) == obj


ERROR_TYPES = [
    FlashError,
    AddressError,
    ProgramError,
    SpareProgramError,
    ChecksumError,
    EraseError,
    WearOutError,
    CrashError,
    SimulatedPowerLoss,
    FtlError,
    OutOfSpaceError,
    UnknownPageError,
    UnallocatedPageError,
    ConfigurationError,
    ConcurrencyError,
    WorkerCrashError,
]


@pytest.mark.parametrize("exc_type", ERROR_TYPES, ids=lambda t: t.__name__)
def test_errors_pickle_round_trip(exc_type):
    exc = exc_type("page 7 went sideways")
    clone = _round_trip(exc)
    assert type(clone) is exc_type
    assert str(clone) == str(exc)


def test_flash_stats_round_trip_preserves_counters():
    stats = FlashStats(n_blocks=8, t_read_us=25.0, t_write_us=200.0, t_erase_us=1500.0)
    stats.record_read()
    stats.record_write()
    stats.record_erase(0)
    clone = _round_trip(stats)
    assert clone.totals() == stats.totals()
    assert clone.phases == stats.phases
    assert clone.block_erases == stats.block_erases


def test_nested_fsck_report_round_trip():
    inner = FsckReport(pages_scanned=32, checksum_failures=1)
    outer = FsckReport(pages_scanned=64, per_shard=[inner, inner])
    assert _round_trip(outer) == outer
