"""ParallelShardedDriver: equivalence with the serial façade + plumbing."""

import random
import threading

import pytest

from repro.core.check import check_driver
from repro.flash.chip import FlashChip
from repro.flash.spec import FlashSpec
from repro.ftl.errors import ConcurrencyError, ConfigurationError
from repro.ftl.gc import GcConfig
from repro.methods import make_method, parse_parallel_label
from repro.sharding.executor import ParallelShardedDriver, ShardExecutor
from repro.sharding.recovery import recover_all

SPEC = FlashSpec(n_blocks=12, pages_per_block=8, page_data_size=256, page_spare_size=16)
PAGE = SPEC.page_data_size
N_PAGES = 40


def _chips(n):
    return [FlashChip(SPEC) for _ in range(n)]


def _workload(driver, n_updates=300, seed=3):
    """A deterministic mixed single/batched workload; returns the model."""
    rng = random.Random(seed)
    model = {pid: rng.randbytes(PAGE) for pid in range(N_PAGES)}
    driver.load_pages(model.items())
    driver.end_of_load()
    batch = {}
    for i in range(n_updates):
        pid = rng.randrange(N_PAGES)
        image = bytearray(model[pid])
        offset = rng.randrange(PAGE - 32)
        image[offset : offset + 32] = rng.randbytes(32)
        model[pid] = bytes(image)
        # A pid already staged for the batched flush must stay batched,
        # or the eventual write_pages would overwrite newer data.
        if i % 3 == 0 or pid in batch:
            batch[pid] = model[pid]
            if len(batch) >= 8:
                driver.write_pages(list(batch.items()))
                batch.clear()
        else:
            driver.write_page(pid, model[pid])
        if i % 32 == 31:
            driver.group_flush()
    if batch:
        driver.write_pages(list(batch.items()))
    driver.group_flush()
    return model


class TestLabelPlumbing:
    def test_par_label_builds_parallel_driver(self):
        driver = make_method("PDL (64B) x2 par", _chips(2))
        try:
            assert isinstance(driver, ParallelShardedDriver)
            assert driver.name == "PDL (64B) x2 par"
        finally:
            driver.close()

    def test_name_round_trips_through_parser(self):
        driver = make_method("PDL (64B) x2 par", _chips(2))
        try:
            rest, parallel = parse_parallel_label(driver.name)
            assert parallel and rest == "PDL (64B) x2"
        finally:
            driver.close()

    def test_par_composes_with_gc_token(self):
        driver = make_method("PDL (64B) x2 par gc=cb", _chips(2))
        try:
            assert isinstance(driver, ParallelShardedDriver)
            assert all(s.gc.policy_label == "cb" for s in driver.shards)
        finally:
            driver.close()

    def test_par_without_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            make_method("PDL (64B) par", FlashChip(SPEC))

    def test_duplicate_par_token_rejected(self):
        with pytest.raises(ValueError):
            parse_parallel_label("PDL (64B) x2 par par")

    def test_mismatched_executor_rejected(self):
        chips = _chips(2)
        shards = [make_method("PDL (64B)", chip) for chip in chips]
        with ShardExecutor(3) as executor:
            with pytest.raises(ConcurrencyError):
                ParallelShardedDriver(shards, executor=executor)


class TestEquivalenceWithSerial:
    """Shards are independent devices driven in identical per-shard
    order, so the parallel driver must leave byte-identical flash."""

    def test_flash_state_and_stats_match_serial(self):
        serial_chips = _chips(4)
        serial = make_method("PDL (64B) x4 gc=cb", serial_chips)
        model = _workload(serial)

        parallel_chips = _chips(4)
        parallel = make_method("PDL (64B) x4 gc=cb par", parallel_chips)
        try:
            parallel_model = _workload(parallel)
            assert parallel_model == model
            for s_chip, p_chip in zip(serial_chips, parallel_chips):
                assert s_chip.stats.totals() == p_chip.stats.totals()
                assert s_chip.clock_us == p_chip.clock_us
                for addr in range(SPEC.n_pages):
                    assert s_chip.peek_data(addr) == p_chip.peek_data(addr)
            for pid, data in model.items():
                assert parallel.read_page(pid) == data
            for shard in parallel.shards:
                check_driver(shard).raise_if_inconsistent()
        finally:
            parallel.close()

    def test_phase_attribution_travels_to_workers(self):
        driver = make_method("PDL (64B) x2 par", _chips(2))
        try:
            rng = random.Random(1)
            with driver.stats.phase("custom_phase"):
                driver.load_pages(
                    (pid, rng.randbytes(PAGE)) for pid in range(8)
                )
            counts = driver.stats.of_phase("custom_phase")
            # The shard drivers push their own inner "load" phase; the
            # outer custom phase must at least exist on the stack the
            # worker uses, i.e. attribution must not leak to the
            # unattributed default.
            assert driver.stats.of_phase("unattributed").total_ops == 0
            assert counts.total_ops + driver.stats.of_phase("load").total_ops > 0
        finally:
            driver.close()


class TestOwnershipGuard:
    def test_gc_hooks_rejected_off_worker_thread(self):
        driver = make_method(
            "PDL (64B) x2 par", _chips(2), gc_config=GcConfig(incremental_steps=1)
        )
        try:
            with pytest.raises(ConcurrencyError):
                driver.shards[0].gc.on_write_begin()
            # Routed through the mailbox, the same hook is legal.
            driver.write_page(0, b"\x00" * PAGE)
        finally:
            driver.close()

    def test_direct_shard_write_bypassing_mailbox_rejected(self):
        driver = make_method("PDL (64B) x2 par", _chips(2))
        try:
            with pytest.raises(ConcurrencyError):
                driver.shards[0].write_page(0, b"\x00" * PAGE)
        finally:
            driver.close()

    def test_unbinding_restores_direct_use(self):
        driver = make_method("PDL (64B) x2 par", _chips(2))
        try:
            for shard in driver.shards:
                shard.gc.bind_owner_thread(None)
            driver.shards[0].write_page(0, b"\x00" * PAGE)
        finally:
            driver.close()


class TestParallelRecovery:
    def test_parallel_scan_matches_serial_scan(self):
        chips = _chips(3)
        driver = make_method("PDL (64B) x3", chips)
        model = _workload(driver, n_updates=150)

        serial, serial_reports = recover_all(chips, parallel=False)
        parallel, parallel_reports = recover_all(chips, parallel=True)
        try:
            assert isinstance(parallel, ParallelShardedDriver)
            for ser, par in zip(serial_reports, parallel_reports):
                assert ser.pages_scanned == par.pages_scanned
                assert ser.base_pages_adopted == par.base_pages_adopted
                assert ser.differentials_adopted == par.differentials_adopted
                assert ser.max_timestamp == par.max_timestamp
            for pid, data in model.items():
                assert parallel.read_page(pid) == data
        finally:
            parallel.executor.shutdown()

    def test_recovered_driver_usable_from_many_threads(self):
        chips = _chips(2)
        driver = make_method("PDL (64B) x2", chips)
        model = _workload(driver, n_updates=100)
        recovered, _ = recover_all(chips, parallel=True)
        try:
            errors = []

            def reader(t):
                try:
                    for pid in range(t, N_PAGES, 4):
                        assert recovered.read_page(pid) == model[pid]
                except BaseException as exc:  # surfaced after join
                    errors.append(exc)

            threads = [
                threading.Thread(target=reader, args=(t,)) for t in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
        finally:
            recovered.executor.shutdown()
