"""Shared fixtures and helpers for the test suite.

Tests run on tiny chip geometries (16 blocks × 8 pages × 256 bytes by
default) so whole-chip scans and GC cycles stay fast; nothing in the
code depends on absolute sizes.
"""

from __future__ import annotations

import random
import sys
from pathlib import Path

import pytest

# Allow running the tests without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.flash.chip import FlashChip  # noqa: E402
from repro.flash.spec import TINY_SPEC, FlashSpec  # noqa: E402


@pytest.fixture
def tiny_spec() -> FlashSpec:
    """16 blocks × 8 pages × 256-byte data areas."""
    return TINY_SPEC


@pytest.fixture
def chip(tiny_spec: FlashSpec) -> FlashChip:
    return FlashChip(tiny_spec)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


def random_page(rng: random.Random, size: int) -> bytes:
    """A random page image of exactly ``size`` bytes."""
    return rng.randbytes(size)


def mutate(rng: random.Random, data: bytes, n_bytes: int) -> bytes:
    """Return ``data`` with ``n_bytes`` random contiguous bytes changed."""
    size = min(n_bytes, len(data))
    offset = rng.randrange(len(data) - size + 1)
    image = bytearray(data)
    image[offset : offset + size] = rng.randbytes(size)
    return bytes(image)
