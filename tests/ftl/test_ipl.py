"""IPL-specific tests: log slots, recreation, merging (Section 3)."""

import pytest

from repro.flash.chip import FlashChip
from repro.flash.spec import FlashSpec
from repro.flash.stats import GC, READ_STEP, WRITE_STEP
from repro.ftl.base import ChangeRun, apply_runs
from repro.ftl.errors import ConfigurationError, OutOfSpaceError
from repro.ftl.ipl import IplDriver, decode_slot, encode_slot


@pytest.fixture
def ipl(chip):
    # 512-byte log region on 256-byte pages -> 2 log pages, 6 data pages
    return IplDriver(chip, log_region_bytes=512)


def _page(driver, fill=0x11):
    return bytes([fill]) * driver.page_size


class TestSlotCodec:
    def test_roundtrip(self):
        runs = [ChangeRun(3, b"abc"), ChangeRun(100, b"\x00\x01")]
        pid, decoded = decode_slot(encode_slot(42, runs))
        assert pid == 42
        assert decoded == runs

    def test_empty_runs(self):
        pid, decoded = decode_slot(encode_slot(7, []))
        assert pid == 7
        assert decoded == []


class TestConfiguration:
    def test_geometry_derived(self, ipl, tiny_spec):
        assert ipl.log_pages_per_block == 2
        assert ipl.data_pages_per_block == 6
        assert ipl.slot_size == tiny_spec.page_data_size // 16
        assert ipl.total_slots == 2 * ipl.slots_per_page

    def test_rejects_log_region_filling_block(self, chip, tiny_spec):
        with pytest.raises(ConfigurationError):
            IplDriver(chip, log_region_bytes=tiny_spec.block_data_size)

    def test_rejects_nonpositive_region(self, chip):
        with pytest.raises(ConfigurationError):
            IplDriver(chip, log_region_bytes=0)

    def test_rejects_insufficient_partial_programs(self):
        spec = FlashSpec(
            n_blocks=8, pages_per_block=8, page_data_size=256,
            page_spare_size=16, max_log_page_programs=2,
        )
        with pytest.raises(ConfigurationError):
            IplDriver(FlashChip(spec), log_region_bytes=512)

    def test_max_database_pages(self, ipl, tiny_spec):
        expected = (tiny_spec.n_blocks - ipl.spare_blocks) * 6
        assert ipl.max_database_pages() == expected

    def test_label(self, chip):
        assert IplDriver(chip, log_region_bytes=1024).name == "IPL (1KB)"
        assert IplDriver(chip, log_region_bytes=500).name == "IPL (500B)"


class TestLogging:
    def test_update_appends_log_not_page(self, ipl, chip):
        base = _page(ipl)
        ipl.load_page(0, base)
        original_addr = 0  # group 0, slot 0
        run = ChangeRun(5, b"\x99\x98")
        ipl.write_page(0, apply_runs(base, [run]), update_logs=[run])
        # the original page is untouched; a log slot was programmed
        assert chip.peek_data(original_addr) == base
        assert ipl.read_page(0) == apply_runs(base, [run])

    def test_write_cost_one_slot(self, ipl, chip):
        ipl.load_page(0, _page(ipl))
        run = ChangeRun(0, b"\x01")
        snap = chip.stats.snapshot()
        ipl.write_page(0, apply_runs(_page(ipl), [run]), update_logs=[run])
        delta = chip.stats.delta_since(snap)
        assert delta.of_phase(WRITE_STEP).writes == 1

    def test_large_update_multiple_slots(self, ipl, chip):
        """Writes scale as ceil(log bytes / slot payload) — Figure 13."""
        base = _page(ipl)
        ipl.load_page(0, base)
        run = ChangeRun(0, b"\x07" * (ipl.slot_size * 2))
        snap = chip.stats.snapshot()
        ipl.write_page(0, apply_runs(base, [run]), update_logs=[run])
        delta = chip.stats.delta_since(snap)
        assert delta.of_phase(WRITE_STEP).writes >= 2
        assert ipl.read_page(0) == apply_runs(base, [run])

    def test_read_cost_grows_with_log_pages(self, ipl, chip):
        base = _page(ipl)
        ipl.load_page(0, base)
        image = base
        # fill more than one log page with this pid's logs
        for i in range(ipl.slots_per_page + 1):
            run = ChangeRun(i, bytes([i]))
            image = apply_runs(image, [run])
            ipl.write_page(0, image, update_logs=[run])
        snap = chip.stats.snapshot()
        assert ipl.read_page(0) == image
        delta = chip.stats.delta_since(snap)
        assert delta.of_phase(READ_STEP).reads == 3  # original + 2 log pages

    def test_without_logs_falls_back_to_whole_page(self, ipl, chip):
        """Loosely-coupled callers degrade to whole-page logging."""
        base = _page(ipl)
        ipl.load_page(0, base)
        new = _page(ipl, 0x55)
        snap = chip.stats.snapshot()
        ipl.write_page(0, new)  # no update_logs
        delta = chip.stats.delta_since(snap)
        expected_slots = -(-len(new) // (ipl.slot_size - 10))  # ceil with headers
        assert delta.of_phase(WRITE_STEP).writes >= expected_slots - 1
        assert ipl.read_page(0) == new


class TestMerging:
    def _fill_region(self, ipl, pid, image):
        """Issue single-slot updates until the region is one slot short."""
        for i in range(ipl.total_slots - 1):
            run = ChangeRun(i % ipl.page_size, bytes([i % 256]))
            image = apply_runs(image, [run])
            ipl.write_page(pid, image, update_logs=[run])
        return image

    def test_merge_triggers_when_region_full(self, ipl, chip):
        base = _page(ipl)
        ipl.load_page(0, base)
        image = self._fill_region(ipl, 0, base)
        assert ipl.merges == 0
        for i in range(2):  # overflow the region
            run = ChangeRun(0, bytes([0xAA + i]))
            image = apply_runs(image, [run])
            ipl.write_page(0, image, update_logs=[run])
        assert ipl.merges == 1
        assert ipl.read_page(0) == image

    def test_merge_moves_group_to_new_block(self, ipl, chip):
        base = _page(ipl)
        ipl.load_page(0, base)
        old_block = ipl._groups[0].block
        image = self._fill_region(ipl, 0, base)
        run = ChangeRun(0, b"\xAB")
        image = apply_runs(image, [run])
        ipl.write_page(0, image, update_logs=[run])
        ipl.write_page(0, image, update_logs=[run])
        assert ipl._groups[0].block != old_block
        assert chip.is_block_erased(old_block) or True  # returned to pool

    def test_merge_cost_in_gc_phase(self, ipl, chip):
        base = _page(ipl)
        ipl.load_page(0, base)
        image = self._fill_region(ipl, 0, base)
        run = ChangeRun(0, b"\xCD")
        image = apply_runs(image, [run])
        ipl.write_page(0, image, update_logs=[run])
        ipl.write_page(0, image, update_logs=[run])
        assert chip.stats.of_phase(GC).erases == 1
        assert chip.stats.of_phase(GC).writes >= 1

    def test_data_survives_many_merges(self, ipl):
        import random

        rng = random.Random(5)
        model = {}
        for pid in range(12):  # spans 2 groups
            model[pid] = _page(ipl, pid)
            ipl.load_page(pid, model[pid])
        for step in range(300):
            pid = rng.randrange(12)
            image = bytearray(model[pid])
            offset = rng.randrange(ipl.page_size - 4)
            patch = rng.randbytes(4)
            image[offset : offset + 4] = patch
            model[pid] = bytes(image)
            ipl.write_page(pid, model[pid], update_logs=[ChangeRun(offset, patch)])
        for pid, expected in model.items():
            assert ipl.read_page(pid) == expected
        assert ipl.merges > 0


class TestCapacity:
    def test_out_of_space_when_groups_exceed_blocks(self, tiny_spec):
        chip = FlashChip(tiny_spec)
        ipl = IplDriver(chip, log_region_bytes=512, spare_blocks=2)
        limit = ipl.max_database_pages()
        with pytest.raises(OutOfSpaceError):
            for pid in range(limit + ipl.data_pages_per_block + 1):
                ipl.load_page(pid, b"\x00" * ipl.page_size)
