"""IPU-specific tests: the in-place update's four-step overwrite."""

import pytest

from repro.flash.stats import WRITE_STEP
from repro.ftl.ipu import IpuDriver


@pytest.fixture
def ipu(chip):
    return IpuDriver(chip)


def _page(driver, fill=0x11):
    return bytes([fill]) * driver.page_size


class TestPlacement:
    def test_mapping_is_fixed(self, ipu):
        ipu.load_page(0, _page(ipu))
        addr = ipu.mapping[0]
        for i in range(5):
            ipu.write_page(0, _page(ipu, i))
        assert ipu.mapping[0] == addr

    def test_sequential_load_placement(self, ipu):
        for pid in range(10):
            ipu.load_page(pid, _page(ipu, pid))
        assert [ipu.mapping[p] for p in range(10)] == list(range(10))


class TestFourStepOverwrite:
    def test_write_cost(self, ipu, chip, tiny_spec):
        """(Npage-1) reads + 1 erase + Npage writes for a full block."""
        ppb = tiny_spec.pages_per_block
        for pid in range(ppb):
            ipu.load_page(pid, _page(ipu, pid))
        snap = chip.stats.snapshot()
        ipu.write_page(0, _page(ipu, 0xEE))
        delta = chip.stats.delta_since(snap)
        assert delta.of_phase(WRITE_STEP).reads == ppb - 1
        assert delta.of_phase(WRITE_STEP).writes == ppb
        assert delta.of_phase(WRITE_STEP).erases == 1

    def test_write_cost_partial_block(self, ipu, chip):
        """Only occupied neighbours are read/rewritten."""
        for pid in range(3):
            ipu.load_page(pid, _page(ipu, pid))
        snap = chip.stats.snapshot()
        ipu.write_page(1, _page(ipu, 0xEE))
        delta = chip.stats.delta_since(snap)
        assert delta.totals().reads == 2
        assert delta.totals().writes == 3
        assert delta.totals().erases == 1

    def test_neighbours_survive_overwrite(self, ipu, tiny_spec):
        ppb = tiny_spec.pages_per_block
        for pid in range(ppb):
            ipu.load_page(pid, _page(ipu, pid))
        ipu.write_page(3, _page(ipu, 0xEE))
        for pid in range(ppb):
            expected = _page(ipu, 0xEE if pid == 3 else pid)
            assert ipu.read_page(pid) == expected

    def test_every_write_erases(self, ipu, chip):
        ipu.load_page(0, _page(ipu))
        for i in range(5):
            ipu.write_page(0, _page(ipu, i))
        assert chip.stats.total_erases == 5
