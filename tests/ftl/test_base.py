"""Unit tests for the driver contract helpers (ChangeRun, apply_runs)."""

import pytest

from repro.flash.chip import FlashChip
from repro.ftl.base import ChangeRun, PageUpdateMethod, apply_runs


class TestChangeRun:
    def test_properties(self):
        run = ChangeRun(10, b"abc")
        assert run.length == 3
        assert run.end == 13

    def test_is_tuple(self):
        offset, data = ChangeRun(5, b"x")
        assert (offset, data) == (5, b"x")


class TestApplyRuns:
    def test_empty_runs_returns_same(self):
        page = b"hello world"
        assert apply_runs(page, []) is page

    def test_single_run(self):
        assert apply_runs(b"aaaa", [ChangeRun(1, b"bb")]) == b"abba"

    def test_runs_apply_in_order(self):
        result = apply_runs(b"....", [ChangeRun(0, b"xx"), ChangeRun(1, b"y")])
        assert result == b"xy.."

    def test_overlapping_runs_last_wins(self):
        result = apply_runs(b"....", [ChangeRun(0, b"ab"), ChangeRun(0, b"c")])
        assert result == b"cb.."

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            apply_runs(b"ab", [ChangeRun(1, b"xy")])
        with pytest.raises(ValueError):
            apply_runs(b"ab", [ChangeRun(-1, b"x")])

    def test_does_not_mutate_input(self):
        page = b"aaaa"
        apply_runs(page, [ChangeRun(0, b"b")])
        assert page == b"aaaa"


class TestAbstractContract:
    def test_cannot_instantiate_base(self, tiny_spec):
        with pytest.raises(TypeError):
            PageUpdateMethod(FlashChip(tiny_spec))  # type: ignore[abstract]

    def test_helpers_via_minimal_subclass(self, tiny_spec):
        class Minimal(PageUpdateMethod):
            def load_page(self, pid, data):
                self._check_page(pid, data)

            def read_page(self, pid):
                return b""

            def write_page(self, pid, data, update_logs=None):
                self._check_page(pid, data)

        chip = FlashChip(tiny_spec)
        driver = Minimal(chip)
        assert driver.page_size == tiny_spec.page_data_size
        assert driver.spec is tiny_spec
        assert driver.stats is chip.stats
        driver.flush()  # default no-op
        driver.end_of_load()  # default no-op
        with pytest.raises(ValueError):
            driver.load_page(0, b"short")
        with pytest.raises(ValueError):
            driver.load_page(-3, b"\x00" * driver.page_size)
