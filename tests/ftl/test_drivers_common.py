"""Behavioural tests shared by all four page-update methods.

Every driver must satisfy the same functional contract: loaded pages read
back exactly, writes are visible to subsequent reads, unknown pages fail,
and sustained update traffic (GC/merging active) never corrupts data.
"""

import random

import pytest

from repro.flash.chip import FlashChip
from repro.ftl.base import ChangeRun, apply_runs
from repro.ftl.errors import UnknownPageError
from repro.methods import make_method

LABELS = ["PDL (64B)", "PDL (256B)", "OPU", "IPU", "IPL (512B)"]


@pytest.fixture(params=LABELS)
def driver(request, tiny_spec):
    chip = FlashChip(tiny_spec)
    return make_method(request.param, chip)


def _random_page(rng, size):
    return rng.randbytes(size)


class TestContract:
    def test_load_then_read(self, driver, rng):
        data = _random_page(rng, driver.page_size)
        driver.load_page(0, data)
        assert driver.read_page(0) == data

    def test_write_then_read(self, driver, rng):
        driver.load_page(0, _random_page(rng, driver.page_size))
        new = _random_page(rng, driver.page_size)
        driver.write_page(0, new, update_logs=[ChangeRun(0, new)])
        assert driver.read_page(0) == new

    def test_partial_update_with_logs(self, driver, rng):
        base = _random_page(rng, driver.page_size)
        driver.load_page(0, base)
        run = ChangeRun(10, b"\x42" * 5)
        new = apply_runs(base, [run])
        driver.write_page(0, new, update_logs=[run])
        assert driver.read_page(0) == new

    def test_unknown_page_read_fails(self, driver):
        with pytest.raises(UnknownPageError):
            driver.read_page(99)

    def test_double_load_fails(self, driver, rng):
        driver.load_page(0, _random_page(rng, driver.page_size))
        with pytest.raises(ValueError):
            driver.load_page(0, _random_page(rng, driver.page_size))

    def test_wrong_page_size_rejected(self, driver):
        with pytest.raises(ValueError):
            driver.load_page(0, b"short")
        with pytest.raises(ValueError):
            driver.write_page(0, b"short")

    def test_negative_pid_rejected(self, driver):
        with pytest.raises(ValueError):
            driver.load_page(-1, b"\x00" * driver.page_size)

    def test_first_write_without_load(self, driver, rng):
        """Growing databases write pages that were never bulk-loaded."""
        data = _random_page(rng, driver.page_size)
        driver.write_page(3, data, update_logs=[ChangeRun(0, data)])
        assert driver.read_page(3) == data

    def test_multiple_pages_isolated(self, driver, rng):
        images = {}
        for pid in range(6):
            images[pid] = _random_page(rng, driver.page_size)
            driver.load_page(pid, images[pid])
        new = _random_page(rng, driver.page_size)
        driver.write_page(2, new, update_logs=[ChangeRun(0, new)])
        images[2] = new
        for pid, expected in images.items():
            assert driver.read_page(pid) == expected

    def test_flush_is_safe_anytime(self, driver, rng):
        driver.flush()
        driver.load_page(0, _random_page(rng, driver.page_size))
        driver.flush()
        new = _random_page(rng, driver.page_size)
        driver.write_page(0, new, update_logs=[ChangeRun(0, new)])
        driver.flush()
        assert driver.read_page(0) == new


class TestSustainedTraffic:
    """Model-based soak: hundreds of updates with GC/merging active."""

    def test_soak(self, driver):
        rng = random.Random(99)
        page_size = driver.page_size
        model = {}
        for pid in range(16):
            model[pid] = rng.randbytes(page_size)
            driver.load_page(pid, model[pid])
        for step in range(400):
            pid = rng.randrange(16)
            image = bytearray(driver.read_page(pid))
            assert bytes(image) == model[pid], f"step {step}: read mismatch"
            size = rng.choice([1, 8, 40, page_size // 2])
            offset = rng.randrange(page_size - size + 1)
            patch = rng.randbytes(size)
            image[offset : offset + size] = patch
            model[pid] = bytes(image)
            driver.write_page(
                pid, model[pid], update_logs=[ChangeRun(offset, patch)]
            )
        for pid, expected in model.items():
            assert driver.read_page(pid) == expected
