"""Unit tests for the GC engine with a scripted relocation handler."""

import pytest

from repro.flash.chip import FlashChip
from repro.flash.spare import PageType, SpareArea
from repro.flash.stats import GC
from repro.ftl.allocator import BlockManager
from repro.ftl.errors import OutOfSpaceError
from repro.ftl.gc import GarbageCollector, greedy_policy


class RecordingHandler:
    """Relocates valid pages verbatim and records the calls."""

    def __init__(self, chip, blocks):
        self.chip = chip
        self.blocks = blocks
        self.relocated = []
        self.finished = []

    def relocate_page(self, addr, data, spare):
        new = self.blocks.allocate(for_gc=True)
        self.chip.program_page(new, data, spare)
        self.blocks.note_valid(new)
        self.relocated.append((addr, new))

    def finish_victim(self, block):
        self.finished.append(block)


@pytest.fixture
def setup(chip):
    blocks = BlockManager(chip, reserve_blocks=2)
    handler = RecordingHandler(chip, blocks)
    gc = GarbageCollector(chip, blocks, handler)
    return chip, blocks, handler, gc


def _fill(chip, blocks, n_pages, valid_every=2):
    """Program pages, marking every ``valid_every``-th one valid."""
    for i in range(n_pages):
        addr = blocks.allocate()
        chip.program_page(addr, b"\x10", SpareArea(type=PageType.DATA, pid=i))
        if i % valid_every == 0:
            blocks.note_valid(addr)


class TestCollection:
    def test_collect_reclaims_garbage(self, setup, tiny_spec):
        chip, blocks, handler, gc = setup
        _fill(chip, blocks, tiny_spec.pages_per_block * 4, valid_every=2)
        before = blocks.free_block_count
        # Drain the pool so collect has work to do.
        while blocks.free_block_count > blocks.reserve_blocks:
            block = blocks._free[0]  # peek
            blocks.allocate()
            for _ in range(tiny_spec.pages_per_block - 1):
                blocks.allocate()
        gc.collect()
        assert blocks.free_block_count > blocks.reserve_blocks
        assert gc.collections >= 1

    def test_valid_pages_survive(self, setup, tiny_spec):
        chip, blocks, handler, gc = setup
        _fill(chip, blocks, tiny_spec.pages_per_block, valid_every=2)
        victim = 0
        expected = {
            chip.peek_spare(a).pid for a in blocks.valid_pages_in(victim)
        }
        gc._reclaim(victim)
        assert handler.finished == [victim]
        survivors = {
            chip.peek_spare(new).pid for _old, new in handler.relocated
        }
        assert survivors == expected
        assert chip.is_block_erased(victim)

    def test_gc_phase_attribution(self, setup, tiny_spec):
        chip, blocks, handler, gc = setup
        _fill(chip, blocks, tiny_spec.pages_per_block, valid_every=2)
        with chip.stats.phase(GC):
            gc._reclaim(0)
        assert chip.stats.of_phase(GC).erases == 1
        assert chip.stats.of_phase(GC).reads >= 1

    def test_out_of_space_when_everything_valid(self, setup, tiny_spec):
        chip, blocks, handler, gc = setup
        # every page valid -> no reclaimable garbage
        for i in range(tiny_spec.n_pages - 2 * tiny_spec.pages_per_block):
            addr = blocks.allocate()
            chip.program_page(addr, b"\x01", SpareArea(type=PageType.DATA, pid=i))
            blocks.note_valid(addr)
        with pytest.raises(OutOfSpaceError):
            for i in range(3 * tiny_spec.pages_per_block):
                addr = blocks.allocate()
                chip.program_page(
                    addr, b"\x01", SpareArea(type=PageType.DATA, pid=10_000 + i)
                )
                blocks.note_valid(addr)


class TestGreedyPolicy:
    def test_picks_most_garbage(self, setup, tiny_spec):
        chip, blocks, handler, gc = setup
        ppb = tiny_spec.pages_per_block
        # block 0: all garbage; block 1: half valid
        _fill(chip, blocks, ppb, valid_every=ppb + 1)
        _fill(chip, blocks, ppb, valid_every=2)
        blocks.allocate()  # open block 2 as active
        assert greedy_policy(blocks) == 0

    def test_none_when_no_candidates(self, chip):
        blocks = BlockManager(chip, reserve_blocks=2)
        assert greedy_policy(blocks) is None
