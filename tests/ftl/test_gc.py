"""Unit tests for the GC engine with a scripted relocation handler."""

import pytest

from repro.flash.chip import FlashChip
from repro.flash.spare import PageType, SpareArea
from repro.flash.stats import GC
from repro.ftl.allocator import BlockManager
from repro.ftl.errors import ConfigurationError, OutOfSpaceError
from repro.ftl.gc import (
    GarbageCollector,
    GcConfig,
    cost_benefit_policy,
    greedy_policy,
    make_victim_policy,
    victim_policy_names,
    wear_aware_policy,
)


class RecordingHandler:
    """Relocates valid pages verbatim and records the calls."""

    def __init__(self, chip, blocks):
        self.chip = chip
        self.blocks = blocks
        self.relocated = []
        self.finished = []

    def relocate_page(self, addr, data, spare):
        new = self.blocks.allocate(for_gc=True)
        self.chip.program_page(new, data, spare)
        self.blocks.note_valid(new)
        self.relocated.append((addr, new))

    def finish_victim(self, block):
        self.finished.append(block)


@pytest.fixture
def setup(chip):
    blocks = BlockManager(chip, reserve_blocks=2)
    handler = RecordingHandler(chip, blocks)
    gc = GarbageCollector(chip, blocks, handler)
    return chip, blocks, handler, gc


def _fill(chip, blocks, n_pages, valid_every=2):
    """Program pages, marking every ``valid_every``-th one valid."""
    for i in range(n_pages):
        addr = blocks.allocate()
        chip.program_page(addr, b"\x10", SpareArea(type=PageType.DATA, pid=i))
        if i % valid_every == 0:
            blocks.note_valid(addr)


class TestCollection:
    def test_collect_reclaims_garbage(self, setup, tiny_spec):
        chip, blocks, handler, gc = setup
        _fill(chip, blocks, tiny_spec.pages_per_block * 4, valid_every=2)
        before = blocks.free_block_count
        # Drain the pool so collect has work to do.
        while blocks.free_block_count > blocks.reserve_blocks:
            block = blocks._free[0]  # peek
            blocks.allocate()
            for _ in range(tiny_spec.pages_per_block - 1):
                blocks.allocate()
        gc.collect()
        assert blocks.free_block_count > blocks.reserve_blocks
        assert gc.collections >= 1

    def test_valid_pages_survive(self, setup, tiny_spec):
        chip, blocks, handler, gc = setup
        _fill(chip, blocks, tiny_spec.pages_per_block, valid_every=2)
        victim = 0
        expected = {
            chip.peek_spare(a).pid for a in blocks.valid_pages_in(victim)
        }
        gc._reclaim(victim)
        assert handler.finished == [victim]
        survivors = {
            chip.peek_spare(new).pid for _old, new in handler.relocated
        }
        assert survivors == expected
        assert chip.is_block_erased(victim)

    def test_gc_phase_attribution(self, setup, tiny_spec):
        chip, blocks, handler, gc = setup
        _fill(chip, blocks, tiny_spec.pages_per_block, valid_every=2)
        with chip.stats.phase(GC):
            gc._reclaim(0)
        assert chip.stats.of_phase(GC).erases == 1
        assert chip.stats.of_phase(GC).reads >= 1

    def test_out_of_space_when_everything_valid(self, setup, tiny_spec):
        chip, blocks, handler, gc = setup
        # every page valid -> no reclaimable garbage
        for i in range(tiny_spec.n_pages - 2 * tiny_spec.pages_per_block):
            addr = blocks.allocate()
            chip.program_page(addr, b"\x01", SpareArea(type=PageType.DATA, pid=i))
            blocks.note_valid(addr)
        with pytest.raises(OutOfSpaceError):
            for i in range(3 * tiny_spec.pages_per_block):
                addr = blocks.allocate()
                chip.program_page(
                    addr, b"\x01", SpareArea(type=PageType.DATA, pid=10_000 + i)
                )
                blocks.note_valid(addr)


class TestGreedyPolicy:
    def test_picks_most_garbage(self, setup, tiny_spec):
        chip, blocks, handler, gc = setup
        ppb = tiny_spec.pages_per_block
        # block 0: all garbage; block 1: half valid
        _fill(chip, blocks, ppb, valid_every=ppb + 1)
        _fill(chip, blocks, ppb, valid_every=2)
        blocks.allocate()  # open block 2 as active
        assert greedy_policy(blocks) == 0

    def test_none_when_no_candidates(self, chip):
        blocks = BlockManager(chip, reserve_blocks=2)
        assert greedy_policy(blocks) is None

    def test_tie_broken_by_lowest_block_id(self, setup, tiny_spec):
        chip, blocks, handler, gc = setup
        ppb = tiny_spec.pages_per_block
        # Blocks 0 and 1: identical garbage, identical (zero) wear.
        _fill(chip, blocks, 2 * ppb, valid_every=2)
        blocks.allocate()  # open block 2 as active
        assert blocks.garbage_in(0) == blocks.garbage_in(1)
        assert greedy_policy(blocks) == 0

    def test_tie_broken_by_lowest_erase_count(self, tiny_spec):
        # Pre-wear block 0 before any allocation, so blocks 0 and 1 end
        # up with equal garbage but different erase counts.
        chip = FlashChip(tiny_spec)
        for _ in range(3):
            chip.erase_block(0)
        blocks = BlockManager(chip, reserve_blocks=2)
        _fill(chip, blocks, 2 * tiny_spec.pages_per_block, valid_every=2)
        blocks.allocate()  # open block 2 as active
        assert blocks.garbage_in(0) == blocks.garbage_in(1)
        assert blocks.erase_count(0) == 3
        assert greedy_policy(blocks) == 1


class TestVictimPolicyRegistry:
    def test_builtin_names_registered(self):
        for name in ("greedy", "cb", "cost-benefit", "wear"):
            assert name in victim_policy_names()
            assert callable(make_victim_policy(name))

    def test_lookup_is_case_insensitive(self):
        assert make_victim_policy("GREEDY") is greedy_policy

    def test_unknown_name_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="unknown victim policy"):
            make_victim_policy("lru")

    def test_ext_round_robin_registers_on_import(self):
        import repro.ext.wear_leveling  # noqa: F401

        assert "rr" in victim_policy_names()

    def test_config_resolves_registered_policy(self, chip):
        blocks = BlockManager(chip, reserve_blocks=2)
        handler = RecordingHandler(chip, blocks)
        gc = GarbageCollector(
            chip, blocks, handler, config=GcConfig(policy="cb")
        )
        assert gc.policy is cost_benefit_policy

    def test_explicit_policy_wins_over_config(self, chip):
        blocks = BlockManager(chip, reserve_blocks=2)
        handler = RecordingHandler(chip, blocks)
        gc = GarbageCollector(
            chip, blocks, handler, policy=greedy_policy,
            config=GcConfig(policy="cb"),
        )
        assert gc.policy is greedy_policy


class TestCostBenefitPolicy:
    def test_prefers_old_sparse_block_over_young_denser_one(self, chip, tiny_spec):
        blocks = BlockManager(chip, reserve_blocks=2)
        ppb = tiny_spec.pages_per_block
        # Block 0: half valid, written early (old).
        _fill(chip, blocks, ppb, valid_every=2)
        # Age block 0 by issuing unrelated reads (advances the clock).
        for _ in range(400):
            chip.read_spare(0)
        # Block 1: mostly garbage but freshly written (young).
        _fill(chip, blocks, ppb, valid_every=4)
        blocks.allocate()  # open block 2 as active
        assert blocks.garbage_in(1) > blocks.garbage_in(0)
        assert greedy_policy(blocks) == 1
        assert cost_benefit_policy(blocks) == 0

    def test_fully_garbage_block_always_wins(self, chip, tiny_spec):
        blocks = BlockManager(chip, reserve_blocks=2)
        ppb = tiny_spec.pages_per_block
        _fill(chip, blocks, ppb, valid_every=2)      # block 0: half valid
        _fill(chip, blocks, ppb, valid_every=ppb + 1)  # block 1: all garbage
        blocks.allocate()
        assert cost_benefit_policy(blocks) == 1


class TestWearAwarePolicy:
    def test_discounts_worn_blocks(self, tiny_spec):
        chip = FlashChip(tiny_spec)
        for _ in range(8):
            chip.erase_block(0)
        blocks = BlockManager(chip, reserve_blocks=2)
        ppb = tiny_spec.pages_per_block
        # Block 0 (worn): all garbage; block 1 (fresh): half valid.
        _fill(chip, blocks, ppb, valid_every=ppb + 1)
        _fill(chip, blocks, ppb, valid_every=2)
        blocks.allocate()
        assert greedy_policy(blocks) == 0
        assert wear_aware_policy(wear_weight=5.0)(blocks) == 1

    def test_zero_weight_degenerates_to_greedy(self, setup, tiny_spec):
        chip, blocks, handler, gc = setup
        ppb = tiny_spec.pages_per_block
        _fill(chip, blocks, ppb, valid_every=ppb + 1)
        _fill(chip, blocks, ppb, valid_every=2)
        blocks.allocate()
        assert wear_aware_policy(wear_weight=0.0)(blocks) == greedy_policy(blocks)


class TestGcConfig:
    def test_defaults_are_stop_the_world_greedy(self):
        config = GcConfig()
        assert config.policy == "greedy"
        assert not config.incremental
        assert not config.hot_cold

    def test_validation(self):
        with pytest.raises(ValueError):
            GcConfig(incremental_steps=-1)
        with pytest.raises(ValueError):
            GcConfig(trigger_blocks=0)

    def test_unknown_policy_rejected_at_engine_construction(self, chip):
        blocks = BlockManager(chip, reserve_blocks=2)
        handler = RecordingHandler(chip, blocks)
        with pytest.raises(ConfigurationError):
            GarbageCollector(chip, blocks, handler, config=GcConfig(policy="nope"))


def _fill_to_debt(chip, blocks, gc, tiny_spec):
    """Fill every non-reserve block half-valid so the pool sits at the
    reserve level with relocatable victims everywhere.  The allocation
    backstop is disabled during the fill so no collection runs early."""
    blocks.set_gc(None)
    i = 0
    while blocks.free_block_count > blocks.reserve_blocks:
        _fill(chip, blocks, tiny_spec.pages_per_block, valid_every=2)
        i += 1
    blocks.set_gc(gc.collect)


class TestIncrementalSteps:
    def _setup(self, chip, steps=2):
        blocks = BlockManager(chip, reserve_blocks=2)
        handler = RecordingHandler(chip, blocks)
        gc = GarbageCollector(
            chip, blocks, handler, config=GcConfig(incremental_steps=steps)
        )
        return blocks, handler, gc

    def test_step_bounds_relocations_and_tracks_victim(self, chip, tiny_spec):
        blocks, handler, gc = self._setup(chip)
        _fill_to_debt(chip, blocks, gc, tiny_spec)
        assert gc.gc_debt() > 0
        moved = gc.step(2)
        assert moved == 2
        assert len(handler.relocated) == 2
        assert gc.in_flight_victim is not None
        assert chip.stats.gc_steps == 1
        assert chip.stats.gc_step_pages == 2

    def test_victim_erased_once_drained(self, chip, tiny_spec):
        blocks, handler, gc = self._setup(chip)
        _fill_to_debt(chip, blocks, gc, tiny_spec)
        victim = None
        for _ in range(tiny_spec.pages_per_block * 2):
            gc.step(2)
            victim = victim if victim is not None else gc.in_flight_victim
            if gc.collections:
                break
        assert gc.collections >= 1
        assert handler.finished  # finish_victim ran before the erase
        assert chip.is_block_erased(handler.finished[0])

    def test_pages_invalidated_between_steps_are_skipped(self, chip, tiny_spec):
        blocks, handler, gc = self._setup(chip)
        _fill_to_debt(chip, blocks, gc, tiny_spec)
        gc.step(1)
        victim = gc.in_flight_victim
        assert victim is not None
        # A concurrent write supersedes the victim's remaining pages.
        remaining = blocks.valid_pages_in(victim)
        for addr in remaining:
            blocks.note_invalid(addr)
        before = len(handler.relocated)
        gc.step(tiny_spec.pages_per_block)
        # None of the superseded pages was relocated; the victim completed
        # anyway (the step may then have moved on to a fresh victim).
        ppb = tiny_spec.pages_per_block
        assert all(
            old // ppb != victim for old, _new in handler.relocated[before:]
        )
        assert victim in handler.finished
        assert chip.is_block_erased(victim) or blocks.active_block == victim

    def test_on_write_hooks_meter_stalls(self, chip, tiny_spec):
        blocks, handler, gc = self._setup(chip)
        _fill_to_debt(chip, blocks, gc, tiny_spec)
        gc.on_write_begin()
        gc.on_write_end()
        samples = chip.stats.write_stall_us
        assert len(samples) == 1
        assert samples[0] > 0.0  # this write absorbed a step
        # Clear the debt entirely, then the hooks record a zero stall.
        while gc.gc_debt() > 0 and gc.step(tiny_spec.pages_per_block):
            pass
        gc.collect()
        assert gc.in_flight_victim is None
        gc.on_write_begin()
        gc.on_write_end()
        assert chip.stats.write_stall_us[-1] == 0.0

    def test_backstop_collect_finishes_in_flight_victim(self, chip, tiny_spec):
        blocks, handler, gc = self._setup(chip)
        _fill_to_debt(chip, blocks, gc, tiny_spec)
        gc.step(1)
        victim = gc.in_flight_victim
        assert victim is not None
        gc.collect()
        assert gc.in_flight_victim is None
        assert victim in handler.finished
        assert blocks.free_block_count > blocks.reserve_blocks


class TestBackendDeterminism:
    """Regression: memory- and file-backed chips must pick identical
    victims for an identical workload (the tie-break rule, satellite 1)."""

    def _run(self, backend_kind, tmp_path):
        import random

        from repro.core.pdl import PdlDriver
        from repro.flash.backend import FileBackend
        from repro.flash.spec import FlashSpec

        spec = FlashSpec(
            n_blocks=12, pages_per_block=8, page_data_size=256, page_spare_size=16
        )
        if backend_kind == "file":
            backend = FileBackend.create(tmp_path / "det.flash", spec)
            chip = FlashChip(spec, backend=backend)
        else:
            chip = FlashChip(spec)
        victims = []

        def recording_policy(blocks):
            victim = greedy_policy(blocks)
            victims.append(victim)
            return victim

        driver = PdlDriver(chip, max_differential_size=64, victim_policy=recording_policy)
        rng = random.Random(99)
        images = {pid: rng.randbytes(256) for pid in range(10)}
        for pid, data in images.items():
            driver.load_page(pid, data)
        for _ in range(300):
            pid = rng.randrange(10)
            image = bytearray(images[pid])
            offset = rng.randrange(220)
            image[offset : offset + 30] = rng.randbytes(30)
            images[pid] = bytes(image)
            driver.write_page(pid, images[pid])
        chip.close()
        return victims

    def test_identical_victim_sequences(self, tmp_path):
        memory_victims = self._run("memory", tmp_path)
        file_victims = self._run("file", tmp_path)
        assert len(memory_victims) > 0
        assert memory_victims == file_victims
