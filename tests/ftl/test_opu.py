"""OPU-specific tests: cost model and out-place mechanics (Section 3)."""

import pytest

from repro.flash.chip import FlashChip
from repro.flash.stats import GC, READ_STEP, WRITE_STEP
from repro.ftl.opu import OpuDriver


@pytest.fixture
def opu(chip):
    return OpuDriver(chip)


def _page(driver, fill=0x11):
    return bytes([fill]) * driver.page_size


class TestCostModel:
    def test_read_costs_one_read(self, opu, chip):
        opu.load_page(0, _page(opu))
        snap = chip.stats.snapshot()
        opu.read_page(0)
        delta = chip.stats.delta_since(snap)
        assert delta.of_phase(READ_STEP).reads == 1
        assert delta.totals().writes == 0

    def test_write_costs_two_writes(self, opu, chip):
        """Program the new copy + obsolete the old one (Figure 12b)."""
        opu.load_page(0, _page(opu))
        snap = chip.stats.snapshot()
        opu.write_page(0, _page(opu, 0x22))
        delta = chip.stats.delta_since(snap)
        assert delta.of_phase(WRITE_STEP).writes == 2
        assert delta.of_phase(WRITE_STEP).reads == 0

    def test_first_write_costs_one_write(self, opu, chip):
        snap = chip.stats.snapshot()
        opu.write_page(0, _page(opu))
        delta = chip.stats.delta_since(snap)
        assert delta.totals().writes == 1


class TestOutPlaceMechanics:
    def test_write_moves_physical_page(self, opu):
        opu.load_page(0, _page(opu))
        old = opu.mapping[0]
        opu.write_page(0, _page(opu, 0x22))
        assert opu.mapping[0] != old

    def test_old_copy_marked_obsolete(self, opu, chip):
        opu.load_page(0, _page(opu))
        old = opu.mapping[0]
        opu.write_page(0, _page(opu, 0x22))
        assert chip.peek_spare(old).obsolete
        assert not chip.peek_spare(opu.mapping[0]).obsolete

    def test_update_logs_ignored(self, opu):
        """OPU is loosely-coupled: logs may be passed but are unused."""
        opu.load_page(0, _page(opu))
        opu.write_page(0, _page(opu, 0x33), update_logs=[])
        assert opu.read_page(0) == _page(opu, 0x33)
        assert not opu.tightly_coupled


class TestGarbageCollection:
    def test_gc_reclaims_and_preserves(self, opu, chip, tiny_spec):
        """Sustained overwrites force GC; every page stays readable."""
        n_pages = 16
        for pid in range(n_pages):
            opu.load_page(pid, _page(opu, pid))
        writes = tiny_spec.n_pages  # enough to wrap the chip
        for i in range(writes):
            pid = i % n_pages
            opu.write_page(pid, bytes([pid, i % 256]) + _page(opu, pid)[2:])
        assert chip.stats.of_phase(GC).erases > 0
        for pid in range(n_pages):
            data = opu.read_page(pid)
            assert data[0] == pid

    def test_gc_relocation_updates_mapping(self, opu, chip, tiny_spec):
        for pid in range(8):
            opu.load_page(pid, _page(opu, pid))
        for i in range(tiny_spec.n_pages):
            opu.write_page(i % 8, _page(opu, i % 8))
        # mappings must point at valid, non-obsolete pages
        for pid, addr in opu.mapping.items():
            spare = chip.peek_spare(addr)
            assert spare.pid == pid
            assert spare.is_valid
