"""Unit tests for the block manager (allocation, validity, rebuild)."""

import pytest

from repro.flash.chip import FlashChip
from repro.flash.spare import PageType, SpareArea
from repro.ftl.allocator import BlockManager
from repro.ftl.errors import OutOfSpaceError


@pytest.fixture
def blocks(chip):
    return BlockManager(chip, reserve_blocks=2)


class TestAllocation:
    def test_sequential_within_block(self, blocks, tiny_spec):
        addrs = [blocks.allocate() for _ in range(tiny_spec.pages_per_block)]
        assert addrs == list(range(tiny_spec.pages_per_block))

    def test_crosses_block_boundary(self, blocks, tiny_spec):
        for _ in range(tiny_spec.pages_per_block):
            blocks.allocate()
        next_addr = blocks.allocate()
        assert next_addr // tiny_spec.pages_per_block != 0

    def test_exhaustion_raises(self, chip, tiny_spec):
        blocks = BlockManager(chip, reserve_blocks=1)
        with pytest.raises(OutOfSpaceError):
            for _ in range(tiny_spec.n_pages + 1):
                blocks.allocate()

    def test_gc_invoked_at_reserve(self, blocks, tiny_spec):
        calls = []

        def fake_gc():
            calls.append(True)
            # free one block artificially
            victim = next(iter(blocks.victim_candidates()))
            blocks.chip.erase_block(victim)
            blocks.on_block_erased(victim)

        blocks.set_gc(fake_gc)
        # run the pool down to the reserve
        for _ in range(tiny_spec.n_pages - 2 * tiny_spec.pages_per_block):
            blocks.allocate()
        assert blocks.free_block_count <= blocks.reserve_blocks + 1
        blocks.allocate()  # eventually triggers gc
        for _ in range(tiny_spec.pages_per_block * 2):
            blocks.allocate()
        assert calls

    def test_gc_allocation_skips_collector(self, blocks, tiny_spec):
        blocks.set_gc(lambda: (_ for _ in ()).throw(AssertionError("gc ran")))
        for _ in range(tiny_spec.n_pages - 2 * tiny_spec.pages_per_block):
            blocks.allocate(for_gc=True)  # may consume the reserve silently

    def test_reserve_validation(self, chip):
        with pytest.raises(ValueError):
            BlockManager(chip, reserve_blocks=0)
        with pytest.raises(ValueError):
            BlockManager(chip, reserve_blocks=chip.spec.n_blocks)


class TestValidity:
    def test_note_valid_counts(self, blocks):
        addr = blocks.allocate()
        blocks.note_valid(addr)
        assert blocks.is_valid(addr)
        assert blocks.valid_count(0) == 1

    def test_note_valid_idempotent(self, blocks):
        addr = blocks.allocate()
        blocks.note_valid(addr)
        blocks.note_valid(addr)
        assert blocks.valid_count(0) == 1

    def test_note_invalid(self, blocks):
        addr = blocks.allocate()
        blocks.note_valid(addr)
        blocks.note_invalid(addr)
        assert not blocks.is_valid(addr)
        assert blocks.valid_count(0) == 0

    def test_valid_pages_in(self, blocks):
        a = blocks.allocate()
        b = blocks.allocate()
        blocks.note_valid(a)
        blocks.note_valid(b)
        blocks.note_invalid(a)
        assert blocks.valid_pages_in(0) == [b]

    def test_utilization(self, blocks, tiny_spec):
        for _ in range(tiny_spec.pages_per_block):
            blocks.note_valid(blocks.allocate())
        assert blocks.utilization() == pytest.approx(1.0 / tiny_spec.n_blocks)


class TestVictims:
    def test_active_block_not_candidate(self, blocks):
        blocks.allocate()
        assert blocks.active_block not in set(blocks.victim_candidates())

    def test_free_blocks_not_candidates(self, blocks, tiny_spec):
        # seal block 0 with garbage
        for _ in range(tiny_spec.pages_per_block):
            blocks.allocate()
        blocks.allocate()  # opens block 1 (now active)
        candidates = set(blocks.victim_candidates())
        assert candidates == {0}

    def test_garbage_in(self, blocks, tiny_spec):
        addr = blocks.allocate()
        blocks.note_valid(addr)
        assert blocks.garbage_in(0) == tiny_spec.pages_per_block - 1


class TestBlockLifecycle:
    def test_on_block_erased_returns_to_pool(self, blocks, chip, tiny_spec):
        for _ in range(tiny_spec.pages_per_block):
            blocks.note_valid(blocks.allocate())
        free_before = blocks.free_block_count
        chip.erase_block(0)
        blocks.on_block_erased(0)
        assert blocks.free_block_count == free_before + 1
        assert blocks.valid_count(0) == 0
        assert blocks.is_free(0)


class TestExcludedRegion:
    def test_excluded_blocks_never_allocated(self, chip, tiny_spec):
        blocks = BlockManager(chip, reserve_blocks=2, exclude_blocks=3)
        seen_blocks = set()
        for _ in range((tiny_spec.n_blocks - 5) * tiny_spec.pages_per_block):
            seen_blocks.add(blocks.allocate() // tiny_spec.pages_per_block)
        assert seen_blocks.isdisjoint({0, 1, 2})

    def test_excluded_blocks_never_victims(self, chip):
        blocks = BlockManager(chip, reserve_blocks=2, exclude_blocks=3)
        assert set(blocks.victim_candidates()).isdisjoint({0, 1, 2})

    def test_rebuild_keeps_exclusion(self, chip):
        blocks = BlockManager(chip, reserve_blocks=2, exclude_blocks=2)
        blocks.rebuild(set())
        assert not blocks.is_free(0)
        assert not blocks.is_free(1)
        assert blocks.free_block_count == chip.spec.n_blocks - 2


class TestRebuild:
    def test_rebuild_classifies_blocks(self, chip, tiny_spec):
        blocks = BlockManager(chip, reserve_blocks=2)
        # program one page in block 3 so it is sealed, leave others erased
        chip.program_page(
            3 * tiny_spec.pages_per_block, b"\x00", SpareArea(type=PageType.DATA)
        )
        blocks.rebuild({3 * tiny_spec.pages_per_block})
        assert not blocks.is_free(3)
        assert blocks.free_block_count == tiny_spec.n_blocks - 1
        assert blocks.valid_count(3) == 1

    def test_rebuild_resets_allocation_point(self, chip):
        blocks = BlockManager(chip, reserve_blocks=2)
        blocks.allocate()
        blocks.rebuild(set())
        assert blocks.active_block is None
