"""Unit tests for the block manager (allocation, validity, rebuild)."""

import pytest

from repro.flash.chip import FlashChip
from repro.flash.spare import PageType, SpareArea
from repro.ftl.allocator import BlockManager
from repro.ftl.errors import OutOfSpaceError


@pytest.fixture
def blocks(chip):
    return BlockManager(chip, reserve_blocks=2)


class TestAllocation:
    def test_sequential_within_block(self, blocks, tiny_spec):
        addrs = [blocks.allocate() for _ in range(tiny_spec.pages_per_block)]
        assert addrs == list(range(tiny_spec.pages_per_block))

    def test_crosses_block_boundary(self, blocks, tiny_spec):
        for _ in range(tiny_spec.pages_per_block):
            blocks.allocate()
        next_addr = blocks.allocate()
        assert next_addr // tiny_spec.pages_per_block != 0

    def test_exhaustion_raises(self, chip, tiny_spec):
        blocks = BlockManager(chip, reserve_blocks=1)
        with pytest.raises(OutOfSpaceError):
            for _ in range(tiny_spec.n_pages + 1):
                blocks.allocate()

    def test_gc_invoked_at_reserve(self, blocks, tiny_spec):
        calls = []

        def fake_gc():
            calls.append(True)
            # free one block artificially
            victim = next(iter(blocks.victim_candidates()))
            blocks.chip.erase_block(victim)
            blocks.on_block_erased(victim)

        blocks.set_gc(fake_gc)
        # run the pool down to the reserve
        for _ in range(tiny_spec.n_pages - 2 * tiny_spec.pages_per_block):
            blocks.allocate()
        assert blocks.free_block_count <= blocks.reserve_blocks + 1
        blocks.allocate()  # eventually triggers gc
        for _ in range(tiny_spec.pages_per_block * 2):
            blocks.allocate()
        assert calls

    def test_gc_allocation_skips_collector(self, blocks, tiny_spec):
        blocks.set_gc(lambda: (_ for _ in ()).throw(AssertionError("gc ran")))
        for _ in range(tiny_spec.n_pages - 2 * tiny_spec.pages_per_block):
            blocks.allocate(for_gc=True)  # may consume the reserve silently

    def test_reserve_validation(self, chip):
        with pytest.raises(ValueError):
            BlockManager(chip, reserve_blocks=0)
        with pytest.raises(ValueError):
            BlockManager(chip, reserve_blocks=chip.spec.n_blocks)


class TestValidity:
    def test_note_valid_counts(self, blocks):
        addr = blocks.allocate()
        blocks.note_valid(addr)
        assert blocks.is_valid(addr)
        assert blocks.valid_count(0) == 1

    def test_note_valid_idempotent(self, blocks):
        addr = blocks.allocate()
        blocks.note_valid(addr)
        blocks.note_valid(addr)
        assert blocks.valid_count(0) == 1

    def test_note_invalid(self, blocks):
        addr = blocks.allocate()
        blocks.note_valid(addr)
        blocks.note_invalid(addr)
        assert not blocks.is_valid(addr)
        assert blocks.valid_count(0) == 0

    def test_valid_pages_in(self, blocks):
        a = blocks.allocate()
        b = blocks.allocate()
        blocks.note_valid(a)
        blocks.note_valid(b)
        blocks.note_invalid(a)
        assert blocks.valid_pages_in(0) == [b]

    def test_utilization(self, blocks, tiny_spec):
        for _ in range(tiny_spec.pages_per_block):
            blocks.note_valid(blocks.allocate())
        assert blocks.utilization() == pytest.approx(1.0 / tiny_spec.n_blocks)


class TestVictims:
    def test_active_block_not_candidate(self, blocks):
        blocks.allocate()
        assert blocks.active_block not in set(blocks.victim_candidates())

    def test_free_blocks_not_candidates(self, blocks, tiny_spec):
        # seal block 0 with garbage
        for _ in range(tiny_spec.pages_per_block):
            blocks.allocate()
        blocks.allocate()  # opens block 1 (now active)
        candidates = set(blocks.victim_candidates())
        assert candidates == {0}

    def test_garbage_in(self, blocks, tiny_spec):
        addr = blocks.allocate()
        blocks.note_valid(addr)
        assert blocks.garbage_in(0) == tiny_spec.pages_per_block - 1


class TestBlockLifecycle:
    def test_on_block_erased_returns_to_pool(self, blocks, chip, tiny_spec):
        for _ in range(tiny_spec.pages_per_block):
            blocks.note_valid(blocks.allocate())
        free_before = blocks.free_block_count
        chip.erase_block(0)
        blocks.on_block_erased(0)
        assert blocks.free_block_count == free_before + 1
        assert blocks.valid_count(0) == 0
        assert blocks.is_free(0)


class TestExcludedRegion:
    def test_excluded_blocks_never_allocated(self, chip, tiny_spec):
        blocks = BlockManager(chip, reserve_blocks=2, exclude_blocks=3)
        seen_blocks = set()
        for _ in range((tiny_spec.n_blocks - 5) * tiny_spec.pages_per_block):
            seen_blocks.add(blocks.allocate() // tiny_spec.pages_per_block)
        assert seen_blocks.isdisjoint({0, 1, 2})

    def test_excluded_blocks_never_victims(self, chip):
        blocks = BlockManager(chip, reserve_blocks=2, exclude_blocks=3)
        assert set(blocks.victim_candidates()).isdisjoint({0, 1, 2})

    def test_rebuild_keeps_exclusion(self, chip):
        blocks = BlockManager(chip, reserve_blocks=2, exclude_blocks=2)
        blocks.rebuild(set())
        assert not blocks.is_free(0)
        assert not blocks.is_free(1)
        assert blocks.free_block_count == chip.spec.n_blocks - 2


class TestRebuild:
    def test_rebuild_classifies_blocks(self, chip, tiny_spec):
        blocks = BlockManager(chip, reserve_blocks=2)
        # program one page in block 3 so it is sealed, leave others erased
        chip.program_page(
            3 * tiny_spec.pages_per_block, b"\x00", SpareArea(type=PageType.DATA)
        )
        blocks.rebuild({3 * tiny_spec.pages_per_block})
        assert not blocks.is_free(3)
        assert blocks.free_block_count == tiny_spec.n_blocks - 1
        assert blocks.valid_count(3) == 1

    def test_rebuild_resets_allocation_point(self, chip):
        blocks = BlockManager(chip, reserve_blocks=2)
        blocks.allocate()
        blocks.rebuild(set())
        assert blocks.active_block is None


class TestStreams:
    """Hot/cold append streams: independent active blocks, shared pool."""

    def test_streams_use_distinct_blocks(self, blocks, tiny_spec):
        from repro.ftl.allocator import COLD_STREAM, HOT_STREAM

        cold = blocks.allocate(stream=COLD_STREAM)
        hot = blocks.allocate(stream=HOT_STREAM)
        ppb = tiny_spec.pages_per_block
        assert cold // ppb != hot // ppb
        assert set(blocks.active_blocks()) == {cold // ppb, hot // ppb}

    def test_streams_interleave_without_mixing(self, blocks, tiny_spec):
        from repro.ftl.allocator import COLD_STREAM, HOT_STREAM

        ppb = tiny_spec.pages_per_block
        cold_addrs = []
        hot_addrs = []
        for _ in range(ppb // 2):
            cold_addrs.append(blocks.allocate(stream=COLD_STREAM))
            hot_addrs.append(blocks.allocate(stream=HOT_STREAM))
        assert len({a // ppb for a in cold_addrs}) == 1
        assert len({a // ppb for a in hot_addrs}) == 1
        assert {a // ppb for a in cold_addrs} != {a // ppb for a in hot_addrs}

    def test_default_stream_is_cold(self, blocks):
        from repro.ftl.allocator import COLD_STREAM

        addr = blocks.allocate()
        assert blocks.active_block == addr // blocks.spec.pages_per_block
        assert blocks.pages_left(COLD_STREAM) == blocks.pages_left_in_active

    def test_pages_left_tracked_per_stream(self, blocks, tiny_spec):
        from repro.ftl.allocator import COLD_STREAM, HOT_STREAM

        assert blocks.pages_left(HOT_STREAM) == 0  # stream not open yet
        blocks.allocate(stream=HOT_STREAM)
        assert blocks.pages_left(HOT_STREAM) == tiny_spec.pages_per_block - 1
        assert blocks.pages_left(COLD_STREAM) == 0

    def test_every_active_block_excluded_from_victims(self, blocks, tiny_spec):
        from repro.ftl.allocator import COLD_STREAM, HOT_STREAM

        blocks.allocate(stream=COLD_STREAM)
        blocks.allocate(stream=HOT_STREAM)
        candidates = set(blocks.victim_candidates())
        for active in blocks.active_blocks():
            assert active not in candidates

    def test_rebuild_clears_all_streams(self, blocks, chip):
        from repro.ftl.allocator import HOT_STREAM

        blocks.allocate()
        blocks.allocate(stream=HOT_STREAM)
        blocks.rebuild(set())
        assert blocks.active_block is None
        assert blocks.active_blocks() == []


class TestBlockMetadata:
    """Per-block age and wear, the victim-policy inputs."""

    def test_block_age_advances_with_the_clock(self, blocks, chip):
        addr = blocks.allocate()
        chip.program_page(addr, b"\x01", SpareArea(type=PageType.DATA, pid=0))
        blocks.note_valid(addr)
        block = addr // blocks.spec.pages_per_block
        age_then = blocks.block_age(block)
        for _ in range(10):
            chip.read_spare(0)
        assert blocks.block_age(block) > age_then

    def test_note_valid_resets_age(self, blocks, chip):
        a1 = blocks.allocate()
        chip.program_page(a1, b"\x01", SpareArea(type=PageType.DATA, pid=0))
        blocks.note_valid(a1)
        for _ in range(10):
            chip.read_spare(0)
        block = a1 // blocks.spec.pages_per_block
        aged = blocks.block_age(block)
        a2 = blocks.allocate()
        chip.program_page(a2, b"\x02", SpareArea(type=PageType.DATA, pid=1))
        blocks.note_valid(a2)
        assert blocks.block_age(block) < aged

    def test_erase_count_delegates_to_the_chip(self, blocks, chip):
        assert blocks.erase_count(3) == 0
        chip.erase_block(3)
        assert blocks.erase_count(3) == 1


class TestReuseAfterGcOpensBlock:
    """Regression: the backstop GC may open a fresh active block for its
    relocations; the interrupted allocation must reuse its tail instead
    of popping (and stranding) yet another block."""

    def test_block_opened_by_gc_is_not_abandoned(self, chip, tiny_spec):
        blocks = BlockManager(chip, reserve_blocks=2)

        def relocating_gc():
            # Mimic a collection: relocate one page (opening a new active
            # block with reserve pages), then erase a garbage block.
            new = blocks.allocate(for_gc=True)
            chip.program_page(new, b"\xaa", SpareArea(type=PageType.DATA, pid=0))
            blocks.note_valid(new)
            victim = next(
                b for b in blocks.victim_candidates() if blocks.valid_count(b) == 0
            )
            chip.erase_block(victim)
            blocks.on_block_erased(victim)

        blocks.set_gc(relocating_gc)
        ppb = tiny_spec.pages_per_block
        # Exhaust the pool down to the reserve with garbage blocks.
        while blocks.free_block_count > blocks.reserve_blocks:
            for _ in range(ppb):
                blocks.allocate()
        # The next block-opening allocation triggers the GC above, which
        # itself opens a new active block; the allocation must continue
        # in that block's tail.
        for _ in range(ppb):
            blocks.allocate()
        active = blocks.active_block
        assert blocks.valid_count(active) >= 1  # the GC relocation's page
