"""Property-based tests for the spare-area codec.

The codec is the on-flash metadata contract every driver, the crash
recovery scan, and fsck all share — these properties pin it down over
the whole input space: every page type, every spare size from
header-only up, the optional checksum slot and its reserved all-ones
sentinel, and the decode-only CORRUPT path for damaged type bytes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.spare import (
    CHECKSUM_HEADER_SIZE,
    HEADER_SIZE,
    NO_CHECKSUM,
    NO_PID,
    NO_TS,
    PageType,
    SpareArea,
    data_checksum,
    erased_spare,
)

ENCODABLE_TYPES = [t for t in PageType if t is not PageType.CORRUPT]

spare_sizes = st.sampled_from([HEADER_SIZE, CHECKSUM_HEADER_SIZE, 32, 64])
checksum_sizes = st.sampled_from([CHECKSUM_HEADER_SIZE, 32, 64])
pids = st.none() | st.integers(0, NO_PID - 1)
timestamps = st.none() | st.integers(0, NO_TS - 1)
checksums = st.none() | st.integers(0, NO_CHECKSUM - 1)

spares = st.builds(
    SpareArea,
    type=st.sampled_from(ENCODABLE_TYPES),
    obsolete=st.booleans(),
    pid=pids,
    timestamp=timestamps,
    checksum=checksums,
)


class TestRoundTrip:
    @given(spare=spares, size=checksum_sizes)
    @settings(max_examples=300)
    def test_encode_decode_identity_with_checksum_room(self, spare, size):
        raw = spare.encode(size)
        assert len(raw) == size
        assert SpareArea.decode(raw) == spare

    @given(spare=spares)
    @settings(max_examples=200)
    def test_header_only_spare_drops_only_the_checksum(self, spare):
        decoded = SpareArea.decode(spare.encode(HEADER_SIZE))
        assert decoded == spare.with_checksum(None)

    @given(spare=spares, size=spare_sizes)
    def test_padding_beyond_checksum_is_erased(self, spare, size):
        raw = spare.encode(size)
        used = CHECKSUM_HEADER_SIZE if size >= CHECKSUM_HEADER_SIZE else HEADER_SIZE
        assert raw[used:] == b"\xff" * (size - used)


class TestSentinels:
    @given(spare=spares, size=checksum_sizes)
    def test_no_checksum_encodes_as_all_ones_slot(self, spare, size):
        raw = spare.with_checksum(None).encode(size)
        slot = raw[HEADER_SIZE:CHECKSUM_HEADER_SIZE]
        assert slot == b"\xff\xff\xff\xff"
        assert SpareArea.decode(raw).checksum is None

    @given(size=spare_sizes)
    def test_erased_spare_decodes_as_erased(self, size):
        decoded = SpareArea.decode(erased_spare(size))
        assert decoded.is_erased
        assert not decoded.is_valid
        assert decoded.pid is None
        assert decoded.timestamp is None
        assert decoded.checksum is None
        assert not decoded.obsolete

    @given(spare=spares, size=spare_sizes)
    def test_reserved_sentinels_never_collide_with_values(self, spare, size):
        """None survives the trip exactly when the field was None —
        the sentinel values are excluded from the value strategies."""
        decoded = SpareArea.decode(spare.encode(size))
        assert (decoded.pid is None) == (spare.pid is None)
        assert (decoded.timestamp is None) == (spare.timestamp is None)

    @given(data=st.binary(max_size=256))
    @settings(max_examples=300)
    def test_data_checksum_avoids_the_reserved_value(self, data):
        value = data_checksum(data)
        assert 0 <= value < NO_CHECKSUM
        assert data_checksum(data) == value  # deterministic


class TestCorruptPath:
    @given(
        spare=spares,
        size=spare_sizes,
        type_byte=st.integers(0, 255).filter(
            lambda b: b not in {int(t) for t in PageType}
        ),
    )
    @settings(max_examples=200)
    def test_unknown_type_byte_decodes_as_corrupt(self, spare, size, type_byte):
        raw = bytearray(spare.encode(size))
        raw[0] = type_byte
        decoded = SpareArea.decode(bytes(raw))
        assert decoded.is_corrupt
        assert not decoded.is_valid
        assert not decoded.is_erased

    @given(spare=spares, size=spare_sizes)
    def test_corrupt_preserves_other_fields(self, spare, size):
        raw = bytearray(spare.encode(size))
        raw[0] = 0x42  # no PageType has this value
        decoded = SpareArea.decode(bytes(raw))
        assert decoded.obsolete == spare.obsolete
        assert decoded.pid == spare.pid

    def test_corrupt_is_decode_only(self):
        # No writer encodes CORRUPT; the codec round-trips it to 0x00
        # which still decodes as CORRUPT, but is_valid stays False.
        decoded = SpareArea.decode(SpareArea(type=PageType.CORRUPT).encode(32))
        assert decoded.is_corrupt


class TestNandLegality:
    @given(spare=spares, size=spare_sizes)
    @settings(max_examples=200)
    def test_as_obsolete_only_clears_bits(self, spare, size):
        """Re-programming the obsoleted encoding over the original must
        be NAND-legal: no bit may go from 0 back to 1."""
        before = spare.encode(size)
        after = spare.as_obsolete().encode(size)
        for old, new in zip(before, after):
            assert old & new == new

    @given(spare=spares, size=spare_sizes)
    def test_obsolete_round_trips(self, spare, size):
        decoded = SpareArea.decode(spare.as_obsolete().encode(size))
        assert decoded.obsolete
        assert not decoded.is_valid


class TestValidation:
    @given(size=st.integers(0, HEADER_SIZE - 1))
    def test_undersized_spare_rejected_on_encode(self, size):
        import pytest

        with pytest.raises(ValueError):
            SpareArea().encode(size)

    @given(raw=st.binary(max_size=HEADER_SIZE - 1))
    def test_undersized_spare_rejected_on_decode(self, raw):
        import pytest

        with pytest.raises(ValueError):
            SpareArea.decode(raw)

    @given(raw=st.binary(min_size=HEADER_SIZE, max_size=64))
    @settings(max_examples=300)
    def test_decode_total_over_arbitrary_bytes(self, raw):
        """Any large-enough byte string decodes without raising, and
        decoding is memoization-stable."""
        a = SpareArea.decode(raw)
        b = SpareArea.decode(raw)
        assert a == b
        assert isinstance(a.type, PageType)
