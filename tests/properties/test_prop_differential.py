"""Property-based tests for the differential codec (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.differential import (
    Differential,
    compute_runs,
    compute_unit_runs,
    decode_differential_page,
    encode_differential_page,
)
from repro.ftl.base import ChangeRun

PAGE = 128

pages = st.binary(min_size=PAGE, max_size=PAGE)
gaps = st.integers(min_value=0, max_value=8)
units = st.sampled_from([1, 4, 8, 16, 32])


class TestComputeApplyInversion:
    """The fundamental invariant: apply(base, diff(base, new)) == new."""

    @given(base=pages, new=pages, gap=gaps)
    def test_bytewise_roundtrip(self, base, new, gap):
        diff = Differential(0, 1, compute_runs(base, new, coalesce_gap=gap))
        assert diff.apply(base) == new

    @given(base=pages, new=pages, unit=units)
    def test_unit_roundtrip(self, base, new, unit):
        diff = Differential(0, 1, compute_unit_runs(base, new, unit=unit))
        assert diff.apply(base) == new

    @given(base=pages, new=pages)
    def test_empty_iff_equal(self, base, new):
        runs = compute_runs(base, new)
        assert (runs == ()) == (base == new)

    @given(base=pages, new=pages, gap=gaps)
    def test_runs_sorted_and_disjoint(self, base, new, gap):
        runs = compute_runs(base, new, coalesce_gap=gap)
        for a, b in zip(runs, runs[1:]):
            assert a.end <= b.offset

    @given(base=pages, new=pages, unit=units)
    def test_unit_runs_cover_every_change(self, base, new, unit):
        covered = set()
        for run in compute_unit_runs(base, new, unit=unit):
            covered.update(range(run.offset, run.end))
        for i, (x, y) in enumerate(zip(base, new)):
            if x != y:
                assert i in covered

    @given(base=pages, new=pages)
    def test_size_counts_encoding_exactly(self, base, new):
        diff = Differential(3, 9, compute_runs(base, new))
        assert len(diff.encode()) == diff.size


class TestCodecRoundTrips:
    diff_strategy = st.builds(
        Differential,
        pid=st.integers(min_value=0, max_value=2**32 - 1),
        timestamp=st.integers(min_value=0, max_value=2**63),
        runs=st.lists(
            st.builds(
                ChangeRun,
                offset=st.integers(min_value=0, max_value=60000),
                data=st.binary(min_size=1, max_size=64),
            ),
            max_size=8,
        ).map(tuple),
    )

    @given(diff=diff_strategy)
    def test_entry_roundtrip(self, diff):
        decoded, pos = Differential.decode_from(diff.encode(), 0)
        assert decoded == diff
        assert pos == diff.size

    @given(diffs=st.lists(diff_strategy, max_size=5, unique_by=lambda d: d.pid))
    @settings(max_examples=50)
    def test_page_roundtrip(self, diffs):
        total = 4 + sum(d.size for d in diffs)
        payload = encode_differential_page(diffs, max(total, 16))
        assert decode_differential_page(payload) == diffs
