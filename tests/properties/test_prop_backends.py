"""Backend equivalence: memory and file images are indistinguishable.

Two properties:

* **Chip-level**: the same operation sequence against a
  :class:`MemoryBackend` chip and a :class:`FileBackend` chip leaves
  byte-identical data areas, spare areas, program counters and erase
  counts on both — including sequences where some operations are
  rejected (NAND rule violations must not leave partial state on either
  side).
* **Driver-level**: the same PDL workload over both backends yields
  identical page images, and after a flush + Figure-11 recovery both
  sides reconstruct identical ``ppmt`` and ``vdct`` tables.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pdl import PdlDriver
from repro.core.recovery import recover_driver
from repro.flash.backend import FileBackend, MemoryBackend
from repro.flash.chip import FlashChip
from repro.flash.errors import FlashError
from repro.flash.spare import PageType, SpareArea
from repro.flash.spec import FlashSpec

SPEC = FlashSpec(n_blocks=4, pages_per_block=4, page_data_size=64, page_spare_size=16)


# One chip operation: (kind, addr-or-block, payload seed)
_ops = st.tuples(
    st.sampled_from(["program", "batch", "partial", "obsolete", "erase"]),
    st.integers(0, SPEC.n_pages - 1),
    st.integers(0, 2**16),
)


def _apply(chip: FlashChip, op) -> str:
    """Run one op; returns an outcome tag (must match across backends)."""
    kind, addr, seed = op
    rng = random.Random(seed)
    try:
        if kind == "program":
            chip.program_page(
                addr,
                rng.randbytes(SPEC.page_data_size),
                SpareArea(type=PageType.BASE, pid=addr, timestamp=seed),
            )
        elif kind == "batch":
            count = 1 + seed % 3
            addrs = [(addr + i) % SPEC.n_pages for i in range(count)]
            chip.program_pages(
                [
                    (
                        a,
                        rng.randbytes(SPEC.page_data_size),
                        SpareArea(type=PageType.BASE, pid=a, timestamp=seed + i),
                    )
                    for i, a in enumerate(addrs)
                ]
            )
        elif kind == "partial":
            offset = (seed % 4) * 16
            chip.program_partial(addr, offset, rng.randbytes(16))
        elif kind == "obsolete":
            chip.mark_obsolete(addr)
        else:
            chip.erase_block(addr % SPEC.n_blocks)
        return f"{kind}:ok"
    except FlashError as exc:
        return f"{kind}:{type(exc).__name__}"


def _chip_state(chip: FlashChip):
    return (
        [chip.peek_data(a) for a in range(SPEC.n_pages)],
        [chip.peek_spare(a) for a in range(SPEC.n_pages)],
        [chip.backend.data_programs(a) for a in range(SPEC.n_pages)],
        [chip.backend.spare_programs(a) for a in range(SPEC.n_pages)],
        [chip.erase_count(b) for b in range(SPEC.n_blocks)],
        sorted(chip.iter_programmed_pages()),
    )


class TestChipEquivalence:
    @given(ops=st.lists(_ops, max_size=24))
    @settings(max_examples=40, deadline=None)
    def test_same_ops_same_bits(self, ops, tmp_path_factory):
        mem_chip = FlashChip(SPEC, backend=MemoryBackend(SPEC))
        path = tmp_path_factory.mktemp("prop") / "chip.flash"
        file_chip = FlashChip(SPEC, backend=FileBackend(path, SPEC))
        try:
            for op in ops:
                assert _apply(mem_chip, op) == _apply(file_chip, op)
            assert _chip_state(mem_chip) == _chip_state(file_chip)
        finally:
            file_chip.close()


class TestDriverEquivalence:
    @given(
        seed=st.integers(0, 2**32 - 1),
        n_pids=st.integers(1, 5),
        n_writes=st.integers(0, 40),
    )
    @settings(max_examples=15, deadline=None)
    def test_same_workload_same_recovered_tables(
        self, seed, n_pids, n_writes, tmp_path_factory
    ):
        spec = FlashSpec(
            n_blocks=6, pages_per_block=8, page_data_size=128, page_spare_size=16
        )
        path = tmp_path_factory.mktemp("prop") / "chip.flash"
        drivers = [
            PdlDriver(FlashChip(spec, backend=MemoryBackend(spec)),
                      max_differential_size=32),
            PdlDriver(FlashChip(spec, backend=FileBackend(path, spec)),
                      max_differential_size=32),
        ]
        try:
            rng = random.Random(seed)
            images = {}
            for pid in range(n_pids):
                images[pid] = rng.randbytes(spec.page_data_size)
            script = []
            for _ in range(n_writes):
                pid = rng.randrange(n_pids)
                img = bytearray(images[pid])
                off = rng.randrange(spec.page_data_size - 16)
                img[off : off + 16] = rng.randbytes(16)
                images[pid] = bytes(img)
                script.append((pid, images[pid]))
            # Replay the identical load + write script on each driver.
            for driver in drivers:
                gen = random.Random(seed)
                initial = {pid: gen.randbytes(spec.page_data_size) for pid in range(n_pids)}
                driver.load_pages(sorted(initial.items()))
                for pid, img in script:
                    driver.write_page(pid, img)
                driver.flush()
            mem_driver, file_driver = drivers
            for pid in range(n_pids):
                assert mem_driver.read_page(pid) == file_driver.read_page(pid)
            rec_mem, _ = recover_driver(mem_driver.chip, max_differential_size=32)
            rec_file, _ = recover_driver(file_driver.chip, max_differential_size=32)
            assert dict(rec_mem.ppmt.items()) == dict(rec_file.ppmt.items())
            assert {a: rec_mem.vdct.count(a) for a in rec_mem.vdct.pages()} == {
                a: rec_file.vdct.count(a) for a in rec_file.vdct.pages()
            }
            assert rec_mem.current_ts == rec_file.current_ts
            for pid in range(n_pids):
                assert rec_mem.read_page(pid) == rec_file.read_page(pid)
        finally:
            drivers[1].chip.close()
