"""Property tests for the sharded driver and its routers.

Two families of guarantees:

* **Read equivalence** — random operation sequences applied to a
  :class:`ShardedDriver` and to a single-chip oracle (a plain PDL driver
  plus an in-memory model) must be indistinguishable through
  ``read_page``, for hash and range routing alike.
* **Routing is a total, stable partition** — every non-negative pid maps
  to exactly one shard in range, the mapping never changes between
  calls, and sequential id spaces spread across all shards (hash) or
  split into contiguous runs (range).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pdl import PdlDriver
from repro.flash.chip import FlashChip
from repro.flash.spec import FlashSpec
from repro.methods import make_method
from repro.sharding.recovery import recover_all
from repro.sharding.router import HashRouter, RangeRouter, make_router

SHARD_SPEC = FlashSpec(
    n_blocks=8, pages_per_block=8, page_data_size=256, page_spare_size=16
)
ORACLE_SPEC = FlashSpec(
    n_blocks=24, pages_per_block=8, page_data_size=256, page_spare_size=16
)
N_PIDS = 10
PAGE = SHARD_SPEC.page_data_size

ops = st.lists(
    st.tuples(
        st.sampled_from(["read", "patch", "flush"]),
        st.integers(0, N_PIDS - 1),
        st.integers(0, PAGE - 8),
        st.binary(min_size=1, max_size=8),
    ),
    min_size=1,
    max_size=50,
)


def _routers(n_shards):
    return st.sampled_from(
        [
            HashRouter(n_shards),
            RangeRouter.for_database(n_shards, N_PIDS),
        ]
    )


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seq=ops, n_shards=st.integers(2, 4), data=st.data())
def test_sharded_matches_single_chip_oracle(seq, n_shards, data):
    router = data.draw(_routers(n_shards))
    chips = [FlashChip(SHARD_SPEC) for _ in range(n_shards)]
    sharded = make_method("PDL (48B) x%d" % n_shards, chips, router=router)
    oracle = PdlDriver(FlashChip(ORACLE_SPEC), max_differential_size=48)
    model = {}
    for pid in range(N_PIDS):
        image = bytes([pid]) * PAGE
        sharded.load_page(pid, image)
        oracle.load_page(pid, image)
        model[pid] = image
    for op, pid, offset, payload in seq:
        if op == "read":
            got = sharded.read_page(pid)
            assert got == oracle.read_page(pid)
            assert got == model[pid]
        elif op == "flush":
            sharded.flush()
            oracle.flush()
        else:
            image = bytearray(model[pid])
            image[offset : offset + len(payload)] = payload
            model[pid] = bytes(image)
            sharded.write_page(pid, model[pid])
            oracle.write_page(pid, model[pid])
    for pid, expected in model.items():
        assert sharded.read_page(pid) == expected
        assert oracle.read_page(pid) == expected


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seq=ops, n_shards=st.integers(2, 3))
def test_sharded_recovery_matches_flushed_state(seq, n_shards):
    """After flush + recover_all, the array reads back the full model."""
    chips = [FlashChip(SHARD_SPEC) for _ in range(n_shards)]
    sharded = make_method("PDL (48B) x%d" % n_shards, chips)
    model = {}
    for pid in range(N_PIDS):
        image = bytes([pid]) * PAGE
        sharded.load_page(pid, image)
        model[pid] = image
    for op, pid, offset, payload in seq:
        if op == "patch":
            image = bytearray(model[pid])
            image[offset : offset + len(payload)] = payload
            model[pid] = bytes(image)
            sharded.write_page(pid, model[pid])
    sharded.group_flush()
    recovered, reports = recover_all(chips, max_differential_size=48)
    assert len(reports) == n_shards
    for pid, expected in model.items():
        assert recovered.read_page(pid) == expected


class TestRouterPartitionProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        pid=st.integers(0, 10**12),
        n_shards=st.integers(1, 16),
        kind=st.sampled_from(["hash", "range"]),
    )
    def test_total_and_stable(self, pid, n_shards, kind):
        kwargs = {"pages_per_shard": 64} if kind == "range" else {}
        router = make_router(kind, n_shards, **kwargs)
        shard = router.shard_of(pid)
        assert 0 <= shard < n_shards  # total: every pid lands in range
        assert router.shard_of(pid) == shard  # stable: repeated calls agree

    @settings(max_examples=50, deadline=None)
    @given(n_shards=st.integers(2, 8))
    def test_hash_covers_every_shard(self, n_shards):
        router = HashRouter(n_shards)
        hit = {router.shard_of(pid) for pid in range(64 * n_shards)}
        assert hit == set(range(n_shards))

    @settings(max_examples=50, deadline=None)
    @given(n_shards=st.integers(2, 8), width=st.integers(1, 64))
    def test_range_is_monotone_and_clamped(self, n_shards, width):
        router = RangeRouter(n_shards, width)
        previous = 0
        for pid in range(n_shards * width + 2 * width):
            shard = router.shard_of(pid)
            assert shard >= previous  # contiguous, non-decreasing runs
            previous = shard
        assert router.shard_of(10**9) == n_shards - 1  # tail clamps

    def test_partition_is_disjoint_by_construction(self):
        """shard_of is a function: one pid, one shard — across routers of
        the same configuration too."""
        a = HashRouter(5)
        b = HashRouter(5)
        for pid in range(1000):
            assert a.shard_of(pid) == b.shard_of(pid)

    def test_negative_pid_rejected(self):
        import pytest

        for router in (HashRouter(3), RangeRouter(3, 16)):
            with pytest.raises(ValueError):
                router.shard_of(-1)
