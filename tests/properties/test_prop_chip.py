"""Property-based tests for NAND chip semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.chip import FlashChip
from repro.flash.spare import PageType, SpareArea
from repro.flash.spec import FlashSpec

SPEC = FlashSpec(n_blocks=4, pages_per_block=4, page_data_size=64, page_spare_size=16)


class TestProgramErase:
    @given(data=st.binary(max_size=64))
    def test_program_read_identity(self, data):
        chip = FlashChip(SPEC)
        chip.program_page(0, data, SpareArea(type=PageType.DATA, pid=1))
        stored, _ = chip.read_page(0)
        assert stored[: len(data)] == data
        assert stored[len(data) :] == b"\xff" * (64 - len(data))

    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 15), st.binary(min_size=1, max_size=64)),
            max_size=12,
        )
    )
    @settings(max_examples=50)
    def test_clock_equals_sum_of_latencies(self, writes):
        chip = FlashChip(SPEC)
        expected = 0.0
        programmed = set()
        for addr, data in writes:
            if addr in programmed:
                continue
            chip.program_page(addr, data, SpareArea(type=PageType.DATA))
            programmed.add(addr)
            expected += SPEC.t_write_us
        assert chip.clock_us == expected

    @given(
        offsets=st.lists(st.integers(0, 3), min_size=0, max_size=4, unique=True)
    )
    def test_partial_programs_merge(self, offsets):
        chip = FlashChip(SPEC)
        for i in offsets:
            chip.program_partial(0, i * 16, bytes([i]) * 16)
        data, _ = chip.read_page(0)
        for i in range(4):
            chunk = data[i * 16 : (i + 1) * 16]
            if i in offsets:
                assert chunk == bytes([i]) * 16
            else:
                assert chunk == b"\xff" * 16

    @given(block=st.integers(0, 3), n_cycles=st.integers(1, 5))
    def test_erase_program_cycles(self, block, n_cycles):
        chip = FlashChip(SPEC)
        addr = block * 4
        for cycle in range(n_cycles):
            chip.program_page(addr, bytes([cycle]) * 8, SpareArea(type=PageType.DATA))
            chip.erase_block(block)
        assert chip.is_block_erased(block)
        assert chip.erase_count(block) == n_cycles
