"""Property-based tests for the storage engine (B+tree, slotted pages)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pdl import PdlDriver
from repro.flash.chip import FlashChip
from repro.flash.spec import FlashSpec
from repro.storage.btree import BTree
from repro.storage.db import Database
from repro.storage.page import Page
from repro.storage.slotted import SlottedPage

SPEC = FlashSpec(
    n_blocks=48, pages_per_block=8, page_data_size=256, page_spare_size=16
)


class TestBTreeAgainstDict:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "del"]),
                st.integers(0, 200),
                st.integers(0, 2**32),
            ),
            max_size=120,
        )
    )
    def test_model_equivalence(self, ops):
        chip = FlashChip(SPEC)
        db = Database(PdlDriver(chip, max_differential_size=64), buffer_capacity=16)
        tree = BTree(db)
        model = {}
        for op, key, value in ops:
            if op == "put":
                tree.insert(key, value)
                model[key] = value
            elif op == "get":
                assert tree.get(key) == model.get(key)
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
        assert [k for k, _ in tree.items()] == sorted(model)
        tree.check_invariants()


class TestSlottedPageAgainstDict:
    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete", "update"]),
                st.binary(min_size=1, max_size=24),
            ),
            max_size=40,
        )
    )
    def test_model_equivalence(self, ops):
        spage = SlottedPage.format(Page(0, bytes(256)))
        model = {}
        for op, payload in ops:
            if op == "insert":
                slot = spage.insert(payload)
                if slot is not None:
                    model[slot] = payload
            elif model:
                slot = sorted(model)[0]
                if op == "delete":
                    spage.delete(slot)
                    del model[slot]
                else:
                    if spage.update(slot, payload):
                        model[slot] = payload
        assert dict(spage.records()) == model
        assert spage.live_records == len(model)
