"""Property-based crash-recovery tests.

Hypothesis chooses a workload and a crash point; recovery must always
yield, for every page, a version that actually existed and is no older
than the last write-through.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pdl import PdlDriver
from repro.core.recovery import recover_driver
from repro.flash.chip import FlashChip
from repro.flash.errors import CrashError
from repro.flash.spec import FlashSpec

SPEC = FlashSpec(
    n_blocks=12, pages_per_block=8, page_data_size=128, page_spare_size=16
)
N_PIDS = 6
PAGE = SPEC.page_data_size

workload = st.lists(
    st.tuples(
        st.integers(0, N_PIDS - 1),  # pid
        st.integers(0, PAGE - 8),  # offset
        st.binary(min_size=1, max_size=8),  # patch
        st.booleans(),  # flush afterwards?
    ),
    min_size=1,
    max_size=50,
)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seq=workload, crash_at=st.integers(0, 80), max_diff=st.sampled_from([32, 120]))
def test_recovery_invariants(seq, crash_at, max_diff):
    chip = FlashChip(SPEC)
    driver = PdlDriver(chip, max_differential_size=max_diff)
    history = {}
    floor = {}
    for pid in range(N_PIDS):
        image = bytes([pid]) * PAGE
        driver.load_page(pid, image)
        history[pid] = [image]
        floor[pid] = 0
    chip.crash_after(crash_at)
    try:
        for pid, offset, patch, flush in seq:
            image = bytearray(history[pid][-1])
            image[offset : offset + len(patch)] = patch
            history[pid].append(bytes(image))
            driver.write_page(pid, bytes(image))
            if flush:
                driver.flush()
                for q in history:
                    floor[q] = len(history[q]) - 1
    except CrashError:
        pass
    chip.crash_after(None)
    recovered, _report = recover_driver(chip, max_differential_size=max_diff)
    for pid, versions in history.items():
        got = recovered.read_page(pid)
        assert got in versions
        newest = max(i for i, v in enumerate(versions) if v == got)
        assert newest >= floor[pid]
