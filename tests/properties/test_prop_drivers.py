"""Model-based property tests: every driver behaves like a dict of pages.

Hypothesis drives random operation sequences against each page-update
method and a plain in-memory model; any divergence is a correctness bug.
This is the library's strongest functional guarantee — it subsumes GC,
merging, buffering and compaction behaviour for all drivers.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flash.chip import FlashChip
from repro.flash.spec import FlashSpec
from repro.ftl.base import ChangeRun
from repro.methods import make_method

SPEC = FlashSpec(
    n_blocks=12, pages_per_block=8, page_data_size=256, page_spare_size=16
)
N_PIDS = 8
PAGE = SPEC.page_data_size

ops = st.lists(
    st.tuples(
        st.sampled_from(["read", "write", "patch", "flush"]),
        st.integers(0, N_PIDS - 1),
        st.integers(0, PAGE - 8),
        st.binary(min_size=1, max_size=8),
    ),
    min_size=1,
    max_size=60,
)

LABELS = ["PDL (32B)", "PDL (240B)", "OPU", "IPU", "IPL (512B)"]


@st.composite
def sequences(draw):
    return draw(ops)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seq=sequences(), label=st.sampled_from(LABELS))
def test_driver_matches_model(seq, label):
    chip = FlashChip(SPEC)
    driver = make_method(label, chip)
    model = {}
    for pid in range(N_PIDS):
        image = bytes([pid]) * PAGE
        driver.load_page(pid, image)
        model[pid] = image
    for op, pid, offset, payload in seq:
        if op == "read":
            assert driver.read_page(pid) == model[pid]
        elif op == "flush":
            driver.flush()
        else:
            image = bytearray(model[pid])
            if op == "write":
                image = bytearray(payload * (PAGE // len(payload) + 1))[:PAGE]
                runs = [ChangeRun(0, bytes(image))]
            else:
                image[offset : offset + len(payload)] = payload
                runs = [ChangeRun(offset, payload)]
            model[pid] = bytes(image)
            driver.write_page(pid, model[pid], update_logs=runs)
    for pid, expected in model.items():
        assert driver.read_page(pid) == expected
