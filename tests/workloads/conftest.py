"""Shared fixtures for the workload test suite.

Everything here runs on the tiny chip geometry (see the root conftest):
a 64-page database at 25 % utilization with a short measurement window
keeps full runner sweeps to a few milliseconds per test.
"""

from __future__ import annotations

import pytest

from repro.flash.chip import FlashChip
from repro.flash.spec import TINY_SPEC
from repro.methods import make_method
from repro.workloads.runner import RunnerConfig
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload


@pytest.fixture
def small_runner() -> RunnerConfig:
    """The runner config shared by the measurement and scenario tests."""
    return RunnerConfig(
        database_pages=64, measure_ops=40, base_spec=TINY_SPEC, utilization=0.25
    )


@pytest.fixture
def make_workload(tiny_spec):
    """Factory: a loaded single-chip workload for any method label."""

    def build(
        label: str = "PDL (64B)", *, database_pages: int = 12, seed: int = 3
    ) -> SyntheticWorkload:
        chip = FlashChip(tiny_spec)
        driver = make_method(label, chip)
        wl = SyntheticWorkload(
            driver, SyntheticConfig(database_pages=database_pages, seed=seed)
        )
        wl.load()
        return wl

    return build


@pytest.fixture
def workload(make_workload) -> SyntheticWorkload:
    """A loaded 12-page PDL workload (the historical default fixture)."""
    return make_workload()
