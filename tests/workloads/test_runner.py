"""Unit tests for the measurement runner and steady-state warm-up."""

import pytest

from repro.flash.spec import TINY_SPEC
from repro.ftl.errors import ConfigurationError
from repro.sharding.executor import ParallelShardedDriver
from repro.workloads.runner import (
    MethodMeasurement,
    aging_horizon,
    build_workload,
    measure_sharded_updates,
    measure_updates,
    warm_to_steady_state,
)


class TestAgingHorizon:
    def test_pdl_horizon_grows_with_max_diff(self, small_runner):
        wl_small = build_workload("PDL (64B)", small_runner, 2.0, 1)
        wl_big = build_workload("PDL (256B)", small_runner, 2.0, 1)
        h_small = aging_horizon(wl_small.driver, wl_small.change_size)
        h_big = aging_horizon(wl_big.driver, wl_big.change_size)
        assert h_big > h_small >= 1

    def test_non_pdl_horizon_is_one(self, small_runner):
        wl = build_workload("OPU", small_runner, 2.0, 1)
        assert aging_horizon(wl.driver, wl.change_size) == 1

    def test_large_changes_cap_horizon(self, small_runner):
        wl = build_workload("PDL (256B)", small_runner, 100.0, 1)
        assert aging_horizon(wl.driver, wl.change_size) == 1


class TestWarmup:
    def test_warmup_reaches_gc_activity(self, small_runner):
        wl = build_workload("OPU", small_runner, 2.0, 1)
        warm_to_steady_state(wl, small_runner)
        assert wl.driver.stats.total_erases >= TINY_SPEC.n_blocks // 2

    def test_warmup_preserves_data(self, small_runner):
        wl = build_workload("PDL (64B)", small_runner, 2.0, 1)
        warm_to_steady_state(wl, small_runner)
        wl.verify_all()

    def test_ipu_warmup_is_short(self, small_runner):
        wl = build_workload("IPU", small_runner, 2.0, 1)
        ops = warm_to_steady_state(wl, small_runner)
        assert ops == small_runner.database_pages  # aging pass only


class TestMeasurement:
    def test_measure_updates_shape(self, small_runner):
        m = measure_updates("OPU", small_runner, pct_changed=2.0)
        assert isinstance(m, MethodMeasurement)
        assert m.n_ops == small_runner.measure_ops
        assert m.read_us > 0
        assert m.write_us > 0
        assert m.overall_us == pytest.approx(m.read_us + m.write_us + m.gc_us)

    def test_opu_exact_costs(self, small_runner):
        """OPU's per-op cost is deterministic: 1 read + 2 writes (+GC)."""
        m = measure_updates("OPU", small_runner, pct_changed=2.0)
        assert m.read_us == pytest.approx(TINY_SPEC.t_read_us)
        assert m.write_us == pytest.approx(2 * TINY_SPEC.t_write_us)

    def test_as_dict_roundtrip(self, small_runner):
        m = measure_updates("IPU", small_runner, pct_changed=2.0)
        d = m.as_dict()
        assert d["label"] == "IPU"
        assert d["overall_us"] == pytest.approx(m.overall_us)

    def test_spec_scaling(self, small_runner):
        spec = small_runner.spec()
        assert spec.n_pages >= small_runner.database_pages / small_runner.utilization


class TestWallClockMeasurement:
    """measure_sharded_updates: simulated model vs measured wall time."""

    def test_wall_clock_recorded_alongside_simulated_model(self, small_runner):
        point = measure_sharded_updates("PDL (64B) x2", small_runner)
        assert point.wall_s > 0.0
        assert point.wall_us_per_op == pytest.approx(
            point.wall_s * 1e6 / point.n_ops
        )
        assert point.client_threads == 1
        assert not point.measured_parallel
        d = point.as_dict()
        assert d["wall_s"] == point.wall_s
        assert d["measured_parallel"] is False

    def test_par_label_builds_and_measures_parallel_driver(self, small_runner):
        point = measure_sharded_updates("PDL (64B) x2 par", small_runner)
        assert point.measured_parallel
        assert point.label.endswith("par")
        assert point.serial_us_per_op > 0

    def test_threaded_clients_partition_the_window(self, small_runner):
        point = measure_sharded_updates(
            "PDL (64B) x2 par", small_runner, client_threads=4
        )
        assert point.client_threads == 4
        assert point.measured_parallel
        assert point.wall_s > 0.0

    def test_threaded_clients_run_the_full_window(self, small_runner):
        """The plan partition executes every requested cycle, even when
        the window does not divide evenly by the thread count."""
        point = measure_sharded_updates(
            "PDL (64B) x2 par", small_runner, client_threads=3
        )
        assert point.n_ops == small_runner.measure_ops

    def test_threaded_clients_require_parallel_driver(self, small_runner):
        with pytest.raises(ConfigurationError):
            measure_sharded_updates("PDL (64B) x2", small_runner, client_threads=4)

    def test_par_workload_builds_parallel_driver(self, small_runner):
        wl = build_workload("PDL (64B) x2 par", small_runner, 2.0, 1)
        assert isinstance(wl.driver, ParallelShardedDriver)
