"""Unit tests for the synthetic update-operation workload."""

import pytest

from repro.flash.chip import FlashChip
from repro.methods import make_method
from repro.workloads.synthetic import (
    SyntheticConfig,
    SyntheticWorkload,
    VerificationError,
)


@pytest.fixture
def workload(tiny_spec):
    chip = FlashChip(tiny_spec)
    driver = make_method("PDL (64B)", chip)
    wl = SyntheticWorkload(driver, SyntheticConfig(database_pages=12, seed=3))
    wl.load()
    return wl


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticConfig(database_pages=0)
        with pytest.raises(ValueError):
            SyntheticConfig(database_pages=1, pct_changed=0.0)
        with pytest.raises(ValueError):
            SyntheticConfig(database_pages=1, pct_changed=101.0)
        with pytest.raises(ValueError):
            SyntheticConfig(database_pages=1, n_updates_till_write=0)

    def test_change_size_from_pct(self, tiny_spec):
        chip = FlashChip(tiny_spec)
        driver = make_method("OPU", chip)
        wl = SyntheticWorkload(
            driver, SyntheticConfig(database_pages=4, pct_changed=2.0)
        )
        assert wl.change_size == round(tiny_spec.page_data_size * 0.02)

    def test_change_size_minimum_one(self, tiny_spec):
        chip = FlashChip(tiny_spec)
        driver = make_method("OPU", chip)
        wl = SyntheticWorkload(
            driver, SyntheticConfig(database_pages=4, pct_changed=0.1)
        )
        assert wl.change_size >= 1


class TestOperations:
    def test_load_populates_all_pages(self, workload):
        for pid in range(12):
            assert workload.driver.read_page(pid) == workload.shadow[pid]

    def test_update_cycle_changes_shadow(self, workload):
        before = workload.shadow[0]
        workload.update_cycle(0)
        assert workload.shadow[0] != before
        assert workload.driver.read_page(0) == workload.shadow[0]

    def test_update_cycle_n_updates_override(self, workload):
        workload.update_cycle(0, n_updates=5)
        assert workload.update_cycles == 1

    def test_read_only_op(self, workload):
        data = workload.read_only_op(3)
        assert data == workload.shadow[3]
        assert workload.read_ops == 1

    def test_run_mix_counts(self, workload):
        workload.run_mix(50, pct_update=40.0)
        assert workload.update_cycles + workload.read_ops == 50
        assert workload.update_cycles > 0
        assert workload.read_ops > 0

    def test_mix_extremes(self, workload):
        workload.run_mix(10, pct_update=0.0)
        assert workload.update_cycles == 0
        workload.run_mix(10, pct_update=100.0)
        assert workload.update_cycles == 10

    def test_mix_validation(self, workload):
        with pytest.raises(ValueError):
            workload.run_mix(1, pct_update=150.0)

    def test_verify_all(self, workload):
        workload.run_updates(30)
        workload.verify_all()  # must not raise

    def test_verification_catches_corruption(self, workload):
        workload.update_cycle(0)
        workload._shadow[0] = b"\x00" * len(workload.shadow[0])
        with pytest.raises(VerificationError):
            workload.read_only_op(0)

    def test_determinism(self, tiny_spec):
        def run():
            chip = FlashChip(tiny_spec)
            wl = SyntheticWorkload(
                make_method("PDL (64B)", chip),
                SyntheticConfig(database_pages=8, seed=5),
            )
            wl.load()
            wl.run_updates(40)
            return chip.stats.total_time_us, [bytes(s) for s in wl.shadow]

        assert run() == run()
