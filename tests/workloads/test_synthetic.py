"""Unit tests for the synthetic update-operation workload."""

import pytest

from repro.flash.chip import FlashChip
from repro.methods import make_method
from repro.workloads.synthetic import (
    SyntheticConfig,
    SyntheticWorkload,
    VerificationError,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticConfig(database_pages=0)
        with pytest.raises(ValueError):
            SyntheticConfig(database_pages=1, pct_changed=0.0)
        with pytest.raises(ValueError):
            SyntheticConfig(database_pages=1, pct_changed=101.0)
        with pytest.raises(ValueError):
            SyntheticConfig(database_pages=1, n_updates_till_write=0)

    def test_change_size_from_pct(self, tiny_spec):
        chip = FlashChip(tiny_spec)
        driver = make_method("OPU", chip)
        wl = SyntheticWorkload(
            driver, SyntheticConfig(database_pages=4, pct_changed=2.0)
        )
        assert wl.change_size == round(tiny_spec.page_data_size * 0.02)

    def test_change_size_minimum_one(self, tiny_spec):
        chip = FlashChip(tiny_spec)
        driver = make_method("OPU", chip)
        wl = SyntheticWorkload(
            driver, SyntheticConfig(database_pages=4, pct_changed=0.1)
        )
        assert wl.change_size >= 1


class TestOperations:
    def test_load_populates_all_pages(self, workload):
        for pid in range(12):
            assert workload.driver.read_page(pid) == workload.shadow[pid]

    def test_update_cycle_changes_shadow(self, workload):
        before = workload.shadow[0]
        workload.update_cycle(0)
        assert workload.shadow[0] != before
        assert workload.driver.read_page(0) == workload.shadow[0]

    def test_update_cycle_n_updates_override(self, workload):
        workload.update_cycle(0, n_updates=5)
        assert workload.update_cycles == 1

    def test_read_only_op(self, workload):
        data = workload.read_only_op(3)
        assert data == workload.shadow[3]
        assert workload.read_ops == 1

    def test_run_mix_counts(self, workload):
        workload.run_mix(50, pct_update=40.0)
        assert workload.update_cycles + workload.read_ops == 50
        assert workload.update_cycles > 0
        assert workload.read_ops > 0

    def test_mix_extremes(self, workload):
        workload.run_mix(10, pct_update=0.0)
        assert workload.update_cycles == 0
        workload.run_mix(10, pct_update=100.0)
        assert workload.update_cycles == 10

    def test_mix_validation(self, workload):
        with pytest.raises(ValueError):
            workload.run_mix(1, pct_update=150.0)

    def test_verify_all(self, workload):
        workload.run_updates(30)
        workload.verify_all()  # must not raise

    def test_verification_catches_corruption(self, workload):
        workload.update_cycle(0)
        workload._shadow[0] = b"\x00" * len(workload.shadow[0])
        with pytest.raises(VerificationError):
            workload.read_only_op(0)

    def test_determinism(self, tiny_spec):
        def run():
            chip = FlashChip(tiny_spec)
            wl = SyntheticWorkload(
                make_method("PDL (64B)", chip),
                SyntheticConfig(database_pages=8, seed=5),
            )
            wl.load()
            wl.run_updates(40)
            return chip.stats.total_time_us, [bytes(s) for s in wl.shadow]

        assert run() == run()


class TestSeedPlumbing:
    """One seed → one operation stream, no matter how it is executed."""

    def test_plan_consumes_the_serial_rng_stream(self, tiny_spec):
        """plan_updates draws exactly what update_cycle would draw."""

        def build():
            chip = FlashChip(tiny_spec)
            wl = SyntheticWorkload(
                make_method("PDL (64B)", chip),
                SyntheticConfig(database_pages=8, seed=11),
            )
            wl.load()
            return wl

        planned, direct = build(), build()
        plan = planned.plan_updates(30)
        for cycle in plan:
            image = bytearray(planned.shadow[cycle.pid])
            for run in cycle.runs:
                image[run.offset : run.offset + len(run.data)] = run.data
            planned._shadow[cycle.pid] = bytes(image)
        direct.run_updates(30)
        assert [bytes(s) for s in planned.shadow] == [
            bytes(s) for s in direct.shadow
        ]
        # Both consumed the same RNG stream: the next draw agrees too.
        assert planned.rng.random() == direct.rng.random()

    @pytest.mark.parametrize("n_threads", [2, 3, 7])
    def test_threaded_stream_matches_serial(self, tiny_spec, n_threads):
        """Identical seed → identical final state for serial and threaded
        execution at any client-thread count (the oracle's precondition)."""
        from repro.flash.spec import FlashSpec

        spec = FlashSpec(
            n_blocks=16, pages_per_block=8, page_data_size=256, page_spare_size=32
        )

        def run(threads):
            chips = [FlashChip(spec) for _ in range(2)]
            wl = SyntheticWorkload(
                make_method("PDL (64B) x2 par", chips),
                SyntheticConfig(database_pages=24, seed=11),
            )
            wl.load()
            try:
                if threads == 0:
                    wl.run_updates(60)
                else:
                    wl.run_updates_threaded(60, threads)
                wl.verify_all()
                assert wl.update_cycles == 60
                return [bytes(s) for s in wl.shadow]
            finally:
                wl.driver.close()

        assert run(0) == run(n_threads)

    def test_single_thread_falls_back_to_serial(self, workload):
        workload.run_updates_threaded(10, 1)
        assert workload.update_cycles == 10
        workload.verify_all()

    def test_thread_count_validation(self, workload):
        with pytest.raises(ValueError):
            workload.run_updates_threaded(4, 0)
