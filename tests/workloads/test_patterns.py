"""Unit tests for the named access patterns and the trace format."""

import random

import pytest

from repro.workloads.patterns import (
    READ,
    UPDATE,
    Op,
    ScanHotPattern,
    SequentialPattern,
    StridedPattern,
    Trace,
    TraceError,
    TracePattern,
    TraceRecorder,
    YcsbPattern,
    ZipfPattern,
    default_pattern_set,
    load_trace,
    make_pattern,
    pattern_names,
    record_pattern,
    register_pattern,
)

N_PAGES = 32
N_OPS = 400


def collect(pattern, n_pages=N_PAGES, n_ops=N_OPS, seed=9):
    return list(pattern.ops(n_pages, n_ops, random.Random(seed)))


class TestOp:
    def test_validation(self):
        with pytest.raises(ValueError):
            Op("write", 0)
        with pytest.raises(ValueError):
            Op(READ, -1)


class TestRegistry:
    def test_all_expected_names_registered(self):
        names = pattern_names()
        for expected in (
            "sequential",
            "strided",
            "zipf-0.6",
            "zipf-0.9",
            "zipf-0.99",
            "zipf-1.2",
            "scan-hot",
            "ycsb-a",
            "ycsb-b",
            "ycsb-c",
            "ycsb-d",
            "ycsb-e",
            "ycsb-f",
        ):
            assert expected in names

    def test_make_pattern_is_case_insensitive(self):
        assert make_pattern("YCSB-A").name == "ycsb-a"

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ValueError, match="registered:"):
            make_pattern("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_pattern("sequential", SequentialPattern)

    def test_default_pattern_set_instantiates_everything(self):
        patterns = default_pattern_set()
        assert len(patterns) == len(pattern_names())

    def test_every_registered_pattern_yields_valid_ops(self):
        for name in pattern_names():
            ops = collect(make_pattern(name), n_ops=60)
            assert len(ops) == 60, name
            assert all(0 <= op.pid < N_PAGES for op in ops), name


class TestDeterminism:
    @pytest.mark.parametrize("name", ["zipf-0.9", "scan-hot", "ycsb-a", "ycsb-d"])
    def test_same_seed_same_stream(self, name):
        assert collect(make_pattern(name)) == collect(make_pattern(name))

    def test_different_seed_different_stream(self):
        a = collect(make_pattern("zipf-0.9"), seed=1)
        b = collect(make_pattern("zipf-0.9"), seed=2)
        assert a != b


class TestShapes:
    def test_sequential_wraps(self):
        ops = collect(SequentialPattern(), n_pages=8, n_ops=20)
        assert [op.pid for op in ops[:10]] == [0, 1, 2, 3, 4, 5, 6, 7, 0, 1]
        assert all(op.kind == UPDATE for op in ops)

    def test_strided_covers_every_page(self):
        ops = collect(StridedPattern(stride=7), n_pages=16, n_ops=16)
        assert sorted(op.pid for op in ops) == list(range(16))

    def test_strided_bumps_stride_until_coprime(self):
        # stride 4 shares a factor with 16 pages; the walk must still
        # visit all of them.
        ops = collect(StridedPattern(stride=4), n_pages=16, n_ops=16)
        assert len({op.pid for op in ops}) == 16

    def test_zipf_skew_orders_by_theta(self):
        def hot_mass(theta):
            ops = collect(ZipfPattern(theta), n_ops=2000)
            counts = {}
            for op in ops:
                counts[op.pid] = counts.get(op.pid, 0) + 1
            top = sorted(counts.values(), reverse=True)[: N_PAGES // 10]
            return sum(top) / len(ops)

        assert hot_mass(1.2) > hot_mass(0.6)

    def test_zipf_hot_set_not_contiguous(self):
        ops = collect(ZipfPattern(1.2), n_ops=2000)
        counts = {}
        for op in ops:
            counts[op.pid] = counts.get(op.pid, 0) + 1
        hottest = sorted(counts, key=counts.get, reverse=True)[:3]
        assert hottest != sorted(hottest) or max(hottest) - min(hottest) > 3

    def test_scan_hot_mixes_reads_and_updates(self):
        ops = collect(ScanHotPattern(scan_every=10), n_pages=16, n_ops=120)
        kinds = {op.kind for op in ops}
        assert kinds == {READ, UPDATE}
        scan_pids = [op.pid for op in ops if op.kind == READ]
        assert set(scan_pids) == set(range(16))  # full sweeps

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StridedPattern(stride=0)
        with pytest.raises(ValueError):
            ZipfPattern(theta=-1.0)
        with pytest.raises(ValueError):
            ZipfPattern(pct_read=150.0)
        with pytest.raises(ValueError):
            ScanHotPattern(scan_every=0)
        with pytest.raises(ValueError):
            ScanHotPattern(hot_fraction=0.0)
        with pytest.raises(ValueError):
            YcsbPattern("z")


class TestYcsb:
    def test_mix_proportions_roughly_hold(self):
        ops = collect(YcsbPattern("b"), n_ops=2000)
        updates = sum(1 for op in ops if op.kind == UPDATE)
        assert 0.01 < updates / len(ops) < 0.12  # nominal 5%

    def test_c_is_read_only(self):
        ops = collect(YcsbPattern("c"))
        assert all(op.kind == READ for op in ops)

    def test_f_pairs_reads_with_updates(self):
        ops = collect(YcsbPattern("f"), n_ops=1000)
        for i, op in enumerate(ops):
            if op.kind == UPDATE:
                assert ops[i - 1] == Op(READ, op.pid)

    def test_e_emits_sequential_scan_runs(self):
        ops = collect(YcsbPattern("e"), n_ops=1000)
        runs = 0
        for i in range(len(ops) - 1):
            a, b = ops[i], ops[i + 1]
            if a.kind == READ and b.kind == READ and b.pid == (a.pid + 1) % N_PAGES:
                runs += 1
        assert runs > 50

    def test_d_reads_recently_updated_pages(self):
        ops = collect(YcsbPattern("d"), n_ops=2000)
        updated = set()
        latest_reads = total_reads = 0
        for op in ops:
            if op.kind == UPDATE:
                updated.add(op.pid)
            elif updated:
                total_reads += 1
                if op.pid in updated:
                    latest_reads += 1
        assert latest_reads / total_reads > 0.5


class TestTraceFormat:
    def test_round_trip(self, tmp_path):
        recorder = TraceRecorder(n_pages=16)
        recorder.record(READ, 3)
        recorder.record(UPDATE, 15)
        path = recorder.save(tmp_path / "t.trace", comment="two ops\nfor testing")
        trace = load_trace(path)
        assert trace.n_pages == 16
        assert trace.ops == [Op(READ, 3), Op(UPDATE, 15)]

    def test_recorder_rejects_out_of_range_pid(self):
        recorder = TraceRecorder(n_pages=4)
        with pytest.raises(TraceError):
            recorder.record(READ, 4)

    def test_record_pattern_replays_identically(self, tmp_path):
        recorder = record_pattern(ZipfPattern(0.9), N_PAGES, 100, seed=5)
        path = recorder.save(tmp_path / "zipf.trace")
        replayed = list(
            TracePattern(path).ops(N_PAGES, 100, random.Random(0))
        )
        assert replayed == collect(ZipfPattern(0.9), n_ops=100, seed=5)

    @pytest.mark.parametrize(
        "content",
        [
            "",
            "wrong-magic v1 pages=8\n",
            "repro-trace v2 pages=8\n",
            "repro-trace v1 pages=x\n",
            "repro-trace v1 pages=0\n",
            "repro-trace v1 pages=8\nw 1\n",
            "repro-trace v1 pages=8\nr 8\n",
            "repro-trace v1 pages=8\nr one\n",
            "repro-trace v1 pages=8\nr 1 2\n",
        ],
    )
    def test_malformed_traces_rejected(self, tmp_path, content):
        path = tmp_path / "bad.trace"
        path.write_text(content)
        with pytest.raises(TraceError):
            load_trace(path)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "c.trace"
        path.write_text("repro-trace v1 pages=4\n\n# note\nr 0\n\nu 3\n")
        assert load_trace(path).ops == [Op(READ, 0), Op(UPDATE, 3)]

    def test_checked_in_trace_loads(self):
        from pathlib import Path

        trace = load_trace(
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "traces"
            / "oltp_hotset.trace"
        )
        assert trace.n_pages == 64
        assert len(trace.ops) > 100


class TestTracePattern:
    def test_cycles_when_short(self):
        trace = Trace(n_pages=4, ops=[Op(UPDATE, 0), Op(READ, 2)])
        ops = list(TracePattern(trace).ops(4, 5, random.Random(0)))
        assert ops == [
            Op(UPDATE, 0),
            Op(READ, 2),
            Op(UPDATE, 0),
            Op(READ, 2),
            Op(UPDATE, 0),
        ]

    def test_folds_pids_into_smaller_database(self):
        trace = Trace(n_pages=64, ops=[Op(UPDATE, 63)])
        ops = list(TracePattern(trace).ops(16, 1, random.Random(0)))
        assert ops == [Op(UPDATE, 63 % 16)]

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            TracePattern(Trace(n_pages=4, ops=[]))
