"""Tests for the scaled TPC-C schema, loader, and transactions."""

import pytest

from repro.core.pdl import PdlDriver
from repro.flash.chip import FlashChip
from repro.flash.spec import FlashSpec
from repro.storage.db import Database
from repro.workloads.tpcc import (
    TEST_SCALE,
    TpccDatabase,
    TpccWorkload,
    estimate_database_pages,
    run_tpcc,
)
from repro.workloads.tpcc import schema


class TestSchema:
    def test_codec_roundtrip(self):
        rec = schema.CUSTOMER.encode(1, 2, 3, -500, 1000, 4, 5)
        assert len(rec) == schema.CUSTOMER.size == 655
        decoded = schema.CUSTOMER.decode(rec)
        assert decoded["c_w_id"] == 1
        assert decoded["c_balance"] == -500
        assert decoded["c_delivery_cnt"] == 5

    def test_all_codecs_roundtrip_zeroes(self):
        for codec in schema.ALL_CODECS:
            values = tuple(0 for _ in codec.fields)
            decoded = codec.decode(codec.encode(*values))
            assert tuple(decoded.values()) == values

    def test_codec_field_count_checked(self):
        with pytest.raises(ValueError):
            schema.ITEM.encode(1)

    def test_codec_size_checked(self):
        with pytest.raises(ValueError):
            schema.ITEM.decode(b"\x00" * 10)

    def test_keys_are_unique_and_ordered(self):
        k1 = schema.order_key(1, 1, 5)
        k2 = schema.order_key(1, 1, 6)
        k3 = schema.order_key(1, 2, 1)
        assert k1 < k2 < k3
        assert schema.order_line_key(1, 1, 5, 1) != schema.order_line_key(1, 1, 5, 2)

    def test_scale_properties(self):
        assert TEST_SCALE.customers == 1 * 2 * 30
        assert TEST_SCALE.stock_rows == 100


@pytest.fixture(scope="module")
def loaded():
    """One loaded TPC-C database shared by the read-mostly tests."""
    spec = FlashSpec(n_blocks=96, pages_per_block=16,
                     page_data_size=2048, page_spare_size=64)
    chip = FlashChip(spec)
    driver = PdlDriver(chip, max_differential_size=256)
    db = Database(driver, buffer_capacity=256)
    tpcc = TpccDatabase(db, TEST_SCALE, seed=1)
    tpcc.load()
    return chip, db, tpcc


class TestLoader:
    def test_all_tables_populated(self, loaded):
        _chip, _db, tpcc = loaded
        s = tpcc.scale
        assert len(tpcc.tables["warehouse"].heap) == s.warehouses
        assert len(tpcc.tables["district"].heap) == s.warehouses * 2
        assert len(tpcc.tables["customer"].heap) == s.customers
        assert len(tpcc.tables["item"].heap) == s.items
        assert len(tpcc.tables["stock"].heap) == s.stock_rows
        assert len(tpcc.tables["orders"].heap) == s.warehouses * 2 * 30

    def test_indexes_resolve_records(self, loaded):
        _chip, _db, tpcc = loaded
        row = schema.CUSTOMER.decode(
            tpcc.tables["customer"].read(schema.customer_key(1, 1, 1))
        )
        assert (row["c_w_id"], row["c_d_id"], row["c_id"]) == (1, 1, 1)

    def test_new_order_queue_holds_undelivered(self, loaded):
        _chip, _db, tpcc = loaded
        undelivered = len(tpcc.tables["new_order"].heap)
        assert undelivered == 2 * (30 - 21)  # 30% of 30 per district

    def test_estimate_is_sane(self, loaded):
        _chip, db, _tpcc = loaded
        estimate = estimate_database_pages(TEST_SCALE)
        assert 0.4 * estimate <= db.allocated_pages <= 2.5 * estimate


class TestTransactions:
    @pytest.fixture()
    def fresh(self):
        spec = FlashSpec(n_blocks=96, pages_per_block=16,
                         page_data_size=2048, page_spare_size=64)
        chip = FlashChip(spec)
        db = Database(PdlDriver(chip, max_differential_size=256), buffer_capacity=64)
        tpcc = TpccDatabase(db, TEST_SCALE, seed=2)
        tpcc.load()
        return TpccWorkload(tpcc, seed=3)

    def test_new_order_creates_rows(self, fresh):
        before_orders = len(fresh.tpcc.tables["orders"].heap)
        before_lines = len(fresh.tpcc.tables["order_line"].heap)
        fresh.new_order()
        assert len(fresh.tpcc.tables["orders"].heap) == before_orders + 1
        assert len(fresh.tpcc.tables["order_line"].heap) >= before_lines + 5

    def test_payment_updates_balances(self, fresh):
        t = fresh.tpcc.tables
        before = schema.WAREHOUSE.decode(t["warehouse"].read(1))["w_ytd"]
        fresh.payment()
        after = schema.WAREHOUSE.decode(t["warehouse"].read(1))["w_ytd"]
        assert after > before
        assert len(t["history"].heap) == 1

    def test_delivery_drains_new_orders(self, fresh):
        before = len(fresh.tpcc.tables["new_order"].heap)
        fresh.delivery()
        after = len(fresh.tpcc.tables["new_order"].heap)
        assert after == before - TEST_SCALE.districts_per_warehouse

    def test_order_status_and_stock_level_are_read_only(self, fresh):
        t = fresh.tpcc.tables
        counts = {name: len(tab.heap) for name, tab in t.items()}
        fresh.order_status()
        fresh.stock_level()
        assert {name: len(tab.heap) for name, tab in t.items()} == counts

    def test_mix_distribution(self, fresh):
        fresh.run(200)
        c = fresh.counts
        assert c.total == 200
        assert c.new_order > c.order_status
        assert c.payment > c.delivery
        assert all(
            getattr(c, name) > 0
            for name in ("new_order", "payment", "order_status",
                         "delivery", "stock_level")
        )


class TestHarness:
    def test_run_tpcc_end_to_end(self):
        m = run_tpcc(
            "PDL (256B)", TEST_SCALE, buffer_fraction=0.05,
            n_transactions=60, warmup_transactions=20,
        )
        assert m.transactions == 60
        assert m.io_us_per_txn > 0
        assert 0.0 < m.hit_ratio < 1.0
        assert m.buffer_pages == max(4, int(m.database_pages * 0.05))

    def test_buffer_fraction_validated(self):
        with pytest.raises(ValueError):
            run_tpcc("OPU", TEST_SCALE, buffer_fraction=0.0, n_transactions=1)

    def test_larger_buffer_less_io(self):
        small = run_tpcc("OPU", TEST_SCALE, buffer_fraction=0.01,
                         n_transactions=80, warmup_transactions=30)
        large = run_tpcc("OPU", TEST_SCALE, buffer_fraction=0.5,
                         n_transactions=80, warmup_transactions=30)
        assert large.io_us_per_txn < small.io_us_per_txn
        assert large.hit_ratio > small.hit_ratio
