"""Fixture: direct shard mutation outside the sharding layer (4 findings)."""


def direct_subscript(driver, pid, data):
    driver.shards[0].write_page(pid, data)


def via_loop(driver):
    for shard in driver.shards:
        shard.flush()


def via_local(driver, pid, data):
    hot = driver.shards[1]
    hot.write_pages([(pid, data)])


def via_lambda(driver, index, pid, data):
    return lambda s=driver.shards[index]: s.write_page(pid, data)
