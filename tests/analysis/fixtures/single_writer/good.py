"""Fixture: routed writes and read-only shard access (0 findings)."""


def routed(driver, pid, data):
    driver.write_page(pid, data)  # the router owns shard dispatch


def read_only(driver):
    return [shard.stats.snapshot() for shard in driver.shards]


def read_config(driver):
    shard = driver.shards[0]
    return shard.effective_max
