"""Fixture: the pinned() context managers (0 findings)."""


def scoped(pool, pid):
    with pool.pinned(pid) as page:
        return page.data


def page_scoped(page):
    with page.pinned():
        return page.data
