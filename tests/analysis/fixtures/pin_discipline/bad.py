"""Fixture: raw pin/unpin outside the pool internals (2 findings)."""


def leaky(pool, pid):
    page = pool.get_page(pid)
    page.pin()
    try:
        return page.data
    finally:
        page.unpin()
