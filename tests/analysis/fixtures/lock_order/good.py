"""Fixture: consistent order, plus an alias via Condition (0 findings)."""
import threading


class Pool:
    def __init__(self):
        self.alloc_lock = threading.Lock()
        self.flush_lock = threading.Lock()
        self.flush_cond = threading.Condition(self.flush_lock)

    def allocate(self):
        with self.alloc_lock:
            with self.flush_lock:
                return 1

    def drain(self):
        with self.alloc_lock:
            with self.flush_cond:  # same lock as flush_lock: consistent
                return 2

    def flush_only(self):
        with self.flush_lock:
            return 3


class Daemon:
    def __init__(self, pool):
        self.cond = pool.flush_cond  # alias resolves to Pool.flush_lock

    def wait(self):
        with self.cond:
            return 4
