"""Fixture: two locks taken in opposite orders (1 cycle finding)."""
import threading


class Pool:
    def __init__(self):
        self.alloc_lock = threading.Lock()
        self.flush_lock = threading.Lock()

    def allocate(self):
        with self.alloc_lock:
            with self.flush_lock:
                return 1

    def flush(self):
        with self.flush_lock:
            with self.alloc_lock:
                return 2
