"""Fixture: leaked shm, unclosed chip, armed hook (3+ findings)."""
from multiprocessing import shared_memory


def leaky_shm(name, size):
    shm = shared_memory.SharedMemory(name=name, create=True, size=size)
    return shm.buf


def dropped_chip(spec, pid):
    chip = FlashChip(spec)  # noqa: F821
    chip.program_page(pid, b"x")
    return pid


class HookLeaker:
    def arm(self, chip, callback):
        chip.on_operation(callback)
