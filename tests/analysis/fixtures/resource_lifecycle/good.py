"""Fixture: shm under try+unlink, closed chip, paired hooks (0 findings)."""
from multiprocessing import shared_memory


def careful_shm(name, size):
    shm = None
    try:
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        return bytes(shm.buf)
    finally:
        if shm is not None:
            shm.close()
            shm.unlink()


def closed_chip(spec, pid):
    chip = FlashChip(spec)  # noqa: F821
    try:
        chip.program_page(pid, b"x")
    finally:
        chip.close()


def escaping_chip(spec, registry):
    chip = FlashChip(spec)  # noqa: F821
    registry.append(chip)  # ownership handed off; caller closes


class HookPairer:
    def arm(self, chip, callback):
        self.chip = chip
        chip.on_operation(callback)

    def disarm(self):
        self.chip.on_operation(None)
