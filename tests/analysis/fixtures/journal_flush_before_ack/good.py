"""Fixture: every OPEN_BLOCK record is committed before the ack returns."""

REC_OPEN_BLOCK = 9
REC_SET_BASE = 1


def note_block_open(journal, block):
    journal.record(REC_OPEN_BLOCK, block)
    journal.commit()


def buffered_record(journal, pid, addr):
    # Non-OPEN_BLOCK records may buffer and group-commit later.
    journal.record(REC_SET_BASE, pid, addr)


def replay_record(kind, block, opened):
    # Comparing against the kind constant is not journaling it.
    if kind == REC_OPEN_BLOCK:
        opened.add(block)
