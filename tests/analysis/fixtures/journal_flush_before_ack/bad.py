"""Fixture: OPEN_BLOCK journaled without a following commit (2 findings)."""

REC_OPEN_BLOCK = 9


def open_block_never_committed(journal, block):
    journal.record(REC_OPEN_BLOCK, block)
    return block


def commit_precedes_the_record(journal, block):
    journal.commit()
    journal.record(REC_OPEN_BLOCK, block)
