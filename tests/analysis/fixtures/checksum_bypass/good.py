"""Fixture: verified reads, and an explicit verify=True (0 findings)."""


def careful_read(chip, addr):
    return chip.read_page(addr)


def explicit_read(chip, addr):
    return chip.read_page(addr, verify=True)


def other_kwarg(chip, addrs):
    return chip.read_pages(addrs, verify=bool(addrs))
