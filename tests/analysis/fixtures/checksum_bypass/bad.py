"""Fixture: unverified reads outside the repair modules (2 findings)."""


def sloppy_read(chip, addr):
    return chip.read_page(addr, verify=False)


def sloppy_bulk(chip, addrs):
    return chip.read_pages(addrs, verify=False)
