"""Fixture: unguarded phase scopes, hooks and timers (3 findings)."""
import time


def bare_phase_call(stats):
    stats.phase("gc")  # scope object discarded: stack never pops


def begin_without_end(gc, chip, pid, data):
    gc.on_write_begin()
    chip.program_page(pid, data)


def unguarded_timer(stats, driver, pid, data):
    start = time.perf_counter()
    driver.write_page(pid, data)
    stats.stalls.record((time.perf_counter() - start) * 1e6)
