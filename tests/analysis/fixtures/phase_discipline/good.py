"""Fixture: with-scoped phases, finally-paired hooks and timers (0 findings)."""
import time


def scoped_phase(stats, chip, pid):
    with stats.phase("read_step"):
        return chip.read_page(pid)


def paired_hooks(gc, chip, pid, data):
    gc.on_write_begin()
    try:
        chip.program_page(pid, data)
    finally:
        gc.on_write_end()


def guarded_timer(stats, driver, pid, data):
    start = time.perf_counter()
    try:
        driver.write_page(pid, data)
    finally:
        stats.stalls.record((time.perf_counter() - start) * 1e6)


def stack_phase(stack, stats):
    stack.enter_context(stats.phase("load"))
