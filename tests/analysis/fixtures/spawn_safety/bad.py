"""Fixture: unpicklable state at the process boundary (4 findings)."""
import threading
from multiprocessing import Process


def lambda_in_recipe(path, spec):
    return ShardFactory(path=path, build=lambda: spec)  # noqa: F821


def lock_in_recipe(path, spec):
    return ShardFactory(path=path, spec=spec, guard=threading.Lock())  # noqa: F821


def nested_target(conn):
    def run():
        conn.recv()

    proc = Process(target=run)
    return proc


def lambda_on_pipe(parent_conn, pid):
    parent_conn.send(("task", lambda: pid))
