"""Fixture: picklable recipes and module-level targets (0 findings)."""
from multiprocessing import Process


def _worker_main(conn):
    conn.recv()


def plain_recipe(path, spec):
    return ShardFactory(path=str(path), spec=spec, read_cache_pages=0)  # noqa: F821


def module_target(conn):
    return Process(target=_worker_main, args=(conn,))


def data_on_pipe(parent_conn, pid, data):
    parent_conn.send(("write", pid, data))


def parent_side_closure(executor, driver, pid):
    # Thread-pool thunks never cross a process boundary; not flagged.
    return executor.submit(lambda: driver.read_page(pid))
