"""Fixture: specific catches, collected errors, justified swallows (0 findings)."""


def collected(tasks, errors):
    for task in tasks:
        try:
            task()
        except ValueError as exc:
            errors.append(exc)


def rethrown(chip):
    try:
        chip.close()
    except Exception:
        raise RuntimeError("close failed") from None


def justified(chip):
    try:
        chip.close()
    except Exception:  # repro: allow[bare-except] -- chip already broken; close is best-effort
        pass
