"""Fixture: bare except and a swallowed broad catch (2 findings)."""


def worker_loop(tasks):
    for task in tasks:
        try:
            task()
        except:  # noqa: E722
            continue


def swallow(chip):
    try:
        chip.close()
    except Exception:
        pass
