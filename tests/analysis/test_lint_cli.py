"""CLI contract: exit codes, formats, baseline flags, seeded-violation gate."""

import json
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
CLI = REPO_ROOT / "scripts" / "lint_invariants.py"
FIXTURES = Path(__file__).parent / "fixtures"


def run_cli(*args, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, str(CLI), *map(str, args)],
        capture_output=True,
        text=True,
        cwd=cwd,
        timeout=120,
    )


def test_clean_tree_exits_zero(tmp_path):
    (tmp_path / "ok.py").write_text("def f():\n    return 1\n")
    proc = run_cli(tmp_path, "--no-baseline")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_seeded_violation_tree_exits_one(tmp_path):
    """The CI gate demonstration: a bad fixture planted in a tree fails it."""
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "ok.py").write_text("def f():\n    return 1\n")
    shutil.copy(FIXTURES / "checksum_bypass" / "bad.py", tree / "seeded.py")
    proc = run_cli(tree, "--no-baseline")
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "checksum-bypass" in proc.stdout


def test_missing_path_exits_two(tmp_path):
    proc = run_cli(tmp_path / "does-not-exist")
    assert proc.returncode == 2
    assert "no such path" in proc.stderr


def test_unknown_rule_exits_two(tmp_path):
    (tmp_path / "ok.py").write_text("x = 1\n")
    proc = run_cli(tmp_path, "--rule", "no-such-rule")
    assert proc.returncode == 2
    assert "unknown rule" in proc.stderr


def test_malformed_baseline_exits_two(tmp_path):
    (tmp_path / "ok.py").write_text("x = 1\n")
    bad = tmp_path / "baseline.json"
    bad.write_text("{broken")
    proc = run_cli(tmp_path, "--baseline", bad)
    assert proc.returncode == 2
    assert "baseline" in proc.stderr


def test_list_rules():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    listed = {line.split(":")[0] for line in proc.stdout.strip().splitlines()}
    assert {
        "single-writer",
        "phase-discipline",
        "spawn-safety",
        "resource-lifecycle",
        "pin-discipline",
        "lock-order",
        "bare-except",
        "checksum-bypass",
    } <= listed


def test_json_format_and_output_file(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    shutil.copy(FIXTURES / "pin_discipline" / "bad.py", tree / "bad.py")
    out = tmp_path / "findings.json"
    proc = run_cli(tree, "--no-baseline", "--format", "json", "--output", out)
    assert proc.returncode == 1
    payload = json.loads(out.read_text())
    assert payload["ok"] is False
    assert [f["rule"] for f in payload["findings"]] == ["pin-discipline"] * 2
    assert all(f["path"] == "bad.py" for f in payload["findings"])


def test_write_baseline_then_rerun_is_clean(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    shutil.copy(FIXTURES / "bare_except" / "bad.py", tree / "bad.py")
    baseline = tmp_path / "baseline.json"

    wrote = run_cli(
        tree,
        "--baseline",
        baseline,
        "--write-baseline",
        "--justification",
        "grandfathered during gate rollout",
    )
    assert wrote.returncode == 0, wrote.stdout + wrote.stderr
    assert baseline.is_file()

    rerun = run_cli(tree, "--baseline", baseline)
    assert rerun.returncode == 0, rerun.stdout + rerun.stderr
    assert "2 baselined" in rerun.stdout


def test_single_rule_filter(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    shutil.copy(FIXTURES / "checksum_bypass" / "bad.py", tree / "a.py")
    shutil.copy(FIXTURES / "pin_discipline" / "bad.py", tree / "b.py")
    proc = run_cli(tree, "--no-baseline", "--rule", "pin-discipline")
    assert proc.returncode == 1
    assert "pin-discipline" in proc.stdout
    assert "checksum-bypass" not in proc.stdout
