"""Repo self-scan regression: the live tree stays clean under the gate.

This is the same scan the ``invariant-lint`` CI job runs
(``python scripts/lint_invariants.py src/``); keeping it in tier-1 means
a contract violation fails locally before it ever reaches CI.
"""

from pathlib import Path

from repro.analysis import Baseline, analyze

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_repo_baseline():
    path = REPO_ROOT / "analysis-baseline.json"
    return Baseline.load(path) if path.exists() else Baseline.empty()


def test_src_tree_has_no_unbaselined_findings():
    baseline = load_repo_baseline()
    result = analyze([REPO_ROOT / "src"], root=REPO_ROOT, baseline=baseline)
    assert result.broken == [], result.broken
    assert result.new == [], "\n".join(f.render() for f in result.new)


def test_repo_baseline_entries_all_carry_justifications():
    # Baseline.load raises on empty justifications; this documents the
    # contract explicitly and keeps the file parseable.
    baseline = load_repo_baseline()
    for entry in baseline.entries:
        assert entry.justification.strip()


def test_repo_baseline_has_no_stale_entries():
    baseline = load_repo_baseline()
    result = analyze([REPO_ROOT / "src"], root=REPO_ROOT, baseline=baseline)
    assert result.stale_baseline == [], [
        (e.rule, e.path) for e in result.stale_baseline
    ]


def test_known_suppressions_are_deliberate():
    """The live tree's inline allows stay enumerated: additions are reviewed."""
    result = analyze([REPO_ROOT / "src"], root=REPO_ROOT)
    suppressed = sorted({(f.rule, f.path) for f in result.suppressed})
    assert suppressed == [
        ("bare-except", "src/repro/sharding/executor_proc.py"),
    ], suppressed
