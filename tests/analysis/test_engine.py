"""Engine behaviour: suppressions, baseline round-trips, parse errors."""

from pathlib import Path

import pytest

from repro.analysis import Baseline, BaselineError, analyze
from repro.analysis.baseline import BaselineEntry

BAD_READ = "def f(chip, a):\n    return chip.read_page(a, verify=False)\n"


def write(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Inline suppressions
# ---------------------------------------------------------------------------
def test_trailing_suppression(tmp_path):
    write(
        tmp_path,
        "a.py",
        "def f(chip, a):\n"
        "    return chip.read_page(a, verify=False)"
        "  # repro: allow[checksum-bypass] -- fixture\n",
    )
    result = analyze([tmp_path], root=tmp_path)
    assert result.new == []
    assert [f.rule for f in result.suppressed] == ["checksum-bypass"]


def test_standalone_comment_suppresses_next_line(tmp_path):
    write(
        tmp_path,
        "a.py",
        "def f(chip, a):\n"
        "    # repro: allow[checksum-bypass] -- reading a torn page on purpose\n"
        "    return chip.read_page(a, verify=False)\n",
    )
    result = analyze([tmp_path], root=tmp_path)
    assert result.new == []
    assert len(result.suppressed) == 1


def test_multiline_standalone_comment_suppresses_following_code(tmp_path):
    write(
        tmp_path,
        "a.py",
        "def f(chip, a):\n"
        "    # repro: allow[checksum-bypass] -- a justification that is\n"
        "    # long enough to wrap across two comment lines\n"
        "    return chip.read_page(a, verify=False)\n",
    )
    result = analyze([tmp_path], root=tmp_path)
    assert result.new == []


def test_suppression_is_rule_specific(tmp_path):
    write(
        tmp_path,
        "a.py",
        "def f(chip, a):\n"
        "    return chip.read_page(a, verify=False)"
        "  # repro: allow[pin-discipline] -- wrong rule id\n",
    )
    result = analyze([tmp_path], root=tmp_path)
    assert [f.rule for f in result.new] == ["checksum-bypass"]


def test_wildcard_suppression(tmp_path):
    write(
        tmp_path,
        "a.py",
        "def f(chip, a):\n"
        "    return chip.read_page(a, verify=False)  # repro: allow[*] -- generated\n",
    )
    result = analyze([tmp_path], root=tmp_path)
    assert result.new == []


def test_allow_comment_inside_string_is_ignored(tmp_path):
    write(
        tmp_path,
        "a.py",
        'NOTE = "# repro: allow[checksum-bypass]"\n'
        "def f(chip, a):\n"
        "    return chip.read_page(a, verify=False)\n",
    )
    result = analyze([tmp_path], root=tmp_path)
    assert [f.rule for f in result.new] == ["checksum-bypass"]


# ---------------------------------------------------------------------------
# Baseline round-trips
# ---------------------------------------------------------------------------
def test_baseline_roundtrip_grandfathers_findings(tmp_path):
    write(tmp_path, "a.py", BAD_READ)
    first = analyze([tmp_path], root=tmp_path)
    assert len(first.new) == 1

    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(first.new, "legacy torn-page probe").save(baseline_path)
    baseline = Baseline.load(baseline_path)

    second = analyze([tmp_path], root=tmp_path, baseline=baseline)
    assert second.new == []
    assert len(second.grandfathered) == 1
    assert second.stale_baseline == []
    assert second.ok


def test_baseline_requires_justification(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        '{"version": 1, "findings": [{"rule": "checksum-bypass", '
        '"path": "a.py", "message": "m", "justification": "  "}]}',
        encoding="utf-8",
    )
    with pytest.raises(BaselineError, match="justification"):
        Baseline.load(baseline_path)


def test_baseline_rejects_malformed_json(tmp_path):
    baseline_path = write(tmp_path, "baseline.json", "{not json")
    with pytest.raises(BaselineError, match="valid JSON"):
        Baseline.load(baseline_path)


def test_stale_baseline_entries_are_reported(tmp_path):
    write(tmp_path, "a.py", "x = 1\n")
    baseline = Baseline(
        entries=[
            BaselineEntry(
                rule="checksum-bypass",
                path="a.py",
                message="long gone",
                justification="was fixed in a later PR",
            )
        ]
    )
    result = analyze([tmp_path], root=tmp_path, baseline=baseline)
    assert result.new == []
    assert len(result.stale_baseline) == 1
    assert result.ok  # stale entries are notes, not failures


def test_baseline_match_ignores_line_numbers(tmp_path):
    write(tmp_path, "a.py", BAD_READ)
    first = analyze([tmp_path], root=tmp_path)
    baseline = Baseline.from_findings(first.new, "grandfathered")
    # Shift the finding down two lines; (rule, path, message) still match.
    write(tmp_path, "a.py", "import os\nUSED = os.name\n" + BAD_READ)
    second = analyze([tmp_path], root=tmp_path, baseline=baseline)
    assert second.new == []
    assert len(second.grandfathered) == 1


# ---------------------------------------------------------------------------
# Parse failures
# ---------------------------------------------------------------------------
def test_unparseable_file_fails_the_run(tmp_path):
    write(tmp_path, "a.py", "def broken(:\n")
    result = analyze([tmp_path], root=tmp_path)
    assert not result.ok
    assert result.broken and result.broken[0][0] == "a.py"


def test_clean_tree_is_ok(tmp_path):
    write(tmp_path, "a.py", "def f():\n    return 1\n")
    result = analyze([tmp_path], root=tmp_path)
    assert result.ok
    assert result.new == []
