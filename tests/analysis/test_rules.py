"""Per-rule fixture tests: every rule fires on bad.py, stays quiet on good.py."""

from pathlib import Path

import pytest

from repro.analysis import analyze

FIXTURES = Path(__file__).parent / "fixtures"

# (fixture directory, rule id, findings expected in bad.py)
CASES = [
    ("bare_except", "bare-except", 2),
    ("checksum_bypass", "checksum-bypass", 2),
    ("journal_flush_before_ack", "journal-flush-before-ack", 2),
    ("lock_order", "lock-order", 1),
    ("phase_discipline", "phase-discipline", 3),
    ("pin_discipline", "pin-discipline", 2),
    ("resource_lifecycle", "resource-lifecycle", 3),
    ("single_writer", "single-writer", 4),
    ("spawn_safety", "spawn-safety", 4),
]


@pytest.mark.parametrize("fixture,rule_id,expected", CASES)
def test_bad_fixture_fires(fixture, rule_id, expected):
    path = FIXTURES / fixture / "bad.py"
    result = analyze([path], root=FIXTURES / fixture)
    of_rule = [f for f in result.new if f.rule == rule_id]
    assert len(of_rule) == expected, [f.render() for f in result.new]
    # The bad fixtures are single-defect files: no cross-rule noise.
    assert len(result.new) == expected, [f.render() for f in result.new]
    for finding in of_rule:
        assert finding.path == "bad.py"
        assert finding.line > 0
        assert finding.message


@pytest.mark.parametrize("fixture,rule_id,expected", CASES)
def test_good_fixture_quiet(fixture, rule_id, expected):
    path = FIXTURES / fixture / "good.py"
    result = analyze([path], root=FIXTURES / fixture)
    assert result.new == [], [f.render() for f in result.new]


def test_every_registered_rule_has_fixtures():
    from repro.analysis import rule_ids

    covered = {rule_id for _fixture, rule_id, _n in CASES}
    assert covered == set(rule_ids())
    for fixture, _rule_id, _n in CASES:
        assert (FIXTURES / fixture / "bad.py").is_file()
        assert (FIXTURES / fixture / "good.py").is_file()


def test_findings_are_ordered_and_deduplicated():
    paths = [FIXTURES / "bare_except" / "bad.py"]
    result = analyze(paths + paths, root=FIXTURES / "bare_except")
    keys = [(f.path, f.line, f.rule, f.message) for f in result.new]
    assert keys == sorted(set(keys))
