"""Tests for the alternative GC victim policies."""

import random

import pytest

from repro.core.pdl import PdlDriver
from repro.ext.wear_leveling import round_robin_policy, wear_aware_policy
from repro.flash.chip import FlashChip
from repro.ftl.gc import greedy_policy
from repro.ftl.opu import OpuDriver


def _soak(driver, rng, n_pages=16, steps=500):
    images = {}
    for pid in range(n_pages):
        images[pid] = rng.randbytes(driver.page_size)
        driver.load_page(pid, images[pid])
    for _ in range(steps):
        pid = rng.randrange(n_pages)
        image = bytearray(images[pid])
        off = rng.randrange(len(image) - 4)
        image[off : off + 4] = rng.randbytes(4)
        images[pid] = bytes(image)
        driver.write_page(pid, images[pid])
    return images


@pytest.mark.parametrize(
    "policy_factory",
    [lambda: greedy_policy, round_robin_policy, wear_aware_policy],
    ids=["greedy", "round_robin", "wear_aware"],
)
class TestPoliciesPreserveData:
    def test_opu_soak(self, tiny_spec, policy_factory):
        chip = FlashChip(tiny_spec)
        driver = OpuDriver(chip, victim_policy=policy_factory())
        images = _soak(driver, random.Random(1))
        for pid, expected in images.items():
            assert driver.read_page(pid) == expected
        assert chip.stats.total_erases > 0

    def test_pdl_soak(self, tiny_spec, policy_factory):
        chip = FlashChip(tiny_spec)
        driver = PdlDriver(
            chip, max_differential_size=64, victim_policy=policy_factory()
        )
        images = _soak(driver, random.Random(2))
        for pid, expected in images.items():
            assert driver.read_page(pid) == expected


class TestWearBehaviour:
    def test_round_robin_spreads_erases(self, tiny_spec):
        """Round-robin wear must be at least as even as greedy's."""

        def max_wear(policy):
            chip = FlashChip(tiny_spec)
            driver = OpuDriver(chip, victim_policy=policy)
            _soak(driver, random.Random(3), steps=800)
            counts = [chip.erase_count(b) for b in range(tiny_spec.n_blocks)]
            return max(counts), sum(counts)

        greedy_max, greedy_total = max_wear(greedy_policy)
        rr_max, rr_total = max_wear(round_robin_policy())
        assert rr_max <= greedy_max + 2

    def test_wear_aware_avoids_hot_blocks(self, tiny_spec):
        chip = FlashChip(tiny_spec)
        driver = OpuDriver(chip, victim_policy=wear_aware_policy(wear_weight=5.0))
        _soak(driver, random.Random(4), steps=800)
        counts = [chip.erase_count(b) for b in range(tiny_spec.n_blocks)]
        # no block should be erased wildly more than the mean
        mean = sum(counts) / len(counts)
        assert max(counts) <= mean * 4 + 3
