"""Crash matrix for the mapping journal/snapshot restart path.

Every test pits the snapshot-load + journal-tail-replay restart
(:func:`repro.ext.journal.restart_driver`) against the Figure-11
full-scan oracle (:func:`repro.core.recovery.recover_tables` on a
private deep copy of the crashed chip) and demands byte-identical
ppmt/vdct state.  The boundaries under attack:

* power loss at every k-th mutating flash op of a write+GC window
  (journal appends, snapshots, GC drops all land inside the sweep);
* a *torn* journal append — the group-commit page itself half-programs
  before the power cut, at every journal program of the window;
* power loss at every op of a snapshot (half erase, data/meta programs,
  the seal, the journal reset) — including the stale-epoch window where
  the new seal exists but the old journal was not yet erased;
* a journal tail strictly newer than the snapshot (the fast path's
  bread and butter);
* journal overflow: the marker page must force the scan fallback.
"""

from __future__ import annotations

import copy
import random
from typing import Dict, Optional, Tuple

import pytest

from repro.core.mapping import MappingConfig
from repro.core.pdl import PdlDriver
from repro.core.recovery import recover_tables
from repro.core.tables import PhysicalPageMappingTable, ValidDifferentialCountTable
from repro.ext.journal import restart_driver
from repro.flash.chip import FlashChip
from repro.flash.errors import SimulatedPowerLoss
from repro.flash.spec import FlashSpec

SPEC = FlashSpec(
    n_blocks=16, pages_per_block=8, page_data_size=256, page_spare_size=32
)
N_PIDS = 10
N_WRITES = 60
SEED = 20100121
MAX_DIFF = 64
INTERVAL = 40  # journal records between snapshots: several per window


def _build(
    interval: int = INTERVAL, cache_entries: int = 8
) -> Tuple[FlashChip, PdlDriver, MappingConfig]:
    cfg = MappingConfig.auto(
        SPEC, cache_entries=cache_entries, snapshot_interval=interval
    )
    chip = FlashChip(SPEC)
    driver = PdlDriver(chip, max_differential_size=MAX_DIFF, mapping=cfg)
    return chip, driver, cfg


def _workload(driver: PdlDriver, n_writes: int = N_WRITES) -> None:
    """Deterministic load + patch window with periodic flushes."""
    rng = random.Random(SEED)
    for pid in range(N_PIDS):
        driver.load_page(pid, rng.randbytes(SPEC.page_data_size))
    driver.end_of_load()
    for i in range(n_writes):
        pid = rng.randrange(N_PIDS)
        image = bytearray(driver.read_page(pid))
        offset = rng.randrange(SPEC.page_data_size - 24)
        image[offset : offset + 24] = rng.randbytes(24)
        driver.write_page(pid, bytes(image))
        if i % 9 == 8:
            driver.flush()
    driver.flush()


State = Tuple[Dict[int, Tuple[int, int, Optional[int], Optional[int]]], Dict[int, int]]


def _state_of(ppmt, vdct) -> State:
    rows = {
        pid: (e.base_addr, e.base_ts, e.diff_addr, e.diff_ts)
        for pid, e in ppmt.items()
    }
    return rows, dict(vdct.items())


def _scan_oracle(chip: FlashChip) -> State:
    """Figure-11 full scan on a private copy (mark_obsolete side effects
    must not leak into the restart's input)."""
    replica = copy.deepcopy(chip)
    ppmt = PhysicalPageMappingTable()
    vdct = ValidDifferentialCountTable()
    recover_tables(replica, ppmt, vdct)
    return _state_of(ppmt, vdct)


def _restart(chip: FlashChip, cfg: MappingConfig):
    replica = copy.deepcopy(chip)
    driver, report = restart_driver(
        replica, max_differential_size=MAX_DIFF, mapping=cfg
    )
    return driver, report


class _Countdown:
    """Power loss before the k-th mutating op (armed at construction)."""

    def __init__(self, chip: FlashChip, after: int):
        self.remaining = after
        self.chip = chip
        chip.on_operation(self._tick)

    def _tick(self, op: str) -> None:
        if self.remaining <= 0:
            raise SimulatedPowerLoss(f"power loss before {op}")
        self.remaining -= 1

    def disarm(self) -> None:
        self.chip.on_operation(None)


def _count_ops(run) -> int:
    counter = {"ops": 0}
    chip, driver, _cfg = _build()
    chip.on_operation(lambda _op: counter.__setitem__("ops", counter["ops"] + 1))
    run(chip, driver)
    chip.on_operation(None)
    return counter["ops"]


def test_crash_matrix_every_boundary():
    """Power loss swept across the whole window: restart == scan oracle."""
    total = _count_ops(lambda chip, driver: _workload(driver))
    assert total > 60, "window too small to cover the journal boundaries"
    fast = fallback = 0
    for k in range(0, total, 3):
        chip, driver, cfg = _build()
        guard = _Countdown(chip, k)
        try:
            _workload(driver)
        except SimulatedPowerLoss:
            pass
        else:
            pytest.fail(f"crash point {k} of {total} never fired")
        finally:
            guard.disarm()
        expected = _scan_oracle(chip)
        recovered, report = _restart(chip, cfg)
        assert _state_of(recovered.ppmt, recovered.vdct) == expected, (
            f"crash@{k}: restart diverged from the scan oracle"
        )
        fast += report.fast_path
        fallback += report.fallback
    assert fast > 0, "sweep never exercised the snapshot+journal fast path"


def test_torn_journal_append_replays_valid_prefix():
    """The commit page itself half-programs at the power cut.

    The chip's native crash model only produces clean prefixes, so the
    tear is staged manually: the k-th journal program stores half its
    record payload (erased 0xFF beyond the tear) and the power then
    fails.  Because the journal acks *before* dependent programs start
    (the flush-before-ack contract), replaying the valid prefix plus the
    seeded tail scan must still converge to the oracle.
    """
    total_appends = _count_journal_programs()
    assert total_appends > 4
    torn_fired = 0
    for target in range(total_appends):
        chip, driver, cfg = _build()
        journal = range(
            driver.mapping.journal_page_addr(0),
            driver.mapping.journal_page_addr(0) + driver.mapping.journal_pages,
        )
        orig = chip.program_page
        state = {"seen": 0}

        def tearing(addr, data, spare, _orig=orig, _state=state, _target=target):
            if addr in journal and _state["seen"] == _target:
                half = len(data) // 2
                _orig(addr, data[:half] + b"\xff" * (len(data) - half), spare)
                raise SimulatedPowerLoss(f"torn journal program at {addr}")
            if addr in journal:
                _state["seen"] += 1
            _orig(addr, data, spare)

        chip.program_page = tearing  # type: ignore[method-assign]
        try:
            _workload(driver)
        except SimulatedPowerLoss:
            torn_fired += 1
        finally:
            del chip.program_page
        expected = _scan_oracle(chip)
        recovered, report = _restart(chip, cfg)
        assert _state_of(recovered.ppmt, recovered.vdct) == expected, (
            f"torn append #{target}: restart diverged from the scan oracle"
        )
        if report.fast_path:
            # The torn page is journal damage the restart must have seen
            # and repaired (fresh snapshot at the end of the restart).
            assert report.repaired
    assert torn_fired == total_appends


def _count_journal_programs() -> int:
    chip, driver, _cfg = _build()
    journal = range(
        driver.mapping.journal_page_addr(0),
        driver.mapping.journal_page_addr(0) + driver.mapping.journal_pages,
    )
    counter = {"n": 0}
    orig = chip.program_page

    def counting(addr, data, spare):
        if addr in journal:
            counter["n"] += 1
        orig(addr, data, spare)

    chip.program_page = counting  # type: ignore[method-assign]
    try:
        _workload(driver)
    finally:
        del chip.program_page
    return counter["n"]


def test_crash_matrix_mid_snapshot():
    """Power loss at every op of a snapshot: half erase, data/meta
    programs, the seal, the journal reset.  Crashing between the new
    seal and the journal erase leaves stale-epoch journal pages behind
    the fresh snapshot — the classifier must replay none of them."""
    chip, driver, _cfg = _build()
    _workload(driver)
    counter = {"ops": 0}
    chip.on_operation(lambda _op: counter.__setitem__("ops", counter["ops"] + 1))
    driver.mapping.snapshot()
    chip.on_operation(None)
    total = counter["ops"]
    assert total > 5, "snapshot too small for a meaningful sweep"
    for k in range(total):
        chip, driver, cfg = _build()
        _workload(driver)
        guard = _Countdown(chip, k)
        try:
            driver.mapping.snapshot()
        except SimulatedPowerLoss:
            pass
        else:
            pytest.fail(f"snapshot crash point {k} of {total} never fired")
        finally:
            guard.disarm()
        expected = _scan_oracle(chip)
        recovered, report = _restart(chip, cfg)
        assert _state_of(recovered.ppmt, recovered.vdct) == expected, (
            f"snapshot crash@{k}: restart diverged from the scan oracle"
        )


def test_journal_tail_newer_than_snapshot():
    """The canonical fast path: clean snapshot + a dirty journal tail."""
    chip, driver, cfg = _build()
    _workload(driver)
    driver.mapping.snapshot()
    rng = random.Random(7)
    for _ in range(8):
        pid = rng.randrange(N_PIDS)
        image = bytearray(driver.read_page(pid))
        image[0:8] = rng.randbytes(8)
        driver.write_page(pid, bytes(image))
    driver.flush()
    expected = _scan_oracle(chip)
    recovered, report = _restart(chip, cfg)
    assert report.fast_path and not report.fallback
    assert report.journal_records > 0
    assert report.snapshot_seq is not None
    assert _state_of(recovered.ppmt, recovered.vdct) == expected
    # The recovered driver stays fully operational, journal included.
    image = bytearray(recovered.read_page(0))
    image[0:4] = b"\xde\xad\xbe\xef"
    recovered.write_page(0, bytes(image))
    recovered.flush()
    assert recovered.read_page(0) == bytes(image)


def test_journal_overflow_marker_forces_fallback():
    """A full journal writes the overflow marker; with no snapshot ever
    landing (GC kept "in flight" artificially), restart must take the
    scan fallback and still converge."""
    chip, driver, cfg = _build(interval=24)
    driver.mapping._safe_to_snapshot = lambda: False  # type: ignore[method-assign]
    rng = random.Random(SEED)
    for pid in range(N_PIDS):
        driver.load_page(pid, rng.randbytes(SPEC.page_data_size))
    driver.end_of_load()
    for _ in range(400):
        if driver.mapping._overflowed:
            break
        pid = rng.randrange(N_PIDS)
        image = bytearray(driver.read_page(pid))
        image[0:8] = rng.randbytes(8)
        driver.write_page(pid, bytes(image))
    assert driver.mapping._overflowed, "journal never overflowed"
    expected = _scan_oracle(chip)
    recovered, report = _restart(chip, cfg)
    assert report.fallback and not report.fast_path
    assert _state_of(recovered.ppmt, recovered.vdct) == expected
