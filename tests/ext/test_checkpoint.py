"""Tests for clean-shutdown checkpointing (the paper's future-work item)."""

import random

import pytest

from repro.core.pdl import PdlDriver
from repro.core.recovery import RECOVERY_PHASE
from repro.ext.checkpoint import CHECKPOINT_PHASE, CheckpointManager
from repro.flash.chip import FlashChip
from repro.flash.errors import CrashError
from repro.ftl.errors import ConfigurationError

REGION = 2


def _fresh(tiny_spec):
    chip = FlashChip(tiny_spec)
    driver = PdlDriver(
        chip, max_differential_size=64, checkpoint_region_blocks=REGION
    )
    return chip, driver, CheckpointManager(driver, REGION)


def _churn(driver, rng, images, n):
    for _ in range(n):
        pid = rng.randrange(len(images))
        image = bytearray(images[pid])
        off = rng.randrange(len(image) - 4)
        image[off : off + 4] = rng.randbytes(4)
        images[pid] = bytes(image)
        driver.write_page(pid, images[pid])


class TestConfiguration:
    def test_region_must_be_even_and_at_least_two(self, tiny_spec):
        chip = FlashChip(tiny_spec)
        driver = PdlDriver(chip, checkpoint_region_blocks=3)
        with pytest.raises(ConfigurationError):
            CheckpointManager(driver, 3)

    def test_driver_region_must_match(self, tiny_spec):
        chip = FlashChip(tiny_spec)
        driver = PdlDriver(chip)  # no excluded region
        with pytest.raises(ConfigurationError):
            CheckpointManager(driver, 2)


class TestFastRestart:
    def test_clean_shutdown_restarts_fast(self, tiny_spec):
        chip, driver, manager = _fresh(tiny_spec)
        rng = random.Random(1)
        images = {}
        for pid in range(10):
            images[pid] = rng.randbytes(driver.page_size)
            driver.load_page(pid, images[pid])
        _churn(driver, rng, images, 60)
        manager.checkpoint()
        restarted, _mgr, report = CheckpointManager.restart(
            chip, REGION, max_differential_size=64
        )
        assert report.fast_path
        assert report.fallback is None
        for pid, expected in images.items():
            assert restarted.read_page(pid) == expected

    def test_fast_restart_skips_full_scan(self, tiny_spec):
        chip, driver, manager = _fresh(tiny_spec)
        for pid in range(10):
            driver.load_page(pid, bytes([pid]) * driver.page_size)
        manager.checkpoint()
        snap = chip.stats.snapshot()
        CheckpointManager.restart(chip, REGION, max_differential_size=64)
        delta = chip.stats.delta_since(snap)
        assert delta.of_phase(RECOVERY_PHASE).reads == 0
        assert delta.of_phase(CHECKPOINT_PHASE).reads < tiny_spec.n_pages // 2

    def test_restart_continues_operation(self, tiny_spec):
        chip, driver, manager = _fresh(tiny_spec)
        rng = random.Random(2)
        images = {}
        for pid in range(10):
            images[pid] = rng.randbytes(driver.page_size)
            driver.load_page(pid, images[pid])
        manager.checkpoint()
        restarted, mgr, _ = CheckpointManager.restart(
            chip, REGION, max_differential_size=64
        )
        _churn(restarted, rng, images, 80)
        for pid, expected in images.items():
            assert restarted.read_page(pid) == expected
        mgr.checkpoint()  # a second checkpoint cycle works too
        again, _, report = CheckpointManager.restart(
            chip, REGION, max_differential_size=64
        )
        assert report.fast_path
        for pid, expected in images.items():
            assert again.read_page(pid) == expected


class TestCrashFallback:
    def test_crash_after_checkpoint_falls_back(self, tiny_spec):
        """Writes after a checkpoint invalidate it (session marker)."""
        chip, driver, manager = _fresh(tiny_spec)
        rng = random.Random(3)
        images = {}
        for pid in range(10):
            images[pid] = rng.randbytes(driver.page_size)
            driver.load_page(pid, images[pid])
        manager.checkpoint()
        # reopen (fast), then modify and crash without a new checkpoint
        reopened, mgr, report = CheckpointManager.restart(
            chip, REGION, max_differential_size=64
        )
        assert report.fast_path
        _churn(reopened, rng, images, 40)
        reopened.flush()
        # "crash": no shutdown checkpoint.  Restart must use the full scan.
        recovered, _mgr, report = CheckpointManager.restart(
            chip, REGION, max_differential_size=64
        )
        assert not report.fast_path
        assert report.fallback is not None
        for pid, expected in images.items():
            assert recovered.read_page(pid) == expected

    def test_no_checkpoint_at_all_falls_back(self, tiny_spec):
        chip, driver, _manager = _fresh(tiny_spec)
        driver.load_page(0, bytes(driver.page_size))
        driver.flush()
        recovered, _mgr, report = CheckpointManager.restart(
            chip, REGION, max_differential_size=64
        )
        assert not report.fast_path
        assert recovered.read_page(0) == bytes(driver.page_size)

    def test_crash_during_checkpoint_falls_back(self, tiny_spec):
        chip, driver, manager = _fresh(tiny_spec)
        rng = random.Random(4)
        images = {}
        for pid in range(8):
            images[pid] = rng.randbytes(driver.page_size)
            driver.load_page(pid, images[pid])
        manager.checkpoint()
        _churn(driver, rng, images, 30)
        driver.flush()
        chip.crash_after(0)  # die on the next checkpoint's first program
        with pytest.raises(CrashError):
            manager.checkpoint()
        recovered, _mgr, report = CheckpointManager.restart(
            chip, REGION, max_differential_size=64
        )
        # whichever path was taken, the data must be the flushed state
        for pid, expected in images.items():
            assert recovered.read_page(pid) == expected
