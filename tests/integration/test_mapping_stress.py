"""Mapping-cache stress: 8 clients × 4 demand-paged shards, both executors.

Eight client threads hammer a 4-shard array whose every shard runs the
demand-paged mapping tier with a deliberately tiny translation cache.
Afterwards the array is held to the usual standards (correct images,
``check_driver``-clean shards) *plus* the mapping-tier audit:

* **raw-counter audit** (thread executor) — per chip, the stats layer's
  ``mapping_misses`` must equal the independently counted raw device
  reads landing in the mapping region, and ``mapping_writebacks`` the
  raw programs landing there: every demand-page fault and journal/
  snapshot page is attributed, none double-counted;
* **phase audit** (both executors, incl. across the process boundary) —
  the same counters must equal the MAPPING-phase read/write buckets;
* **bounded occupancy** — no shard's cache ever exceeds its page
  budget, sampled concurrently while the clients run.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.check import check_driver
from repro.core.mapping import MAPPING_PHASE, MappingConfig
from repro.flash.chip import FlashChip
from repro.flash.spec import FlashSpec
from repro.methods import make_method

SPEC = FlashSpec(
    n_blocks=20, pages_per_block=8, page_data_size=256, page_spare_size=32
)
PAGE = SPEC.page_data_size

N_SHARDS = 4
N_CLIENTS = 8
N_PAGES = 160
OPS_PER_CLIENT = 100
CACHE_ENTRIES = 8  # far below a shard's pid count: faults guaranteed
INTERVAL = 48


def _mapping_cfg() -> MappingConfig:
    return MappingConfig.auto(
        SPEC, cache_entries=CACHE_ENTRIES, snapshot_interval=INTERVAL
    )


def _region_counted_chip(region_pages: int):
    """A chip counting raw device ops that land in the mapping region.

    Ground truth outside the stats layer: the read/program entry points
    are wrapped directly.  Each chip is driven by exactly one worker
    thread, so plain dicts need no lock.
    """
    chip = FlashChip(SPEC)
    raw = {"map_reads": 0, "map_programs": 0}

    orig_read = chip.read_page

    def read_page(addr, *args, _orig=orig_read, **kwargs):
        if addr < region_pages:
            raw["map_reads"] += 1
        return _orig(addr, *args, **kwargs)

    orig_reads = chip.read_pages

    def read_pages(addrs, *args, _orig=orig_reads, **kwargs):
        raw["map_reads"] += sum(1 for a in addrs if a < region_pages)
        return _orig(addrs, *args, **kwargs)

    orig_program = chip.program_page

    def program_page(addr, data, spare, _orig=orig_program):
        if addr < region_pages:
            raw["map_programs"] += 1
        return _orig(addr, data, spare)

    orig_programs = chip.program_pages

    def program_pages(items, _orig=orig_programs):
        raw["map_programs"] += sum(1 for a, _d, _s in items if a < region_pages)
        return _orig(items)

    chip.read_page = read_page  # type: ignore[method-assign]
    chip.read_pages = read_pages  # type: ignore[method-assign]
    chip.program_page = program_page  # type: ignore[method-assign]
    chip.program_pages = program_pages  # type: ignore[method-assign]
    return chip, raw


def _run_clients(driver, model):
    errors = []
    occupancy_violations = []
    shards = getattr(driver, "shards", None)

    def client(t):
        rng = random.Random(1000 + t)
        pids = list(range(t, N_PAGES, N_CLIENTS))
        try:
            for op in range(OPS_PER_CLIENT):
                pid = pids[rng.randrange(len(pids))]
                image = bytearray(model[pid])
                offset = rng.randrange(PAGE - 24)
                image[offset : offset + 24] = rng.randbytes(24)
                model[pid] = bytes(image)
                driver.write_page(pid, model[pid])
                driver.read_page(pid)
                if op % 40 == 39:
                    driver.group_flush()
                if shards is not None and op % 10 == t:
                    # Concurrent occupancy sample (reads two ints; the
                    # worst a race can produce is a stale sample).
                    shard = shards[t % len(shards)]
                    if shard.ppmt.cached_pages > shard.ppmt.cache_capacity_pages:
                        occupancy_violations.append(
                            (t, op, shard.ppmt.cached_pages)
                        )
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(t,), name=f"client-{t}")
        for t in range(N_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    assert not occupancy_violations, (
        f"mapping cache exceeded its budget mid-run: {occupancy_violations}"
    )
    driver.group_flush()


def test_mapping_audit_thread_executor():
    cfg = _mapping_cfg()
    region_pages = cfg.region_blocks * SPEC.pages_per_block
    chips, raws = [], []
    for _ in range(N_SHARDS):
        chip, raw = _region_counted_chip(region_pages)
        chips.append(chip)
        raws.append(raw)
    driver = make_method(f"PDL (64B) x{N_SHARDS} par", chips, mapping=cfg)
    try:
        seed_rng = random.Random(20100130)
        model = [seed_rng.randbytes(PAGE) for _ in range(N_PAGES)]
        driver.load_pages(list(enumerate(model)))
        driver.end_of_load()
        _run_clients(driver, model)

        for pid in range(N_PAGES):
            assert driver.read_page(pid) == model[pid], f"pid {pid} corrupted"
        for shard in driver.shards:
            check_driver(shard).raise_if_inconsistent()
            assert shard.ppmt.cached_pages <= shard.ppmt.cache_capacity_pages

        # Raw-counter audit, chip by chip: every translation fault is
        # one mapping-region device read; every journal flush page,
        # overflow marker and snapshot page is one mapping-region
        # program.  (Demand paging is the *only* reader of the region
        # during normal operation.)
        for chip, raw in zip(chips, raws):
            assert chip.stats.mapping_misses == raw["map_reads"]
            assert chip.stats.mapping_writebacks == raw["map_programs"]
            # ...and the same equalities at the phase-bucket level.
            mapping_phase = chip.stats.of_phase(MAPPING_PHASE)
            assert mapping_phase.reads == chip.stats.mapping_misses
            assert mapping_phase.writes == chip.stats.mapping_writebacks

        merged = driver.stats
        assert merged.mapping_misses == sum(r["map_reads"] for r in raws)
        assert merged.mapping_writebacks == sum(r["map_programs"] for r in raws)
        assert merged.mapping_misses > 0, "cache never faulted under stress"
        assert merged.mapping_hits > 0
        report = merged.report()
        assert report["mapping_hits"] == merged.mapping_hits
        assert report["mapping_misses"] == merged.mapping_misses
        assert report["mapping_writebacks"] == merged.mapping_writebacks
    finally:
        driver.close()


def test_mapping_audit_process_executor():
    """The same stress across the process boundary: worker-side mapping
    counters must travel back and satisfy the phase-bucket audit."""
    cfg = _mapping_cfg()
    chips = [FlashChip(SPEC) for _ in range(N_SHARDS)]
    driver = make_method(f"PDL (64B) x{N_SHARDS} proc", chips, mapping=cfg)
    try:
        seed_rng = random.Random(20100130)
        model = [seed_rng.randbytes(PAGE) for _ in range(N_PAGES)]
        driver.load_pages(list(enumerate(model)))
        driver.end_of_load()
        _run_clients(driver, model)

        for pid in range(N_PAGES):
            assert driver.read_page(pid) == model[pid], f"pid {pid} corrupted"
        report = driver.fsck(repair=True)
        assert report.clean

        merged = driver.stats
        mapping_phase = merged.of_phase(MAPPING_PHASE)
        assert merged.mapping_misses == mapping_phase.reads
        assert merged.mapping_writebacks == mapping_phase.writes
        assert merged.mapping_misses > 0, "cache never faulted under stress"
        assert merged.mapping_hits > 0
        assert merged.mapping_writebacks > 0
    finally:
        driver.close()
