"""Restart durability across a REAL process boundary.

The crash matrix (test_crash_matrix.py) proves recovery is correct for
every in-process crash point, but the chip state it recovers from lives
in the same Python process.  These tests extend the same guarantee
across ``os._exit``: a child process opens a :class:`Database` on a
:class:`~repro.flash.backend.FileBackend` directory, writes and flushes
a deterministic workload, then dies without any shutdown path — no
``close()``, no atexit, no GC finalizers.  The parent reopens the
directory and must read back, bit-exact, every image the child reported
durable, for a single-chip database and a sharded one alike.

The child communicates what it made durable via stdout (pid → sha256 of
the flushed image), so the assertion is against what the *child*
observed, not a parent-side re-simulation.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.flash.spec import FlashSpec
from repro.storage.db import Database

SPEC_KW = dict(n_blocks=12, pages_per_block=8, page_data_size=256, page_spare_size=16)
SPEC = FlashSpec(**SPEC_KW)
N_PAGES = 10
SEED = 20100121

# The child writes + flushes, reports digests, then hard-exits.  It
# deliberately leaves some un-flushed dirty state behind so the test
# also proves the *absence* of accidental durability: those writes must
# be gone after the restart.
CHILD_SCRIPT = """
import hashlib, json, os, random, sys

from repro.flash.spec import FlashSpec
from repro.storage.db import Database

path = sys.argv[1]
n_shards = int(sys.argv[2])
spec = FlashSpec(**{spec_kw!r})
rng = random.Random({seed})

db = Database.open(path, spec=spec, n_shards=n_shards,
                   max_differential_size=64, buffer_capacity=4)
images = {{}}
for _ in range({n_pages}):
    page = db.allocate_page()
    data = rng.randbytes(spec.page_data_size)
    page.write(0, data)
    images[page.pid] = data
db.flush()
for pid in (0, 3, 7):
    page = db.page(pid)
    patch = rng.randbytes(32)
    page.write(64, patch)
    img = bytearray(images[pid]); img[64:96] = patch
    images[pid] = bytes(img)
db.flush()
durable = {{pid: hashlib.sha256(img).hexdigest() for pid, img in images.items()}}
# Dirty, never-flushed writes: must NOT survive the restart.
page = db.page(1)
page.write(0, b"\\x00" * spec.page_data_size)
print(json.dumps({{"durable": durable, "allocated": db.allocated_pages}}))
sys.stdout.flush()
os._exit(9)   # no close(), no interpreter shutdown
"""


def _run_child(tmp_path, n_shards: int) -> dict:
    script = CHILD_SCRIPT.format(spec_kw=SPEC_KW, seed=SEED, n_pages=N_PAGES)
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", script, str(tmp_path), str(n_shards)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 9, f"child failed:\n{proc.stderr}"
    return json.loads(proc.stdout)


@pytest.mark.parametrize("n_shards", [1, 3])
def test_flushed_state_survives_process_death(tmp_path, n_shards):
    import hashlib

    report = _run_child(tmp_path, n_shards)
    db = Database.open(tmp_path)
    try:
        assert db.allocated_pages == report["allocated"]
        # The reopened driver really is the requested topology.
        n_chips = len(getattr(db.driver, "chips", [None]))
        assert n_chips == n_shards
        for pid_str, digest in report["durable"].items():
            got = db.page(int(pid_str)).data
            assert hashlib.sha256(got).hexdigest() == digest, (
                f"pid {pid_str} lost or corrupted across restart"
            )
    finally:
        db.close()


def test_reopened_database_remains_writable(tmp_path):
    """Recovery must hand back a fully operational engine (and a second
    restart must then see the post-restart writes)."""
    _run_child(tmp_path, 1)
    db = Database.open(tmp_path)
    page = db.page(2)
    page.write(10, b"post-restart write")
    db.flush()
    db.close()

    db2 = Database.open(tmp_path)
    try:
        assert db2.page(2).read(10, 18) == b"post-restart write"
    finally:
        db2.close()


def test_open_rejects_mismatched_configuration(tmp_path):
    from repro.ftl.errors import ConfigurationError

    db = Database.open(tmp_path, spec=SPEC, n_shards=2, max_differential_size=64)
    db.close()
    with pytest.raises(ConfigurationError):
        Database.open(tmp_path, n_shards=4)
    with pytest.raises(ConfigurationError):
        Database.open(tmp_path, max_differential_size=256)
    with pytest.raises(ConfigurationError):
        Database.open(tmp_path, spec=FlashSpec(**{**SPEC_KW, "n_blocks": 13}))
