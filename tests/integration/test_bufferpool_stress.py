"""Thread-safety stress: many clients sharing one buffer pool.

Eight client threads hammer one :class:`Database` — a shared
:class:`BufferManager` with background write-back over a 4-shard
:class:`ParallelShardedDriver` — on both device backends.  Each client
owns a disjoint pid partition (the same single-writer-per-pid contract
as the driver-level stress test) and accesses pages exclusively through
``pool.pinned``.  Afterwards the pool is held to the full standard:

* every page reads back its expected per-thread deterministic image,
  from flash, after a final flush;
* ``check.py`` finds all four shards internally consistent;
* no pins leak: every resident frame ends with ``pin_count == 0``;
* the :class:`BufferStats` audit: pool misses equal the driver-level
  read count exactly (lost miss races included), and the pool's flashed
  pages (dirty evictions + flushes + background write-back) equal the
  driver-level written-page count — no page write is lost or
  double-counted when eviction, flushing and the daemon interleave.
"""

import random
import threading
import time

import pytest

from repro.core.check import check_driver
from repro.flash.backend import FileBackend
from repro.flash.chip import FlashChip
from repro.flash.spec import FlashSpec
from repro.ftl.gc import GcConfig
from repro.methods import make_method
from repro.storage.bufferpool import WritebackConfig
from repro.storage.db import Database

SPEC = FlashSpec(n_blocks=14, pages_per_block=8, page_data_size=256, page_spare_size=16)
PAGE = SPEC.page_data_size

N_SHARDS = 4
N_CLIENTS = 8
N_PAGES = 160
BUFFER_PAGES = 48
OPS_PER_CLIENT = 120


class CountingDriver:
    """Proxy that counts driver-level reads and written pages.

    The counters are ground truth outside the stats layer, taken at the
    pool/driver seam; everything else delegates to the real parallel
    driver.
    """

    def __init__(self, inner):
        self._inner = inner
        self._lock = threading.Lock()
        self.reads = 0
        self.pages_written = 0

    def read_page(self, pid):
        with self._lock:
            self.reads += 1
        return self._inner.read_page(pid)

    def write_page(self, pid, data, update_logs=None):
        with self._lock:
            self.pages_written += 1
        self._inner.write_page(pid, data, update_logs=update_logs)

    def write_pages(self, pages, update_logs=None):
        pages = list(pages)
        with self._lock:
            self.pages_written += len(pages)
        self._inner.write_pages(pages, update_logs=update_logs)

    def group_flush(self, pages=None, update_logs=None):
        if pages is not None:
            pages = list(pages)
            with self._lock:
                self.pages_written += len(pages)
        self._inner.group_flush(pages=pages, update_logs=update_logs)

    def __getattr__(self, name):
        return getattr(self._inner, name)


@pytest.mark.parametrize("backend", ["memory", "file"])
def test_eight_clients_share_one_pool(backend, tmp_path):
    chips = []
    for i in range(N_SHARDS):
        device = None
        if backend == "file":
            device = FileBackend.create(str(tmp_path / f"shard-{i}.flash"), SPEC)
        chips.append(FlashChip(SPEC, backend=device))
    raw_driver = make_method(
        f"PDL (64B) x{N_SHARDS} par",
        chips,
        gc_config=GcConfig(incremental_steps=2, hot_cold=True),
    )
    driver = CountingDriver(raw_driver)
    seed_rng = random.Random(20100220)
    model = [seed_rng.randbytes(PAGE) for _ in range(N_PAGES)]
    raw_driver.load_pages(list(enumerate(model)))
    raw_driver.end_of_load()
    db = Database.resume(
        driver,
        BUFFER_PAGES,
        N_PAGES,
        buffer_policy="lru",
        writeback=WritebackConfig(high_watermark=0.4, low_watermark=0.15),
    )
    try:
        errors = []

        def client(t):
            rng = random.Random(3000 + t)
            pids = list(range(t, N_PAGES, N_CLIENTS))
            try:
                for op in range(OPS_PER_CLIENT):
                    pid = pids[rng.randrange(len(pids))]
                    with db.pool.pinned(pid) as page:
                        # Verify against the model, then mutate it.
                        current = page.data
                        assert current == model[pid], f"client {t}: stale {pid}"
                        image = bytearray(current)
                        offset = rng.randrange(PAGE - 24)
                        image[offset : offset + 24] = rng.randbytes(24)
                        model[pid] = bytes(image)
                        page.write(offset, model[pid][offset : offset + 24])
                    if op % 40 == 39:
                        db.flush()
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(t,), name=f"pool-client-{t}")
            for t in range(N_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        db.flush()

        stats = db.buffer_stats
        assert stats.hits + stats.misses == N_CLIENTS * OPS_PER_CLIENT

        # The daemon must demonstrably participate.  Client flushes can
        # in principle always beat it to the dirty pages under unlucky
        # scheduling, so nudge it deterministically if needed: re-dirty
        # a batch (writing identical bytes, so the model stays true)
        # and wait for the watermark flush.
        if stats.writeback_pages == 0:
            deadline = time.monotonic() + 30.0
            while stats.writeback_pages == 0 and time.monotonic() < deadline:
                for pid in range(32):
                    with db.pool.pinned(pid) as page:
                        page.write(0, model[pid][:1])
                time.sleep(0.01)
            db.flush()
        assert stats.writeback_pages > 0, "background write-back never ran"

        # The stats audit, *before* the verification reads below touch
        # the driver outside the pool.
        assert stats.misses == driver.reads, (
            f"pool misses {stats.misses} != driver reads {driver.reads}"
        )
        assert stats.flashed_pages == driver.pages_written, (
            f"pool flashed pages {stats.flashed_pages} != driver writes "
            f"{driver.pages_written}"
        )

        # No pin leaks: every resident frame is unpinned.
        leaked = [page.pid for page in db.pool.pages() if page.pin_count]
        assert not leaked, f"leaked pins on pages {leaked}"
        assert db.pool.pinned_count() == 0
        assert db.pool.dirty_count == 0  # everything flushed

        # Every client's final image survived the interleaving.
        for pid in range(N_PAGES):
            assert raw_driver.read_page(pid) == model[pid], f"pid {pid} corrupted"

        # Each shard passes the full fsck cross-validation.
        for shard in raw_driver.shards:
            check_driver(shard).raise_if_inconsistent()
    finally:
        db.pool.close()
        raw_driver.close()
