"""End-to-end integration tests across the whole stack.

These cross module boundaries on purpose: chip ↔ driver ↔ buffer pool ↔
heap/B+tree ↔ workload, including crash in the middle of a database
workload and recovery underneath an unsuspecting storage engine — the
paper's DBMS-independence claim in executable form.
"""

import random

import pytest

from repro.core.pdl import PdlDriver
from repro.core.recovery import recover_driver
from repro.flash.chip import FlashChip
from repro.flash.errors import CrashError
from repro.flash.spec import FlashSpec
from repro.methods import make_method
from repro.storage.btree import BTree
from repro.storage.buffer import BufferManager
from repro.storage.db import Database
from repro.storage.heap import HeapFile

SPEC = FlashSpec(
    n_blocks=64, pages_per_block=8, page_data_size=512, page_spare_size=16
)


class TestDbmsIndependence:
    """The same unmodified storage engine runs on every driver — only the
    'flash memory driver' differs (Figure 10)."""

    @pytest.mark.parametrize(
        "label", ["PDL (64B)", "PDL (256B)", "OPU", "IPU", "IPL (1KB)"]
    )
    def test_same_engine_any_driver(self, label):
        chip = FlashChip(SPEC)
        db = Database(make_method(label, chip), buffer_capacity=8)
        heap = HeapFile(db, "t")
        tree = BTree(db)
        rng = random.Random(1)
        rows = {}
        for i in range(150):
            record = rng.randbytes(rng.randrange(8, 80))
            rid = heap.insert(record)
            tree.insert(i, (rid.pid << 16) | rid.slot)
            rows[i] = (rid, record)
        db.flush()
        for i, (rid, record) in rows.items():
            packed = tree.get(i)
            assert packed == (rid.pid << 16) | rid.slot
            assert heap.read(rid) == record
        tree.check_invariants()


class TestCrashUnderDatabase:
    def test_crash_mid_workload_then_recover_and_continue(self):
        chip = FlashChip(SPEC)
        driver = PdlDriver(chip, max_differential_size=64)
        db = Database(driver, buffer_capacity=6)
        heap = HeapFile(db, "t")
        rng = random.Random(2)
        committed = {}
        pending = {}
        chip.crash_after(rng.randrange(40, 120))
        try:
            for i in range(500):
                record = bytes([i % 256]) * rng.randrange(8, 40)
                pending[i] = (heap.insert(record), record)
                if i % 10 == 9:
                    db.flush()
                    committed.update(pending)
                    pending.clear()
        except CrashError:
            pass
        else:
            pytest.fail("crash never fired")
        # Recover the driver; committed records must be intact.
        recovered, _ = recover_driver(chip, max_differential_size=64)
        cold = Database.__new__(Database)
        cold.driver = recovered
        cold.pool = BufferManager(recovered, 6)
        cold.page_size = recovered.page_size
        cold._next_pid = db._next_pid
        cold_heap = HeapFile(cold, "t")
        cold_heap.pages = list(heap.pages)
        for i, (rid, record) in committed.items():
            assert cold_heap.read(rid) == record


class TestWriteAmplificationOrdering:
    """Integration-level check of the paper's core quantitative claim:
    under small random updates, PDL writes less to flash than OPU, which
    writes less than IPU."""

    def test_flash_write_volume(self):
        totals = {}
        for label in ["PDL (64B)", "OPU", "IPU"]:
            chip = FlashChip(SPEC)
            driver = make_method(label, chip)
            rng = random.Random(3)
            images = {}
            for pid in range(24):
                images[pid] = rng.randbytes(driver.page_size)
                driver.load_page(pid, images[pid])
            chip.stats.reset()
            for _ in range(300):
                pid = rng.randrange(24)
                image = bytearray(images[pid])
                off = rng.randrange(len(image) - 8)
                image[off : off + 8] = rng.randbytes(8)
                images[pid] = bytes(image)
                driver.write_page(pid, images[pid])
            totals[label] = chip.stats.totals().writes
        assert totals["PDL (64B)"] < totals["OPU"] < totals["IPU"]


class TestLongevityOrdering:
    def test_pdl_erases_less_than_opu(self):
        erases = {}
        for label in ["PDL (64B)", "OPU"]:
            chip = FlashChip(SPEC)
            driver = make_method(label, chip)
            rng = random.Random(4)
            images = {}
            for pid in range(32):
                images[pid] = rng.randbytes(driver.page_size)
                driver.load_page(pid, images[pid])
            for _ in range(1200):
                pid = rng.randrange(32)
                image = bytearray(images[pid])
                off = rng.randrange(len(image) - 8)
                image[off : off + 8] = rng.randbytes(8)
                images[pid] = bytes(image)
                driver.write_page(pid, images[pid])
            erases[label] = chip.stats.total_erases
        assert erases["PDL (64B)"] < erases["OPU"]
