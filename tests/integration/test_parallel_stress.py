"""Thread-safety stress: many clients hammering one parallel array.

Eight client threads drive a 4-shard :class:`ParallelShardedDriver`
concurrently — single-page reads/writes, batched buffer-pool flushes and
group flushes, on both device backends.  Afterwards the test holds the
driver to the same standards as any serial run:

* every page reads back its expected (per-thread deterministic) image;
* ``check.py`` finds all four shards internally consistent;
* the merged :class:`AggregateStats` operation totals equal raw device
  counters collected independently at each chip's entry points — the
  PR 3 phase-partition audit extended across threads: no operation is
  lost or double-counted when accounting happens on worker threads.
"""

import random
import threading

import pytest

from repro.core.check import check_driver
from repro.flash.backend import FileBackend
from repro.flash.chip import FlashChip
from repro.flash.spec import FlashSpec
from repro.flash.stats import DEFAULT_PHASE
from repro.ftl.gc import GcConfig
from repro.methods import make_method

SPEC = FlashSpec(n_blocks=14, pages_per_block=8, page_data_size=256, page_spare_size=16)
PAGE = SPEC.page_data_size

N_SHARDS = 4
N_CLIENTS = 8
N_PAGES = 160
OPS_PER_CLIENT = 150


def _raw_counted_chip(spec, backend):
    """A chip whose device entry points are independently counted.

    The counters are a ground truth outside the stats layer: mutating
    ops are observed via ``on_operation``, reads by wrapping the read
    entry points.  Each chip is touched by exactly one worker thread,
    so the plain dict needs no lock.
    """
    chip = FlashChip(spec, backend=backend)
    raw = {"reads": 0, "writes": 0, "erases": 0}

    def count_mutating(op):
        raw["erases" if op == "erase_block" else "writes"] += 1

    chip.on_operation(count_mutating)
    for name, weight in (
        ("read_page", lambda a: 1),
        ("read_spare", lambda a: 1),
        ("read_pages", len),
        ("read_spares", len),
    ):
        original = getattr(chip, name)

        def wrapped(arg, _original=original, _weight=weight):
            raw["reads"] += _weight(arg)
            return _original(arg)

        setattr(chip, name, wrapped)
    return chip, raw


@pytest.mark.parametrize("backend", ["memory", "file"])
def test_eight_clients_over_four_shards(backend, tmp_path):
    chips, raws = [], []
    for i in range(N_SHARDS):
        device = None
        if backend == "file":
            device = FileBackend.create(str(tmp_path / f"shard-{i}.flash"), SPEC)
        chip, raw = _raw_counted_chip(SPEC, device)
        chips.append(chip)
        raws.append(raw)
    driver = make_method(
        f"PDL (64B) x{N_SHARDS} par",
        chips,
        gc_config=GcConfig(incremental_steps=2, hot_cold=True),
    )
    try:
        seed_rng = random.Random(20100130)
        model = [seed_rng.randbytes(PAGE) for _ in range(N_PAGES)]
        driver.load_pages(list(enumerate(model)))
        driver.end_of_load()

        errors = []

        def client(t):
            rng = random.Random(1000 + t)
            pids = list(range(t, N_PAGES, N_CLIENTS))
            try:
                batch = {}
                for op in range(OPS_PER_CLIENT):
                    pid = pids[rng.randrange(len(pids))]
                    flash_image = driver.read_page(pid)
                    if pid not in batch:  # staged pages differ on purpose
                        assert flash_image == model[pid], (
                            f"client {t}: stale pid {pid}"
                        )
                    image = bytearray(model[pid])
                    offset = rng.randrange(PAGE - 24)
                    image[offset : offset + 24] = rng.randbytes(24)
                    model[pid] = bytes(image)
                    # A pid staged for the batched flush stays batched:
                    # flushing a stale copy over a newer single write
                    # would corrupt the model.
                    if op % 4 == 3 or pid in batch:
                        batch[pid] = model[pid]
                        if len(batch) >= 6:
                            driver.write_pages(list(batch.items()))
                            batch.clear()
                    else:
                        driver.write_page(pid, model[pid])
                    if op % 50 == 49:
                        driver.group_flush()
                if batch:
                    driver.write_pages(list(batch.items()))
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(t,), name=f"client-{t}")
            for t in range(N_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        driver.group_flush()

        # Every client's final image survived the interleaving.
        for pid in range(N_PAGES):
            assert driver.read_page(pid) == model[pid], f"pid {pid} corrupted"

        # Each shard passes the full fsck cross-validation.
        for shard in driver.shards:
            check_driver(shard).raise_if_inconsistent()

        # The stats audit: merged AggregateStats totals must equal the
        # independently counted raw device operations, shard by shard
        # and in aggregate, and nothing may land unattributed.
        for chip, raw in zip(chips, raws):
            totals = chip.stats.totals()
            assert totals.reads == raw["reads"]
            assert totals.writes == raw["writes"]
            assert totals.erases == raw["erases"]
            assert chip.stats.of_phase(DEFAULT_PHASE).total_ops == 0
        merged = driver.stats.totals()
        assert merged.reads == sum(raw["reads"] for raw in raws)
        assert merged.writes == sum(raw["writes"] for raw in raws)
        assert merged.erases == sum(raw["erases"] for raw in raws)
        # Stall histograms merge too: one sample per logical write path
        # entry, pooled across shards.
        assert len(driver.stats.write_stall_us) == sum(
            len(chip.stats.write_stall_us) for chip in chips
        )
        assert driver.stats.gc_steps == sum(chip.stats.gc_steps for chip in chips)
    finally:
        driver.close()
