"""Crash-injection matrix: power loss at EVERY point of a write+GC window.

The randomized recovery test samples a handful of crash points; this
harness enumerates *all* of them.  A deterministic PDL workload (load,
small random updates, periodic flushes, enough churn to force garbage
collection) is first executed once to count its mutating flash
operations, then re-executed once per operation with a simulated power
loss injected exactly there.  After each crash, recovery must rebuild a
driver whose every page image is byte-identical to a version that page
actually held, no older than the last completed flush — for the
single-chip driver and for a sharded two-chip array alike.

The sharded runs use a *globally ordered* power loss (one countdown
across all chips via the per-chip operation observer): a real power
failure stops every device at one instant, not each device after its
own k-th operation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Set, Tuple

import pytest

from repro.core.pdl import PdlDriver
from repro.core.recovery import recover_driver
from repro.flash.chip import CrashPoint, FlashChip
from repro.flash.errors import SimulatedPowerLoss
from repro.flash.spec import FlashSpec
from repro.ftl.base import PageUpdateMethod
from repro.ftl.errors import UnknownPageError
from repro.ftl.gc import GcConfig
from repro.methods import make_method
from repro.sharding.recovery import recover_all

# Small enough that GC fires inside the window and the full matrix stays
# cheap: 6 blocks x 8 pages of 256 B for the single chip; sharded runs
# split the same page traffic across chips, so each shard chip shrinks
# to 4 blocks to keep its own GC churning.
SPEC = FlashSpec(n_blocks=6, pages_per_block=8, page_data_size=256, page_spare_size=16)
SHARD_SPEC = FlashSpec(
    n_blocks=4, pages_per_block=8, page_data_size=256, page_spare_size=16
)
N_PIDS = 6
N_CYCLES = 48
FLUSH_EVERY = 7
SEED = 20100121
MAX_DIFF = 64


#: Incremental space-management configs the matrix re-runs with: crash
#: points now also fall *between* bounded GC steps, while a victim block
#: is partially relocated and compacted differentials sit in RAM.
INCREMENTAL_CONFIGS = {
    "inc": GcConfig(incremental_steps=2),
    "inc-hc-cb": GcConfig(policy="cb", incremental_steps=2, hot_cold=True),
}


def _build(
    n_shards: int, gc_config: "GcConfig | None" = None
) -> Tuple[List[FlashChip], PageUpdateMethod]:
    kwargs = {} if gc_config is None else {"gc_config": gc_config}
    if n_shards == 1:
        chips = [FlashChip(SPEC)]
        return chips, PdlDriver(chips[0], max_differential_size=MAX_DIFF, **kwargs)
    chips = [FlashChip(SHARD_SPEC) for _ in range(n_shards)]
    return chips, make_method(f"PDL ({MAX_DIFF}B) x{n_shards}", chips, **kwargs)


def _recover(chips: Sequence[FlashChip], n_shards: int):
    if n_shards == 1:
        driver, report = recover_driver(chips[0], max_differential_size=MAX_DIFF)
        return driver, [report]
    return recover_all(chips, max_differential_size=MAX_DIFF)


class _GlobalPowerLoss:
    """One mutating-op countdown shared by every chip in the array."""

    def __init__(self, chips: Sequence[FlashChip], after: int):
        self.remaining = after
        self.chips = list(chips)
        for chip in self.chips:
            chip.on_operation(self._tick)

    def _tick(self, op: str) -> None:
        if self.remaining <= 0:
            raise SimulatedPowerLoss(f"global power loss before {op}")
        self.remaining -= 1

    def disarm(self) -> None:
        for chip in self.chips:
            chip.on_operation(None)


class _Window:
    """The deterministic write+GC window, with version-history tracking."""

    def __init__(self) -> None:
        self.history: Dict[int, List[bytes]] = {}
        self.floor: Dict[int, int] = {}
        self.loaded: Set[int] = set()

    def run(self, driver: PageUpdateMethod) -> None:
        rng = random.Random(SEED)
        for pid in range(N_PIDS):
            image = rng.randbytes(SPEC.page_data_size)
            # Recorded before the attempt: a crash mid-load may or may
            # not have persisted this page.
            self.history[pid] = [image]
            self.floor[pid] = 0
            driver.load_page(pid, image)
            self.loaded.add(pid)  # load_page is durable once it returns
        for i in range(N_CYCLES):
            pid = rng.randrange(N_PIDS)
            image = bytearray(self.history[pid][-1])
            offset = rng.randrange(SPEC.page_data_size - 24)
            # Large-ish patches push differentials over MAX_DIFF often
            # enough to exercise Case 3 and keep GC churning.
            image[offset : offset + 24] = rng.randbytes(24)
            self.history[pid].append(bytes(image))
            driver.write_page(pid, bytes(image))
            if i % FLUSH_EVERY == FLUSH_EVERY - 1:
                driver.flush()
                for q in self.history:
                    self.floor[q] = len(self.history[q]) - 1
        driver.flush()
        for q in self.history:
            self.floor[q] = len(self.history[q]) - 1


def _count_mutating_ops(
    n_shards: int, gc_config: "GcConfig | None" = None
) -> int:
    """Dry run: total mutating flash operations in the full window."""
    chips, driver = _build(n_shards, gc_config)
    counter = {"ops": 0}

    def observe(_op: str) -> None:
        counter["ops"] += 1

    for chip in chips:
        chip.on_operation(observe)
    _Window().run(driver)
    for chip in chips:
        chip.on_operation(None)
    # The matrix only means something if the window really exercises GC.
    total_erases = sum(chip.stats.total_erases for chip in chips)
    assert total_erases > 0, "window never triggered garbage collection"
    if gc_config is not None and gc_config.incremental:
        steps = sum(chip.stats.gc_steps for chip in chips)
        assert steps > 0, "window never took an incremental GC step"
    return counter["ops"]


def _assert_recovered_state(window: _Window, recovered: PageUpdateMethod, k: int) -> None:
    for pid, versions in window.history.items():
        if pid not in window.loaded:
            # Crash hit during this page's initial load; it may simply
            # not exist, which recovery reports as an unknown page.
            try:
                got = recovered.read_page(pid)
            except UnknownPageError:
                continue
        else:
            got = recovered.read_page(pid)
        assert got in versions, f"crash@{k}: pid {pid} holds a never-written image"
        newest = max(i for i, v in enumerate(versions) if v == got)
        assert newest >= window.floor[pid], (
            f"crash@{k}: pid {pid} lost durable data "
            f"(recovered v{newest} < floor v{window.floor[pid]})"
        )


@pytest.mark.parametrize("n_shards", [1, 2])
def test_crash_matrix_every_point(n_shards):
    total_ops = _count_mutating_ops(n_shards)
    assert total_ops > 20  # sanity: the window is substantial
    for k in range(total_ops):
        chips, driver = _build(n_shards)
        guard = _GlobalPowerLoss(chips, k)
        window = _Window()
        try:
            window.run(driver)
        except SimulatedPowerLoss:
            pass
        else:
            pytest.fail(f"crash point {k} of {total_ops} never fired")
        finally:
            guard.disarm()
        recovered, reports = _recover(chips, n_shards)
        assert len(reports) == n_shards
        _assert_recovered_state(window, recovered, k)
        # The recovered driver must remain fully operational.
        survivors = [pid for pid in range(N_PIDS) if _readable(recovered, pid)]
        for pid in survivors:
            image = bytearray(recovered.read_page(pid))
            image[0:4] = b"\xaa\xbb\xcc\xdd"
            recovered.write_page(pid, bytes(image))
            assert recovered.read_page(pid) == bytes(image)


def _readable(driver: PageUpdateMethod, pid: int) -> bool:
    try:
        driver.read_page(pid)
        return True
    except UnknownPageError:
        return False


@pytest.mark.parametrize("config_key", sorted(INCREMENTAL_CONFIGS))
def test_crash_matrix_every_point_incremental_gc(config_key):
    """Power loss at every mutating op of an *incremental* GC window.

    Between bounded steps a victim block is partially relocated: base
    pages coexist with equal-timestamp GC copies, compacted
    differentials sit in the RAM buffer while their only flash copy is
    still inside the un-erased victim, and ordinary writes interleave.
    Recovery must still see every valid byte (the finish_victim
    invariant) at every single crash point.
    """
    config = INCREMENTAL_CONFIGS[config_key]
    total_ops = _count_mutating_ops(1, config)
    assert total_ops > 20
    for k in range(total_ops):
        chips, driver = _build(1, config)
        guard = _GlobalPowerLoss(chips, k)
        window = _Window()
        try:
            window.run(driver)
        except SimulatedPowerLoss:
            pass
        else:
            pytest.fail(f"crash point {k} of {total_ops} never fired")
        finally:
            guard.disarm()
        recovered, reports = _recover(chips, 1)
        assert len(reports) == 1
        _assert_recovered_state(window, recovered, k)
        # The recovered driver must remain fully operational.
        for pid in range(N_PIDS):
            if not _readable(recovered, pid):
                continue
            image = bytearray(recovered.read_page(pid))
            image[0:4] = b"\xaa\xbb\xcc\xdd"
            recovered.write_page(pid, bytes(image))
            assert recovered.read_page(pid) == bytes(image)


class TestCrashPointFiltering:
    """The CrashPoint op filter: fail on the k-th *specific* operation."""

    def test_crash_on_kth_erase_only(self):
        chips, driver = _build(1)
        chip = chips[0]
        chip.set_crash_point(CrashPoint(after=0, ops=("erase_block",)))
        window = _Window()
        with pytest.raises(SimulatedPowerLoss):
            window.run(driver)
        # Programs went through untouched; the very first erase failed.
        assert chip.stats.totals().writes > 0
        assert chip.stats.total_erases == 0
        recovered, _ = recover_driver(chips[0], max_differential_size=MAX_DIFF)
        _assert_recovered_state(window, recovered, 0)

    def test_crash_point_validates_op_names(self):
        with pytest.raises(ValueError):
            CrashPoint(after=1, ops=("warp_core_breach",))
        with pytest.raises(ValueError):
            CrashPoint(after=-1)

    def test_crash_point_is_reusable_across_chips(self):
        point = CrashPoint(after=2, ops=("program_page",))
        for _ in range(2):  # arming must not consume the point itself
            chip = FlashChip(SPEC)
            chip.set_crash_point(point)
            driver = PdlDriver(chip, max_differential_size=MAX_DIFF)
            driver.load_page(0, b"\x00" * SPEC.page_data_size)
            driver.load_page(1, b"\x01" * SPEC.page_data_size)
            with pytest.raises(SimulatedPowerLoss):
                driver.load_page(2, b"\x02" * SPEC.page_data_size)
            assert point.after == 2
