"""Fault matrix: every fault kind × every page role × both backends.

The acceptance bar for the integrity layer: for each injected
single-page fault — bit rot, misdirected write, torn spare program — at
each page role — live base, live differential, checkpoint snapshot —
fsck must *detect* the damage (100% of cells), then either *repair* the
page online (when a surviving copy, chain entry, or self-healing
snapshot protocol exists) or *declare the precise loss*; and a
subsequent Figure-11 recovery scan of the repaired chip must round-trip
cleanly.  The matrix runs on the memory backend and the file backend,
plus array-level smoke over ``ShardedDriver`` / ``ParallelShardedDriver``
/ ``Database`` and a pre-checksum image compatibility check.
"""

import os

import pytest

from repro.core import check_driver, fsck_driver
from repro.core.pdl import PdlDriver
from repro.core.recovery import recover_driver
from repro.ext.checkpoint import CheckpointManager
from repro.flash.backend import FaultInjector, FileBackend, MemoryBackend
from repro.flash.chip import FlashChip
from repro.flash.spare import (
    CHECKSUM_OFFSET,
    CHECKSUM_SIZE,
    HEADER_SIZE,
    PageType,
    SpareArea,
)
from repro.flash.spec import FlashSpec

SPEC = FlashSpec(n_blocks=16, pages_per_block=8, page_data_size=256, page_spare_size=32)
PAGE = SPEC.page_data_size

FAULTS = ["bit_rot", "misdirected_write", "torn_spare"]
ROLES = ["base", "differential", "checkpoint"]
BACKENDS = ["memory", "file"]


def _patched(data, offset, patch):
    image = bytearray(data)
    image[offset : offset + len(patch)] = patch
    return bytes(image)


def _build(backend_kind, tmp_path, seed=0):
    if backend_kind == "memory":
        inner = MemoryBackend(SPEC)
    else:
        inner = FileBackend(tmp_path / "chip.flash", SPEC)
    injector = FaultInjector(inner, seed=seed)
    chip = FlashChip(SPEC, backend=injector)
    driver = PdlDriver(chip, max_differential_size=64, checkpoint_region_blocks=2)
    manager = CheckpointManager(driver, 2)
    images = {}
    for pid in range(10):
        images[pid] = bytes([pid + 1]) * PAGE
        driver.load_page(pid, images[pid])
    driver.end_of_load()
    for pid in range(10):
        images[pid] = _patched(images[pid], 5, b"\xbb")
        driver.write_page(pid, images[pid])
    driver.flush()
    manager.checkpoint()
    return injector, chip, driver, manager, images


def _target_addr(driver, manager, role, pid):
    if role == "base":
        return driver.ppmt.require(pid).base_addr
    if role == "differential":
        addr = driver.ppmt.require(pid).diff_addr
        assert addr is not None, "workload must leave a flash differential"
        return addr
    # checkpoint: the active snapshot's header page
    return manager._half_pages(manager._seq)[0]


@pytest.mark.parametrize("backend_kind", BACKENDS)
@pytest.mark.parametrize("role", ROLES)
@pytest.mark.parametrize("fault", FAULTS)
def test_fault_matrix_cell(tmp_path, backend_kind, role, fault):
    injector, chip, driver, manager, images = _build(backend_kind, tmp_path, seed=3)
    pid = 6
    addr = _target_addr(driver, manager, role, pid)
    injector.inject(fault, addr)

    report = fsck_driver(driver)

    # 1. Detection: every cell of the matrix must surface at least one
    #    fault anchored at the damaged page.
    assert report.detected >= 1, f"{fault} at {role} went undetected"
    assert any(f.addr == addr for f in report.faults)

    # 2. Disposition: repaired pages serve their exact pre-fault bytes;
    #    lost/rolled-back pages are precisely reported.
    if role == "checkpoint":
        # Never touched: the snapshot protocol self-heals on restart.
        assert all(
            f.action == "reported" for f in report.faults if f.role == "checkpoint"
        )
    assert report.check is not None and report.check.consistent

    survivors = set(images) - set(report.lost_pids)
    rollbacks = set(report.stale_pids) | set(report.reverted_pids)
    for spid in sorted(survivors):
        got = driver.read_page(spid)
        if spid in rollbacks:
            assert got != b"", "rolled-back page must still serve"
        else:
            assert got == images[spid], f"pid {spid} serves wrong bytes"

    # 3. Round-trip: recovery over the repaired chip must succeed and
    #    yield a consistent driver serving the same survivors.
    driver.flush()
    recovered, _ = recover_driver(chip, max_differential_size=64,
                                  checkpoint_region_blocks=2)
    assert check_driver(recovered).consistent
    for spid in sorted(survivors - rollbacks):
        assert recovered.read_page(spid) == images[spid]

    # 4. Checkpoint restart still works (fast path or Figure-11 fallback).
    if role == "checkpoint":
        driver2, _mgr, restart = CheckpointManager.restart(
            chip, region_blocks=2, max_differential_size=64
        )
        for spid in sorted(survivors - rollbacks):
            assert driver2.read_page(spid) == images[spid]


class TestRepairableCells:
    """Cells engineered with surviving redundancy must repair, not lose."""

    @pytest.mark.parametrize("backend_kind", BACKENDS)
    def test_base_with_surviving_copy_repairs(self, tmp_path, backend_kind):
        injector, chip, driver, _manager, images = _build(backend_kind, tmp_path)
        pid = 2
        entry = driver.ppmt.require(pid)
        copy_addr = driver.blocks.allocate(stream=driver._base_stream)
        data, _ = chip.read_page(entry.base_addr)
        chip.program_page(
            copy_addr,
            data,
            SpareArea(type=PageType.BASE, pid=pid, timestamp=entry.base_ts,
                      obsolete=True),
        )
        injector.inject("bit_rot", entry.base_addr)
        report = fsck_driver(driver)
        assert report.repaired_base_pages == 1
        assert report.lost_pids == []
        assert driver.read_page(pid) == images[pid]

    @pytest.mark.parametrize("backend_kind", BACKENDS)
    def test_differential_with_surviving_chain_repairs(self, tmp_path, backend_kind):
        injector, chip, driver, _manager, images = _build(backend_kind, tmp_path)
        pid = 3
        v2 = _patched(images[pid], 9, b"\xcc")
        driver.write_page(pid, v2)
        driver.flush()  # leaves the previous differential page obsolete on flash
        entry = driver.ppmt.require(pid)
        injector.inject("bit_rot", entry.diff_addr)
        report = fsck_driver(driver)
        assert report.repaired_differentials == 1
        assert driver.read_page(pid) == images[pid]  # one durable version back


class TestArrayFsck:
    def _shards(self, n, parallel):
        injectors, shards = [], []
        for i in range(n):
            injector = FaultInjector(MemoryBackend(SPEC), seed=i)
            injectors.append(injector)
            shards.append(
                PdlDriver(FlashChip(SPEC, backend=injector), max_differential_size=64)
            )
        if parallel:
            from repro.sharding.executor import ParallelShardedDriver

            return injectors, ParallelShardedDriver(shards)
        from repro.sharding.driver import ShardedDriver

        return injectors, ShardedDriver(shards)

    @pytest.mark.parametrize("parallel", [False, True])
    def test_sharded_fsck_merges_per_shard(self, parallel):
        injectors, driver = self._shards(3, parallel)
        try:
            for pid in range(12):
                driver.load_page(pid, bytes([pid + 1]) * PAGE)
            driver.end_of_load()
            report = driver.fsck()
            assert report.clean
            assert len(report.per_shard) == 3
            assert report.pages_scanned == 3 * SPEC.n_pages
            pid = 7
            index = driver.shard_index(pid)
            shard = driver.shards[index]
            injectors[index].inject("bit_rot", shard.ppmt.require(pid).base_addr)
            report = driver.fsck()
            assert report.detected == 1
            assert report.lost_pids == [pid]
            assert all(r.check.consistent for r in report.per_shard)
        finally:
            if parallel:
                driver.close()

    def test_database_fsck_drops_stale_pool_copies(self, tmp_path):
        from repro.ftl.errors import UnknownPageError
        from repro.storage.db import Database

        with Database.open(
            tmp_path / "db", n_shards=2, spec=SPEC, max_differential_size=64
        ) as db:
            pages = [db.allocate_page() for _ in range(6)]
            for i, page in enumerate(pages):
                page.write(0, bytes([i + 1]) * 16)
            db.flush()
            assert db.fsck().clean
            pid = pages[0].pid
            shard = db.driver.shard_for(pid)
            addr = shard.ppmt.require(pid).base_addr
            backend = shard.chip.backend
            raw = bytearray(backend.read_data(addr))
            raw[0] ^= 0x01
            backend.write_data(addr, bytes(raw), backend.data_programs(addr))
            report = db.fsck()
            assert report.lost_pids == [pid]
            # The pool must not resurrect its cached pre-fault copy.
            with pytest.raises(UnknownPageError):
                db.page(pid)
            # Unaffected pages still serve through the pool.
            assert db.page(pages[1].pid).data[:16] == bytes([2]) * 16


class TestPreChecksumCompatibility:
    """Images written before the checksum layout must open and recover."""

    OLD_SPEC = FlashSpec(
        n_blocks=16, pages_per_block=8, page_data_size=256, page_spare_size=16
    )

    def test_pre_checksum_image_opens_and_recovers(self, tmp_path):
        path = tmp_path / "old.flash"
        chip = FlashChip(self.OLD_SPEC, backend=FileBackend(path, self.OLD_SPEC))
        driver = PdlDriver(chip, max_differential_size=64)
        images = {}
        for pid in range(6):
            images[pid] = bytes([pid + 1]) * self.OLD_SPEC.page_data_size
            driver.load_page(pid, images[pid])
        driver.write_page(0, _patched(images[0], 0, b"\x99"))
        images[0] = _patched(images[0], 0, b"\x99")
        driver.flush()
        chip.close()

        reopened = FlashChip(self.OLD_SPEC, backend=FileBackend(path))
        assert reopened.spec.page_spare_size < HEADER_SIZE + 4
        recovered, _ = recover_driver(reopened, max_differential_size=64)
        for pid, expected in images.items():
            assert recovered.read_page(pid) == expected
        # No checksum slots -> zero verification activity, zero failures.
        assert reopened.stats.checksum_checks == 0
        report = fsck_driver(recovered)
        assert report.clean  # nothing to verify is not corruption
        assert report.checksum_failures == 0

    def test_pre_checksum_wide_spare_image_survives_fsck(self, tmp_path):
        """Regression: a checksum-free image on a chip whose spare *does*
        have room for the slot (like the default 64-byte spare) must not
        read as a chip-wide torn-spare event — fsck used to flag every
        live page and declare every pid lost."""
        path = tmp_path / "old-wide.flash"
        backend = FileBackend(path, SPEC)  # 32-byte spare: room for a CRC
        chip = FlashChip(SPEC, backend=backend)
        driver = PdlDriver(chip, max_differential_size=64)
        images = {}
        for pid in range(6):
            images[pid] = bytes([pid + 1]) * SPEC.page_data_size
            driver.load_page(pid, images[pid])
        driver.end_of_load()
        images[0] = _patched(images[0], 0, b"\x99")
        driver.write_page(0, images[0])
        driver.flush()
        # Erase every checksum slot, leaving the image exactly as a
        # pre-checksum writer would have: checksum=None on every page.
        for addr in list(backend.iter_programmed()):
            raw = bytearray(backend.read_spare(addr))
            raw[CHECKSUM_OFFSET : CHECKSUM_OFFSET + CHECKSUM_SIZE] = (
                b"\xff" * CHECKSUM_SIZE
            )
            backend.write_spare(addr, bytes(raw), backend.spare_programs(addr))
        chip.close()

        reopened = FlashChip(SPEC, backend=FileBackend(path))
        recovered, _ = recover_driver(reopened, max_differential_size=64)
        report = fsck_driver(recovered)
        assert report.clean, [str(f) for f in report.faults]
        assert report.lost_pids == []
        for pid, expected in images.items():
            assert recovered.read_page(pid) == expected
