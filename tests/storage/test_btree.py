"""Unit tests for the paged B+tree."""

import random

import pytest

from repro.core.pdl import PdlDriver
from repro.flash.chip import FlashChip
from repro.storage.btree import BTree, BTreeError
from repro.storage.db import Database


@pytest.fixture
def db(tiny_spec):
    chip = FlashChip(tiny_spec.scaled(128))
    return Database(PdlDriver(chip, max_differential_size=64), buffer_capacity=16)


@pytest.fixture
def tree(db):
    return BTree(db, "idx")


class TestBasics:
    def test_empty(self, tree):
        assert tree.get(1) is None
        assert len(tree) == 0
        assert 1 not in tree
        assert list(tree.items()) == []

    def test_insert_get(self, tree):
        tree.insert(5, 500)
        assert tree.get(5) == 500
        assert 5 in tree
        assert len(tree) == 1

    def test_upsert(self, tree):
        tree.insert(5, 500)
        tree.insert(5, 501)
        assert tree.get(5) == 501
        assert len(tree) == 1

    def test_key_bounds(self, tree):
        with pytest.raises(ValueError):
            tree.insert(-1, 0)
        with pytest.raises(ValueError):
            tree.insert(1 << 64, 0)
        tree.insert((1 << 64) - 1, 7)
        assert tree.get((1 << 64) - 1) == 7


class TestSplits:
    def test_leaf_split(self, tree):
        n = tree.leaf_capacity + 1
        for i in range(n):
            tree.insert(i, i * 10)
        assert tree.height == 2
        for i in range(n):
            assert tree.get(i) == i * 10
        tree.check_invariants()

    def test_multi_level_growth(self, tree):
        n = tree.leaf_capacity * (tree.branch_capacity + 2)
        for i in range(n):
            tree.insert(i, i)
        assert tree.height >= 3
        tree.check_invariants()
        for probe in (0, n // 2, n - 1):
            assert tree.get(probe) == probe

    def test_random_insert_order(self, tree):
        rng = random.Random(7)
        keys = list(range(500))
        rng.shuffle(keys)
        for k in keys:
            tree.insert(k, k * 3)
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == sorted(keys)


class TestDelete:
    def test_delete_existing(self, tree):
        tree.insert(1, 10)
        assert tree.delete(1)
        assert tree.get(1) is None
        assert len(tree) == 0

    def test_delete_missing(self, tree):
        assert not tree.delete(42)

    def test_delete_after_splits(self, tree):
        for i in range(200):
            tree.insert(i, i)
        for i in range(0, 200, 2):
            assert tree.delete(i)
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == list(range(1, 200, 2))


class TestRangeScan:
    def test_items_range(self, tree):
        for i in range(100):
            tree.insert(i, i)
        assert [k for k, _ in tree.items(10, 20)] == list(range(10, 20))

    def test_items_open_ended(self, tree):
        for i in range(50):
            tree.insert(i, i)
        assert [k for k, _ in tree.items(45)] == list(range(45, 50))
        assert [k for k, _ in tree.items(None, 5)] == list(range(5))

    def test_min_item(self, tree):
        for i in (30, 10, 20):
            tree.insert(i, i)
        assert tree.min_item() == (10, 10)
        assert tree.min_item(15) == (20, 20)
        assert tree.min_item(15, 18) is None

    def test_range_across_leaves(self, tree):
        n = tree.leaf_capacity * 3
        for i in range(n):
            tree.insert(i, i)
        lo = tree.leaf_capacity - 2
        hi = tree.leaf_capacity * 2 + 2
        assert [k for k, _ in tree.items(lo, hi)] == list(range(lo, hi))


class TestDurability:
    def test_survives_flush(self, db, tree):
        for i in range(300):
            tree.insert(i, i * 7)
        db.flush()
        # cold pool re-read
        from repro.storage.buffer import BufferManager

        db.pool = BufferManager(db.driver, 8)
        for probe in (0, 150, 299):
            assert tree.get(probe) == probe * 7
        tree.check_invariants()


class TestModelBased:
    def test_random_mixed_workload(self, tree):
        rng = random.Random(13)
        model = {}
        for _ in range(1500):
            op = rng.random()
            k = rng.randrange(1000)
            if op < 0.6:
                v = rng.randrange(1 << 40)
                tree.insert(k, v)
                model[k] = v
            elif op < 0.9:
                assert tree.get(k) == model.get(k)
            else:
                assert tree.delete(k) == (k in model)
                model.pop(k, None)
        tree.check_invariants()
        assert sorted(model) == [k for k, _ in tree.items()]
        for k, v in model.items():
            assert tree.get(k) == v
