"""Unit tests for heap files over the buffer pool and a real driver."""

import random

import pytest

from repro.core.pdl import PdlDriver
from repro.flash.chip import FlashChip
from repro.storage.db import Database
from repro.storage.heap import RID, HeapFile


@pytest.fixture
def db(tiny_spec):
    chip = FlashChip(tiny_spec.scaled(64))
    return Database(PdlDriver(chip, max_differential_size=64), buffer_capacity=8)


@pytest.fixture
def heap(db):
    return HeapFile(db, "test")


class TestBasicOperations:
    def test_insert_read(self, heap):
        rid = heap.insert(b"record-1")
        assert heap.read(rid) == b"record-1"
        assert len(heap) == 1

    def test_records_spread_across_pages(self, heap):
        rids = [heap.insert(bytes([i % 256]) * 60) for i in range(30)]
        assert len({rid.pid for rid in rids}) > 1
        for i, rid in enumerate(rids):
            assert heap.read(rid) == bytes([i % 256]) * 60

    def test_update_in_place(self, heap):
        rid = heap.insert(b"aaaa")
        new_rid = heap.update(rid, b"bbbb")
        assert new_rid == rid
        assert heap.read(rid) == b"bbbb"

    def test_update_relocates_when_grown(self, heap):
        # fill the record's page so growth forces relocation
        rid = heap.insert(b"a" * 10)
        while True:
            probe = heap.insert(b"f" * 20)
            if probe.pid != rid.pid:
                heap.delete(probe)
                break
        new_rid = heap.update(rid, b"b" * 120)
        assert heap.read(new_rid) == b"b" * 120
        assert len(heap) == 1 + len([r for r, _ in heap.scan()]) - 1

    def test_delete(self, heap):
        rid = heap.insert(b"abc")
        heap.delete(rid)
        assert len(heap) == 0

    def test_oversized_record_rejected(self, heap, db):
        with pytest.raises(ValueError):
            heap.insert(b"x" * (db.page_size // 2 + 1))


class TestScan:
    def test_scan_returns_live_records(self, heap):
        rids = [heap.insert(bytes([i]) * 8) for i in range(10)]
        heap.delete(rids[4])
        records = dict(heap.scan())
        assert len(records) == 9
        assert rids[4] not in records

    def test_scan_empty(self, heap):
        assert list(heap.scan()) == []


class TestDurability:
    def test_records_survive_flush_and_cold_read(self, db, heap):
        rids = {i: heap.insert(bytes([i]) * 40) for i in range(20)}
        db.flush()
        # re-read through a brand-new pool over the same driver
        cold = Database.__new__(Database)
        cold.driver = db.driver
        from repro.storage.buffer import BufferManager

        cold.pool = BufferManager(db.driver, 4)
        cold.page_size = db.page_size
        cold._next_pid = db._next_pid
        cold_heap = HeapFile(cold, "test")
        cold_heap.pages = list(heap.pages)
        for i, rid in rids.items():
            assert cold_heap.read(rid) == bytes([i]) * 40


class TestModelBased:
    def test_random_operations(self, heap):
        rng = random.Random(11)
        model = {}
        next_id = 0
        for _ in range(400):
            op = rng.random()
            if op < 0.5 or not model:
                rec = rng.randbytes(rng.randrange(4, 60))
                model[next_id] = (heap.insert(rec), rec)
                next_id += 1
            elif op < 0.8:
                key = rng.choice(list(model))
                rid, _old = model[key]
                rec = rng.randbytes(rng.randrange(4, 60))
                model[key] = (heap.update(rid, rec), rec)
            else:
                key = rng.choice(list(model))
                rid, _old = model.pop(key)
                heap.delete(rid)
        for key, (rid, rec) in model.items():
            assert heap.read(rid) == rec
        assert len(heap) == len(model)
