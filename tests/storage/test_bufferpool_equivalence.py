"""The default pool must be byte-identical to the pre-package LRU pool.

The paper experiments were validated against the original 148-line
synchronous LRU ``BufferManager``; the bufferpool package replaces it,
so ``policy="lru"`` + ``writeback=None`` must reproduce its flash state
*byte for byte* — same victims, same write order, same driver calls.
``_LegacyBufferManager`` below is a faithful copy of the old
implementation; a randomized op trace (reads, writes, creates, pins,
per-page flushes, full flushes) is replayed against both pools over
identical chips and the complete device images are compared.
"""

import random
from collections import OrderedDict

import pytest

from repro.core.pdl import PdlDriver
from repro.flash.chip import FlashChip
from repro.flash.spec import FlashSpec
from repro.methods import make_method
from repro.storage.bufferpool import BufferManager
from repro.storage.page import Page

SPEC = FlashSpec(n_blocks=24, pages_per_block=8, page_data_size=256, page_spare_size=16)


class _LegacyBufferManager:
    """The original storage/buffer.py pool, verbatim (minus docstrings)."""

    def __init__(self, driver, capacity):
        self.driver = driver
        self.capacity = capacity
        self._frames = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.flushes = 0

    def get_page(self, pid):
        page = self._frames.get(pid)
        if page is not None:
            self._frames.move_to_end(pid)
            self.hits += 1
            return page
        self.misses += 1
        data = self.driver.read_page(pid)
        page = Page(pid, data)
        self._admit(page)
        return page

    def create_page(self, pid, data):
        page = Page(pid, data)
        page.dirty = True
        self._admit(page)
        return page

    def flush_page(self, pid):
        page = self._frames.get(pid)
        if page is not None and page.dirty:
            self._write_back(page)
            self.flushes += 1

    def flush_all(self):
        dirty = [page for page in self._frames.values() if page.dirty]
        if dirty:
            logs = None
            if self.driver.tightly_coupled:
                logs = {page.pid: page.change_log for page in dirty}
            self.driver.write_pages(
                [(page.pid, page.data) for page in dirty], update_logs=logs
            )
            for page in dirty:
                page.clear_log()
                self.flushes += 1
        self.driver.flush()

    def _write_back(self, page):
        logs = page.change_log if self.driver.tightly_coupled else None
        self.driver.write_page(page.pid, page.data, update_logs=logs)
        page.clear_log()

    def _admit(self, page):
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[page.pid] = page

    def _evict_one(self):
        for pid, victim in self._frames.items():
            if victim.pin_count == 0:
                break
        else:
            raise RuntimeError("all buffer frames are pinned")
        del self._frames[pid]
        self.evictions += 1
        if victim.dirty:
            self.dirty_evictions += 1
            self._write_back(victim)


def _flash_image(chip):
    """Every page's raw data + spare bytes, plus per-block erase counts."""
    pages = [
        (chip.backend.read_data(addr), chip.backend.read_spare(addr))
        for addr in range(chip.spec.n_pages)
    ]
    erases = [chip.erase_count(block) for block in range(chip.spec.n_blocks)]
    return pages, erases


def _replay(pool, seed, n_pages, capacity):
    """One deterministic op trace against either pool flavour."""
    rng = random.Random(seed)
    pinned = []
    for step in range(900):
        roll = rng.random()
        if roll < 0.45:  # update through the pool
            page = pool.get_page(rng.randrange(n_pages))
            offset = rng.randrange(page.size - 8)
            page.write(offset, rng.randbytes(8))
        elif roll < 0.70:  # plain read
            pool.get_page(rng.randrange(n_pages))
        elif roll < 0.80:  # pin a page for a while
            if len(pinned) < capacity - 2:
                page = pool.get_page(rng.randrange(n_pages))
                page.pin()
                pinned.append(page)
            elif pinned:
                pinned.pop(rng.randrange(len(pinned))).unpin()
        elif roll < 0.88 and pinned:  # release a pin
            pinned.pop(rng.randrange(len(pinned))).unpin()
        elif roll < 0.96:
            pool.flush_page(rng.randrange(n_pages))
        else:
            pool.flush_all()
    for page in pinned:
        page.unpin()
    pool.flush_all()


@pytest.mark.parametrize("label", ["PDL (64B)", "IPL (512B)", "PDL (64B) x2"])
@pytest.mark.parametrize("seed", [1, 20100201])
def test_lru_sync_matches_legacy_pool_byte_for_byte(label, seed):
    n_pages, capacity = 48, 7
    setups = []
    for flavour in ("legacy", "new"):
        if "x2" in label:
            chips = [FlashChip(SPEC), FlashChip(SPEC)]
        else:
            chips = FlashChip(SPEC)
        driver = make_method(label, chips)
        rng = random.Random(seed)
        driver.load_pages(
            [(pid, rng.randbytes(driver.page_size)) for pid in range(n_pages)]
        )
        driver.end_of_load()
        if flavour == "legacy":
            pool = _LegacyBufferManager(driver, capacity)
        else:
            pool = BufferManager(driver, capacity)  # lru + sync defaults
        setups.append((driver, pool, chips if isinstance(chips, list) else [chips]))

    for driver, pool, _chips in setups:
        _replay(pool, seed * 31 + 7, n_pages, capacity)

    (_, legacy, legacy_chips), (_, new, new_chips) = setups
    # Identical accounting...
    assert new.stats.hits == legacy.hits
    assert new.stats.misses == legacy.misses
    assert new.stats.evictions == legacy.evictions
    assert new.stats.dirty_evictions == legacy.dirty_evictions
    assert new.stats.flushes == legacy.flushes
    # ...identical simulated device traffic...
    for old_chip, new_chip in zip(legacy_chips, new_chips):
        assert new_chip.stats.totals().reads == old_chip.stats.totals().reads
        assert new_chip.stats.totals().writes == old_chip.stats.totals().writes
        assert new_chip.stats.totals().erases == old_chip.stats.totals().erases
        # ...and a byte-for-byte identical flash image.
        assert _flash_image(new_chip) == _flash_image(old_chip)