"""Unit tests for the LRU buffer pool."""

import pytest

from repro.core.pdl import PdlDriver
from repro.flash.chip import FlashChip
from repro.ftl.ipl import IplDriver
from repro.storage.buffer import BufferError, BufferManager


@pytest.fixture
def driver(chip):
    return PdlDriver(chip, max_differential_size=64)


@pytest.fixture
def pool(driver):
    return BufferManager(driver, capacity=4)


def _load(driver, n):
    for pid in range(n):
        driver.load_page(pid, bytes([pid]) * driver.page_size)


class TestHitsAndMisses:
    def test_miss_then_hit(self, pool, driver):
        _load(driver, 2)
        pool.get_page(0)
        pool.get_page(0)
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert pool.stats.hit_ratio == 0.5

    def test_miss_reads_flash(self, pool, driver, chip):
        _load(driver, 1)
        snap = chip.stats.snapshot()
        pool.get_page(0)
        assert chip.stats.delta_since(snap).totals().reads >= 1
        snap = chip.stats.snapshot()
        pool.get_page(0)  # hit: no flash traffic
        assert chip.stats.delta_since(snap).totals().reads == 0


class TestEviction:
    def test_lru_order(self, pool, driver):
        _load(driver, 6)
        for pid in range(4):
            pool.get_page(pid)
        pool.get_page(0)  # refresh 0
        pool.get_page(4)  # evicts 1 (least recently used)
        assert 1 not in pool
        assert 0 in pool

    def test_dirty_eviction_writes_back(self, pool, driver, chip):
        _load(driver, 6)
        page = pool.get_page(0)
        page.write(0, b"\xEE")
        for pid in range(1, 5):
            pool.get_page(pid)  # evicts 0
        assert pool.stats.dirty_evictions == 1
        assert driver.read_page(0)[0] == 0xEE

    def test_clean_eviction_is_silent(self, pool, driver, chip):
        _load(driver, 6)
        pool.get_page(0)
        snap = chip.stats.snapshot()
        for pid in range(1, 5):
            pool.get_page(pid)
        assert chip.stats.delta_since(snap).totals().writes == 0

    def test_pinned_pages_survive(self, pool, driver):
        _load(driver, 6)
        with pool.get_page(0).pinned():
            for pid in range(1, 5):
                pool.get_page(pid)
            assert 0 in pool

    def test_all_pinned_raises(self, driver):
        pool = BufferManager(driver, capacity=2)
        _load(driver, 3)
        with pool.pinned(0), pool.pinned(1):
            with pytest.raises(BufferError):
                pool.get_page(2)


class TestCreateAndFlush:
    def test_create_page_is_dirty(self, pool, driver):
        page = pool.create_page(0, bytes(driver.page_size))
        assert page.dirty

    def test_create_duplicate_fails(self, pool, driver):
        pool.create_page(0, bytes(driver.page_size))
        with pytest.raises(BufferError):
            pool.create_page(0, bytes(driver.page_size))

    def test_flush_all_persists_everything(self, pool, driver):
        _load(driver, 3)
        for pid in range(3):
            pool.get_page(pid).write(0, bytes([0xA0 + pid]))
        pool.flush_all()
        for pid in range(3):
            assert driver.read_page(pid)[0] == 0xA0 + pid

    def test_flush_clears_dirty_state(self, pool, driver):
        _load(driver, 1)
        page = pool.get_page(0)
        page.write(0, b"\x01")
        pool.flush_page(0)
        assert not page.dirty
        assert page.change_log == []


class TestCoupling:
    def test_update_logs_reach_tightly_coupled_driver(self, tiny_spec):
        chip = FlashChip(tiny_spec)
        ipl = IplDriver(chip, log_region_bytes=512)
        pool = BufferManager(ipl, capacity=2)
        ipl.load_page(0, bytes(ipl.page_size))
        page = pool.get_page(0)
        page.write(7, b"\x42")
        pool.flush_page(0)
        # IPL stored the change as an update log, not a page write
        assert ipl.read_page(0)[7] == 0x42
        assert ipl._groups[0].log_fill == 1

    def test_loosely_coupled_driver_gets_no_logs(self, pool, driver, monkeypatch):
        _load(driver, 1)
        seen = {}

        original = driver.write_page

        def spy(pid, data, update_logs=None):
            seen["logs"] = update_logs
            return original(pid, data, update_logs=update_logs)

        monkeypatch.setattr(driver, "write_page", spy)
        page = pool.get_page(0)
        page.write(0, b"\x01")
        pool.flush_page(0)
        assert seen["logs"] is None
