"""Database façade tests: allocation horizon errors, resume, sharding."""

import pytest

from repro.core.pdl import PdlDriver
from repro.flash.chip import FlashChip
from repro.flash.spec import TINY_SPEC, FlashSpec
from repro.ftl.errors import FtlError, UnallocatedPageError, UnknownPageError
from repro.methods import make_method
from repro.storage.db import Database


def _db(buffer_capacity=4):
    driver = PdlDriver(FlashChip(TINY_SPEC), max_differential_size=64)
    return Database(driver, buffer_capacity)


class TestUnallocatedPageError:
    def test_unallocated_pid_raises_dedicated_error(self):
        db = _db()
        db.allocate_page()
        with pytest.raises(UnallocatedPageError):
            db.page(1)
        with pytest.raises(UnallocatedPageError):
            db.page(-1)

    def test_error_is_distinguishable_in_the_hierarchy(self):
        """Callers can catch it as an FTL-layer condition — unlike a bare
        ValueError — and tell it apart from mapping corruption."""
        db = _db()
        try:
            db.page(99)
        except UnknownPageError as exc:
            assert isinstance(exc, UnallocatedPageError)
            assert isinstance(exc, FtlError)
        else:
            pytest.fail("expected UnallocatedPageError")

    def test_allocated_page_still_served(self):
        db = _db()
        page = db.allocate_page()
        assert db.page(page.pid) is page


class TestResume:
    def test_resume_restores_allocation_horizon(self):
        db = _db()
        for _ in range(5):
            db.allocate_page()
        db.flush()
        cold = Database.resume(db.driver, 4, db.allocated_pages)
        assert cold.allocated_pages == 5
        assert cold.page(4).pid == 4
        with pytest.raises(UnallocatedPageError):
            cold.page(5)

    def test_resume_validates_horizon(self):
        db = _db()
        with pytest.raises(ValueError):
            Database.resume(db.driver, 4, -1)


class TestShardedDatabase:
    """A Database over a ShardedDriver, transparently (Figure 10 with N
    chips below the same unmodified engine)."""

    SPEC = FlashSpec(
        n_blocks=8, pages_per_block=8, page_data_size=256, page_spare_size=16
    )

    def test_engine_is_oblivious_to_sharding(self):
        chips = [FlashChip(self.SPEC) for _ in range(3)]
        driver = make_method("PDL (64B) x3", chips)
        db = Database(driver, buffer_capacity=4)
        for _ in range(12):
            page = db.allocate_page()
            page.write(0, bytes([page.pid]) * db.page_size)
        db.flush()
        # flushing the pool group-flushed every shard's write buffer
        assert driver.group_flushes >= 1
        assert all(shard.buffer.is_empty for shard in driver.shards)
        for pid in range(12):
            assert db.page(pid).data == bytes([pid]) * db.page_size
        # traffic really spread over the chips
        busy = [chip for chip in chips if chip.stats.totals().writes > 0]
        assert len(busy) >= 2
