"""Database façade tests: allocation horizon errors, resume, sharding."""

import pytest

from repro.core.pdl import PdlDriver
from repro.flash.chip import FlashChip
from repro.flash.spec import TINY_SPEC, FlashSpec
from repro.ftl.errors import FtlError, UnallocatedPageError, UnknownPageError
from repro.methods import make_method
from repro.storage.db import Database


def _db(buffer_capacity=4):
    driver = PdlDriver(FlashChip(TINY_SPEC), max_differential_size=64)
    return Database(driver, buffer_capacity)


class TestUnallocatedPageError:
    def test_unallocated_pid_raises_dedicated_error(self):
        db = _db()
        db.allocate_page()
        with pytest.raises(UnallocatedPageError):
            db.page(1)
        with pytest.raises(UnallocatedPageError):
            db.page(-1)

    def test_error_is_distinguishable_in_the_hierarchy(self):
        """Callers can catch it as an FTL-layer condition — unlike a bare
        ValueError — and tell it apart from mapping corruption."""
        db = _db()
        try:
            db.page(99)
        except UnknownPageError as exc:
            assert isinstance(exc, UnallocatedPageError)
            assert isinstance(exc, FtlError)
        else:
            pytest.fail("expected UnallocatedPageError")

    def test_allocated_page_still_served(self):
        db = _db()
        page = db.allocate_page()
        assert db.page(page.pid) is page


class TestResume:
    def test_resume_restores_allocation_horizon(self):
        db = _db()
        for _ in range(5):
            db.allocate_page()
        db.flush()
        cold = Database.resume(db.driver, 4, db.allocated_pages)
        assert cold.allocated_pages == 5
        assert cold.page(4).pid == 4
        with pytest.raises(UnallocatedPageError):
            cold.page(5)

    def test_resume_validates_horizon(self):
        db = _db()
        with pytest.raises(ValueError):
            Database.resume(db.driver, 4, -1)


class TestShardedDatabase:
    """A Database over a ShardedDriver, transparently (Figure 10 with N
    chips below the same unmodified engine)."""

    SPEC = FlashSpec(
        n_blocks=8, pages_per_block=8, page_data_size=256, page_spare_size=16
    )

    def test_engine_is_oblivious_to_sharding(self):
        chips = [FlashChip(self.SPEC) for _ in range(3)]
        driver = make_method("PDL (64B) x3", chips)
        db = Database(driver, buffer_capacity=4)
        for _ in range(12):
            page = db.allocate_page()
            page.write(0, bytes([page.pid]) * db.page_size)
        db.flush()
        # flushing the pool group-flushed every shard's write buffer
        assert driver.group_flushes >= 1
        assert all(shard.buffer.is_empty for shard in driver.shards)
        for pid in range(12):
            assert db.page(pid).data == bytes([pid]) * db.page_size
        # traffic really spread over the chips
        busy = [chip for chip in chips if chip.stats.totals().writes > 0]
        assert len(busy) >= 2


class TestPersistentOpen:
    """Database.open/close over FileBackend images (in-process reopen;
    cross-process death is covered by test_restart_durability)."""

    SPEC = FlashSpec(
        n_blocks=12, pages_per_block=8, page_data_size=256, page_spare_size=16
    )

    def _populate(self, db, n=8):
        images = {}
        for _ in range(n):
            page = db.allocate_page()
            data = bytes([page.pid + 1]) * db.page_size
            page.write(0, data)
            images[page.pid] = data
        db.flush()
        return images

    def test_create_reopen_roundtrip(self, tmp_path):
        with Database.open(
            tmp_path, spec=self.SPEC, max_differential_size=64, buffer_capacity=4
        ) as db:
            images = self._populate(db)
        with Database.open(tmp_path) as db2:
            assert db2.allocated_pages == len(images)
            for pid, data in images.items():
                assert db2.page(pid).data == data

    def test_reopen_restores_allocation_horizon(self, tmp_path):
        with Database.open(
            tmp_path, spec=self.SPEC, max_differential_size=64, buffer_capacity=4
        ) as db:
            self._populate(db, n=5)
        with Database.open(tmp_path) as db2:
            with pytest.raises(UnallocatedPageError):
                db2.page(5)
            page = db2.allocate_page()
            assert page.pid == 5  # allocation continues after the horizon

    def test_sharded_database_uses_one_image_per_shard(self, tmp_path):
        with Database.open(
            tmp_path,
            spec=self.SPEC,
            n_shards=3,
            max_differential_size=64,
            buffer_capacity=4,
        ) as db:
            self._populate(db, n=9)
        images = sorted(p.name for p in tmp_path.glob("shard-*.flash"))
        assert images == ["shard-0000.flash", "shard-0001.flash", "shard-0002.flash"]
        with Database.open(tmp_path) as db2:
            assert db2.driver.n_shards == 3
            for pid in range(9):
                assert db2.page(pid).data == bytes([pid + 1]) * db2.page_size

    def test_close_is_idempotent_and_reopenable(self, tmp_path):
        db = Database.open(
            tmp_path, spec=self.SPEC, max_differential_size=64, buffer_capacity=4
        )
        self._populate(db, n=3)
        db.close()
        db.close()  # second close is a no-op
        with Database.open(tmp_path) as db2:
            assert db2.allocated_pages == 3

    def test_read_cache_reaches_the_chips(self, tmp_path):
        with Database.open(
            tmp_path,
            spec=self.SPEC,
            max_differential_size=64,
            buffer_capacity=2,
            read_cache_pages=16,
        ) as db:
            self._populate(db, n=6)
            # Tiny pool forces flash reads; the chip cache absorbs some.
            for pid in (0, 1, 2, 3) * 6:
                db.page(pid)
            chip = db.driver.chip
            assert chip.cache is not None
            assert chip.stats.cache_hits > 0


class TestParallelOpen:
    """Database.open(parallel=True): worker-threaded shard execution."""

    SPEC = FlashSpec(
        n_blocks=12, pages_per_block=8, page_data_size=256, page_spare_size=16
    )

    def _populate(self, db, n=8):
        images = {}
        for _ in range(n):
            page = db.allocate_page()
            data = bytes([page.pid + 1]) * db.page_size
            page.write(0, data)
            images[page.pid] = data
        db.flush()
        return images

    def test_parallel_create_and_serial_reopen(self, tmp_path):
        from repro.sharding.executor import ParallelShardedDriver

        with Database.open(
            tmp_path,
            spec=self.SPEC,
            n_shards=3,
            max_differential_size=64,
            buffer_capacity=4,
            parallel=True,
        ) as db:
            assert isinstance(db.driver, ParallelShardedDriver)
            images = self._populate(db, n=9)
        # parallel is runtime state — a plain reopen recovers serially.
        with Database.open(tmp_path) as db2:
            assert not isinstance(db2.driver, ParallelShardedDriver)
            for pid, data in images.items():
                assert db2.page(pid).data == data

    def test_parallel_reopen_recovers_concurrently(self, tmp_path):
        from repro.sharding.executor import ParallelShardedDriver

        with Database.open(
            tmp_path,
            spec=self.SPEC,
            n_shards=2,
            max_differential_size=64,
            buffer_capacity=4,
        ) as db:
            images = self._populate(db, n=6)
        with Database.open(tmp_path, parallel=True) as db2:
            assert isinstance(db2.driver, ParallelShardedDriver)
            for pid, data in images.items():
                assert db2.page(pid).data == data

    def test_parallel_single_shard_gets_the_facade(self, tmp_path):
        from repro.sharding.executor import ParallelShardedDriver

        with Database.open(
            tmp_path,
            spec=self.SPEC,
            max_differential_size=64,
            buffer_capacity=4,
            parallel=True,
        ) as db:
            assert isinstance(db.driver, ParallelShardedDriver)
            assert db.driver.n_shards == 1
            images = self._populate(db, n=4)
        with Database.open(tmp_path, parallel=True) as db2:
            assert isinstance(db2.driver, ParallelShardedDriver)
            for pid, data in images.items():
                assert db2.page(pid).data == data


class TestGcConfigPassthrough:
    """GC tuning flows through Database.open to every shard driver."""

    def test_open_with_gc_config_and_reopen(self, tmp_path):
        from repro.ftl.gc import GcConfig, cost_benefit_policy

        config = GcConfig(policy="cb", incremental_steps=2, hot_cold=True)
        with Database.open(
            tmp_path / "db", n_shards=2, buffer_capacity=8, gc_config=config
        ) as db:
            for shard in db.driver.shards:
                assert shard.gc.config is config
                assert shard.gc.policy is cost_benefit_policy
            page = db.allocate_page()
            page.write(0, b"\x07" * db.page_size)
            db.flush()
        # GC tuning is runtime state: it is re-supplied on reopen and
        # reaches the recovered per-shard drivers.
        with Database.open(tmp_path / "db", buffer_capacity=8, gc_config=config) as db:
            for shard in db.driver.shards:
                assert shard.gc.config is config
            assert bytes(db.page(0).data) == b"\x07" * db.page_size

    def test_volatile_database_with_sharded_gc_label(self):
        from repro.flash.chip import FlashChip
        from repro.flash.spec import TINY_SPEC
        from repro.methods import make_method

        chips = [FlashChip(TINY_SPEC) for _ in range(2)]
        driver = make_method("PDL (64B) x2 gc=wear", chips)
        db = Database(driver, buffer_capacity=8)
        page = db.allocate_page()
        page.write(0, b"\x11" * db.page_size)
        db.flush()
        assert all(s.gc.config.policy == "wear" for s in db.driver.shards)
