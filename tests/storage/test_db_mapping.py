"""Database plumbing for the demand-paged mapping tier.

``Database.open(mapping_cache=..., snapshot_interval=...)`` enables the
tiered mapping table on every shard.  The region *geometry* is durable
manifest state (a reopen must find the journal and snapshot halves where
they were written); the cache budget and snapshot cadence are runtime
tuning a caller may re-supply per open.  The process-executor cases are
the spawn-safety contract: a :class:`MappingConfig` must pickle through
``ShardFactory`` into worker processes, on create and on reopen.
"""

from __future__ import annotations

import json

import pytest

from repro.core.mapping import TieredMappingTable
from repro.flash.spec import FlashSpec
from repro.ftl.errors import ConfigurationError, UnallocatedPageError
from repro.storage.db import MANIFEST_NAME, Database

SPEC = FlashSpec(
    n_blocks=20, pages_per_block=8, page_data_size=256, page_spare_size=32
)


def _populate(db, n=8):
    images = {}
    for _ in range(n):
        page = db.allocate_page()
        data = bytes([page.pid + 1]) * db.page_size
        page.write(0, data)
        images[page.pid] = data
    db.flush()
    return images


def _shards(db):
    shards = getattr(db.driver, "shards", None)
    return shards if shards is not None else [db.driver]


class TestMappingOpen:
    def test_create_reopen_roundtrip(self, tmp_path):
        with Database.open(
            tmp_path,
            spec=SPEC,
            max_differential_size=64,
            buffer_capacity=4,
            mapping_cache=16,
            snapshot_interval=48,
        ) as db:
            for shard in _shards(db):
                assert isinstance(shard.ppmt, TieredMappingTable)
                assert shard.mapping is not None
            images = _populate(db)
        # Geometry is manifest state: a plain reopen finds the region.
        with Database.open(tmp_path) as db2:
            for shard in _shards(db2):
                assert isinstance(shard.ppmt, TieredMappingTable)
            for pid, data in images.items():
                assert db2.page(pid).data == data
            with pytest.raises(UnallocatedPageError):
                db2.page(len(images))

    def test_manifest_records_region_geometry(self, tmp_path):
        with Database.open(
            tmp_path,
            spec=SPEC,
            max_differential_size=64,
            buffer_capacity=4,
            mapping_cache=0,  # resident cache, still journaled
        ) as db:
            _populate(db, n=4)
            region_blocks = db.driver.mapping.config.region_blocks
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["mapping"]["region_blocks"] == region_blocks
        assert manifest["mapping"]["journal_blocks"] >= 1

    def test_reopen_retunes_cache_without_touching_geometry(self, tmp_path):
        with Database.open(
            tmp_path,
            spec=SPEC,
            max_differential_size=64,
            buffer_capacity=4,
            mapping_cache=16,
        ) as db:
            images = _populate(db)
            stored = db.driver.mapping.config.region_blocks
        with Database.open(
            tmp_path, mapping_cache=64, snapshot_interval=200
        ) as db2:
            cfg = db2.driver.mapping.config
            assert cfg.region_blocks == stored  # geometry immutable
            assert cfg.cache_entries == 64  # tuning re-supplied
            assert cfg.snapshot_interval == 200
            for pid, data in images.items():
                assert db2.page(pid).data == data

    def test_snapshot_interval_requires_mapping_cache(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Database.open(
                tmp_path,
                spec=SPEC,
                max_differential_size=64,
                buffer_capacity=4,
                snapshot_interval=100,
            )

    def test_mapping_args_on_non_mapping_database(self, tmp_path):
        with Database.open(
            tmp_path, spec=SPEC, max_differential_size=64, buffer_capacity=4
        ) as db:
            _populate(db, n=3)
        with pytest.raises(ConfigurationError):
            Database.open(tmp_path, mapping_cache=16)

    def test_raw_mapping_kwarg_is_rejected(self, tmp_path):
        from repro.core.mapping import MappingConfig

        with pytest.raises(ConfigurationError):
            Database.open(
                tmp_path,
                spec=SPEC,
                max_differential_size=64,
                buffer_capacity=4,
                mapping=MappingConfig.auto(SPEC),
            )


class TestMappingSpawnSafety:
    """MappingConfig must survive the ShardFactory pickle into workers."""

    def test_process_create_and_reopen(self, tmp_path):
        with Database.open(
            tmp_path,
            spec=SPEC,
            n_shards=2,
            max_differential_size=64,
            buffer_capacity=4,
            parallel="process",
            mapping_cache=16,
        ) as db:
            images = _populate(db, n=10)
        with Database.open(tmp_path, parallel="process", mapping_cache=16) as db2:
            for pid, data in images.items():
                assert db2.page(pid).data == data
            report = db2.driver.fsck(repair=False)
            assert report.clean

    def test_thread_create_process_reopen(self, tmp_path):
        with Database.open(
            tmp_path,
            spec=SPEC,
            n_shards=2,
            max_differential_size=64,
            buffer_capacity=4,
            parallel=True,
            mapping_cache=16,
        ) as db:
            images = _populate(db, n=10)
        with Database.open(tmp_path, parallel="process") as db2:
            for pid, data in images.items():
                assert db2.page(pid).data == data
