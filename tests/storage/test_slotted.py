"""Unit tests for the slotted-page record layout."""

import pytest

from repro.storage.page import Page
from repro.storage.slotted import (
    HEADER_SIZE,
    SLOT_SIZE,
    SlottedPage,
    SlottedPageError,
)


@pytest.fixture
def spage():
    return SlottedPage.format(Page(0, bytes(256)))


class TestFormat:
    def test_fresh_page(self, spage):
        assert spage.slot_count == 0
        assert spage.live_records == 0
        assert spage.free_space == 256 - HEADER_SIZE - SLOT_SIZE

    def test_unformatted_page_rejected(self):
        with pytest.raises(SlottedPageError):
            SlottedPage(Page(0, bytes(256))).slot_count

    def test_capacity_for(self):
        assert SlottedPage.capacity_for(20, 256) == (256 - HEADER_SIZE) // 24


class TestInsertRead:
    def test_roundtrip(self, spage):
        slot = spage.insert(b"hello")
        assert spage.read(slot) == b"hello"
        assert spage.live_records == 1

    def test_multiple_records(self, spage):
        slots = [spage.insert(bytes([i]) * 10) for i in range(5)]
        for i, slot in enumerate(slots):
            assert spage.read(slot) == bytes([i]) * 10

    def test_full_page_returns_none(self, spage):
        while spage.insert(b"x" * 20) is not None:
            pass
        assert spage.insert(b"x" * 20) is None

    def test_empty_record_rejected(self, spage):
        with pytest.raises(ValueError):
            spage.insert(b"")

    def test_bad_slot(self, spage):
        with pytest.raises(SlottedPageError):
            spage.read(0)


class TestUpdate:
    def test_same_size_in_place(self, spage):
        slot = spage.insert(b"aaaa")
        assert spage.update(slot, b"bbbb")
        assert spage.read(slot) == b"bbbb"

    def test_shrink(self, spage):
        slot = spage.insert(b"aaaaaa")
        assert spage.update(slot, b"bb")
        assert spage.read(slot) == b"bb"

    def test_grow_relocates_within_page(self, spage):
        slot = spage.insert(b"aa")
        assert spage.update(slot, b"bbbbbbbb")
        assert spage.read(slot) == b"bbbbbbbb"

    def test_grow_fails_when_page_full(self, spage):
        slots = []
        while True:
            slot = spage.insert(b"x" * 20)
            if slot is None:
                break
            slots.append(slot)
        assert spage.update(slots[0], b"y" * 100) is False
        assert spage.read(slots[0]) == b"x" * 20  # unchanged

    def test_update_deleted_fails(self, spage):
        slot = spage.insert(b"aaaa")
        spage.delete(slot)
        with pytest.raises(SlottedPageError):
            spage.update(slot, b"bbbb")


class TestDelete:
    def test_delete_tombstones(self, spage):
        slot = spage.insert(b"abc")
        spage.delete(slot)
        assert spage.live_records == 0
        with pytest.raises(SlottedPageError):
            spage.read(slot)

    def test_double_delete_fails(self, spage):
        slot = spage.insert(b"abc")
        spage.delete(slot)
        with pytest.raises(SlottedPageError):
            spage.delete(slot)

    def test_slot_reuse(self, spage):
        a = spage.insert(b"abc")
        spage.delete(a)
        b = spage.insert(b"def")
        assert b == a  # tombstoned slot recycled
        assert spage.read(b) == b"def"


class TestScan:
    def test_records_skips_deleted(self, spage):
        a = spage.insert(b"aa")
        b = spage.insert(b"bb")
        c = spage.insert(b"cc")
        spage.delete(b)
        assert [(s, r) for s, r in spage.records()] == [(a, b"aa"), (c, b"cc")]


class TestChangeLogging:
    def test_mutations_are_logged(self):
        page = Page(0, bytes(256))
        spage = SlottedPage.format(page)
        page.clear_log()
        spage.insert(b"abcd")
        assert page.change_log, "insert must record update logs"
        logged = sum(len(run.data) for run in page.change_log)
        assert logged <= 4 + SLOT_SIZE + HEADER_SIZE
