"""Unit tests for the buffer-pool subsystem.

Covers the eviction-policy registry and the three built-in policies,
the LRU reclaim cursor (parked pinned frames are not rescanned), the
watermark write-back daemon, capacity resizing, pin context managers,
and the merged stats report.  The byte-for-byte legacy-equivalence test
lives in ``test_bufferpool_equivalence.py``.
"""

import threading
import time

import pytest

from repro.core.pdl import PdlDriver
from repro.flash.chip import FlashChip
from repro.ftl.errors import ConfigurationError
from repro.storage.bufferpool import (
    BufferError,
    BufferManager,
    WritebackConfig,
    eviction_policy_names,
    make_eviction_policy,
    normalize_writeback,
    register_eviction_policy,
)
from repro.storage.bufferpool.policy import (
    ClockPolicy,
    EvictionPolicy,
    LruPolicy,
    TwoQPolicy,
)
from repro.storage.db import Database


@pytest.fixture
def driver(chip):
    return PdlDriver(chip, max_differential_size=64)


def _load(driver, n):
    driver.load_pages(
        [(pid, bytes([pid]) * driver.page_size) for pid in range(n)]
    )
    driver.end_of_load()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_names(self):
        names = eviction_policy_names()
        assert {"lru", "clock", "2q"} <= set(names)

    def test_unknown_policy_raises(self):
        with pytest.raises(ConfigurationError, match="unknown eviction policy"):
            make_eviction_policy("nope", 8)

    def test_case_insensitive(self):
        assert isinstance(make_eviction_policy("LRU", 4), LruPolicy)
        assert isinstance(make_eviction_policy("2Q", 4), TwoQPolicy)

    def test_custom_registration(self, driver):
        class Fifo(LruPolicy):
            name = "fifo-test"

            def touch(self, pid):
                pass  # no recency: admission order only

        register_eviction_policy("fifo-test", Fifo)
        assert "fifo-test" in eviction_policy_names()
        pool = BufferManager(driver, 2, policy="fifo-test")
        _load(driver, 3)
        pool.get_page(0)
        pool.get_page(1)
        pool.get_page(0)  # touch is a no-op: 0 stays coldest
        pool.get_page(2)
        assert 0 not in pool

    def test_manager_accepts_policy_instance(self, driver):
        pool = BufferManager(driver, 4, policy=ClockPolicy(4))
        assert pool.stats.policy == "clock"


# ----------------------------------------------------------------------
# LRU reclaim cursor (the pinned-frame O(n) rescan fix)
# ----------------------------------------------------------------------
class TestLruCursor:
    def test_pinned_frames_are_parked_not_rescanned(self, driver):
        pool = BufferManager(driver, 4, policy="lru")
        _load(driver, 16)
        cold = [pool.get_page(pid) for pid in (0, 1)]
        for page in cold:
            page.pin()
        pool.get_page(2)
        pool.get_page(3)
        pool.get_page(4)  # evicts 2: skips the two pinned cold frames once
        assert pool.stats.pinned_skips == 2
        assert pool.stats.policy_counters.get("parked") == 2
        pool.get_page(5)  # evicts 3: the parked frames are NOT re-skipped
        assert pool.stats.pinned_skips == 2
        assert 0 in pool and 1 in pool

    def test_unpin_returns_frame_to_eviction_order(self, driver):
        pool = BufferManager(driver, 4, policy="lru")
        _load(driver, 16)
        pinned = pool.get_page(0)
        pinned.pin()
        for pid in (1, 2, 3, 4):
            pool.get_page(pid)  # parks 0, evicts 1
        assert 0 in pool
        pinned.unpin()
        pool.get_page(5)  # 0 is the coldest reclaimable frame again
        assert 0 not in pool

    def test_all_pinned_raises(self, driver):
        pool = BufferManager(driver, 2)
        _load(driver, 3)
        pool.get_page(0).pin()
        pool.get_page(1).pin()
        with pytest.raises(BufferError):
            pool.get_page(2)


# ----------------------------------------------------------------------
# Clock
# ----------------------------------------------------------------------
class TestClock:
    def test_second_chance(self, driver):
        pool = BufferManager(driver, 3, policy="clock")
        _load(driver, 8)
        for pid in (0, 1, 2):
            pool.get_page(pid)
        pool.get_page(0)  # sets 0's reference bit
        pool.get_page(3)  # hand clears 0's bit, evicts 1
        assert 0 in pool
        assert 1 not in pool

    def test_sweep_eventually_evicts(self, driver):
        pool = BufferManager(driver, 3, policy="clock")
        _load(driver, 16)
        for pid in range(10):
            pool.get_page(pid)
        assert len(pool) == 3
        assert pool.stats.evictions == 7


# ----------------------------------------------------------------------
# 2Q
# ----------------------------------------------------------------------
class TestTwoQ:
    def test_ghost_promotion(self):
        policy = TwoQPolicy(4)
        for pid in (1, 2, 3, 4):
            policy.admit(pid)
        victim = policy.select_victim(lambda pid: True)
        assert victim == 1  # FIFO head of the probation queue
        policy.remove(victim)
        assert 1 in policy._a1out
        policy.admit(1)  # re-reference after probation: hot
        assert 1 in policy._am
        assert policy.counters["ghost_promotions"] == 1

    def test_scan_resistance_beats_lru(self, tiny_spec):
        """The same hot-set-plus-scan trace, replayed on LRU and 2Q.

        Hot pages are re-referenced while scans sweep past; 2Q promotes
        them to its protected queue and must end with the hot set
        resident and a strictly better hit count, while LRU lets every
        sweep flush them.
        """
        hot = (0, 1, 2)

        def trace():
            ops = []
            for cycle in range(6):
                for _ in range(6):
                    ops.extend(hot)  # OLTP burst
                for pid in range(8 + cycle, 56, 3):  # a sweep...
                    ops.append(pid)
                    ops.append(hot[pid % len(hot)])  # ...with OLTP under it
            return ops

        hits = {}
        resident = {}
        for name in ("lru", "2q"):
            chip = FlashChip(tiny_spec)
            driver = PdlDriver(chip, max_differential_size=64)
            _load(driver, 64)
            pool = BufferManager(driver, 8, policy=name)
            for pid in trace():
                pool.get_page(pid)
            hits[name] = pool.stats.hits
            resident[name] = all(pid in pool for pid in hot)
        assert resident["2q"], "2q lost the hot set to the scans"
        assert hits["2q"] > hits["lru"]
        assert pool.policy.counters["ghost_promotions"] > 0

    def test_resize_recomputes_thresholds(self):
        policy = TwoQPolicy(40)
        assert policy.kin == 10
        policy.resize(8)
        assert policy.kin == 2
        assert policy.kout == 4


# ----------------------------------------------------------------------
# Capacity / pinning ergonomics
# ----------------------------------------------------------------------
class TestManager:
    def test_capacity_shrink_evicts(self, driver):
        pool = BufferManager(driver, 8)
        _load(driver, 8)
        for pid in range(8):
            pool.get_page(pid)
        pool.capacity = 3
        assert len(pool) == 3
        assert pool.stats.evictions == 5
        with pytest.raises(ValueError):
            pool.capacity = 0

    def test_pool_pinned_context_manager(self, driver):
        pool = BufferManager(driver, 4)
        _load(driver, 4)
        with pool.pinned(0) as page:
            assert page.pin_count == 1
            assert pool.pinned_count() == 1
        assert page.pin_count == 0

    def test_pinned_does_not_leak_on_exception(self, driver):
        pool = BufferManager(driver, 4)
        _load(driver, 4)
        with pytest.raises(RuntimeError, match="boom"):
            with pool.pinned(0):
                raise RuntimeError("boom")
        assert pool.get_page(0).pin_count == 0

    def test_page_pinned_context_manager(self, driver):
        pool = BufferManager(driver, 4)
        _load(driver, 4)
        page = pool.get_page(1)
        with pytest.raises(ValueError):
            with page.pinned():
                assert page.pin_count == 1
                page.read(10_000, 1)  # raises: out of bounds
        assert page.pin_count == 0

    def test_eviction_stall_samples_cover_every_eviction(self, driver):
        pool = BufferManager(driver, 2)
        _load(driver, 8)
        for pid in range(6):
            page = pool.get_page(pid)
            page.write(0, b"\xAA")
        assert pool.stats.eviction_stalls.count == pool.stats.evictions
        assert pool.stats.eviction_stall_percentile(99) > 0.0


# ----------------------------------------------------------------------
# Write-back daemon
# ----------------------------------------------------------------------
def _wait_until(predicate, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestWriteback:
    def test_normalize(self):
        assert normalize_writeback(None) is None
        assert normalize_writeback(False) is None
        assert normalize_writeback("sync") is None
        assert isinstance(normalize_writeback(True), WritebackConfig)
        assert isinstance(normalize_writeback("background"), WritebackConfig)
        config = WritebackConfig(high_watermark=0.8, low_watermark=0.1)
        assert normalize_writeback(config) is config
        with pytest.raises(ValueError):
            normalize_writeback("later")
        with pytest.raises(ValueError):
            WritebackConfig(high_watermark=0.2, low_watermark=0.5)

    def test_daemon_cleans_dirty_pages(self, driver):
        pool = BufferManager(
            driver,
            8,
            writeback=WritebackConfig(high_watermark=0.5, low_watermark=0.1),
        )
        try:
            _load(driver, 8)
            for pid in range(8):
                pool.get_page(pid).write(0, bytes([0xA0 + pid]))
            assert _wait_until(lambda: pool.stats.writeback_pages >= 4)
            assert pool.stats.writeback_batches >= 1
            assert _wait_until(lambda: pool.dirty_count <= 4)
            # The daemon's writes are durable without any client flush.
            for pid in range(4):
                assert pool.get_page(pid).data[0] == 0xA0 + pid
        finally:
            pool.close()

    def test_eviction_prefers_clean_frames(self, driver):
        pool = BufferManager(driver, 8, writeback=True)
        try:
            _load(driver, 32)
            for pid in range(8):
                pool.get_page(pid).write(0, b"\xBB")
            assert _wait_until(lambda: pool.stats.writeback_pages >= 4)
            stalls0 = pool.stats.sync_writebacks
            for pid in range(8, 12):
                pool.get_page(pid)
            assert pool.stats.clean_reclaims >= 1
            # Clean reclamation first; the sync backstop stays rare.
            assert pool.stats.sync_writebacks - stalls0 <= 4
        finally:
            pool.close()

    def test_flush_all_pauses_daemon_and_is_durable(self, driver):
        pool = BufferManager(driver, 8, writeback=True)
        try:
            _load(driver, 8)
            for pid in range(8):
                pool.get_page(pid).write(0, bytes([0xC0 + pid]))
            pool.flush_all()
            assert pool.dirty_count == 0
            for pid in range(8):
                assert driver.read_page(pid)[0] == 0xC0 + pid
        finally:
            pool.close()

    def test_concurrent_writer_keeps_residual_log(self, driver):
        """A page dirtied mid-flush stays dirty with only the new runs."""
        pool = BufferManager(driver, 4)
        _load(driver, 4)
        page = pool.get_page(0)
        page.write(0, b"\x01")
        data, logs, version = page.writeback_snapshot()
        page.write(1, b"\x02")  # races the in-flight snapshot
        assert not page.finish_writeback(version, len(logs))
        assert page.dirty
        assert len(page.change_log) == 1
        assert page.change_log[0].offset == 1

    def test_close_is_idempotent(self, driver):
        pool = BufferManager(driver, 4, writeback=True)
        pool.close()
        pool.close()
        assert not pool.writeback.running

    def test_daemon_drains_to_low_watermark_across_batches(self, tiny_spec):
        """One wake-up drains the whole surplus, not one batch of it."""
        chip = FlashChip(tiny_spec)
        driver = PdlDriver(chip, max_differential_size=64)
        _load(driver, 40)
        pool = BufferManager(
            driver,
            40,
            writeback=WritebackConfig(
                high_watermark=0.5, low_watermark=0.25, max_batch_pages=4
            ),
        )
        try:
            for pid in range(20):  # dirty count hits the high watermark
                pool.get_page(pid).write(0, b"\xDD")
            assert _wait_until(lambda: pool.dirty_count <= 10)
            # 20 -> <=10 dirty with 4-page batches takes several rounds.
            assert pool.stats.writeback_batches >= 3
        finally:
            pool.close()

    def test_daemon_error_surfaces_once_after_synchronous_flush(self, driver):
        pool = BufferManager(
            driver,
            8,
            writeback=WritebackConfig(high_watermark=0.4, low_watermark=0.1),
        )
        try:
            _load(driver, 8)
            boom = RuntimeError("device gone")
            original = driver.write_pages

            def failing(pages, update_logs=None):
                if threading.current_thread().name == "bufferpool-writeback":
                    raise boom
                return original(pages, update_logs=update_logs)

            driver.write_pages = failing
            for pid in range(8):
                pool.get_page(pid).write(0, bytes([0xE0 + pid]))
            assert _wait_until(lambda: pool.writeback.error is not None)
            # flush_all completes the synchronous flush, THEN raises.
            with pytest.raises(RuntimeError, match="device gone"):
                pool.flush_all()
            assert pool.dirty_count == 0
            for pid in range(8):
                assert driver.read_page(pid)[0] == 0xE0 + pid
            pool.flush_all()  # the error is surfaced exactly once
        finally:
            pool.close()


# ----------------------------------------------------------------------
# Database plumbing
# ----------------------------------------------------------------------
class TestDatabasePlumbing:
    def test_open_with_policy_and_writeback(self, tmp_path):
        path = tmp_path / "db"
        with Database.open(
            path, buffer_capacity=16, buffer_policy="2q", writeback="background"
        ) as db:
            assert db.pool.stats.policy == "2q"
            assert db.pool.writeback is not None
            page = db.allocate_page()
            page.write(0, b"hello")
            db.flush()
            pid = page.pid
        # Reopen with defaults: runtime knobs do not persist.
        with Database.open(path) as db:
            assert db.pool.stats.policy == "lru"
            assert db.pool.writeback is None
            assert db.page(pid).data[:5] == b"hello"

    def test_report_merges_buffer_stats(self, tmp_path):
        with Database.open(tmp_path / "db", buffer_capacity=8) as db:
            page = db.allocate_page()
            page.write(0, b"x")
            db.flush()
            report = db.report()
        assert report["writes"] > 0
        assert report["buffer"]["policy"] == "lru"
        assert report["buffer"]["flushes"] == 1

    def test_unknown_policy_surfaces_configuration_error(self, driver):
        with pytest.raises(ConfigurationError):
            Database(driver, 8, buffer_policy="mru")


# ----------------------------------------------------------------------
# Policy base-class contract
# ----------------------------------------------------------------------
class TestPolicyContract:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LruPolicy(0)

    def test_abstract_surface(self):
        policy = EvictionPolicy(4)
        for call in (
            lambda: policy.admit(0),
            lambda: policy.touch(0),
            lambda: policy.remove(0),
            lambda: policy.select_victim(lambda pid: True),
            lambda: policy.iter_pids(),
        ):
            with pytest.raises(NotImplementedError):
                call()

    def test_concurrent_hits_are_safe(self, driver):
        """Many threads hammering hits on one pool corrupt nothing."""
        pool = BufferManager(driver, 8)
        _load(driver, 8)
        for pid in range(8):
            pool.get_page(pid)
        errors = []

        def worker(seed):
            try:
                for i in range(300):
                    with pool.pinned((seed + i) % 8) as page:
                        page.read(0, 4)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert pool.stats.misses == 8  # the warm-up loads only
        assert pool.stats.hits == 6 * 300
        assert pool.pinned_count() == 0
