"""Unit tests for buffered pages and change-log recording."""

import pytest

from repro.storage.page import Page


@pytest.fixture
def page():
    return Page(0, bytes(64))


class TestReadWrite:
    def test_initial_state(self, page):
        assert not page.dirty
        assert page.change_log == []
        assert page.data == bytes(64)

    def test_write_applies_and_logs(self, page):
        page.write(4, b"abc")
        assert page.data[4:7] == b"abc"
        assert page.dirty
        assert len(page.change_log) == 1
        assert page.change_log[0].offset == 4
        assert page.change_log[0].data == b"abc"

    def test_multiple_writes_accumulate(self, page):
        page.write(0, b"x")
        page.write(10, b"y")
        assert len(page.change_log) == 2

    def test_empty_write_is_noop(self, page):
        page.write(0, b"")
        assert not page.dirty
        assert page.change_log == []

    def test_bounds_checked(self, page):
        with pytest.raises(ValueError):
            page.write(62, b"abc")
        with pytest.raises(ValueError):
            page.read(60, 10)

    def test_read_returns_copy(self, page):
        page.write(0, b"abc")
        chunk = page.read(0, 3)
        assert chunk == b"abc"

    def test_clear_log(self, page):
        page.write(0, b"abc")
        page.clear_log()
        assert not page.dirty
        assert page.change_log == []
        assert page.data[:3] == b"abc"  # content kept


class TestWriteDelta:
    def test_logs_only_changed_bytes(self, page):
        page.write(0, b"AAAA")
        page.clear_log()
        page.write_delta(0, b"AABA")
        assert len(page.change_log) == 1
        assert page.change_log[0].offset == 2
        assert page.change_log[0].data == b"B"

    def test_identical_content_logs_nothing(self, page):
        page.write(0, b"AAAA")
        page.clear_log()
        page.write_delta(0, b"AAAA")
        assert page.change_log == []
        assert not page.dirty


class TestPinning:
    def test_pin_unpin(self, page):
        page.pin()
        page.pin()
        assert page.pin_count == 2
        page.unpin()
        page.unpin()
        assert page.pin_count == 0

    def test_over_unpin(self, page):
        with pytest.raises(RuntimeError):
            page.unpin()

    def test_pinned_context_manager(self, page):
        with page.pinned() as same:
            assert same is page
            assert page.pin_count == 1
        assert page.pin_count == 0

    def test_pinned_releases_on_exception(self, page):
        with pytest.raises(ValueError):
            with page.pinned():
                page.write(1_000, b"x")  # out of bounds
        assert page.pin_count == 0

    def test_pinned_nests(self, page):
        with page.pinned(), page.pinned():
            assert page.pin_count == 2
        assert page.pin_count == 0
