"""The documentation set stays truthful: links resolve, files exist.

The same checker runs in the CI docs job; having it in tier-1 means a
renamed module or deleted doc fails fast, locally.
"""

import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent.parent


def test_required_docs_exist():
    for name in (
        "README.md",
        "docs/architecture.md",
        "docs/sharding.md",
        "docs/concurrency.md",
        "docs/paper-map.md",
    ):
        assert (ROOT / name).is_file(), f"missing {name}"


def test_markdown_links_resolve():
    result = subprocess.run(
        [sys.executable, str(ROOT / "scripts" / "check_docs.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_readme_names_only_real_files():
    """Every repo-relative path the README cites in backticks exists."""
    text = (ROOT / "README.md").read_text(encoding="utf-8")
    cited = re.findall(
        r"`((?:examples|benchmarks|bench_results|docs|src)/[\w./-]+?)`", text
    )
    assert cited, "README stopped citing any repo paths?"
    for path in cited:
        assert (ROOT / path).exists(), f"README cites missing {path}"


def test_paper_map_names_only_real_files():
    """Module/benchmark paths in the paper map's tables exist."""
    text = (ROOT / "docs" / "paper-map.md").read_text(encoding="utf-8")
    cited = re.findall(
        r"`((?:src|tests|benchmarks|bench_results)/[\w./-]+?)`", text
    )
    assert cited
    for path in cited:
        assert (ROOT / path).exists(), f"paper-map cites missing {path}"
