#!/usr/bin/env python3
"""Run the scenario × config differential-equivalence matrix.

Replays a set of named access patterns (plus the checked-in trace) over
the engine configuration grid and asserts the oracle: every config must
converge to the identical logical state with clean self-checks (see
``docs/workloads.md``).  Writes ``bench_results/scenarios.json``.

Usage::

    python scripts/run_scenarios.py              # full grid (~13 configs)
    python scripts/run_scenarios.py --tiny       # CI smoke grid
    python scripts/run_scenarios.py --list       # show patterns/configs
    python scripts/run_scenarios.py --patterns zipf-0.9,ycsb-a \
        --configs pdl-256,opu --ops 300

Exits 1 when any scenario diverges across configs, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.scenarios.matrix import (  # noqa: E402
    DEFAULT_CONFIGS,
    DEFAULT_SEED,
    TINY_CONFIGS,
    default_patterns,
    run_matrix,
    tiny_patterns,
)
from repro.workloads.patterns import make_pattern, pattern_names  # noqa: E402

#: The checked-in replay trace (see docs/workloads.md for the format).
DEFAULT_TRACE = _ROOT / "benchmarks" / "traces" / "oltp_hotset.trace"


def _select_configs(grid, names):
    by_name = {config.name: config for config in grid}
    selected = []
    for name in names:
        if name not in by_name:
            known = ", ".join(sorted(by_name))
            raise SystemExit(f"unknown config {name!r}; grid has: {known}")
        selected.append(by_name[name])
    return selected


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--tiny", action="store_true",
        help="reduced CI smoke grid: 6 patterns x 8 configs, fewer ops",
    )
    parser.add_argument(
        "--patterns", help="comma-separated pattern names (default: suite set)"
    )
    parser.add_argument(
        "--configs", help="comma-separated config names from the grid"
    )
    parser.add_argument(
        "--trace", type=Path, default=None,
        help=f"trace file to replay as an extra scenario (default: {DEFAULT_TRACE})",
    )
    parser.add_argument(
        "--no-trace", action="store_true", help="skip the trace-replay scenario"
    )
    parser.add_argument("--pages", type=int, default=None, help="database pages")
    parser.add_argument("--ops", type=int, default=None, help="operations per scenario")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--out", default=None, help="results directory (default: bench_results/)"
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered patterns and the grid"
    )
    args = parser.parse_args(argv)

    grid = TINY_CONFIGS if args.tiny else DEFAULT_CONFIGS
    if args.list:
        print("registered patterns:")
        for name in pattern_names():
            print(f"  {name}")
        print("config grid:" + (" (tiny)" if args.tiny else ""))
        for config in grid:
            print(f"  {config.name:16s} {config.describe()}")
        return 0

    trace = None
    if not args.no_trace:
        trace = args.trace if args.trace is not None else DEFAULT_TRACE
        if not trace.exists():
            raise SystemExit(f"trace file not found: {trace}")
    if args.patterns:
        patterns = [make_pattern(name) for name in args.patterns.split(",")]
        if trace is not None and args.trace is not None:
            from repro.workloads.patterns import TracePattern

            patterns.append(TracePattern(trace))
    elif args.tiny:
        patterns = tiny_patterns(trace)
    else:
        patterns = default_patterns(trace)
    configs = _select_configs(grid, args.configs.split(",")) if args.configs else list(grid)

    n_pages = args.pages if args.pages is not None else (48 if args.tiny else 96)
    n_ops = args.ops if args.ops is not None else (220 if args.tiny else 600)

    started = time.perf_counter()
    result = run_matrix(
        patterns, configs, n_pages=n_pages, n_ops=n_ops, seed=args.seed
    )
    elapsed = time.perf_counter() - started
    result.table.note(f"wall time: {elapsed:.1f}s")
    print(result.table.render())
    print(f"saved: {result.table.save(args.out)}")
    if not result.equivalent:
        print("\nORACLE DIVERGENCE:", file=sys.stderr)
        for failure in result.divergences:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"oracle: all {len(result.verdicts)} scenarios equivalent across "
        f"{len(configs)} configs"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
