#!/usr/bin/env python
"""Markdown link checker for the documentation set (CI docs job).

Scans ``README.md`` and ``docs/*.md`` for inline links and validates:

* relative file targets exist (resolved from the linking file's
  directory, anchors stripped);
* anchors — both ``#same-file`` and ``file.md#section`` — resolve to a
  heading in the target file, using GitHub's slug rules (lowercase,
  punctuation dropped, spaces to hyphens);
* absolute URLs are only syntax-checked (CI must not depend on the
  network), but non-http schemes are rejected.

Exits non-zero listing every broken link.  Run locally::

    python scripts/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links/images: [text](target) — target without spaces.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)

CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def doc_files():
    files = [ROOT / "README.md"]
    files.extend(sorted((ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markup, lowercase, drop punctuation."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = path.read_text(encoding="utf-8")
    text = CODE_FENCE_RE.sub("", text)  # '# comment' in fences ≠ heading
    return {github_slug(match) for match in HEADING_RE.findall(text)}


def check_file(path: Path) -> list:
    problems = []
    text = path.read_text(encoding="utf-8")
    stripped = CODE_FENCE_RE.sub("", text)
    for target in LINK_RE.findall(stripped):
        if target.startswith(("http://", "https://")):
            continue
        if ":" in target.split("#", 1)[0]:
            problems.append(f"{path.name}: unsupported link scheme {target!r}")
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(f"{path.name}: broken link {target!r}")
                continue
        else:
            resolved = path
        if anchor and resolved.suffix == ".md":
            if anchor not in anchors_of(resolved):
                problems.append(
                    f"{path.name}: anchor {target!r} not found in "
                    f"{resolved.name}"
                )
    return problems


def main() -> int:
    files = doc_files()
    problems = []
    n_links = 0
    for path in files:
        stripped = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
        n_links += len(LINK_RE.findall(stripped))
        problems.extend(check_file(path))
    if problems:
        print(f"docs link check: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(
        f"docs link check: OK ({len(files)} files, {n_links} links verified)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
