#!/usr/bin/env python3
"""Run the invariant lint engine over the tree.

Usage:
    python scripts/lint_invariants.py [paths...]
        [--baseline FILE] [--write-baseline] [--format text|json]
        [--output FILE] [--list-rules] [--rule ID]...

Exit codes: 0 = clean, 1 = findings (or stale baseline entries with
--prune-stale semantics left to the caller), 2 = usage/configuration
error (unknown rule, malformed baseline, missing path).

Defaults: scans ``src/`` relative to the repo root, with the checked-in
``analysis-baseline.json`` when present.  See docs/static-analysis.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import (  # noqa: E402
    Baseline,
    BaselineError,
    analyze,
    get_rule,
    all_rules,
)
from repro.analysis.findings import Severity  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="lint_invariants",
        description="AST-based enforcement of the engine's concurrency "
        "and resource contracts",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to scan (default: src/)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON file (default: analysis-baseline.json at the "
        "repo root when it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0; "
        "entries get a TODO justification you must fill in before the "
        "baseline will load",
    )
    parser.add_argument(
        "--justification",
        default="",
        help="justification recorded on entries written by --write-baseline",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the report (in --format) to this file",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        help="run only this rule id (repeatable)",
    )
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="root for relative finding paths (default: repo root, or the "
        "scanned directory when it lies outside the repo)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}: {rule.summary}")
        return 0

    paths = args.paths or [REPO_ROOT / "src"]
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2

    rules = None
    if args.rule:
        try:
            rules = [get_rule(rid) for rid in args.rule]
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2

    root = args.root
    if root is None:
        root = REPO_ROOT
        try:
            for path in paths:
                path.resolve().relative_to(REPO_ROOT)
        except ValueError:
            # Scanning outside the repo (e.g. a fixture tree copy):
            # anchor paths at the first scanned directory instead.
            first = paths[0].resolve()
            root = first if first.is_dir() else first.parent

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        default = REPO_ROOT / "analysis-baseline.json"
        if default.exists():
            baseline_path = default

    if args.write_baseline:
        result = analyze(paths, root=root, baseline=None, rules=rules)
        target = args.baseline or REPO_ROOT / "analysis-baseline.json"
        justification = args.justification or (
            "TODO: justify or fix (entry written by --write-baseline)"
        )
        Baseline.from_findings(result.new, justification).save(target)
        print(f"wrote {len(result.new)} finding(s) to {target}")
        return 0

    baseline = None
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    result = analyze(paths, root=root, baseline=baseline, rules=rules)
    report = render(result, args.fmt)
    print(report)
    if args.output is not None:
        args.output.write_text(report + "\n", encoding="utf-8")
    return 0 if result.ok else 1


def render(result, fmt: str) -> str:
    if fmt == "json":
        return json.dumps(
            {
                "findings": [f.to_json() for f in result.new],
                "suppressed": [f.to_json() for f in result.suppressed],
                "grandfathered": [f.to_json() for f in result.grandfathered],
                "stale_baseline": [
                    {"rule": e.rule, "path": e.path, "message": e.message}
                    for e in result.stale_baseline
                ],
                "parse_errors": [
                    {"path": rel, "error": msg} for rel, msg in result.broken
                ],
                "ok": result.ok,
            },
            indent=2,
        )
    lines = []
    for rel, msg in result.broken:
        lines.append(f"{rel}:0: [parse-error] error: {msg}")
    for finding in result.new:
        lines.append(finding.render())
    errors = sum(
        1 for f in result.new if f.severity is Severity.ERROR
    ) + len(result.broken)
    summary = (
        f"{errors} error(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.grandfathered)} baselined"
    )
    if result.stale_baseline:
        summary += f", {len(result.stale_baseline)} stale baseline entr" + (
            "y" if len(result.stale_baseline) == 1 else "ies"
        )
        for entry in result.stale_baseline:
            lines.append(
                f"note: stale baseline entry [{entry.rule}] {entry.path}: "
                f"{entry.message!r} no longer matches — remove it"
            )
    lines.append(summary)
    return "\n".join(lines)


if __name__ == "__main__":
    raise SystemExit(main())
