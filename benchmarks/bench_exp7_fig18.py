"""Experiment 7 / Figure 18: TPC-C I/O time per transaction vs buffer size.

Paper shapes asserted: at every buffer size the ordering is
IPL(64KB) > IPL(18KB) and OPU > PDL(2KB) > PDL(256B) (I/O time, worse to
better), with PDL(256B) winning by the paper's reported 1.2–6.1× margin
over the alternatives; larger buffers reduce everyone's I/O.
"""

from repro.bench.experiments import experiment7

FRACTIONS = (0.002, 0.01, 0.05, 0.1)


def test_experiment7_figure18(run_experiment, scale):
    table = run_experiment(experiment7, scale, buffer_fractions=FRACTIONS)

    def v(method, fraction):
        return table.value(
            "io_us_per_txn", method=method, buffer_fraction=fraction
        )

    for fraction in FRACTIONS:
        pdl256 = v("PDL (256B)", fraction)
        pdl2k = v("PDL (2KB)", fraction)
        opu = v("OPU", fraction)
        ipl18 = v("IPL (18KB)", fraction)
        ipl64 = v("IPL (64KB)", fraction)
        # the paper's ordering, worst to best (10% tolerance between
        # the two IPL variants, which run close at small scales)
        assert ipl64 > 0.9 * ipl18
        assert opu > pdl2k > pdl256
        assert ipl18 > pdl256
        # improvement factor in the paper's reported 1.2-6.1x ballpark
        assert 1.1 <= opu / pdl256 <= 8.0

    # a bigger buffer means less flash I/O for every method
    for method in ("PDL (256B)", "OPU", "IPL (18KB)"):
        assert v(method, 0.1) < v(method, 0.002)
