"""Experiment 7 / Figure 18, plus the buffer-pool subsystem sweep.

Part 1 (pytest, paper fidelity): TPC-C I/O time per transaction vs
buffer size.  Paper shapes asserted: at every buffer size the ordering
is IPL(64KB) > IPL(18KB) and OPU > PDL(2KB) > PDL(256B) (I/O time,
worse to better), with PDL(256B) winning by the paper's reported
1.2–6.1× margin over the alternatives; larger buffers reduce everyone's
I/O.

Part 2 (standalone, the production extension): sweep eviction policy ×
buffer size × write-back mode over the workloads the subsystem exists
for, writing ``bench_results/bufferpool.json``:

* **skewed updates** (90 % of writes on 10 % of pages) through a
  4-shard parallel array — background write-back must cut the p99
  client-visible eviction stall vs synchronous write-back, because the
  eviction path reclaims frames the daemon already cleaned instead of
  stalling on flash;
* **scan + hot set** (TPC-C-shaped: OLTP point traffic with reporting
  scans underneath) — the scan-resistant ``2q`` policy must beat
  ``lru`` on hit ratio at equal or lower total flash writes, because
  scan pages die in its probation queue instead of flushing the hot
  set;
* a TPC-C spot check of the policies at one buffer size, through the
  real transaction mix.

Runs standalone for CI smoke checks::

    python benchmarks/bench_exp7_fig18.py --tiny

or under pytest-benchmark like the other experiments::

    python -m pytest benchmarks/bench_exp7_fig18.py -q
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.experiments import experiment7  # noqa: E402
from repro.bench.reporting import ResultTable  # noqa: E402
from repro.workloads.runner import (  # noqa: E402
    RunnerConfig,
    measure_buffered_updates,
    measure_scan_mix,
)

FRACTIONS = (0.002, 0.01, 0.05, 0.1)

POLICIES = ("lru", "clock", "2q")

#: Buffer sizes for the subsystem sweep, as fractions of the database.
SWEEP_FRACTIONS_FULL = (0.08, 0.15, 0.30)
SWEEP_FRACTIONS_TINY = (0.15,)

FULL_RUNNER = dict(database_pages=1024, measure_ops=6000)
TINY_RUNNER = dict(database_pages=512, measure_ops=2500)

#: The skewed-update workload runs on a parallel shard array so the
#: write-back daemon's batches overlap with client work for real.
UPDATE_LABEL = "PDL (256B) x4 par"
SCAN_LABEL = "PDL (256B)"


def test_experiment7_figure18(run_experiment, scale):
    table = run_experiment(experiment7, scale, buffer_fractions=FRACTIONS)

    def v(method, fraction):
        return table.value(
            "io_us_per_txn", method=method, buffer_fraction=fraction
        )

    for fraction in FRACTIONS:
        pdl256 = v("PDL (256B)", fraction)
        pdl2k = v("PDL (2KB)", fraction)
        opu = v("OPU", fraction)
        ipl18 = v("IPL (18KB)", fraction)
        ipl64 = v("IPL (64KB)", fraction)
        # the paper's ordering, worst to best (10% tolerance between
        # the two IPL variants, which run close at small scales)
        assert ipl64 > 0.9 * ipl18
        assert opu > pdl2k > pdl256
        assert ipl18 > pdl256
        # improvement factor in the paper's reported 1.2-6.1x ballpark
        assert 1.1 <= opu / pdl256 <= 8.0

    # a bigger buffer means less flash I/O for every method
    for method in ("PDL (256B)", "OPU", "IPL (18KB)"):
        assert v(method, 0.1) < v(method, 0.002)


# ----------------------------------------------------------------------
# Buffer-pool subsystem sweep (standalone / CI smoke)
# ----------------------------------------------------------------------

def run_bufferpool_bench(tiny: bool):
    """Policy × buffer size × write-back sweep → one ResultTable."""
    runner = RunnerConfig(**(TINY_RUNNER if tiny else FULL_RUNNER))
    fractions = SWEEP_FRACTIONS_TINY if tiny else SWEEP_FRACTIONS_FULL
    table = ResultTable(
        experiment="bufferpool",
        title="Buffer-pool subsystem: policy x buffer size x write-back",
        columns=(
            "workload",
            "policy",
            "writeback",
            "buffer_pages",
            "hit_ratio",
            "p99_stall_us",
            "max_stall_us",
            "clean_reclaims",
            "sync_writebacks",
            "writeback_pages",
            "flash_writes",
            "flash_reads",
            "io_time_ms",
        ),
    )
    def add(m):
        table.add_row(
            m.workload,
            m.policy,
            m.writeback,
            m.buffer_pages,
            m.hit_ratio,
            m.eviction_stall_p99_us,
            m.eviction_stall_max_us,
            m.clean_reclaims,
            m.sync_writebacks,
            m.writeback_pages,
            m.flash_writes,
            m.flash_reads,
            m.io_time_us / 1000.0,
        )
        return m

    update_points = {}
    for fraction in fractions:
        for policy in POLICIES:
            for writeback in (None, "background"):
                m = add(
                    measure_buffered_updates(
                        UPDATE_LABEL,
                        runner,
                        buffer_fraction=fraction,
                        policy=policy,
                        writeback=writeback,
                    )
                )
                update_points[(fraction, policy, m.writeback)] = m
    scan_points = {}
    for fraction in fractions:
        for policy in POLICIES:
            scan_points[(fraction, policy)] = add(
                measure_scan_mix(
                    SCAN_LABEL, runner, buffer_fraction=fraction, policy=policy
                )
            )

    # TPC-C spot check: the real transaction mix through each policy.
    from repro.bench.config import current_scale
    from repro.workloads.tpcc.driver import run_tpcc

    scale = current_scale()
    tpcc_txns = 150 if tiny else scale.tpcc_transactions
    for policy in POLICIES:
        m = run_tpcc(
            "PDL (256B)",
            scale.tpcc_scale,
            buffer_fraction=0.05,
            n_transactions=tpcc_txns,
            buffer_policy=policy,
        )
        table.add_row(
            "tpcc",
            policy,
            m.writeback,
            m.buffer_pages,
            m.hit_ratio,
            m.eviction_stall_p99_us,
            0.0,
            0,
            0,
            0,
            m.flash_writes,
            m.flash_reads,
            m.io_us_per_txn * tpcc_txns / 1000.0,
        )

    mid = fractions[len(fractions) // 2] if len(fractions) > 1 else fractions[0]
    sync = update_points[(mid, "lru", "sync")]
    back = update_points[(mid, "lru", "background")]
    table.note(
        f"background write-back: p99 eviction stall "
        f"{back.eviction_stall_p99_us:.1f}us vs {sync.eviction_stall_p99_us:.1f}us "
        f"sync ({sync.clean_reclaims} -> {back.clean_reclaims} clean reclaims)"
    )
    lru = scan_points[(mid, "lru")]
    twoq = scan_points[(mid, "2q")]
    table.note(
        f"scan-mix: 2q hit {twoq.hit_ratio:.3f} vs lru {lru.hit_ratio:.3f} at "
        f"{twoq.flash_writes} vs {lru.flash_writes} flash writes"
    )
    return table, update_points, scan_points


def check_bufferpool_wins(update_points, scan_points) -> None:
    """Acceptance: the subsystem pays for itself on its two workloads."""
    fractions = sorted({f for f, _p, _w in update_points})
    for fraction in fractions:
        sync = update_points[(fraction, "lru", "sync")]
        back = update_points[(fraction, "lru", "background")]
        assert sync.sync_writebacks > 0, "sync mode never wrote back on eviction"
        assert back.eviction_stall_p99_us < sync.eviction_stall_p99_us, (
            f"buffer={sync.buffer_pages}: background p99 stall "
            f"{back.eviction_stall_p99_us:.1f}us not below sync's "
            f"{sync.eviction_stall_p99_us:.1f}us"
        )
        assert back.clean_reclaims > back.sync_writebacks, (
            f"buffer={sync.buffer_pages}: background mode still evicted "
            "synchronously more often than it reclaimed clean frames"
        )
        lru = scan_points[(fraction, "lru")]
        twoq = scan_points[(fraction, "2q")]
        assert twoq.hit_ratio > lru.hit_ratio, (
            f"buffer={lru.buffer_pages}: 2q hit ratio {twoq.hit_ratio:.3f} "
            f"not above lru's {lru.hit_ratio:.3f} on the scan mix"
        )
        assert twoq.flash_writes <= lru.flash_writes, (
            f"buffer={lru.buffer_pages}: 2q cost {twoq.flash_writes} flash "
            f"writes vs lru's {lru.flash_writes}"
        )


def test_bufferpool_sweep(benchmark):
    table, update_points, scan_points = benchmark.pedantic(
        lambda: run_bufferpool_bench(tiny=True),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(table.render())
    table.save()
    check_bufferpool_wins(update_points, scan_points)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="seconds-long smoke run (CI): one buffer size, 512-page db",
    )
    args = parser.parse_args(argv)
    table, update_points, scan_points = run_bufferpool_bench(tiny=args.tiny)
    print(table.render())
    print(f"saved: {table.save()}")
    check_bufferpool_wins(update_points, scan_points)
    print("buffer-pool check: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
