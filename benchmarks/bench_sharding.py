"""Shard-scaling benchmark: per-op I/O time at 1/2/4/8 shards.

Runs the paper's uniform synthetic update workload over a sharded PDL
array at increasing shard counts and reports, per shard count:

* **serial** per-op time — total device busy time, the single-chip
  metric (roughly flat: sharding does not reduce work);
* **parallel** per-op time — the busiest chip's busy time, i.e. elapsed
  time with the chips serving concurrently (should fall ~linearly);
* the implied parallel speedup and the number of shards whose GC did
  work inside the window (reclamation spreads across the array).

Runs standalone for CI smoke checks::

    python benchmarks/bench_sharding.py --tiny

or under pytest-benchmark like the other experiments::

    REPRO_BENCH_SCALE=smoke python -m pytest benchmarks/bench_sharding.py -q
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.reporting import ResultTable  # noqa: E402
from repro.workloads.runner import (  # noqa: E402
    RunnerConfig,
    ShardScalingPoint,
    measure_sharded_updates,
)

SHARD_COUNTS = (1, 2, 4, 8)
BASE_METHOD = "PDL (256B)"

#: Measured single-shard host wall-clock per op *before* the zero-copy
#: flash hot path landed (memoryview program/read paths, vectorized
#: NAND legality check, single-struct spare codec) — same host, same
#: full-scale RunnerConfig.  The note below holds each fresh run
#: against this baseline so the hot path's win stays a recorded,
#: re-checkable number instead of a commit-message claim.
PRE_ZERO_COPY_WALL_US = 161.0


def run_shard_scaling(runner, shard_counts=SHARD_COUNTS, base=BASE_METHOD):
    """Measure every shard count; returns (table, points by shard count)."""
    table = ResultTable(
        experiment="sharding_scaling",
        title=f"Shard scaling: {base} on the uniform synthetic workload",
        columns=(
            "shards",
            "serial_us_per_op",
            "parallel_us_per_op",
            "speedup",
            "wall_us_per_op",
            "gc_us_per_op",
            "erases",
            "gc_shards",
        ),
    )
    points = {}
    for n in shard_counts:
        # n == 1 uses the "x1" facade on purpose: its point doubles as the
        # facade-overhead baseline (identical flash traffic to the bare
        # driver, any difference would be facade cost).
        point: ShardScalingPoint = measure_sharded_updates(f"{base} x{n}", runner)
        points[n] = point
        table.add_row(
            n,
            point.serial_us_per_op,
            point.parallel_us_per_op,
            point.parallel_speedup,
            point.wall_us_per_op,
            point.gc_us_per_op,
            point.erases,
            point.gc_parallelism,
        )
    one = points[shard_counts[0]]
    best = points[shard_counts[-1]]
    table.note(
        f"parallel per-op time {one.parallel_us_per_op:.0f} -> "
        f"{best.parallel_us_per_op:.0f} us from {shard_counts[0]} to "
        f"{shard_counts[-1]} shards (speedup x{best.parallel_speedup:.2f})"
    )
    if shard_counts[0] == 1 and one.wall_us_per_op:
        table.note(
            f"single-shard host wall-clock {one.wall_us_per_op:.0f} us/op "
            f"vs {PRE_ZERO_COPY_WALL_US:.0f} us/op before the zero-copy "
            f"hot path (x{PRE_ZERO_COPY_WALL_US / one.wall_us_per_op:.2f})"
        )
    return table, points


def check_scaling(points):
    """The acceptance shape: more shards => lower parallel per-op time
    and broader GC coverage, without inflating total device work."""
    assert points[4].parallel_us_per_op < points[1].parallel_us_per_op, (
        "4 shards must beat 1 shard on parallel per-op time"
    )
    assert points[4].parallel_speedup > 2.0, (
        f"4-shard speedup x{points[4].parallel_speedup:.2f} is below x2"
    )
    # GC work spreads across the array once every shard sees churn.
    assert points[4].gc_parallelism >= 2
    # Sharding must not balloon total device work (allow 30% slack for
    # per-shard buffer fragmentation).
    assert points[4].serial_us_per_op < points[1].serial_us_per_op * 1.3


def test_sharding_scaling(benchmark, scale):
    runner = scale.sweep_runner()
    table, points = benchmark.pedantic(
        lambda: run_shard_scaling(runner), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(table.render())
    table.save()
    check_scaling(points)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="seconds-long smoke run (CI): 256-page database, short window",
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=list(SHARD_COUNTS),
        help="shard counts to sweep (default: 1 2 4 8)",
    )
    args = parser.parse_args(argv)
    if args.tiny:
        runner = RunnerConfig(database_pages=256, measure_ops=150)
    else:
        runner = RunnerConfig(database_pages=1024, measure_ops=400)
    table, points = run_shard_scaling(runner, tuple(args.shards))
    print(table.render())
    print(f"saved: {table.save()}")
    if set((1, 4)).issubset(points):
        check_scaling(points)
        print("scaling check: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
