"""fsck benchmark: fault-matrix detection/repair rates and scan cost.

The integrity layer's acceptance bar, measured: inject every fault kind
(bit rot, misdirected write, torn spare program) at every page role
(live base, live differential, checkpoint snapshot), run the online
``fsck``, and record per cell whether the damage was *detected* and how
it was *dispositioned*.  Two engineered cells with surviving redundancy
(a byte-identical base copy; an obsolete predecessor differential page)
check that fsck *repairs* when repair is possible instead of declaring
loss.  A final clean sweep over a larger chip prices the scan itself —
reads per page and simulated seconds per GB.

Hard gates (``check_fsck``): detection rate 1.0 across the matrix,
repair rate 1.0 over the repairable cells, a clean post-repair re-scan
in every cell, and checkpoint damage left untouched for the snapshot
protocol to self-heal.

Runs standalone for CI smoke checks::

    python benchmarks/bench_fsck.py --tiny

or under pytest-benchmark like the other experiments::

    REPRO_BENCH_SCALE=smoke python -m pytest benchmarks/bench_fsck.py -q
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.reporting import ResultTable  # noqa: E402
from repro.core.fsck import FSCK_PHASE, fsck_driver  # noqa: E402
from repro.core.pdl import PdlDriver  # noqa: E402
from repro.ext.checkpoint import CheckpointManager  # noqa: E402
from repro.flash.backend import FaultInjector, MemoryBackend  # noqa: E402
from repro.flash.chip import FlashChip  # noqa: E402
from repro.flash.spare import PageType, SpareArea  # noqa: E402
from repro.flash.spec import FlashSpec  # noqa: E402

#: Matrix chip: small on purpose — every cell rebuilds the device from
#: scratch so injections never interact.
MATRIX_SPEC = FlashSpec(
    n_blocks=16, pages_per_block=8, page_data_size=256, page_spare_size=32
)
#: Scan-cost chip: big enough that the per-GB extrapolation is not
#: dominated by the checkpoint region and the erased tail.
SCAN_SPEC_FULL = FlashSpec(n_blocks=192, pages_per_block=64)
SCAN_SPEC_TINY = FlashSpec(n_blocks=48, pages_per_block=32)

FAULTS = ("bit_rot", "misdirected_write", "torn_spare")
ROLES = ("base", "differential", "checkpoint")
SEED = 3
VICTIM_PID = 6
N_PIDS = 10


def _patched(data, offset, patch):
    image = bytearray(data)
    image[offset : offset + len(patch)] = patch
    return bytes(image)


def _build(spec, n_pids=N_PIDS, seed=SEED):
    """A loaded, flushed, checkpointed device behind a fault injector."""
    injector = FaultInjector(MemoryBackend(spec), seed=seed)
    chip = FlashChip(spec, backend=injector)
    driver = PdlDriver(chip, max_differential_size=64, checkpoint_region_blocks=2)
    manager = CheckpointManager(driver, 2)
    for pid in range(n_pids):
        driver.load_page(pid, bytes([pid % 255 + 1]) * spec.page_data_size)
    driver.end_of_load()
    for pid in range(n_pids):
        driver.write_page(
            pid, _patched(bytes([pid % 255 + 1]) * spec.page_data_size, 5, b"\xbb")
        )
    driver.flush()
    manager.checkpoint()
    return injector, chip, driver, manager


def _target_addr(driver, manager, role, pid=VICTIM_PID):
    if role == "base":
        return driver.ppmt.require(pid).base_addr
    if role == "differential":
        return driver.ppmt.require(pid).diff_addr
    return manager._half_pages(manager._seq)[0]


def _run_cell(spec, fault, role):
    """One matrix cell: build, injure, fsck, re-scan."""
    injector, _chip, driver, manager = _build(spec)
    addr = _target_addr(driver, manager, role)
    injector.inject(fault, addr)
    report = fsck_driver(driver)
    detected = any(f.addr == addr for f in report.faults)
    actions = sorted({f.action for f in report.faults})
    if role == "checkpoint":
        # fsck never touches the checkpoint region; the ping-pong
        # protocol self-heals once both halves have been recycled.
        manager.checkpoint()
        manager.checkpoint()
    rescan_clean = fsck_driver(driver).clean
    return {
        "fault": fault,
        "role": role,
        "detected": detected,
        "actions": actions,
        "repaired": report.repaired,
        "lost": len(report.lost_pids),
        "consistent": report.check is not None and report.check.consistent,
        "rescan_clean": rescan_clean,
    }


def _run_repairable_cells(spec):
    """Cells engineered with surviving redundancy: repair is mandatory."""
    cells = []

    # A byte-identical obsolete copy of the base (GC-crash residue).
    injector, chip, driver, _manager = _build(spec)
    entry = driver.ppmt.require(VICTIM_PID)
    copy_addr = driver.blocks.allocate(stream=driver._base_stream)
    data, _ = chip.read_page(entry.base_addr)
    chip.program_page(
        copy_addr,
        data,
        SpareArea(
            type=PageType.BASE,
            pid=VICTIM_PID,
            timestamp=entry.base_ts,
            obsolete=True,
        ),
    )
    injector.inject("bit_rot", entry.base_addr)
    report = fsck_driver(driver)
    cells.append(
        {
            "cell": "base_with_copy",
            "repaired": report.repaired_base_pages == 1 and not report.lost_pids,
            "serves": driver.read_page(VICTIM_PID)
            == _patched(bytes([VICTIM_PID + 1]) * spec.page_data_size, 5, b"\xbb"),
        }
    )

    # A surviving obsolete predecessor differential page.
    injector, _chip, driver, _manager = _build(spec)
    v1 = _patched(bytes([VICTIM_PID + 1]) * spec.page_data_size, 5, b"\xbb")
    driver.write_page(VICTIM_PID, _patched(v1, 9, b"\xcc"))
    driver.flush()  # the previous differential page goes obsolete, not erased
    injector.inject("bit_rot", driver.ppmt.require(VICTIM_PID).diff_addr)
    report = fsck_driver(driver)
    cells.append(
        {
            "cell": "differential_with_chain",
            "repaired": report.repaired_differentials == 1 and not report.lost_pids,
            "serves": driver.read_page(VICTIM_PID) == v1,  # one version back
        }
    )
    return cells


def _run_scan_cost(scan_spec):
    """Price a clean full-device sweep on a half-full larger chip."""
    _injector, chip, driver, _manager = _build(
        scan_spec, n_pids=scan_spec.n_pages // 4
    )
    snap = chip.stats.snapshot()
    report = fsck_driver(driver, repair=False)
    delta = chip.stats.delta_since(snap).of_phase(FSCK_PHASE)
    per_gb_s = delta.time_us / scan_spec.data_capacity * (1 << 30) / 1e6
    return {
        "pages": report.pages_scanned,
        "reads": report.scan_reads,
        "reads_per_page": report.scan_reads / report.pages_scanned,
        "simulated_us": delta.time_us,
        "per_gb_s": per_gb_s,
        "clean": report.clean,
    }


def run_fsck_bench(scan_spec):
    table = ResultTable(
        experiment="fsck",
        title="fsck: fault-matrix detection/repair and scan cost",
        columns=("fault", "role", "detected", "actions", "rescan_clean"),
    )
    cells = [
        _run_cell(MATRIX_SPEC, fault, role) for fault in FAULTS for role in ROLES
    ]
    for cell in cells:
        table.add_row(
            cell["fault"],
            cell["role"],
            int(cell["detected"]),
            "+".join(cell["actions"]),
            int(cell["rescan_clean"]),
        )
    repairable = _run_repairable_cells(MATRIX_SPEC)
    for cell in repairable:
        table.add_row(
            "bit_rot",
            cell["cell"],
            1,
            "repaired" if cell["repaired"] and cell["serves"] else "FAILED",
            1,
        )
    scan = _run_scan_cost(scan_spec)
    detection_rate = sum(c["detected"] for c in cells) / len(cells)
    repair_rate = sum(
        c["repaired"] and c["serves"] for c in repairable
    ) / len(repairable)
    table.note(f"detection rate {detection_rate:.2f} over {len(cells)} cells")
    table.note(f"repair rate {repair_rate:.2f} over engineered repairable cells")
    table.note(
        f"scan: {scan['reads_per_page']:.2f} reads/page, "
        f"{scan['per_gb_s']:.1f} simulated s/GB on a half-full chip"
    )
    return table, cells, repairable, scan


def check_fsck(cells, repairable, scan):
    """Acceptance: 100% detection, repair wherever redundancy survives,
    a clean re-scan everywhere, and an untouched checkpoint region."""
    undetected = [c for c in cells if not c["detected"]]
    assert not undetected, f"undetected cells: {undetected}"
    for cell in cells:
        assert cell["consistent"], f"inconsistent after repair: {cell}"
        assert cell["rescan_clean"], f"re-scan not clean: {cell}"
        if cell["role"] == "checkpoint":
            assert cell["actions"] == ["reported"], (
                f"checkpoint damage must only be reported: {cell}"
            )
    for cell in repairable:
        assert cell["repaired"] and cell["serves"], f"repair failed: {cell}"
    assert scan["clean"]
    # One spare read per page plus data reads for the programmed subset:
    # the sweep must stay linear, not quadratic.
    assert scan["reads_per_page"] < 3.0, scan


def test_fsck_matrix(benchmark):
    table, cells, repairable, scan = benchmark.pedantic(
        lambda: run_fsck_bench(SCAN_SPEC_TINY),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(table.render())
    table.save()
    check_fsck(cells, repairable, scan)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="seconds-long smoke run (CI): 48-block scan chip",
    )
    args = parser.parse_args(argv)
    scan_spec = SCAN_SPEC_TINY if args.tiny else SCAN_SPEC_FULL
    table, cells, repairable, scan = run_fsck_bench(scan_spec)
    print(table.render())
    print(f"saved: {table.save()}")
    check_fsck(cells, repairable, scan)
    print("fsck matrix check: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
