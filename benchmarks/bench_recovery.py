"""Recovery-cost benchmark: the Figure-11 scan vs checkpointed restart.

The paper estimates the full recovery scan at ~60 s per GB (one spare
read per physical page).  This benchmark measures the simulated scan
cost on the bench chip, checks it extrapolates to the paper's estimate,
and quantifies the speedup of the clean-shutdown checkpoint extension.
"""

import random

from repro.bench.reporting import ResultTable
from repro.core.pdl import PdlDriver
from repro.core.recovery import RECOVERY_PHASE, recover_driver
from repro.ext.checkpoint import CHECKPOINT_PHASE, CheckpointManager
from repro.flash.chip import FlashChip
from repro.flash.spec import spec_for_database

REGION = 2


def _build(scale):
    spec = spec_for_database(scale.database_pages, utilization=0.25)
    chip = FlashChip(spec)
    driver = PdlDriver(
        chip, max_differential_size=256, checkpoint_region_blocks=REGION
    )
    rng = random.Random(9)
    for pid in range(scale.database_pages):
        driver.load_page(pid, rng.randbytes(driver.page_size))
    for _ in range(scale.database_pages // 2):
        pid = rng.randrange(scale.database_pages)
        image = bytearray(driver.read_page(pid))
        image[0:8] = rng.randbytes(8)
        driver.write_page(pid, bytes(image))
    driver.flush()
    return chip, driver


def test_recovery_scan_vs_checkpoint(benchmark, scale):
    chip, driver = _build(scale)
    manager = CheckpointManager(driver, REGION)
    manager.checkpoint()

    def run():
        table = ResultTable(
            experiment="recovery_cost",
            title="Recovery: full Figure-11 scan vs checkpointed restart",
            columns=("path", "simulated_us", "flash_reads"),
        )
        # full scan (ignore the checkpoint deliberately)
        snap = chip.stats.snapshot()
        recover_driver(chip, max_differential_size=256)
        scan = chip.stats.delta_since(snap)
        scan_us = scan.of_phase(RECOVERY_PHASE).time_us
        table.add_row("full_scan", scan_us, scan.of_phase(RECOVERY_PHASE).reads)
        # fast restart from the checkpoint
        snap = chip.stats.snapshot()
        _drv, _mgr, report = CheckpointManager.restart(
            chip, REGION, max_differential_size=256
        )
        fast = chip.stats.delta_since(snap)
        fast_us = fast.of_phase(CHECKPOINT_PHASE).time_us
        table.add_row("checkpoint", fast_us, report.pages_read)
        assert report.fast_path
        per_gb = scan_us / chip.spec.data_capacity * (1 << 30) / 1e6
        table.note(f"full scan extrapolates to {per_gb:.1f} s per GB "
                   "(paper estimates ~60 s per GB)")
        return table, scan_us, fast_us, per_gb

    table, scan_us, fast_us, per_gb = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(table.render())
    table.save()
    # the checkpoint path must be at least an order of magnitude cheaper
    assert fast_us * 10 < scan_us
    # the scan cost extrapolation lands in the paper's ballpark (the scan
    # is one Tread per page plus differential-page data reads)
    assert 40.0 <= per_gb <= 120.0
