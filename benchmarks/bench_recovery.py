"""Recovery-cost benchmark: scan vs snapshot+journal vs clean checkpoint.

The paper estimates the full Figure-11 recovery scan at ~60 s per GB
(one spare read per physical page), which is why restart cost grows
with *device size*.  The demand-paged mapping tier replaces that with a
periodic snapshot plus an incremental journal, so restart cost grows
with the *dirty volume* since the last snapshot instead.  This
benchmark quantifies all three restart paths and emits
``bench_results/recovery.json``:

1. **device-size sweep** — a fixed post-snapshot dirty tail on devices
   of growing capacity: the scan cost grows with the device while the
   snapshot+journal restart stays near-flat;
2. **dirty-volume sweep** — a fixed device with growing dirty tails:
   the journal restart is the path whose cost tracks the tail;
3. **10x-RAM evidence** — the largest device runs with a mapping cache
   budgeted at under a tenth of its page count, and the cache occupancy
   stays bounded for the whole workload;
4. the legacy **clean-checkpoint** comparison (``recovery_cost.json``)
   is kept for non-mapping drivers.

Run standalone for CI (``python benchmarks/bench_recovery.py --tiny``)
or under pytest-benchmark like every other benchmark in this directory.
"""

import copy
import random
import sys
from pathlib import Path

if __name__ == "__main__":  # standalone CI mode: pytest uses conftest's shim
    _src = Path(__file__).resolve().parent.parent / "src"
    if str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.bench.reporting import ResultTable
from repro.core.mapping import MappingConfig
from repro.core.pdl import PdlDriver
from repro.core.recovery import RECOVERY_PHASE, recover_driver
from repro.ext.checkpoint import CHECKPOINT_PHASE, CheckpointManager
from repro.ext.journal import restart_driver
from repro.flash.chip import FlashChip
from repro.flash.spec import spec_for_database

REGION = 2

#: Snapshot cadence (journal records) used by every mapping cell here —
#: comfortably above the largest dirty tail the sweeps apply (an update
#: journals ~2 records), so the tail under measurement never triggers a
#: mid-sweep snapshot that would reset the journal.
SNAPSHOT_INTERVAL = 384


def _build(scale):
    spec = spec_for_database(scale.database_pages, utilization=0.25)
    chip = FlashChip(spec)
    driver = PdlDriver(
        chip, max_differential_size=256, checkpoint_region_blocks=REGION
    )
    rng = random.Random(9)
    for pid in range(scale.database_pages):
        driver.load_page(pid, rng.randbytes(driver.page_size))
    for _ in range(scale.database_pages // 2):
        pid = rng.randrange(scale.database_pages)
        image = bytearray(driver.read_page(pid))
        image[0:8] = rng.randbytes(8)
        driver.write_page(pid, bytes(image))
    driver.flush()
    return chip, driver


def _build_mapping(n_pages, cache_entries, dirty_writes, seed=9):
    """A mapping-tier device with a known post-snapshot dirty tail.

    Loads ``n_pages``, forces a snapshot (the clean baseline), then
    applies exactly ``dirty_writes`` updates so the journal tail — the
    O(dirty) part a restart must replay — is controlled by the caller.
    Returns ``(chip, driver, max_cache_occupancy_pages)``.
    """
    spec = spec_for_database(n_pages, utilization=0.25)
    cfg = MappingConfig.auto(
        spec, cache_entries=cache_entries, snapshot_interval=SNAPSHOT_INTERVAL
    )
    chip = FlashChip(spec)
    driver = PdlDriver(chip, max_differential_size=256, mapping=cfg)
    rng = random.Random(seed)
    for pid in range(n_pages):
        driver.load_page(pid, rng.randbytes(driver.page_size))
    driver.end_of_load()
    driver.mapping.snapshot()  # clean baseline: restart == tail replay
    max_occupancy = driver.ppmt.cached_pages
    for _ in range(dirty_writes):
        pid = rng.randrange(n_pages)
        image = bytearray(driver.read_page(pid))
        image[0:8] = rng.randbytes(8)
        driver.write_page(pid, bytes(image))
        max_occupancy = max(max_occupancy, driver.ppmt.cached_pages)
    driver.flush()
    max_occupancy = max(max_occupancy, driver.ppmt.cached_pages)
    return chip, driver, max_occupancy


def _measure_restart(chip, cfg_kwargs):
    """Snapshot+journal restart cost on a private copy of ``chip``."""
    replica = copy.deepcopy(chip)
    snap = replica.stats.snapshot()
    driver, report = restart_driver(replica, **cfg_kwargs)
    delta = replica.stats.delta_since(snap)
    return driver, report, delta.totals().time_us, delta.totals().reads


def _measure_scan(chip, cfg_kwargs):
    """Full Figure-11 scan cost on a private copy of ``chip``.

    ``recover_driver`` without ``mapping`` ignores the mapping region's
    CHECKPOINT-typed pages, so it measures exactly the paper's scan.
    """
    replica = copy.deepcopy(chip)
    snap = replica.stats.snapshot()
    _driver, report = recover_driver(replica, **cfg_kwargs)
    delta = replica.stats.delta_since(snap)
    return report, delta.totals().time_us, delta.totals().reads


def recovery_experiment(tiny=False, database_pages=None):
    """The full scan/snapshot+journal comparison; returns a ResultTable.

    ``tiny`` shrinks the sweep for the CI smoke job; ``database_pages``
    overrides the base device size (defaults follow the bench scale).
    """
    base = database_pages or (128 if tiny else 256)
    sizes = [base, base * 2, base * 4]
    dirty = 24 if tiny else 48
    table = ResultTable(
        experiment="recovery",
        title=(
            "Restart cost: Figure-11 scan vs snapshot+journal "
            f"(fixed dirty tail of {dirty} updates)"
        ),
        columns=(
            "sweep",
            "device_pages",
            "dirty_writes",
            "path",
            "simulated_us",
            "flash_reads",
            "journal_records",
            "tail_pages",
        ),
    )

    scan_us_by_size, fast_us_by_size = [], []
    largest = None
    for n_pages in sizes:
        cache_entries = max(8, n_pages // 16)
        chip, driver, occupancy = _build_mapping(n_pages, cache_entries, dirty)
        scan_report, scan_us, scan_reads = _measure_scan(
            chip, dict(max_differential_size=256)
        )
        fast_driver, report, fast_us, fast_reads = _measure_restart(
            chip, dict(max_differential_size=256, mapping=driver.mapping.config)
        )
        assert report.fast_path and not report.fallback, (
            f"device={n_pages}: restart fell back to the scan"
        )
        # The restart must converge to the live driver's logical state.
        assert dict(fast_driver.ppmt.items()) == dict(driver.ppmt.items())
        assert dict(fast_driver.vdct.items()) == dict(driver.vdct.items())
        table.add_row("device", n_pages, dirty, "full_scan", scan_us,
                      scan_reads, 0, 0)
        table.add_row("device", n_pages, dirty, "snapshot_journal", fast_us,
                      fast_reads, report.journal_records,
                      report.tail_pages_scanned)
        scan_us_by_size.append(scan_us)
        fast_us_by_size.append(fast_us)
        if n_pages == sizes[-1]:
            largest = (chip, driver, occupancy, cache_entries, scan_report)
        else:
            chip.close()

    # Dirty-volume sweep at the base device size: the journal restart is
    # the path whose cost tracks the tail, not the device.
    fast_by_dirty = []
    for tail in (dirty // 4, dirty // 2, dirty):
        chip, driver, _occ = _build_mapping(base, max(8, base // 16), tail)
        _drv, report, fast_us, fast_reads = _measure_restart(
            chip, dict(max_differential_size=256, mapping=driver.mapping.config)
        )
        assert report.fast_path
        table.add_row("dirty", base, tail, "snapshot_journal", fast_us,
                      fast_reads, report.journal_records,
                      report.tail_pages_scanned)
        fast_by_dirty.append((tail, report.journal_records, fast_us))
        chip.close()

    chip, driver, occupancy, cache_entries, scan_report = largest
    ram_ratio = sizes[-1] / cache_entries
    table.note(
        f"largest device maps {sizes[-1]} pages through a "
        f"{cache_entries}-entry cache ({ram_ratio:.0f}x the mapping RAM); "
        f"cache occupancy peaked at {occupancy}/"
        f"{driver.ppmt.cache_capacity_pages} mapping pages"
    )
    table.note(
        f"scan cost grew {scan_us_by_size[-1] / scan_us_by_size[0]:.1f}x "
        f"across a {sizes[-1] // sizes[0]}x device sweep; snapshot+journal "
        f"restart grew {fast_us_by_size[-1] / fast_us_by_size[0]:.1f}x"
    )
    table.note(
        f"fallback scan batches differential data reads: "
        f"{scan_report.diff_pages_read} pages in "
        f"{scan_report.diff_read_batches} read_pages calls"
    )
    for tail, records, fast_us in fast_by_dirty:
        table.note(
            f"dirty tail {tail} updates -> {records} journal records, "
            f"restart {fast_us:.0f} us"
        )

    # O(dirty), not O(device): across a 4x device sweep with the tail
    # held fixed, the journal restart grows far slower than the scan.
    scan_growth = scan_us_by_size[-1] / scan_us_by_size[0]
    fast_growth = fast_us_by_size[-1] / fast_us_by_size[0]
    assert scan_growth > 2.0, (scan_us_by_size, "scan should track device size")
    assert fast_growth < scan_growth / 2.0, (
        fast_us_by_size,
        "snapshot+journal restart should not track device size",
    )
    assert fast_us_by_size[-1] * 3 < scan_us_by_size[-1]
    # ...and with the device held fixed, the replayed volume tracks the
    # dirty tail monotonically.
    assert fast_by_dirty[0][1] < fast_by_dirty[-1][1], fast_by_dirty
    # 10x-RAM acceptance: the largest device serves >=10x its mapping
    # RAM and the cache never exceeds its budget.
    assert ram_ratio >= 10.0
    assert occupancy <= driver.ppmt.cache_capacity_pages
    assert chip.stats.mapping_misses > 0, "cache never faulted: not demand-paged"
    chip.close()
    return table


def test_recovery_scan_vs_checkpoint(benchmark, scale):
    chip, driver = _build(scale)
    manager = CheckpointManager(driver, REGION)
    manager.checkpoint()

    def run():
        table = ResultTable(
            experiment="recovery_cost",
            title="Recovery: full Figure-11 scan vs checkpointed restart",
            columns=("path", "simulated_us", "flash_reads"),
        )
        # full scan (ignore the checkpoint deliberately)
        snap = chip.stats.snapshot()
        recover_driver(chip, max_differential_size=256)
        scan = chip.stats.delta_since(snap)
        scan_us = scan.of_phase(RECOVERY_PHASE).time_us
        table.add_row("full_scan", scan_us, scan.of_phase(RECOVERY_PHASE).reads)
        # fast restart from the checkpoint
        snap = chip.stats.snapshot()
        _drv, _mgr, report = CheckpointManager.restart(
            chip, REGION, max_differential_size=256
        )
        fast = chip.stats.delta_since(snap)
        fast_us = fast.of_phase(CHECKPOINT_PHASE).time_us
        table.add_row("checkpoint", fast_us, report.pages_read)
        assert report.fast_path
        per_gb = scan_us / chip.spec.data_capacity * (1 << 30) / 1e6
        table.note(f"full scan extrapolates to {per_gb:.1f} s per GB "
                   "(paper estimates ~60 s per GB)")
        return table, scan_us, fast_us, per_gb

    table, scan_us, fast_us, per_gb = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(table.render())
    table.save()
    # the checkpoint path must be at least an order of magnitude cheaper
    assert fast_us * 10 < scan_us
    # the scan cost extrapolation lands in the paper's ballpark (the scan
    # is one Tread per page plus differential-page data reads)
    assert 40.0 <= per_gb <= 120.0


def test_recovery_snapshot_journal(run_experiment, scale):
    run_experiment(recovery_experiment, tiny=scale.database_pages <= 256)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke sweep (smaller devices)")
    parser.add_argument("--pages", type=int, default=None,
                        help="base device size in pages")
    args = parser.parse_args(argv)
    table = recovery_experiment(tiny=args.tiny, database_pages=args.pages)
    print(table.render())
    path = table.save()
    print(f"saved: {path}")


if __name__ == "__main__":
    main()
