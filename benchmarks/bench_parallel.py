"""Parallel-shard benchmark: measured wall-clock vs the simulated model.

PR 1 made shard parallelism a *model*: the array's parallel time is the
busiest chip's share of the simulated clock.  The
:class:`~repro.sharding.executor.ParallelShardedDriver` makes it real —
one single-writer worker thread per shard — and this benchmark measures
how real it is, by running the same batched update workload through the
same shard drivers twice:

* **serial** — the plain ``ShardedDriver``, shards visited one after
  another on the caller's thread;
* **threaded** — the ``par`` driver, buffer-pool flush batches and
  group flushes fanned out across the worker pool.

Each configuration reports measured wall seconds for both, their ratio
(``wall_speedup``) and the simulated model's prediction
(``sim_speedup`` = serial / busiest-chip clock) side by side.

Two wait regimes make the GIL caveat explicit (see
``docs/concurrency.md``):

* ``waits=none`` — the chips never block; all that remains is pure
  Python, which the GIL serializes, so threading buys ~nothing.  This
  row is the honest baseline, not a failure.
* ``waits=emulated`` — chips sleep ``realtime_scale ×`` their Table-1
  latencies (``FlashChip(realtime_scale=...)``), so worker threads
  *wait* the way they would on real hardware and on the file backend's
  fsync/IO stalls — and waits overlap across shards.  Speedup then
  approaches the simulated model's prediction.

The ``recovery`` stage times the Figure-11 scan over the file images:
``recover_all(parallel=False)`` vs ``parallel=True``, the measured
version of the paper's "1/N of ~60 s/GB" claim.

Results land in ``bench_results/parallel.json``.  Runs standalone for
CI smoke checks::

    python benchmarks/bench_parallel.py --tiny

or under pytest-benchmark like the other experiments::

    python -m pytest benchmarks/bench_parallel.py -q
"""

import os
import random
import shutil
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.reporting import ResultTable  # noqa: E402
from repro.flash.backend import FileBackend  # noqa: E402
from repro.flash.chip import FlashChip  # noqa: E402
from repro.flash.spec import FlashSpec  # noqa: E402
from repro.methods import make_method  # noqa: E402
from repro.sharding.recovery import recover_all  # noqa: E402

SPEC = FlashSpec(
    n_blocks=32, pages_per_block=32, page_data_size=256, page_spare_size=16
)

#: Fraction of each shard chip holding database pages.
FILL = 0.5

#: Buffer-pool flush batch: pages reflected per ``write_pages`` call.
BATCH = 64

SEED = 20100130

FULL_UPDATES = 2000
TINY_UPDATES = 600

#: Wall-clock fraction of Table-1 latencies the chips actually wait in
#: the ``emulated`` regime (0.25 => Twrite costs ~253 host-us).
FULL_SCALE = 0.25
TINY_SCALE = 0.1

FULL_SHARDS = (1, 2, 4, 8)
TINY_SHARDS = (1, 4)


def _build_driver(n_shards, backend, parallel, scale, tmpdir):
    chips = []
    for i in range(n_shards):
        file_backend = None
        if backend == "file":
            file_backend = FileBackend.create(
                os.path.join(tmpdir, f"shard-{i:04d}.flash"), SPEC
            )
        chips.append(FlashChip(SPEC, backend=file_backend, realtime_scale=scale))
    label = f"PDL (256B) x{n_shards}" + (" par" if parallel else "")
    return make_method(label, chips)


def _run_updates(driver, n_updates):
    """The batched buffer-pool-flush workload; returns measured seconds.

    One client thread: all wall-clock parallelism observed here comes
    from ``write_pages``/``group_flush`` fanning out across workers,
    i.e. the shape a DBMS buffer pool above the array produces.  The
    shard drivers verify nothing — correctness under threading is the
    stress test's job (``tests/integration/test_parallel_stress.py``).
    """
    rng = random.Random(SEED)
    page = SPEC.page_data_size
    n_pages = int(SPEC.n_pages * driver.n_shards * FILL)
    model = {pid: rng.randbytes(page) for pid in range(n_pages)}
    driver.load_pages(model.items())
    driver.end_of_load()
    clocks_before = driver.chip_clocks()
    start = time.perf_counter()
    batch = {}
    for _ in range(n_updates):
        pid = rng.randrange(n_pages)
        # The page image lives in the DBMS buffer pool above the array;
        # only the reflection (write_pages) reaches flash.
        image = bytearray(model[pid])
        offset = rng.randrange(page - 24)
        image[offset : offset + 24] = rng.randbytes(24)
        model[pid] = bytes(image)
        batch[pid] = model[pid]
        if len(batch) >= BATCH:
            driver.write_pages(list(batch.items()))
            driver.group_flush()
            batch.clear()
    if batch:
        driver.write_pages(list(batch.items()))
        driver.group_flush()
    wall_s = time.perf_counter() - start
    deltas = [
        after - before
        for after, before in zip(driver.chip_clocks(), clocks_before)
    ]
    sim_speedup = sum(deltas) / max(deltas) if max(deltas) else 1.0
    return wall_s, sim_speedup


def _measure_updates(backend, n_shards, scale, n_updates, tmpdir):
    """Same workload serially and threaded; returns the metrics row."""
    results = {}
    for parallel in (False, True):
        run_dir = os.path.join(
            tmpdir, f"{backend}-{n_shards}-{scale}-{int(parallel)}"
        )
        os.makedirs(run_dir, exist_ok=True)
        driver = _build_driver(n_shards, backend, parallel, scale, run_dir)
        wall_s, sim_speedup = _run_updates(driver, n_updates)
        driver.close()
        results[parallel] = (wall_s, sim_speedup)
    serial_s, sim_speedup = results[False]
    threaded_s, _ = results[True]
    return {
        "serial_s": serial_s,
        "threaded_s": threaded_s,
        "wall_speedup": serial_s / threaded_s if threaded_s else 1.0,
        "sim_speedup": sim_speedup,
    }


def _measure_recovery(n_shards, scale, n_updates, tmpdir):
    """Figure-11 scan over file images: serial vs parallel recover_all."""
    run_dir = os.path.join(tmpdir, f"recovery-{n_shards}")
    os.makedirs(run_dir, exist_ok=True)
    driver = _build_driver(n_shards, "file", False, scale, run_dir)
    _run_updates(driver, n_updates)
    driver.close()

    timings = {}
    sim_speedup = 1.0
    for parallel in (False, True):
        chips = [
            FlashChip(
                SPEC,
                backend=FileBackend.open(
                    os.path.join(run_dir, f"shard-{i:04d}.flash"), SPEC
                ),
                realtime_scale=scale,
            )
            for i in range(n_shards)
        ]
        start = time.perf_counter()
        recovered, _reports = recover_all(chips, parallel=parallel)
        timings[parallel] = time.perf_counter() - start
        deltas = [chip.clock_us for chip in chips]
        if parallel:
            sim_speedup = sum(deltas) / max(deltas) if max(deltas) else 1.0
        recovered.close()
    return {
        "serial_s": timings[False],
        "threaded_s": timings[True],
        "wall_speedup": timings[False] / timings[True] if timings[True] else 1.0,
        "sim_speedup": sim_speedup,
    }


def run_parallel_bench(shard_counts, n_updates, scale):
    table = ResultTable(
        experiment="parallel",
        title="Thread-parallel shards: measured wall-clock vs simulated model",
        columns=(
            "stage",
            "backend",
            "waits",
            "shards",
            "serial_s",
            "threaded_s",
            "wall_speedup",
            "sim_speedup",
        ),
    )
    results = {}
    tmpdir = tempfile.mkdtemp(prefix="bench-parallel-")
    try:
        for backend in ("memory", "file"):
            for n in shard_counts:
                row = _measure_updates(backend, n, scale, n_updates, tmpdir)
                results[("updates", backend, "emulated", n)] = row
                table.add_row(
                    "updates", backend, "emulated", n,
                    row["serial_s"], row["threaded_s"],
                    row["wall_speedup"], row["sim_speedup"],
                )
        # The GIL-caveat rows: no device waits, pure Python — threading
        # cannot help (documented, not a regression).
        gil_shards = max(shard_counts)
        for backend in ("memory", "file"):
            row = _measure_updates(backend, gil_shards, 0.0, n_updates, tmpdir)
            results[("updates", backend, "none", gil_shards)] = row
            table.add_row(
                "updates", backend, "none", gil_shards,
                row["serial_s"], row["threaded_s"],
                row["wall_speedup"], row["sim_speedup"],
            )
        for n in shard_counts:
            if n == 1:
                continue
            row = _measure_recovery(n, scale, n_updates, tmpdir)
            results[("recovery", "file", "emulated", n)] = row
            table.add_row(
                "recovery", "file", "emulated", n,
                row["serial_s"], row["threaded_s"],
                row["wall_speedup"], row["sim_speedup"],
            )
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    best = max(shard_counts)
    file_row = results[("updates", "file", "emulated", best)]
    gil_row = results[("updates", "memory", "none", best)]
    table.note(
        f"file backend @ {best} shards: measured x{file_row['wall_speedup']:.2f} "
        f"(simulated model predicts x{file_row['sim_speedup']:.2f}); "
        f"GIL-bound no-wait run measures x{gil_row['wall_speedup']:.2f}"
    )
    return table, results


def check_parallel_wins(results, shard_counts):
    """Acceptance: real wall-clock parallelism on the file backend.

    Timing asserts compare two measured runs on the same host, so they
    are stable; still, they are only enforced at full scale (CI's
    ``--tiny`` run records without judging).
    """
    four = 4 if 4 in shard_counts else max(shard_counts)
    row = results[("updates", "file", "emulated", four)]
    assert row["wall_speedup"] > 1.5, (
        f"file backend @ {four} shards: measured speedup "
        f"x{row['wall_speedup']:.2f} is below x1.5"
    )
    recovery = results[("recovery", "file", "emulated", four)]
    assert recovery["wall_speedup"] > 1.3, (
        f"parallel recovery @ {four} shards: x{recovery['wall_speedup']:.2f} "
        "is below x1.3"
    )
    # The simulated model must remain an upper bound on what threads
    # can deliver (it has no Python, scheduling or join overhead).
    assert row["wall_speedup"] <= row["sim_speedup"] * 1.15


def test_parallel_scaling(benchmark):
    table, results = benchmark.pedantic(
        lambda: run_parallel_bench(TINY_SHARDS, TINY_UPDATES, FULL_SCALE),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(table.render())
    table.save()
    check_parallel_wins(results, TINY_SHARDS)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="seconds-long smoke run (CI): 1/4 shards, short window",
    )
    args = parser.parse_args(argv)
    if args.tiny:
        shard_counts, n_updates, scale = TINY_SHARDS, TINY_UPDATES, TINY_SCALE
    else:
        shard_counts, n_updates, scale = FULL_SHARDS, FULL_UPDATES, FULL_SCALE
    table, results = run_parallel_bench(shard_counts, n_updates, scale)
    print(table.render())
    print(f"saved: {table.save()}")
    if not args.tiny:
        check_parallel_wins(results, shard_counts)
        print("parallel-speedup check: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
