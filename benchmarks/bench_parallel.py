"""Parallel-shard benchmark: measured wall-clock vs the simulated model.

PR 1 made shard parallelism a *model*: the array's parallel time is the
busiest chip's share of the simulated clock.  Two executors make it
real, and this benchmark measures how real, by running the same batched
update workload through identically configured shard drivers three
times:

* **serial** — the plain ``ShardedDriver``, shards visited one after
  another on the caller's thread;
* **mode=thread** — the ``par`` driver
  (:class:`~repro.sharding.executor.ParallelShardedDriver`), one
  single-writer worker thread per shard;
* **mode=process** — the ``proc`` driver
  (:class:`~repro.sharding.executor_proc.ProcessShardedDriver`), one
  spawned worker process per shard with page payloads carried in
  shared-memory frames.

Each row reports measured wall seconds for serial and parallel runs,
their ratio (``wall_speedup``) and the simulated model's prediction
(``sim_speedup`` = serial / busiest-chip clock) side by side.

Two wait regimes separate the GIL question from the device question
(see ``docs/concurrency.md``):

* ``waits=none`` — the chips never block; all that remains is pure
  Python.  The GIL serializes the thread executor here (~x1, the honest
  baseline), while the process executor can use real cores — *when the
  host has them*.  The ``cpu_count`` note records how many this host
  offered, since a 1-CPU runner caps every no-wait mode at ~x1.
* ``waits=emulated`` — chips sleep ``realtime_scale ×`` their Table-1
  latencies (``FlashChip(realtime_scale=...)``), so workers *wait* the
  way they would on real hardware — and waits overlap across shards in
  both modes, approaching the simulated prediction even on one core.

The ``recovery`` stage times the Figure-11 scan over the file images:
``recover_all(parallel=False)`` vs ``"thread"`` vs ``"process"``, the
measured version of the paper's "1/N of ~60 s/GB" claim.  The process
row includes worker spawn (~0.5 s/pool on this class of host): that is
the price a real deployment would pay too.

Results land in ``bench_results/parallel.json``.  Runs standalone for
CI smoke checks::

    python benchmarks/bench_parallel.py --tiny

or under pytest-benchmark like the other experiments::

    python -m pytest benchmarks/bench_parallel.py -q
"""

import os
import random
import shutil
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.reporting import ResultTable  # noqa: E402
from repro.flash.backend import FileBackend  # noqa: E402
from repro.flash.chip import FlashChip  # noqa: E402
from repro.flash.spec import FlashSpec  # noqa: E402
from repro.methods import make_method  # noqa: E402
from repro.sharding.recovery import recover_all  # noqa: E402

SPEC = FlashSpec(
    n_blocks=32, pages_per_block=32, page_data_size=256, page_spare_size=16
)

#: Fraction of each shard chip holding database pages.
FILL = 0.5

#: Buffer-pool flush batch: pages reflected per ``write_pages`` call.
BATCH = 64

SEED = 20100130

FULL_UPDATES = 2000
TINY_UPDATES = 600

#: Wall-clock fraction of Table-1 latencies the chips actually wait in
#: the ``emulated`` regime (0.25 => Twrite costs ~253 host-us).
FULL_SCALE = 0.25
TINY_SCALE = 0.1

FULL_SHARDS = (1, 2, 4, 8)
TINY_SHARDS = (1, 4)

#: Parallel execution modes measured against the serial baseline; the
#: label tokens are what ``make_method`` / ``recover_all`` accept.
MODES = {"thread": " par", "process": " proc"}


def _build_driver(n_shards, backend, mode, scale, tmpdir):
    """``mode`` is None (serial), "thread" or "process"."""
    chips = []
    for i in range(n_shards):
        file_backend = None
        if backend == "file":
            file_backend = FileBackend.create(
                os.path.join(tmpdir, f"shard-{i:04d}.flash"), SPEC
            )
        chips.append(FlashChip(SPEC, backend=file_backend, realtime_scale=scale))
    label = f"PDL (256B) x{n_shards}" + (MODES[mode] if mode else "")
    return make_method(label, chips)


def _run_updates(driver, n_updates):
    """The batched buffer-pool-flush workload; returns measured seconds.

    One client thread: all wall-clock parallelism observed here comes
    from ``write_pages``/``group_flush`` fanning out across workers,
    i.e. the shape a DBMS buffer pool above the array produces.  The
    shard drivers verify nothing — correctness under threading is the
    stress test's job (``tests/integration/test_parallel_stress.py``;
    thread-vs-process equivalence is
    ``tests/sharding/test_process_executor.py``).
    """
    rng = random.Random(SEED)
    page = SPEC.page_data_size
    n_pages = int(SPEC.n_pages * driver.n_shards * FILL)
    model = {pid: rng.randbytes(page) for pid in range(n_pages)}
    driver.load_pages(model.items())
    driver.end_of_load()
    clocks_before = driver.chip_clocks()
    start = time.perf_counter()
    batch = {}
    for _ in range(n_updates):
        pid = rng.randrange(n_pages)
        # The page image lives in the DBMS buffer pool above the array;
        # only the reflection (write_pages) reaches flash.
        image = bytearray(model[pid])
        offset = rng.randrange(page - 24)
        image[offset : offset + 24] = rng.randbytes(24)
        model[pid] = bytes(image)
        batch[pid] = model[pid]
        if len(batch) >= BATCH:
            driver.write_pages(list(batch.items()))
            driver.group_flush()
            batch.clear()
    if batch:
        driver.write_pages(list(batch.items()))
        driver.group_flush()
    wall_s = time.perf_counter() - start
    deltas = [
        after - before
        for after, before in zip(driver.chip_clocks(), clocks_before)
    ]
    sim_speedup = sum(deltas) / max(deltas) if max(deltas) else 1.0
    return wall_s, sim_speedup


def _measure_updates(backend, n_shards, scale, n_updates, tmpdir):
    """Same workload serial, threaded and process-parallel.

    Returns ``{mode: metrics row}`` with the serial baseline repeated in
    every row, so each row is self-contained in the JSON.
    """
    timings = {}
    sim_speedup = 1.0
    for mode in (None, *MODES):
        run_dir = os.path.join(
            tmpdir, f"{backend}-{n_shards}-{scale}-{mode or 'serial'}"
        )
        os.makedirs(run_dir, exist_ok=True)
        driver = _build_driver(n_shards, backend, mode, scale, run_dir)
        wall_s, run_sim = _run_updates(driver, n_updates)
        driver.close()
        timings[mode] = wall_s
        if mode is None:
            sim_speedup = run_sim
    serial_s = timings[None]
    return {
        mode: {
            "serial_s": serial_s,
            "parallel_s": timings[mode],
            "wall_speedup": serial_s / timings[mode] if timings[mode] else 1.0,
            "sim_speedup": sim_speedup,
        }
        for mode in MODES
    }


def _measure_recovery(n_shards, scale, n_updates, tmpdir):
    """Figure-11 scan over file images: serial vs parallel recover_all."""
    run_dir = os.path.join(tmpdir, f"recovery-{n_shards}")
    os.makedirs(run_dir, exist_ok=True)
    driver = _build_driver(n_shards, "file", None, scale, run_dir)
    _run_updates(driver, n_updates)
    driver.close()

    timings = {}
    sim_speedup = 1.0
    for parallel in (False, "thread", "process"):
        chips = [
            FlashChip(
                SPEC,
                backend=FileBackend.open(
                    os.path.join(run_dir, f"shard-{i:04d}.flash"), SPEC
                ),
                realtime_scale=scale,
            )
            for i in range(n_shards)
        ]
        start = time.perf_counter()
        recovered, _reports = recover_all(chips, parallel=parallel)
        timings[parallel] = time.perf_counter() - start
        if parallel == "thread":
            # The process workers' clocks live out of process; the
            # thread run's chips give the same simulated prediction.
            deltas = [chip.clock_us for chip in chips]
            sim_speedup = sum(deltas) / max(deltas) if max(deltas) else 1.0
        recovered.close()
    serial_s = timings[False]
    return {
        mode: {
            "serial_s": serial_s,
            "parallel_s": timings[mode],
            "wall_speedup": serial_s / timings[mode] if timings[mode] else 1.0,
            "sim_speedup": sim_speedup,
        }
        for mode in MODES
    }


def _add_mode_rows(table, results, stage, backend, waits, n, rows):
    for mode, row in rows.items():
        results[(stage, backend, waits, mode, n)] = row
        table.add_row(
            stage, backend, waits, mode, n,
            row["serial_s"], row["parallel_s"],
            row["wall_speedup"], row["sim_speedup"],
        )


def run_parallel_bench(shard_counts, n_updates, scale):
    table = ResultTable(
        experiment="parallel",
        title="Parallel shards: measured wall-clock vs simulated model",
        columns=(
            "stage",
            "backend",
            "waits",
            "mode",
            "shards",
            "serial_s",
            "parallel_s",
            "wall_speedup",
            "sim_speedup",
        ),
    )
    results = {}
    tmpdir = tempfile.mkdtemp(prefix="bench-parallel-")
    try:
        for backend in ("memory", "file"):
            for n in shard_counts:
                rows = _measure_updates(backend, n, scale, n_updates, tmpdir)
                _add_mode_rows(
                    table, results, "updates", backend, "emulated", n, rows
                )
        # The GIL rows: no device waits, pure Python.  Threads cannot
        # help; processes can — if the host has cores to offer.
        gil_shards = max(shard_counts)
        for backend in ("memory", "file"):
            rows = _measure_updates(backend, gil_shards, 0.0, n_updates, tmpdir)
            _add_mode_rows(
                table, results, "updates", backend, "none", gil_shards, rows
            )
        for n in shard_counts:
            if n == 1:
                continue
            rows = _measure_recovery(n, scale, n_updates, tmpdir)
            _add_mode_rows(table, results, "recovery", "file", "emulated", n, rows)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)
    best = max(shard_counts)
    file_row = results[("updates", "file", "emulated", "thread", best)]
    gil_thread = results[("updates", "memory", "none", "thread", best)]
    gil_proc = results[("updates", "memory", "none", "process", best)]
    table.note(f"host cpu_count={os.cpu_count()}")
    table.note(
        f"file backend @ {best} shards (thread): measured "
        f"x{file_row['wall_speedup']:.2f} (simulated model predicts "
        f"x{file_row['sim_speedup']:.2f})"
    )
    table.note(
        f"no-wait @ {best} shards: thread x{gil_thread['wall_speedup']:.2f} "
        f"(GIL-bound), process x{gil_proc['wall_speedup']:.2f} "
        f"(core-bound: capped by cpu_count above)"
    )
    return table, results


def check_parallel_wins(results, shard_counts):
    """Acceptance: real wall-clock parallelism on the file backend.

    Timing asserts compare two measured runs on the same host, so they
    are stable; still, they are only enforced at full scale (CI's
    ``--tiny`` run records without judging).  No-wait *process* speedup
    is additionally gated on the host actually having cores: a 1-CPU
    runner physically cannot run shard workers concurrently, and
    pretending otherwise would just pin the benchmark to lucky
    scheduling.
    """
    four = 4 if 4 in shard_counts else max(shard_counts)
    for mode in MODES:
        row = results[("updates", "file", "emulated", mode, four)]
        assert row["wall_speedup"] > 1.5, (
            f"file backend @ {four} shards ({mode}): measured speedup "
            f"x{row['wall_speedup']:.2f} is below x1.5"
        )
        # The simulated model must remain an upper bound on what workers
        # can deliver (it has no Python, scheduling or IPC overhead).
        assert row["wall_speedup"] <= row["sim_speedup"] * 1.15
    recovery = results[("recovery", "file", "emulated", "thread", four)]
    assert recovery["wall_speedup"] > 1.3, (
        f"parallel recovery @ {four} shards: x{recovery['wall_speedup']:.2f} "
        "is below x1.3"
    )
    cores = os.cpu_count() or 1
    if cores >= 4:
        best = max(shard_counts)
        n_procs = min(best, cores)
        row = results[("updates", "memory", "none", "process", best)]
        assert row["wall_speedup"] > n_procs / 2, (
            f"no-wait process run @ {best} shards on {cores} cores: "
            f"x{row['wall_speedup']:.2f} is below x{n_procs / 2:.1f}"
        )


def test_parallel_scaling(benchmark):
    table, results = benchmark.pedantic(
        lambda: run_parallel_bench(TINY_SHARDS, TINY_UPDATES, FULL_SCALE),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(table.render())
    table.save()
    check_parallel_wins(results, TINY_SHARDS)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="seconds-long smoke run (CI): 1/4 shards, short window",
    )
    args = parser.parse_args(argv)
    if args.tiny:
        shard_counts, n_updates, scale = TINY_SHARDS, TINY_UPDATES, TINY_SCALE
    else:
        shard_counts, n_updates, scale = FULL_SHARDS, FULL_UPDATES, FULL_SCALE
    table, results = run_parallel_bench(shard_counts, n_updates, scale)
    print(table.render())
    print(f"saved: {table.save()}")
    if not args.tiny:
        check_parallel_wins(results, shard_counts)
        print("parallel-speedup check: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
