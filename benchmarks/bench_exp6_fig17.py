"""Experiment 6 / Figure 17: erase operations per update op (longevity).

Paper shapes asserted at N=1: OPU erases most; PDL(256B) and IPL(64KB)
erase least (PDL's fewer writes mean fewer GC erases — the longevity
benefit of the writing-difference-only principle).
"""

from repro.bench.experiments import experiment6

N_POINTS = (1, 4, 8)


def test_experiment6_figure17(run_experiment, scale):
    table = run_experiment(experiment6, scale, n_points=N_POINTS)

    def v(method, n):
        return table.value("erases_per_op", method=method, n_updates=n)

    # N=1 ordering: OPU worst; PDL(256B) and IPL(64KB) at the bottom.
    assert v("OPU", 1) > v("PDL (2KB)", 1)
    assert v("OPU", 1) > v("PDL (256B)", 1)
    assert v("PDL (256B)", 1) <= v("PDL (2KB)", 1)
    # The IPL comparison is stablest at high N, where merge traffic is
    # heavy: the larger log region always merges (and erases) less often.
    assert v("IPL (64KB)", 8) <= v("IPL (18KB)", 8)

    # OPU stays flat in N; PDL(256B) erases more as N grows, because
    # differentials exceed the threshold and whole pages get written again.
    assert abs(v("OPU", 8) - v("OPU", 1)) < 0.5 * v("OPU", 1) + 1e-6
    assert v("PDL (256B)", 8) >= v("PDL (256B)", 1)
