"""Experiment 3 / Figure 14: overall time vs %ChangedByOneU_Op.

Paper shapes asserted: PDL(256B) dominates at small change fractions; at
%changed ≈ 100 PDL becomes page-based — PDL(2KB) then costs slightly
*more* than OPU because of its extra base-page reads; IPL degrades
steeply with large changes (it logs every changed byte).
"""

from repro.bench.experiments import experiment3

PCTS = (0.1, 2.0, 10.0, 100.0)


def test_experiment3_figure14(run_experiment, scale):
    table = run_experiment(
        experiment3, scale, n_updates_points=(1, 5), pct_points=PCTS
    )

    def v(method, n, pct):
        return table.value(
            "overall_us", method=method, n_updates=n, pct_changed=pct
        )

    # Small updates: PDL(256B) beats OPU and IPL outright (N=1).
    assert v("PDL (256B)", 1, 0.1) < 0.6 * v("OPU", 1, 0.1)
    assert v("PDL (256B)", 1, 2.0) < v("IPL (18KB)", 1, 2.0)

    # Full-page updates: PDL(2KB) degenerates to page-based plus extra
    # reads, landing at or slightly above OPU.
    assert v("PDL (2KB)", 1, 100.0) >= v("OPU", 1, 100.0)
    assert v("PDL (2KB)", 1, 100.0) <= 1.4 * v("OPU", 1, 100.0)

    # OPU is flat in %changed (it always writes the whole page).
    opu = [v("OPU", 1, pct) for pct in PCTS]
    assert max(opu) - min(opu) < 0.15 * min(opu)

    # IPL degrades sharply as the update log volume grows.
    assert v("IPL (18KB)", 1, 100.0) > 3 * v("IPL (18KB)", 1, 2.0)

    # The same orderings hold at N_updates_till_write = 5.
    assert v("PDL (256B)", 5, 0.1) < v("OPU", 5, 0.1)
