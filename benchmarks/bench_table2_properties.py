"""Table 2 measured empirically: ops per recreation/reflection, coupling.

Asserts the table's qualitative rows: page-based methods read one page,
PDL at most two, log-based many; PDL reflects with ≈ one page write where
OPU needs two; only IPL is tightly coupled.
"""

from repro.bench.experiments import table2_properties


def test_table2_properties(run_experiment, scale):
    table = run_experiment(table2_properties, scale)

    def reads(method):
        return table.value("reads_per_recreate", method=method)

    def writes(method):
        return table.value("writes_per_reflect", method=method)

    def coupling(method):
        return table.value("coupling", method=method)

    # "number of physical pages to read when recreating a logical page"
    assert reads("OPU") == 1.0
    assert reads("IPU") == 1.0
    assert 1.0 <= reads("PDL (256B)") <= 2.0
    assert 1.0 <= reads("PDL (2KB)") <= 2.0
    assert reads("IPL (64KB)") > 2.0  # multiple pages

    # writes per reflection: PDL below OPU's two
    assert writes("PDL (256B)") < writes("OPU")
    assert writes("IPU") > 10 * writes("OPU")

    # architecture row: only the log-based method is DBMS-dependent
    assert coupling("IPL (18KB)") == "tightly-coupled"
    assert coupling("IPL (64KB)") == "tightly-coupled"
    for method in ("PDL (256B)", "PDL (2KB)", "OPU", "IPU"):
        assert coupling(method) == "loosely-coupled"
