"""Backend benchmark: per-page vs batched chip I/O, memory vs file.

The device-backend refactor added batched entry points
(``program_pages`` / ``read_pages`` / ``read_spares``) whose simulated
Table-1 cost is identical to per-page calls by construction; what they
buy is *host* time — one backend call (and, on the file backend, a few
large sequential transfers) instead of one per page.  This benchmark
measures that directly in host microseconds per page:

* sequential page programs (bulk load / GC relocation shape);
* sequential full-page reads;
* the spare-area scan that dominates Figure-11 recovery.

Reported per backend: the per-page-call rate, the batched rate, and the
ratio (``speedup`` > 1 means batching wins).  The acceptance bar is
that batching beats per-page calls on the file backend, where each
avoided call is a real syscall.

Runs standalone for CI smoke checks::

    python benchmarks/bench_backends.py --tiny

or under pytest-benchmark like the other experiments::

    REPRO_BENCH_SCALE=smoke python -m pytest benchmarks/bench_backends.py -q
"""

import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.reporting import ResultTable  # noqa: E402
from repro.flash.backend import FileBackend, MemoryBackend  # noqa: E402
from repro.flash.chip import FlashChip  # noqa: E402
from repro.flash.spare import PageType, SpareArea  # noqa: E402
from repro.flash.spec import FlashSpec  # noqa: E402

FULL_SPEC = FlashSpec(n_blocks=192, pages_per_block=64)
#: Still seconds-long, but big enough (4K pages) that per-page rates are
#: not dominated by file-creation and first-fault noise.
TINY_SPEC_BENCH = FlashSpec(n_blocks=64, pages_per_block=64)

#: Batch size for batched calls: one allocation block, the natural unit
#: the drivers batch by.
BATCH_PAGES = 64


def _make_chip(backend_kind, spec, tmpdir, tag):
    if backend_kind == "memory":
        return FlashChip(spec, backend=MemoryBackend(spec))
    path = Path(tmpdir) / f"bench-{tag}.flash"
    return FlashChip(spec, backend=FileBackend(path, spec))


def _fill_items(spec, n_pages):
    payload = bytes(range(256)) * (spec.page_data_size // 256)
    return [
        (addr, payload, SpareArea(type=PageType.BASE, pid=addr, timestamp=addr + 1))
        for addr in range(n_pages)
    ]


def _bench_backend(backend_kind, spec, tmpdir):
    """Time the three access shapes; returns {metric: host_us_per_page}."""
    n_pages = spec.n_pages // 2  # half-full chip, like the paper's DB
    items = _fill_items(spec, n_pages)
    out = {}

    # --- programs: per-page vs batched (separate images; NAND forbids
    # reprogramming, and a fresh image keeps the comparison symmetric).
    chip = _make_chip(backend_kind, spec, tmpdir, "single-w")
    start = time.perf_counter()
    for addr, data, spare in items:
        chip.program_page(addr, data, spare)
    out["program_single"] = (time.perf_counter() - start) / n_pages * 1e6

    batched = _make_chip(backend_kind, spec, tmpdir, "batched-w")
    start = time.perf_counter()
    for base in range(0, n_pages, BATCH_PAGES):
        batched.program_pages(items[base : base + BATCH_PAGES])
    out["program_batched"] = (time.perf_counter() - start) / n_pages * 1e6

    # --- full-page reads: per-page vs batched (on the batched image).
    addrs = list(range(n_pages))
    start = time.perf_counter()
    for addr in addrs:
        batched.read_page(addr)
    out["read_single"] = (time.perf_counter() - start) / n_pages * 1e6

    start = time.perf_counter()
    for base in range(0, n_pages, BATCH_PAGES):
        batched.read_pages(addrs[base : base + BATCH_PAGES])
    out["read_batched"] = (time.perf_counter() - start) / n_pages * 1e6

    # --- spare scan (recovery shape): whole chip, erased tail included.
    start = time.perf_counter()
    for addr in range(spec.n_pages):
        batched.read_spare(addr)
    out["scan_single"] = (time.perf_counter() - start) / spec.n_pages * 1e6

    start = time.perf_counter()
    for base in range(0, spec.n_pages, 4096):
        batched.read_spares(range(base, min(base + 4096, spec.n_pages)))
    out["scan_batched"] = (time.perf_counter() - start) / spec.n_pages * 1e6

    chip.close()
    batched.close()
    return out


def run_backend_bench(spec):
    table = ResultTable(
        experiment="backends",
        title="Device backends: host us/page, per-page calls vs batched",
        columns=(
            "backend",
            "metric",
            "single_us",
            "batched_us",
            "speedup",
        ),
    )
    ratios = {}
    with tempfile.TemporaryDirectory(prefix="pdl-bench-") as tmpdir:
        for backend_kind in ("memory", "file"):
            timings = _bench_backend(backend_kind, spec, tmpdir)
            for metric in ("program", "read", "scan"):
                single = timings[f"{metric}_single"]
                batched = timings[f"{metric}_batched"]
                speedup = single / batched if batched else float("inf")
                ratios[(backend_kind, metric)] = speedup
                table.add_row(backend_kind, metric, single, batched, speedup)
    file_speedups = [v for (kind, _m), v in ratios.items() if kind == "file"]
    table.note(
        "file-backend batched speedups: "
        + ", ".join(
            f"{metric} x{ratios[('file', metric)]:.2f}"
            for metric in ("program", "read", "scan")
        )
    )
    return table, ratios


def check_batching_wins(ratios):
    """Acceptance: the batched hot path beats per-page calls on the file
    backend for every access shape (and doesn't regress in memory)."""
    for metric in ("program", "read", "scan"):
        assert ratios[("file", metric)] > 1.0, (
            f"file-backend batched {metric} is not faster "
            f"(x{ratios[('file', metric)]:.2f})"
        )
    # Programs save the most syscalls (three per page become three per
    # allocation block); they must show a clear win, not a rounding one.
    assert ratios[("file", "program")] > 1.5, (
        f"batched programs only x{ratios[('file', 'program')]:.2f} on file"
    )


def test_backend_batching(benchmark):
    table, ratios = benchmark.pedantic(
        lambda: run_backend_bench(TINY_SPEC_BENCH),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(table.render())
    table.save()
    check_batching_wins(ratios)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="seconds-long smoke run (CI): 24-block chips",
    )
    args = parser.parse_args(argv)
    spec = TINY_SPEC_BENCH if args.tiny else FULL_SPEC
    table, ratios = run_backend_bench(spec)
    print(table.render())
    print(f"saved: {table.save()}")
    check_batching_wins(ratios)
    print("batching check: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
