"""Experiment 4 / Figure 15: read-only/update mixes vs %UpdateOps.

Paper shapes asserted: at %UpdateOps = 0 on an *updated* database OPU
beats PDL by about 2× (the paper's "0.5× improvement" special case —
PDL reads two pages where OPU reads one); as updates grow PDL(256B)
overtakes OPU; PDL(256B) beats IPL across the whole mix range.
"""

from repro.bench.experiments import experiment4

MIXES = (0.0, 40.0, 80.0, 100.0)


def test_experiment4_figure15(run_experiment, scale):
    table = run_experiment(
        experiment4, scale, n_updates_points=(1,), mix_points=MIXES
    )

    def v(method, pct):
        return table.value(
            "overall_us", method=method, n_updates=1, pct_update=pct
        )

    # The read-only special case: OPU wins by roughly 2x over PDL.
    assert v("OPU", 0.0) < v("PDL (256B)", 0.0)
    ratio = v("PDL (256B)", 0.0) / v("OPU", 0.0)
    assert 1.3 <= ratio <= 2.2, f"read-only PDL/OPU ratio {ratio:.2f}"

    # With any substantial update share, PDL(256B) wins.
    for pct in (40.0, 80.0, 100.0):
        assert v("PDL (256B)", pct) < v("OPU", pct)

    # PDL(256B) beats the log-based method across the whole range.
    for pct in MIXES:
        assert v("PDL (256B)", pct) < v("IPL (18KB)", pct)
        assert v("PDL (256B)", pct) < v("IPL (64KB)", pct)

    # There is a crossover: OPU best at 0 %, PDL best at 100 %.
    assert v("PDL (256B)", 100.0) < v("OPU", 100.0)
