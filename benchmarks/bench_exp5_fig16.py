"""Experiment 5 / Figure 16: sensitivity to flash timing parameters.

Paper shapes asserted: PDL(256B) outperforms OPU and IPL at *every*
(Tread, Twrite) combination; as Tread grows, OPU gains on the read-heavy
methods (it overtakes IPL(64KB), whose recreation reads many log pages).
"""

from repro.bench.experiments import experiment5

TREADS = (10.0, 110.0, 1000.0)
TWRITES = (500.0, 1000.0)


def test_experiment5_figure16(run_experiment, scale):
    table = run_experiment(
        experiment5, scale, tread_points=TREADS, twrite_points=TWRITES
    )

    def v(method, t_write, t_read):
        return table.value(
            "overall_us", method=method, t_write_us=t_write, t_read_us=t_read
        )

    # PDL(256B) wins against OPU and both IPLs across the realistic
    # regime (2*Tread <= Twrite, which covers every real NAND part and
    # the paper's Table-1 chip where writes are ~9x slower than reads).
    # Where reads cost as much as or more than writes — no real flash —
    # our cost model has the one-read methods overtaking PDL; this
    # deviation from the paper's "always" is noted in EXPERIMENTS.md.
    for t_write in TWRITES:
        for t_read in TREADS:
            pdl = v("PDL (256B)", t_write, t_read)
            if 2 * t_read <= t_write:
                assert pdl < v("OPU", t_write, t_read)
                assert pdl < v("IPL (18KB)", t_write, t_read)
                assert pdl < v("IPL (64KB)", t_write, t_read)
            else:
                # read-dominated corner: stay within 1.5x of the field
                assert pdl < 1.5 * v("OPU", t_write, t_read)
                assert pdl < 1.5 * v("IPL (18KB)", t_write, t_read)

    # As reads get expensive, OPU closes on / overtakes read-heavy IPL.
    gap_cheap_reads = v("IPL (64KB)", 1000.0, 10.0) - v("OPU", 1000.0, 10.0)
    gap_costly_reads = v("IPL (64KB)", 1000.0, 1000.0) - v("OPU", 1000.0, 1000.0)
    assert gap_costly_reads > gap_cheap_reads
