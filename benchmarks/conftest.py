"""Shared benchmark plumbing.

Benchmarks regenerate the paper's tables/figures at the scale selected by
``REPRO_BENCH_SCALE`` (default ``small``).  Each benchmark runs its
experiment once through ``benchmark.pedantic`` (the experiment itself is
a long deterministic simulation — statistical repetition adds nothing),
prints the paper-style table, saves JSON under ``bench_results/``, and
asserts the figure's qualitative shape.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.config import current_scale  # noqa: E402


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment once under pytest-benchmark and publish results."""

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(
            lambda: fn(*args, **kwargs), rounds=1, iterations=1, warmup_rounds=0
        )
        print()
        print(result.render())
        path = result.save()
        print(f"saved: {path}")
        return result

    return runner
