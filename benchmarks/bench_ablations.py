"""Ablation benchmarks for the design choices DESIGN.md calls out.

* Max_Differential_Size sweep — the paper's own x in PDL(x), finer grid;
* differential encoding granularity — byte-wise maximal runs suppress
  Case 3 (footnote 16's sawtooth never resets) and hurt the write step;
* GC victim policy — greedy vs round-robin vs wear-aware cost/benefit;
* recovery-scan cost vs checkpointed fast restart (Section 4.5's
  "further study" extension).
"""

from repro.bench.experiments import (
    ablation_diff_granularity,
    ablation_max_differential_size,
    ablation_victim_policy,
)


def test_ablation_max_differential_size(run_experiment, scale):
    table = run_experiment(
        ablation_max_differential_size, scale, sizes=(64, 256, 1024, 2048)
    )
    overall = dict(zip(table.column("max_diff_size"), table.column("overall_us")))
    # small thresholds beat the page-sized one under 2 % updates
    assert overall[256] < overall[2048]
    # reads stay within the at-most-two-page principle everywhere
    for value in table.column("read_us"):
        assert value <= 2 * 110.0 + 1


def test_ablation_diff_granularity(run_experiment, scale):
    table = run_experiment(ablation_diff_granularity, scale, units=(None, 16, 64))
    col = dict(zip(table.column("diff_unit"), table.column("write_with_gc_us")))
    # byte-wise maximal runs (no Case-3 sawtooth) cost more in the write
    # step than the default 16-byte unit encoder
    assert col["bytewise"] > col[16]


def test_ablation_victim_policy(run_experiment, scale):
    table = run_experiment(ablation_victim_policy, scale)
    rows = {row[0]: row for row in table.rows}
    assert set(rows) == {"greedy", "round_robin", "wear_aware"}
    greedy_overall = rows["greedy"][1]
    rr_overall = rows["round_robin"][1]
    # greedy reclaims more garbage per erase, so it should not lose badly
    assert greedy_overall <= rr_overall * 1.25
