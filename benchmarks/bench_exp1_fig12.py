"""Experiment 1 / Figure 12: read, write, and overall time per update op.

Paper shapes asserted:
* read step (12a): OPU/IPU = one read; PDL ≤ two reads; IPL(64KB) worst;
* write step (12b): IPU ≫ OPU; PDL(256B) best;
* overall (12c): PDL(256B) best of all six methods.
"""

from repro.bench.experiments import experiment1, table1_chip_parameters


def test_table1_chip_parameters(run_experiment):
    table = run_experiment(table1_chip_parameters)
    assert table.value("value", symbol="Tread") == 110.0
    assert table.value("value", symbol="Npage") == 64


def test_experiment1_figure12(run_experiment, scale):
    table = run_experiment(experiment1, scale)
    methods = set(table.column("method"))
    read = {m: table.value("read_us", method=m) for m in methods}
    write = {m: table.value("write_with_gc_us", method=m) for m in methods}
    overall = {m: table.value("overall_us", method=m) for m in methods}
    t_read = 110.0

    # Figure 12(a): page-based methods read exactly one page; PDL at most
    # two; IPL(64KB) reads the most log pages.
    assert read["OPU"] == t_read
    assert read["IPU"] == t_read
    assert t_read <= read["PDL (256B)"] <= 2 * t_read + 1
    assert t_read <= read["PDL (2KB)"] <= 2 * t_read + 1
    assert read["IPL (64KB)"] > read["PDL (2KB)"]
    assert read["IPL (64KB)"] > read["IPL (18KB)"]

    # Figure 12(b): IPU is catastrophically worse; PDL(256B) cheapest.
    assert write["IPU"] > 10 * write["OPU"]
    assert min(write.values()) == write["PDL (256B)"]
    assert write["PDL (256B)"] < write["OPU"] / 2

    # Figure 12(c): PDL(256B) has the best overall time.
    assert min(overall, key=overall.get) == "PDL (256B)"
