"""Experiment 2 / Figure 13: overall time vs N_updates_till_write.

Paper shapes asserted: OPU and IPU flat in N; IPL increasing (it flushes
every accumulated update log); PDL(256B) rising toward OPU as the
differential outgrows Max_Differential_Size; PDL(2KB) staying well below
OPU; same tendencies at 8 KB pages (Figure 13b).
"""

import pytest

from repro.bench.experiments import experiment2

N_POINTS = (1, 2, 4, 6, 8)


def _series(table, method):
    return [
        table.value("overall_us", method=method, n_updates=n) for n in N_POINTS
    ]


def test_experiment2_figure13a_2k(run_experiment, scale):
    table = run_experiment(experiment2, scale, page_size=2048, n_points=N_POINTS)

    opu = _series(table, "OPU")
    ipu = _series(table, "IPU")
    ipl18 = _series(table, "IPL (18KB)")
    pdl256 = _series(table, "PDL (256B)")
    pdl2k = _series(table, "PDL (2KB)")

    # OPU/IPU are flat regardless of N (they always write the whole page).
    assert max(opu) - min(opu) < 0.15 * min(opu)
    assert max(ipu) - min(ipu) < 0.05 * min(ipu)

    # IPL grows with N: more update logs per reflection.
    assert ipl18[-1] > ipl18[0] * 1.5

    # PDL(256B) rises toward OPU as differentials exceed 256 B …
    assert pdl256[-1] > pdl256[0]
    assert pdl256[-1] > 0.5 * opu[-1]
    # … while PDL(256B) clearly wins at N=1.
    assert pdl256[0] < 0.6 * opu[0]

    # PDL(2KB) stays below OPU at low N.  (Deviation from the paper
    # noted in EXPERIMENTS.md: with our unit-granular encoder its curve
    # crosses OPU around N≈4-6 rather than staying just below it —
    # per-cycle differentials saturate the write buffer sooner.)
    assert all(p < o for p, o in zip(pdl2k[:2], opu[:2]))
    # PDL(256B) approaches OPU from below and lands near it at N=8,
    # exactly the paper's described limit behaviour.
    assert 0.7 * opu[-1] <= pdl256[-1] <= 1.15 * opu[-1]


def test_experiment2_figure13b_8k(run_experiment, scale):
    table = run_experiment(experiment2, scale, page_size=8192, n_points=(1, 4, 8))
    opu = [table.value("overall_us", method="OPU", n_updates=n) for n in (1, 4, 8)]
    pdl = [
        table.value("overall_us", method="PDL (256B)", n_updates=n)
        for n in (1, 4, 8)
    ]
    # same tendency as 2 KB pages: flat OPU, PDL wins at low N
    assert max(opu) - min(opu) < 0.15 * min(opu)
    assert pdl[0] < 0.6 * opu[0]
