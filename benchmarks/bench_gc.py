"""GC benchmark: write-stall tail latency and erases across GC configs.

The paper amortizes all reclamation into the write path (Figure 12(b)):
when the free pool empties, one unlucky write absorbs a whole
stop-the-world collection cycle.  This benchmark measures what that
costs on a skewed hot/cold update workload — 90% of updates hit 10% of
the pages, the shape "heavy traffic from millions of users" actually
has — and what the incremental space-management subsystem buys back:

* **p99 / max write stall** (simulated us of GC work a single write
  absorbed): the tail incremental reclamation exists to shrink;
* **total erases**: the wear cost — incremental GC with hot/cold
  separation must not erase more than the stop-the-world baseline;
* **pages relocated**: the GC write amplification behind the erases.

Configurations: the stop-the-world greedy baseline, incremental greedy
with and without hot/cold separation, and the cost-benefit (``cb``) and
wear-aware (``wear``) victim policies from the registry.

Runs standalone for CI smoke checks::

    python benchmarks/bench_gc.py --tiny

or under pytest-benchmark like the other experiments::

    python -m pytest benchmarks/bench_gc.py -q
"""

import random
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.reporting import ResultTable  # noqa: E402
from repro.core.pdl import PdlDriver  # noqa: E402
from repro.flash.chip import FlashChip  # noqa: E402
from repro.flash.spec import FlashSpec  # noqa: E402
from repro.ftl.gc import GcConfig  # noqa: E402

FULL_SPEC = FlashSpec(
    n_blocks=64, pages_per_block=32, page_data_size=256, page_spare_size=16
)
TINY_SPEC_BENCH = FlashSpec(
    n_blocks=32, pages_per_block=32, page_data_size=256, page_spare_size=16
)

FULL_UPDATES = 12_000
TINY_UPDATES = 4_000

#: Fraction of chip pages holding the database (diff pages need the rest).
FILL = 0.55

#: Skew: this share of updates goes to a tenth of the pages.
HOT_FRACTION = 0.9

SEED = 20100111

#: Per-write relocation budget of the incremental configurations.  One
#: page per write is the classic 1:1 pacing: the smallest stall quantum,
#: and lazy enough that hot victim pages often die before they are moved.
STEPS = 1

CONFIGS = (
    ("stop-the-world", GcConfig()),
    ("incremental", GcConfig(incremental_steps=STEPS)),
    ("incremental+hc", GcConfig(incremental_steps=STEPS, hot_cold=True)),
    ("inc+hc gc=cb", GcConfig(policy="cb", incremental_steps=STEPS, hot_cold=True)),
    ("inc+hc gc=wear", GcConfig(policy="wear", incremental_steps=STEPS, hot_cold=True)),
)


def _run_workload(spec, config, n_updates):
    """One deterministic skewed-update run; returns the metrics dict."""
    chip = FlashChip(spec)
    driver = PdlDriver(chip, max_differential_size=256, gc_config=config)
    rng = random.Random(SEED)
    page = spec.page_data_size
    n_pages = int(spec.n_pages * FILL)
    driver.load_pages((pid, rng.randbytes(page)) for pid in range(n_pages))
    model = {pid: driver.read_page(pid) for pid in range(n_pages)}
    hot_pages = max(1, n_pages // 10)
    chip.stats.reset()  # steady-state window: loading is not measured
    for i in range(n_updates):
        if rng.random() < HOT_FRACTION:
            pid = rng.randrange(hot_pages)
        else:
            pid = rng.randrange(n_pages)
        image = bytearray(model[pid])
        # Mostly small patches (differential traffic) with an occasional
        # near-full rewrite that takes Case 3 and churns base pages.
        roll = rng.random()
        n = 8 if roll < 0.4 else 24 if roll < 0.7 else 48 if roll < 0.9 else 240
        offset = rng.randrange(page - n)
        image[offset : offset + n] = rng.randbytes(n)
        model[pid] = bytes(image)
        driver.write_page(pid, model[pid])
        if i % 64 == 63:
            driver.flush()
    for pid in rng.sample(sorted(model), min(128, n_pages)):
        assert driver.read_page(pid) == model[pid], f"pid {pid} corrupted"
    stats = chip.stats
    return {
        "p99_stall_us": stats.write_stall_percentile(99),
        "max_stall_us": stats.max_write_stall_us,
        "erases": stats.total_erases,
        "pages_relocated": driver.gc.pages_relocated,
        "gc_steps": stats.gc_steps,
        "io_time_ms": stats.total_time_us / 1000.0,
    }


def run_gc_bench(spec, n_updates):
    table = ResultTable(
        experiment="gc",
        title="GC configs on a 90/10 skewed update workload",
        columns=(
            "config",
            "p99_stall_us",
            "max_stall_us",
            "erases",
            "pages_relocated",
            "gc_steps",
            "io_time_ms",
        ),
    )
    results = {}
    for label, config in CONFIGS:
        metrics = _run_workload(spec, config, n_updates)
        results[label] = metrics
        table.add_row(
            label,
            metrics["p99_stall_us"],
            metrics["max_stall_us"],
            metrics["erases"],
            metrics["pages_relocated"],
            metrics["gc_steps"],
            metrics["io_time_ms"],
        )
    base = results["stop-the-world"]
    best = results["incremental+hc"]
    table.note(
        f"incremental+hc: p99 stall x{base['p99_stall_us'] / best['p99_stall_us']:.1f} "
        f"lower, erases {best['erases']} vs {base['erases']} stop-the-world"
    )
    return table, results


def check_incremental_wins(results):
    """Acceptance: every incremental config cuts the p99 write stall, and
    hot/cold incremental reclamation does not cost extra erases."""
    base = results["stop-the-world"]
    assert base["gc_steps"] == 0, "baseline must not take incremental steps"
    for label, metrics in results.items():
        if label == "stop-the-world":
            continue
        assert metrics["gc_steps"] > 0, f"{label} never stepped incrementally"
        assert metrics["p99_stall_us"] < base["p99_stall_us"], (
            f"{label}: p99 stall {metrics['p99_stall_us']} not below "
            f"stop-the-world's {base['p99_stall_us']}"
        )
    for label in ("incremental+hc", "inc+hc gc=cb"):
        assert results[label]["erases"] <= base["erases"], (
            f"{label}: {results[label]['erases']} erases exceed "
            f"stop-the-world's {base['erases']}"
        )


def test_gc_policies(benchmark):
    table, results = benchmark.pedantic(
        lambda: run_gc_bench(TINY_SPEC_BENCH, TINY_UPDATES),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(table.render())
    table.save()
    check_incremental_wins(results)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="seconds-long smoke run (CI): 32-block chip, 4k updates",
    )
    args = parser.parse_args(argv)
    spec = TINY_SPEC_BENCH if args.tiny else FULL_SPEC
    updates = TINY_UPDATES if args.tiny else FULL_UPDATES
    table, results = run_gc_bench(spec, updates)
    print(table.render())
    print(f"saved: {table.save()}")
    check_incremental_wins(results)
    print("incremental-GC check: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
