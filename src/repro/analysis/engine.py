"""Orchestration: load sources, run rules, apply suppressions and baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .baseline import Baseline, BaselineEntry
from .findings import Finding, Severity
from .project import Project, load_project
from .registry import Rule, all_rules


@dataclass
class AnalysisResult:
    """Everything one analyzer run produced, pre-partitioned for reporting.

    ``new`` are the findings that fail the build; ``suppressed`` were
    silenced by inline ``# repro: allow[...]`` comments; ``grandfathered``
    matched a baseline entry; ``stale_baseline`` are baseline entries
    that no longer match anything (debt repaid — remove them);
    ``broken`` are files that failed to parse (these fail the build too:
    an unparseable file is an unanalyzed file).
    """

    new: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    grandfathered: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    broken: List[tuple] = field(default_factory=list)

    @property
    def failing(self) -> List[Finding]:
        return [f for f in self.new if f.severity is Severity.ERROR] + [
            Finding(
                rule="parse-error",
                path=rel,
                line=0,
                message=msg,
                severity=Severity.ERROR,
            )
            for rel, msg in self.broken
        ]

    @property
    def ok(self) -> bool:
        return not self.failing


def run_rules(project: Project, rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Run every (or the given) rule over the project; sorted findings."""
    findings: List[Finding] = []
    seen = set()
    for rule in rules if rules is not None else all_rules():
        for finding in rule.run(project):
            ident = (finding.rule, finding.path, finding.line, finding.message)
            if ident not in seen:
                seen.add(ident)
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


def analyze(
    paths: Iterable[Path],
    root: Path,
    baseline: Optional[Baseline] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> AnalysisResult:
    """Full pipeline: parse → rules → inline suppressions → baseline."""
    project = load_project(paths, root=root)
    raw = run_rules(project, rules=rules)

    by_rel = {mod.rel: mod for mod in project.modules}
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        mod = by_rel.get(finding.path)
        if mod is not None and mod.allows(finding.line, finding.rule):
            suppressed.append(finding)
        else:
            kept.append(finding)

    baseline = baseline or Baseline.empty()
    new, grandfathered, stale = baseline.split(kept)
    return AnalysisResult(
        new=new,
        suppressed=suppressed,
        grandfathered=grandfathered,
        stale_baseline=stale,
        broken=list(project.broken),
    )
