"""Checked-in baseline of grandfathered findings.

The baseline lets the CI gate turn on while known findings are paid
down incrementally — but every entry must carry a written
justification, so "baselined" always means "reviewed and argued for",
never "silenced".  Entries match findings on ``(rule, path, message)``
(not line numbers, so unrelated edits don't churn the file), and
entries that no longer match anything are reported as stale so the
file shrinks as debt is repaid.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from .findings import Finding

FORMAT_VERSION = 1


class BaselineError(ValueError):
    """Raised for malformed baseline files (missing justification, bad JSON)."""


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    message: str
    justification: str

    @property
    def key(self) -> tuple:
        return (self.rule, self.path, self.message)


@dataclass
class Baseline:
    entries: List[BaselineEntry]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=[])

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(raw, dict) or not isinstance(raw.get("findings"), list):
            raise BaselineError(
                f"baseline {path} must be an object with a 'findings' list"
            )
        entries = []
        for i, item in enumerate(raw["findings"]):
            if not isinstance(item, dict):
                raise BaselineError(f"baseline {path}: entry {i} is not an object")
            missing = [k for k in ("rule", "path", "message") if not item.get(k)]
            if missing:
                raise BaselineError(
                    f"baseline {path}: entry {i} missing {', '.join(missing)}"
                )
            justification = str(item.get("justification", "")).strip()
            if not justification:
                raise BaselineError(
                    f"baseline {path}: entry {i} "
                    f"([{item['rule']}] {item['path']}) has no justification — "
                    "every grandfathered finding must say why it is acceptable"
                )
            entries.append(
                BaselineEntry(
                    rule=str(item["rule"]),
                    path=str(item["path"]),
                    message=str(item["message"]),
                    justification=justification,
                )
            )
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": FORMAT_VERSION,
            "findings": [
                {
                    "rule": e.rule,
                    "path": e.path,
                    "message": e.message,
                    "justification": e.justification,
                }
                for e in sorted(self.entries, key=lambda e: e.key)
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], justification: str
    ) -> "Baseline":
        seen = set()
        entries = []
        for f in findings:
            if f.key in seen:
                continue
            seen.add(f.key)
            entries.append(
                BaselineEntry(
                    rule=f.rule,
                    path=f.path,
                    message=f.message,
                    justification=justification,
                )
            )
        return cls(entries=entries)

    def split(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Partition findings into (new, grandfathered) plus stale entries."""
        by_key: Dict[tuple, BaselineEntry] = {e.key: e for e in self.entries}
        matched = set()
        new: List[Finding] = []
        grandfathered: List[Finding] = []
        for f in findings:
            entry = by_key.get(f.key)
            if entry is None:
                new.append(f)
            else:
                matched.add(entry.key)
                grandfathered.append(f)
        stale = [e for e in self.entries if e.key not in matched]
        return new, grandfathered, stale
