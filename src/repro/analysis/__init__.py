"""Invariant lint engine: AST-based enforcement of the engine's contracts.

The concurrent engine's correctness rests on contracts the docs state in
prose — single-writer shard ownership, phase/timer pairing under
``try/finally``, spawn-safe process recipes, shm/worker cleanup on every
exit path, pin discipline, a cycle-free lock order, no swallowed worker
errors, no checksum bypasses outside recovery.  PR 6/7 review fixes
showed these break silently; this package makes them machine-checked.

Architecture (mirrors the GC victim-policy registry idiom):

* :mod:`.findings` — the :class:`Finding` record every rule emits;
* :mod:`.project` — source loading, AST parsing and the
  ``# repro: allow[rule-id]`` inline-suppression scanner;
* :mod:`.registry` — rule registration/lookup by id;
* :mod:`.baseline` — the checked-in grandfather file (every entry must
  carry a written justification);
* :mod:`.engine` — orchestration: load → run rules → suppress →
  baseline-match → report;
* :mod:`.rules` — the project-specific rules (importing the subpackage
  registers them all).

The CLI entry point is ``scripts/lint_invariants.py``; the rule
catalogue, suppression syntax and how to add a rule are documented in
``docs/static-analysis.md``.
"""

from .baseline import Baseline, BaselineEntry, BaselineError
from .engine import AnalysisResult, analyze
from .findings import Finding, Severity
from .project import Module, Project, load_project
from .registry import all_rules, get_rule, register_rule, rule_ids

# Importing the subpackage registers every rule with the registry.
from . import rules as _rules  # noqa: F401  (import-for-side-effect)

__all__ = [
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "Finding",
    "Module",
    "Project",
    "Severity",
    "all_rules",
    "analyze",
    "get_rule",
    "load_project",
    "register_rule",
    "rule_ids",
]
