"""The finding record emitted by every rule, plus severity levels."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How seriously a finding should be treated.

    ``ERROR`` findings fail the build; ``WARNING`` findings are reported
    but do not affect the exit code unless ``--strict-warnings`` is
    passed to the CLI; ``NOTE`` is informational (stale baseline
    entries, skipped files).
    """

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One violation at one source location.

    ``path`` is stored as a POSIX-style path relative to the scan root
    so findings are stable across machines and usable as baseline keys.
    The baseline matches on ``(rule, path, message)`` — deliberately not
    on ``line``, so unrelated edits above a grandfathered finding do not
    invalidate the baseline entry.
    """

    rule: str
    path: str
    line: int
    message: str
    severity: Severity = Severity.ERROR
    hint: str = field(default="", compare=False)

    @property
    def key(self) -> tuple:
        """Identity used for baseline matching (line-independent)."""
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.severity}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity.value,
            "message": self.message,
            "hint": self.hint,
        }
