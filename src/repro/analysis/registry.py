"""Rule registration and lookup.

Same extension idiom as the GC victim-policy registry
(:mod:`repro.ftl.gc`): rules self-register at import time under a
stable string id, and the engine iterates the registry.  Adding a rule
is: subclass :class:`Rule`, implement :meth:`Rule.run`, decorate with
:func:`register_rule` — see ``docs/static-analysis.md``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Type, TYPE_CHECKING

from .findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .project import Project


class Rule:
    """Base class for one invariant check.

    Subclasses set the class attributes and implement :meth:`run`,
    which receives the whole parsed :class:`~.project.Project` (rules
    like lock-order need cross-module context) and yields
    :class:`Finding` records.  Helpers :meth:`finding` fills in the
    rule id and severity so rule bodies stay terse.
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""
    #: Shown alongside findings; tell the reader how to comply.
    hint: str = ""

    def run(self, project: "Project") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module, node, message: str) -> Finding:
        """Build a finding for ``node`` (anything with ``lineno``) in ``module``."""
        return Finding(
            rule=self.id,
            path=module.rel,
            line=getattr(node, "lineno", 0),
            message=message,
            severity=self.severity,
            hint=self.hint,
        )


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> List[Rule]:
    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known rules: {', '.join(sorted(_REGISTRY))}"
        ) from None
