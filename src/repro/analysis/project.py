"""Source loading: parse trees, line tables and inline suppressions.

A :class:`Project` is the unit the engine hands to rules: every Python
file under the scanned paths, parsed once, with parent links attached
(``node.repro_parent``) so rules can walk upward, plus the per-line
``# repro: allow[rule-id]`` suppression table.

Suppression syntax::

    risky_call()  # repro: allow[rule-id] -- why this is safe here

    # repro: allow[rule-a, rule-b] -- one comment can cover two rules
    risky_call()

A suppression applies to findings on its own line or, when the comment
stands alone, on the next non-comment line.  ``allow[*]`` suppresses
every rule on that line (reserve it for generated code).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Set

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")

#: Directories never scanned even when nested under a requested path.
_SKIP_DIRS = {".git", "__pycache__", ".venv", "node_modules", ".mypy_cache"}


@dataclass
class Module:
    """One parsed source file."""

    path: Path
    #: POSIX-style path relative to the scan root; baseline/display key.
    rel: str
    source: str
    tree: ast.AST
    #: line number -> set of rule ids allowed there ("*" = all rules).
    allow: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()

    def allows(self, line: int, rule_id: str) -> bool:
        allowed = self.allow.get(line, ())
        return rule_id in allowed or "*" in allowed


@dataclass
class Project:
    root: Path
    modules: List[Module]
    #: Files that failed to parse, as (rel_path, error) pairs.
    broken: List[tuple] = field(default_factory=list)

    def module(self, rel: str) -> Module:
        for mod in self.modules:
            if mod.rel == rel:
                return mod
        raise KeyError(rel)


def _attach_parents(tree: ast.AST) -> None:
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child.repro_parent = parent  # type: ignore[attr-defined]


def _scan_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line numbers to the rule ids allowed there.

    Comments are found with :mod:`tokenize` (not regex over raw lines)
    so ``# repro: allow[...]`` inside string literals is ignored.  A
    comment that is the only thing on its line forwards its allowance
    to the following line, so block-style suppressions read naturally.
    """
    allow: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return allow
    lines = source.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _ALLOW_RE.search(tok.string)
        if not match:
            continue
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        if not ids:
            continue
        line = tok.start[0]
        allow.setdefault(line, set()).update(ids)
        stripped = lines[line - 1].strip() if line <= len(lines) else ""
        if stripped.startswith("#"):
            # Standalone comment: cover the next code line, skipping any
            # continuation comment lines in between.
            target = line + 1
            while (
                target <= len(lines) and lines[target - 1].strip().startswith("#")
            ):
                target += 1
            allow.setdefault(target, set()).update(ids)
    return allow


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if any(part in _SKIP_DIRS for part in sub.parts):
                    continue
                files.append(sub)
        elif path.suffix == ".py":
            files.append(path)
    # De-duplicate while keeping order (overlapping path arguments).
    seen: Set[Path] = set()
    unique = []
    for f in files:
        resolved = f.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(f)
    return unique


def load_project(paths: Iterable[Path], root: Path) -> Project:
    """Parse every Python file under ``paths`` into a :class:`Project`.

    ``root`` anchors the relative paths used in findings and baselines;
    files outside ``root`` keep their absolute path as the key.
    """
    root = root.resolve()
    modules: List[Module] = []
    broken: List[tuple] = []
    for path in iter_python_files(paths):
        resolved = path.resolve()
        try:
            rel = resolved.relative_to(root).as_posix()
        except ValueError:
            rel = resolved.as_posix()
        try:
            source = resolved.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(resolved))
        except (OSError, SyntaxError, ValueError) as exc:
            broken.append((rel, f"{type(exc).__name__}: {exc}"))
            continue
        _attach_parents(tree)
        modules.append(
            Module(
                path=resolved,
                rel=rel,
                source=source,
                tree=tree,
                allow=_scan_suppressions(source),
            )
        )
    return Project(root=root, modules=modules, broken=broken)
