"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
FUNCTION_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` chains of Name/Attribute nodes, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_attr(node: ast.Call) -> Optional[str]:
    """The attribute name of a method call (``x.y.foo()`` -> ``foo``)."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def call_func_name(node: ast.Call) -> Optional[str]:
    """The terminal callable name (``foo()`` or ``x.foo()`` -> ``foo``)."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def receiver_dotted(node: ast.Call) -> Optional[str]:
    """Dotted receiver of a method call (``a.b.foo()`` -> ``a.b``)."""
    if isinstance(node.func, ast.Attribute):
        return dotted_name(node.func.value)
    return None


def parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "repro_parent", None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    current = parent(node)
    while current is not None:
        yield current
        current = parent(current)


def enclosing_function(node: ast.AST) -> Optional[FunctionNode]:
    for anc in ancestors(node):
        if isinstance(anc, FUNCTION_TYPES):
            return anc
    return None


def enclosing_class(node: ast.AST) -> Optional[ast.ClassDef]:
    for anc in ancestors(node):
        if isinstance(anc, ast.ClassDef):
            return anc
    return None


def in_finally(node: ast.AST) -> bool:
    """True when ``node`` sits inside the ``finally`` block of some try."""
    child = node
    for anc in ancestors(node):
        if isinstance(anc, ast.Try) and _contains(anc.finalbody, child):
            return True
        child = anc
    return False


def in_try_protected(node: ast.AST) -> bool:
    """True when ``node`` is in a try *body* that has handlers or a finally."""
    child = node
    for anc in ancestors(node):
        if isinstance(anc, ast.Try) and _contains(anc.body, child):
            if anc.handlers or anc.finalbody:
                return True
        child = anc
    return False


def _contains(block: List[ast.stmt], node: ast.AST) -> bool:
    return any(stmt is node for stmt in block)


def walk_functions(tree: ast.AST) -> Iterator[FunctionNode]:
    for node in ast.walk(tree):
        if isinstance(node, FUNCTION_TYPES):
            yield node


def local_statements(func: FunctionNode) -> Iterator[ast.stmt]:
    """All statements in ``func``, excluding those of nested functions."""

    def visit(stmts) -> Iterator[ast.stmt]:
        for stmt in stmts:
            yield stmt
            if isinstance(stmt, FUNCTION_TYPES + (ast.ClassDef,)):
                continue
            for name in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, name, None)
                if inner:
                    yield from visit(inner)
            handlers = getattr(stmt, "handlers", None)
            if handlers:
                for handler in handlers:
                    yield from visit(handler.body)

    yield from visit(func.body)


def local_nodes(func: FunctionNode) -> Iterator[ast.AST]:
    """All AST nodes in ``func`` body, excluding nested function bodies."""
    for stmt in local_statements(func):
        yield stmt
        for node in ast.walk(stmt):
            if node is stmt:
                continue
            if isinstance(node, FUNCTION_TYPES):
                continue
            # Skip nodes owned by a nested function definition.
            if any(
                isinstance(anc, FUNCTION_TYPES) and anc is not func
                for anc in _ancestors_until(node, stmt)
            ):
                continue
            yield node


def _ancestors_until(node: ast.AST, stop: ast.AST) -> Iterator[ast.AST]:
    current = getattr(node, "repro_parent", None)
    while current is not None and current is not stop:
        yield current
        current = getattr(current, "repro_parent", None)


def is_none(node: Optional[ast.AST]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def is_false(node: Optional[ast.AST]) -> bool:
    return isinstance(node, ast.Constant) and node.value is False


def contains_lambda(node: ast.AST) -> Optional[ast.Lambda]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Lambda):
            return sub
    return None


def keyword_arg(node: ast.Call, name: str) -> Optional[ast.AST]:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def assign_targets(stmt: ast.stmt) -> List[Tuple[ast.AST, ast.AST]]:
    """(target, value) pairs for plain assignments, tuple-unpacked or not."""
    pairs: List[Tuple[ast.AST, ast.AST]] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            pairs.append((target, stmt.value))
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        pairs.append((stmt.target, stmt.value))
    return pairs
