"""pin-discipline: raw ``pin()``/``unpin()`` outside the pool internals.

A raw ``pin()`` with an exception before the matching ``unpin()``
leaves the frame unevictable forever — the pool fills with pinned
garbage and ``get_page`` eventually raises ``BufferPoolFullError``.
``BufferManager.pinned(pid)`` / ``Page.pinned()`` pair the two in a
context manager; only ``storage/page.py`` (which defines them) and
``storage/bufferpool/manager.py`` (which must pin under its own lock
while claiming write-back batches) may call the raw methods.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import Rule, register_rule
from . import path_matches

ALLOWED_PATHS = (
    "repro/storage/page.py",
    "repro/storage/bufferpool/manager.py",
)


@register_rule
class PinDisciplineRule(Rule):
    id = "pin-discipline"
    summary = "raw pin()/unpin() calls instead of the pinned() context managers"
    hint = (
        "use `with pool.pinned(pid) as page:` or `with page.pinned():` so the "
        "unpin runs on every exit path"
    )

    def run(self, project) -> Iterator[Finding]:
        for mod in project.modules:
            if path_matches(mod.rel, ALLOWED_PATHS):
                continue
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                if node.func.attr in ("pin", "unpin") and not node.args:
                    yield self.finding(
                        mod,
                        node,
                        f"raw .{node.func.attr}() call; an exception between "
                        "pin and unpin leaks the pin count",
                    )
