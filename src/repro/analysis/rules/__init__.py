"""Project rules.  Importing this package registers every rule.

Each module holds one rule; the catalogue with examples lives in
``docs/static-analysis.md``.
"""


def path_matches(rel: str, patterns) -> bool:
    """True when the module path ends with any of the given patterns.

    Rules use path suffixes ("repro/core/fsck.py") rather than exact
    paths so the same allowlists work whether the scan root is the repo
    root, ``src/`` or a fixture tree copy.
    """
    return any(rel == p or rel.endswith("/" + p) for p in patterns)


# Import after path_matches is defined: rule modules import it from here.
from . import (  # noqa: E402, F401  (import-for-side-effect registration)
    checksum_bypass,
    error_handling,
    journal_commit,
    lock_order,
    phase_discipline,
    pin_discipline,
    resource_lifecycle,
    single_writer,
    spawn_safety,
)

__all__ = [
    "checksum_bypass",
    "error_handling",
    "journal_commit",
    "lock_order",
    "path_matches",
    "phase_discipline",
    "pin_discipline",
    "resource_lifecycle",
    "single_writer",
    "spawn_safety",
]
