"""lock-order: the static lock-acquisition graph must stay acyclic.

The engine's deadlock-freedom argument (docs/bufferpool.md) is a total
order: pool ``_lock`` → page ``latch`` → ``_dirty_lock`` → serial
``_driver_lock``, with ``_flush_serial`` above them all.  Nothing
enforces it at runtime — two threads acquiring two locks in opposite
orders deadlock only under the right interleaving, which is exactly the
kind of bug that survives every test run until production.

This rule rebuilds the order statically, project-wide:

1. **Lock discovery** — ``self.X = threading.Lock()/RLock()`` in any
   class registers lock ``Class.X``; ``Condition(self.Y)`` aliases to
   ``Y``'s lock; assigning another object's known lock attribute
   (``self._cond = pool._dirty_cond``) aliases across classes.
2. **Acquisition graph** — every ``with self.X:`` / ``with obj.Y:``
   adds edges from all locks held at that point; calls are resolved
   (``self.m()`` to the same class, other receivers only when the
   method name is unique project-wide) and the callee's transitive
   lock footprint is added under the locks held at the call site.
3. **Cycle detection** — a strongly-connected component of two or more
   locks is a potential deadlock and is reported with one example
   acquisition per edge.  Re-entrant self-acquisition is not flagged
   (the pool lock and page latches are RLocks by design).

Ambiguous receivers (an attribute name owned by several classes) and
ambiguous call targets are skipped rather than guessed — the rule
prefers missing an edge to inventing one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .. import astutil
from ..findings import Finding
from ..registry import Rule, register_rule

LOCK_CTORS = {"Lock", "RLock"}
CONDITION_CTORS = {"Condition"}


@dataclass
class _FuncInfo:
    key: Tuple[str, Optional[str], str]  # (module rel, class, name)
    module: object
    node: object
    cls: Optional[str]
    direct_locks: Set[str] = field(default_factory=set)
    #: (held lock id, acquired lock id, lineno) for nested with-blocks.
    edges: List[Tuple[str, str, int]] = field(default_factory=list)
    #: (held ids at call site, receiver-is-self, callee name, lineno)
    calls: List[Tuple[Tuple[str, ...], bool, str, int]] = field(
        default_factory=list
    )


class _LockIndex:
    """Project-wide map from (class, attr) to a canonical lock id."""

    def __init__(self) -> None:
        # (class, attr) -> ("lock", id) | ("alias_self", attr)
        #                 | ("alias_attr", attr)
        self.entries: Dict[Tuple[str, str], Tuple[str, str]] = {}

    def add_class_assigns(self, cls: ast.ClassDef) -> None:
        for node in ast.walk(cls):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                entry = self._classify(cls.name, target.attr, node.value)
                if entry is not None:
                    self.entries.setdefault((cls.name, target.attr), entry)

    def _classify(self, cls: str, attr: str, value: ast.AST):
        calls = (
            [value]
            if isinstance(value, ast.Call)
            else [n for n in ast.walk(value) if isinstance(n, ast.Call)]
        )
        for call in calls:
            name = astutil.call_func_name(call)
            if name in LOCK_CTORS:
                return ("lock", f"{cls}.{attr}")
            if name in CONDITION_CTORS:
                if call.args:
                    arg = call.args[0]
                    if (
                        isinstance(arg, ast.Attribute)
                        and isinstance(arg.value, ast.Name)
                        and arg.value.id == "self"
                    ):
                        return ("alias_self", arg.attr)
                    return None  # condition over a non-self lock: skip
                return ("lock", f"{cls}.{attr}")
        if isinstance(value, ast.Attribute):
            # self.X = other.Y — alias by attribute name, resolved later.
            return ("alias_attr", value.attr)
        return None

    def resolve(self, cls: Optional[str], attr: str) -> Optional[str]:
        return self._resolve_entry(cls, attr, set())

    def _resolve_entry(
        self, cls: Optional[str], attr: str, seen: Set[Tuple[Optional[str], str]]
    ) -> Optional[str]:
        if (cls, attr) in seen:
            return None
        seen.add((cls, attr))
        entry = self.entries.get((cls, attr)) if cls is not None else None
        if entry is None:
            # Fall back to a project-unique attribute name.
            candidates = {
                self._resolve_entry(c, a, set(seen))
                for (c, a) in self.entries
                if a == attr
            }
            candidates.discard(None)
            return candidates.pop() if len(candidates) == 1 else None
        kind, payload = entry
        if kind == "lock":
            return payload
        if kind == "alias_self":
            return self._resolve_entry(cls, payload, seen)
        return self._resolve_entry(None, payload, seen)


@register_rule
class LockOrderRule(Rule):
    id = "lock-order"
    summary = "cycles in the static lock-acquisition graph"
    hint = (
        "acquire locks in the documented order (pool lock -> page latch -> "
        "dirty lock -> driver lock); restructure one side of the cycle"
    )

    def run(self, project) -> Iterator[Finding]:
        index = _LockIndex()
        for mod in project.modules:
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.ClassDef):
                    index.add_class_assigns(node)
        if not index.entries:
            return

        funcs: Dict[Tuple[str, Optional[str], str], _FuncInfo] = {}
        by_name: Dict[str, List[_FuncInfo]] = {}
        for mod in project.modules:
            for func in astutil.walk_functions(mod.tree):
                cls = astutil.enclosing_class(func)
                info = _FuncInfo(
                    key=(mod.rel, cls.name if cls else None, func.name),
                    module=mod,
                    node=func,
                    cls=cls.name if cls else None,
                )
                self._scan_function(info, func, index)
                funcs[info.key] = info
                by_name.setdefault(func.name, []).append(info)

        closures = self._lock_closures(funcs, by_name)

        # Edge set with one example location each.
        edges: Dict[Tuple[str, str], Tuple[object, int]] = {}
        for info in funcs.values():
            for held, acquired, lineno in info.edges:
                if held != acquired:
                    edges.setdefault((held, acquired), (info.module, lineno))
            for held_ids, is_self, callee, lineno in info.calls:
                target = self._resolve_call(info, is_self, callee, by_name)
                if target is None:
                    continue
                for lock in closures.get(target.key, ()):
                    for held in held_ids:
                        if held != lock:
                            edges.setdefault(
                                (held, lock), (info.module, lineno)
                            )

        yield from self._report_cycles(edges)

    # -- per-function scan ----------------------------------------------
    def _scan_function(
        self, info: _FuncInfo, func, index: _LockIndex
    ) -> None:
        def lock_of(expr: ast.AST) -> Optional[str]:
            if not isinstance(expr, ast.Attribute):
                return None
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                return index.resolve(info.cls, expr.attr)
            return index.resolve(None, expr.attr)

        def visit(stmts, held: Tuple[str, ...]) -> None:
            for stmt in stmts:
                if isinstance(stmt, astutil.FUNCTION_TYPES + (ast.ClassDef,)):
                    continue
                new_held = held
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    acquired = []
                    for item in stmt.items:
                        lock = lock_of(item.context_expr)
                        if lock is not None:
                            acquired.append(lock)
                    for lock in acquired:
                        info.direct_locks.add(lock)
                        for h in new_held:
                            info.edges.append((h, lock, stmt.lineno))
                        new_held = new_held + (lock,)
                self._record_calls(info, stmt, new_held)
                for name in ("body", "orelse", "finalbody"):
                    inner = getattr(stmt, name, None)
                    if inner:
                        visit(inner, new_held)
                for handler in getattr(stmt, "handlers", []) or []:
                    visit(handler.body, new_held)

        visit(func.body, ())

    def _record_calls(self, info: _FuncInfo, stmt, held: Tuple[str, ...]) -> None:
        """Record method calls in ``stmt``'s own expressions (not sub-blocks).

        Nested block statements get their own visit with the right held
        set; calls inside lambdas/nested defs run later, not here, so
        both are excluded by walking up to the nearest statement.
        """
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            anc = astutil.parent(node)
            immediate = True
            while anc is not None and anc is not stmt:
                if isinstance(
                    anc,
                    astutil.FUNCTION_TYPES + (ast.ClassDef, ast.Lambda, ast.stmt),
                ):
                    immediate = False
                    break
                anc = astutil.parent(anc)
            if not immediate:
                continue
            name = astutil.call_func_name(node)
            if name is None:
                continue
            receiver = astutil.receiver_dotted(node)
            is_self = receiver is not None and receiver.split(".")[0] == "self"
            info.calls.append((held, is_self, name, node.lineno))

    # -- closures and call resolution ------------------------------------
    @staticmethod
    def _lock_closures(funcs, by_name) -> Dict[tuple, Set[str]]:
        closures = {key: set(info.direct_locks) for key, info in funcs.items()}
        changed = True
        while changed:
            changed = False
            for key, info in funcs.items():
                for _held, is_self, callee, _lineno in info.calls:
                    target = LockOrderRule._resolve_call(
                        info, is_self, callee, by_name
                    )
                    if target is None:
                        continue
                    before = len(closures[key])
                    closures[key] |= closures[target.key]
                    if len(closures[key]) != before:
                        changed = True
        return closures

    @staticmethod
    def _resolve_call(
        info: _FuncInfo, is_self: bool, callee: str, by_name
    ) -> Optional[_FuncInfo]:
        candidates = by_name.get(callee, [])
        if not candidates:
            return None
        if is_self and info.cls is not None:
            same_class = [
                c for c in candidates
                if c.cls == info.cls and c.module.rel == info.module.rel
            ]
            if len(same_class) == 1:
                return same_class[0]
        if len(candidates) == 1:
            return candidates[0]
        return None

    # -- cycle reporting --------------------------------------------------
    def _report_cycles(self, edges) -> Iterator[Finding]:
        graph: Dict[str, Set[str]] = {}
        for (a, b) in edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        for component in _tarjan_sccs(graph):
            if len(component) < 2:
                continue
            locks = sorted(component)
            examples = []
            for (a, b), (mod, lineno) in sorted(
                edges.items(), key=lambda kv: (kv[0][0], kv[0][1])
            ):
                if a in component and b in component:
                    examples.append((a, b, mod, lineno))
            first_mod = examples[0][2]
            first_line = examples[0][3]
            detail = "; ".join(
                f"{a} held while acquiring {b} ({m.rel}:{ln})"
                for a, b, m, ln in examples
            )
            yield Finding(
                rule=self.id,
                path=first_mod.rel,
                line=first_line,
                message=(
                    "lock-order cycle between "
                    + ", ".join(locks)
                    + ": "
                    + detail
                ),
                severity=self.severity,
                hint=self.hint,
            )


def _tarjan_sccs(graph: Dict[str, Set[str]]) -> List[Set[str]]:
    index_counter = [0]
    stack: List[str] = []
    lowlink: Dict[str, int] = {}
    index: Dict[str, int] = {}
    on_stack: Set[str] = set()
    result: List[Set[str]] = []

    def strongconnect(v: str) -> None:
        index[v] = lowlink[v] = index_counter[0]
        index_counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in graph.get(v, ()):
            if w not in index:
                strongconnect(w)
                lowlink[v] = min(lowlink[v], lowlink[w])
            elif w in on_stack:
                lowlink[v] = min(lowlink[v], index[w])
        if lowlink[v] == index[v]:
            component = set()
            while True:
                w = stack.pop()
                on_stack.discard(w)
                component.add(w)
                if w == v:
                    break
            result.append(component)

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    return result
