"""resource-lifecycle: shm segments, chips and fault hooks must be released.

Three leak shapes this engine has actually hit in review:

* ``SharedMemory(create=True)`` — a POSIX shm segment outlives the
  process unless ``unlink()`` runs; creating one outside a ``try``
  whose cleanup path can reach it leaks the segment on any later
  constructor failure (the PR 7 executor wraps its whole spawn loop in
  ``try/except BaseException: reap``).  Flagged when the creating
  module never calls ``.unlink()``, or the creation site is not inside
  a protected ``try``.
* ``FlashChip``/backend constructed, used and dropped without
  ``close()`` — a ``FileBackend`` holds an OS file handle and buffered
  metadata; dropping it relies on GC finalizers that may never run.
  Flagged when a local is built from a chip/backend constructor, never
  escapes the function (not returned, stored or passed on) and is
  never closed or used as a context manager.
* crash/fault hooks (``set_crash_point``, ``crash_after``,
  ``on_operation``) armed without a matching disarm (same method with
  ``None``) in the same class or module — a leaked hook fires during
  a later, unrelated operation (the checkpoint manager disarms in a
  paired method; that pattern is accepted).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from .. import astutil
from ..findings import Finding
from ..registry import Rule, register_rule

CONSTRUCTORS = {"FlashChip", "MemoryBackend", "FileBackend", "FaultInjector"}
FACTORY_SUFFIXES = ("FileBackend.open",)

HOOKS = {"set_crash_point", "crash_after", "on_operation"}


def _is_ctor_call(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    name = astutil.call_func_name(value)
    if isinstance(value.func, ast.Name) and name in CONSTRUCTORS:
        return True
    dotted = astutil.dotted_name(value.func)
    return dotted is not None and any(
        dotted == s or dotted.endswith("." + s) for s in FACTORY_SUFFIXES
    )


@register_rule
class ResourceLifecycleRule(Rule):
    id = "resource-lifecycle"
    summary = "shm/chip/hook resources acquired without a release on every path"
    hint = (
        "wrap acquisition in try/finally (or a context manager), unlink shm "
        "segments, close chips/backends, disarm hooks with `...(None)`"
    )

    def run(self, project) -> Iterator[Finding]:
        for mod in project.modules:
            yield from self._check_shared_memory(mod)
            yield from self._check_hooks(mod)
            for func in astutil.walk_functions(mod.tree):
                yield from self._check_locals(mod, func)

    # -- SharedMemory(create=True) --------------------------------------
    def _check_shared_memory(self, mod) -> Iterator[Finding]:
        has_unlink = any(
            isinstance(node, ast.Call) and astutil.call_attr(node) == "unlink"
            for node in ast.walk(mod.tree)
        )
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            if astutil.call_func_name(node) != "SharedMemory":
                continue
            create = astutil.keyword_arg(node, "create")
            if create is None or not (
                isinstance(create, ast.Constant) and create.value is True
            ):
                continue
            if not has_unlink:
                yield self.finding(
                    mod,
                    node,
                    "SharedMemory(create=True) but this module never calls "
                    ".unlink(); the segment outlives the process",
                )
            elif not astutil.in_try_protected(node):
                yield self.finding(
                    mod,
                    node,
                    "SharedMemory(create=True) outside a try block; a failure "
                    "before cleanup registration leaks the segment",
                )

    # -- chip/backend locals --------------------------------------------
    def _check_locals(self, mod, func) -> Iterator[Finding]:
        ctor_sites: Dict[str, ast.AST] = {}
        for stmt in astutil.local_statements(func):
            for target, value in astutil.assign_targets(stmt):
                if isinstance(target, ast.Name) and _is_ctor_call(value):
                    ctor_sites[target.id] = value
        for name, site in ctor_sites.items():
            if not self._needs_close(func, name):
                continue
            yield self.finding(
                mod,
                site,
                f"{name} holds a chip/backend that never escapes this "
                "function and is never closed; call .close() in a finally "
                "or use a context manager",
            )

    @staticmethod
    def _needs_close(func, name: str) -> bool:
        """True when ``name`` is only used as a method receiver, sans close."""
        for node in astutil.local_nodes(func):
            if not isinstance(node, ast.Name) or node.id != name:
                continue
            if isinstance(node.ctx, ast.Store):
                continue
            # Walk up any attribute chain: X.a.b -> is the top a call func?
            top = node
            par = astutil.parent(top)
            while isinstance(par, ast.Attribute):
                top = par
                par = astutil.parent(top)
            if (
                isinstance(par, ast.Call)
                and par.func is top
                and isinstance(top, ast.Attribute)
            ):
                if top.attr == "close":
                    return False  # explicitly closed somewhere
                continue  # plain method use, keep scanning
            if isinstance(par, ast.withitem):
                return False  # context-managed
            return False  # escapes: argument, return, store, collection...
        return True

    # -- crash/fault hooks ----------------------------------------------
    def _check_hooks(self, mod) -> Iterator[Finding]:
        classes: Dict[Optional[str], List[ast.Call]] = {}
        disarms: Dict[Optional[str], Set[str]] = {}
        class_methods: Dict[str, Set[str]] = {}
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ClassDef):
                class_methods[node.name] = {
                    stmt.name
                    for stmt in node.body
                    if isinstance(stmt, astutil.FUNCTION_TYPES)
                }
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            attr = astutil.call_attr(node)
            if attr not in HOOKS:
                continue
            cls = astutil.enclosing_class(node)
            scope = cls.name if cls is not None else None
            first = node.args[0] if node.args else None
            if first is None or astutil.is_none(first):
                disarms.setdefault(scope, set()).add(attr)
                continue
            receiver = astutil.receiver_dotted(node)
            if (
                receiver == "self"
                and cls is not None
                and attr in class_methods.get(cls.name, ())
            ):
                continue  # the hook's own implementation layer
            classes.setdefault(scope, []).append(node)
        module_disarms = set().union(*disarms.values()) if disarms else set()
        for scope, calls in classes.items():
            for call in calls:
                attr = astutil.call_attr(call)
                scoped = disarms.get(scope, set())
                if attr in scoped or (scope is None and attr in module_disarms):
                    continue
                yield self.finding(
                    mod,
                    call,
                    f"{attr}(...) arms a fault hook with no matching "
                    f"{attr}(None) disarm in the same "
                    f"{'class' if scope else 'module'}; a leaked hook fires "
                    "on later unrelated operations",
                )
