"""spawn-safety: unpicklable state crossing the process boundary.

The process executor (PR 7) spawns workers, so everything a worker
receives — the ``ShardFactory`` recipe, the ``Process`` target, task
payloads on the pipe — must survive ``pickle``.  Lambdas, nested
functions, lock objects and open file handles do not; under the
``spawn`` start method the failure surfaces only at runtime, on a
platform that may not be the developer's.  This rule flags, anywhere in
the tree:

* ``ShardFactory(...)`` construction whose arguments contain a lambda,
  a ``threading`` lock/condition/semaphore, or an ``open(...)`` call;
* ``Process(target=...)`` whose target is a lambda or a function
  defined inside the enclosing function (closures don't pickle);
* ``.send(...)`` on a pipe-like connection (receiver named ``*conn*``)
  with a lambda in the payload.

Parent-side closures (thread-pool ``submit``/``submit_task`` thunks)
are fine and are not flagged — only spawn/pickle boundaries are.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from .. import astutil
from ..findings import Finding
from ..registry import Rule, register_rule

THREADING_OBJECTS = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event"}


def _unpicklable_in(expr: ast.AST) -> Optional[str]:
    """Describe the first unpicklable construct inside ``expr``, if any."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Lambda):
            return "a lambda"
        if isinstance(node, ast.Call):
            name = astutil.call_func_name(node)
            if name in THREADING_OBJECTS:
                dotted = astutil.dotted_name(node.func) or name
                if dotted == name or dotted.startswith(("threading.", "multiprocessing.")):
                    return f"a {dotted}() synchronisation primitive"
            if isinstance(node.func, ast.Name) and node.func.id == "open":
                return "an open file handle"
    return None


def _nested_function_names(func) -> Set[str]:
    names: Set[str] = set()
    for node in astutil.local_nodes(func):
        if isinstance(node, astutil.FUNCTION_TYPES):
            names.add(node.name)
    return names


@register_rule
class SpawnSafetyRule(Rule):
    id = "spawn-safety"
    summary = "lambdas, locks or open handles crossing the process boundary"
    hint = (
        "pass picklable data (paths, specs, dotted names) and rebuild the "
        "object inside the worker; see ShardFactory in executor_proc.py"
    )

    def run(self, project) -> Iterator[Finding]:
        for mod in project.modules:
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                yield from self._check_factory(mod, node)
                yield from self._check_process_target(mod, node)
                yield from self._check_conn_send(mod, node)

    def _check_factory(self, mod, call: ast.Call) -> Iterator[Finding]:
        name = astutil.call_func_name(call)
        if name != "ShardFactory":
            return
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            what = _unpicklable_in(arg)
            if what is not None:
                yield self.finding(
                    mod,
                    arg,
                    f"ShardFactory recipe captures {what}; recipes are pickled "
                    "into spawned workers and must hold plain data only",
                )

    def _check_process_target(self, mod, call: ast.Call) -> Iterator[Finding]:
        name = astutil.call_func_name(call)
        if name != "Process":
            return
        target = astutil.keyword_arg(call, "target")
        if target is None:
            return
        if isinstance(target, ast.Lambda):
            yield self.finding(
                mod,
                target,
                "Process target is a lambda; spawn pickles the target, so it "
                "must be a module-level function",
            )
            return
        if isinstance(target, ast.Name):
            func = astutil.enclosing_function(call)
            if func is not None and target.id in _nested_function_names(func):
                yield self.finding(
                    mod,
                    target,
                    f"Process target {target.id!r} is a nested function; spawn "
                    "pickles the target, so it must be module-level",
                )

    def _check_conn_send(self, mod, call: ast.Call) -> Iterator[Finding]:
        if astutil.call_attr(call) != "send":
            return
        receiver = astutil.receiver_dotted(call)
        if receiver is None or "conn" not in receiver.split(".")[-1]:
            return
        for arg in call.args:
            lam = astutil.contains_lambda(arg)
            if lam is not None:
                yield self.finding(
                    mod,
                    lam,
                    "lambda sent over a process pipe; pipe payloads are "
                    "pickled and lambdas are not picklable",
                )
