"""phase-discipline: phase scopes and timers must survive exceptions.

The per-phase accounting that backs every figure reproduction rests on
strict pairing: a phase pushed onto the thread-local stack must be
popped, a begin hook must see its end hook, a timer started must be
added to its accumulator — *on every exit path*, or a single raising
write skews all later attribution (the pre-PR-4 ``gc_time_us`` leak).
Three shapes are enforced:

* ``stats.phase(name)`` must be used as a ``with`` context (or handed
  to ``ExitStack.enter_context``), never called bare — the scope object
  pops the stack in ``__exit__``;
* paired begin/end hooks (``on_write_begin``/``on_write_end``,
  ``pause``/``resume``, ``begin_phase``/``end_phase``) called on the
  same receiver in one function: the end call must sit in a ``finally``
  block, and a begin with no end at all is flagged;
* timers (``x = chip.clock_us`` / ``x = time.perf_counter()``) whose
  elapsed value feeds an accumulator (``+=``) or a ``record*()`` call:
  the sink must sit in a ``finally`` block.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .. import astutil
from ..findings import Finding
from ..registry import Rule, register_rule

PAIRS: Tuple[Tuple[str, str], ...] = (
    ("on_write_begin", "on_write_end"),
    ("pause", "resume"),
    ("begin_phase", "end_phase"),
)

_PAIR_NAMES = {name for pair in PAIRS for name in pair}

TIMER_SOURCES = {"perf_counter", "monotonic"}


@register_rule
class PhaseDisciplineRule(Rule):
    id = "phase-discipline"
    summary = "phase scopes, begin/end hooks or timers not exception-safe"
    hint = (
        "use `with stats.phase(name):`, and put end hooks / timer "
        "accumulation in a `finally:` block"
    )

    def run(self, project) -> Iterator[Finding]:
        for mod in project.modules:
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.Call):
                    yield from self._check_phase_call(mod, node)
            for func in astutil.walk_functions(mod.tree):
                yield from self._check_pairs(mod, func)
                yield from self._check_timers(mod, func)

    # -- stats.phase(...) must be a context manager ---------------------
    def _check_phase_call(self, mod, call: ast.Call) -> Iterator[Finding]:
        if astutil.call_attr(call) != "phase":
            return
        par = astutil.parent(call)
        if isinstance(par, ast.withitem) and par.context_expr is call:
            return
        if isinstance(par, ast.Call) and astutil.call_func_name(par) == "enter_context":
            return
        yield self.finding(
            mod,
            call,
            "stats.phase(...) called outside a `with` statement; the scope "
            "object only pops the phase stack via __exit__",
        )

    # -- begin/end hook pairing -----------------------------------------
    def _check_pairs(self, mod, func) -> Iterator[Finding]:
        if func.name in _PAIR_NAMES:
            return  # the implementation of a hook, not a use of it
        calls: List[Tuple[str, Optional[str], ast.Call]] = []
        for node in astutil.local_nodes(func):
            if isinstance(node, ast.Call):
                attr = astutil.call_attr(node)
                if attr in _PAIR_NAMES:
                    calls.append((attr, astutil.receiver_dotted(node), node))
        if not calls:
            return
        for begin_name, end_name in PAIRS:
            begins = [c for c in calls if c[0] == begin_name]
            ends = [c for c in calls if c[0] == end_name]
            for _, receiver, begin_call in begins:
                matching = [e for e in ends if e[1] == receiver]
                if not matching:
                    yield self.finding(
                        mod,
                        begin_call,
                        f"{begin_name}() has no matching {end_name}() on the "
                        f"same receiver in this function",
                    )
                    continue
                for _, _, end_call in matching:
                    if not astutil.in_finally(end_call):
                        yield self.finding(
                            mod,
                            end_call,
                            f"{end_name}() must run in a `finally:` block so "
                            f"it executes even when the section between "
                            f"{begin_name}() and {end_name}() raises",
                        )

    # -- timer sinks ----------------------------------------------------
    def _check_timers(self, mod, func) -> Iterator[Finding]:
        timer_vars: Set[str] = set()
        sinks: List[ast.AST] = []
        for stmt in astutil.local_statements(func):
            for target, value in astutil.assign_targets(stmt):
                if isinstance(target, ast.Name) and self._is_timer_expr(
                    value, timer_vars
                ):
                    timer_vars.add(target.id)
            if isinstance(stmt, ast.AugAssign) and self._references(
                stmt.value, timer_vars
            ):
                sinks.append(stmt)
        if not timer_vars:
            return
        for node in astutil.local_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            attr = astutil.call_attr(node)
            if attr is None or not attr.startswith("record"):
                continue
            if any(self._references(arg, timer_vars) for arg in node.args):
                sinks.append(node)
        for sink in sinks:
            if not astutil.in_finally(sink):
                yield self.finding(
                    mod,
                    sink,
                    "timer accumulation must run in a `finally:` block so an "
                    "exception in the timed section cannot skip it",
                )

    @staticmethod
    def _is_timer_expr(value: ast.AST, timer_vars: Set[str]) -> bool:
        """Clock read, or an expression derived from a known timer var."""
        for node in ast.walk(value):
            if isinstance(node, ast.Attribute) and node.attr == "clock_us":
                return True
            if isinstance(node, ast.Call):
                name = astutil.call_func_name(node)
                if name in TIMER_SOURCES:
                    return True
            if isinstance(node, ast.Name) and node.id in timer_vars:
                return True
        return False

    @staticmethod
    def _references(expr: ast.AST, names: Set[str]) -> bool:
        return any(
            isinstance(node, ast.Name) and node.id in names
            for node in ast.walk(expr)
        )
