"""journal-flush-before-ack: OPEN_BLOCK records must commit in-function.

The mapping journal's one hard ordering rule (docs/recovery.md): the
``OPEN_BLOCK`` record for a freshly opened data block must be group-
committed to flash *before* the block's first program can land.  Every
other record kind may buffer — losing it at a crash is safe because the
seeded tail scan re-derives the state it describes — but an open block
the journal never acknowledged is invisible to that scan, and every
page programmed into it is silently lost.

The enforced shape is lexical, like the other pairing rules: any call
``record(REC_OPEN_BLOCK, ...)`` must be followed, later in the same
function body, by a ``commit()`` call.  A commit *before* the record
does not count (it flushed earlier records, not this one), and commits
inside nested functions do not count either.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from .. import astutil
from ..findings import Finding
from ..registry import Rule, register_rule


def _is_open_block_record(call: ast.Call) -> bool:
    if astutil.call_func_name(call) != "record" or not call.args:
        return False
    name = astutil.dotted_name(call.args[0])
    return name is not None and name.split(".")[-1] == "REC_OPEN_BLOCK"


@register_rule
class JournalFlushBeforeAckRule(Rule):
    id = "journal-flush-before-ack"
    summary = "OPEN_BLOCK journal record without a following commit()"
    hint = (
        "call commit() after record(REC_OPEN_BLOCK, ...) in the same "
        "function, before the opened block's first program can land"
    )

    def run(self, project) -> Iterator[Finding]:
        for mod in project.modules:
            for func in astutil.walk_functions(mod.tree):
                yield from self._check_function(mod, func)

    def _check_function(self, mod, func) -> Iterator[Finding]:
        records: List[ast.Call] = []
        commits: List[Tuple[int, int]] = []
        for node in astutil.local_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            if _is_open_block_record(node):
                records.append(node)
            elif astutil.call_func_name(node) == "commit":
                commits.append((node.lineno, node.col_offset))
        for call in records:
            pos = (call.lineno, call.col_offset)
            if not any(commit > pos for commit in commits):
                yield self.finding(
                    mod,
                    call,
                    "record(REC_OPEN_BLOCK, ...) is not followed by commit() "
                    "in this function; an unacknowledged open block is "
                    "invisible to the restart tail scan and its pages are "
                    "silently lost",
                )
