"""single-writer: shard mutators belong to the executor layer.

Each shard driver is single-threaded state; the concurrency design
(docs/concurrency.md) gives every shard exactly one writer — the
executor worker that owns its mailbox.  Application code reaches a
shard *through* the sharded driver's router, never by plucking
``driver.shards[i]`` out and mutating it directly: a direct call races
with the owning worker and corrupts the shard's mapping tables with no
error raised.

The rule flags calls to shard mutators (``write_page``, ``flush``,
``load_page``...) on receivers derived from a ``.shards`` sequence —
direct subscripts (``driver.shards[0].flush()``), loop variables
(``for s in driver.shards: s.flush()``), locals
(``s = driver.shards[i]``) and lambda defaults — outside the sharding
layer itself (driver/executor/recovery modules, which *are* the owning
layer).  Read-only access (stats, counters) is fine and not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from .. import astutil
from ..findings import Finding
from ..registry import Rule, register_rule
from . import path_matches

MUTATORS = {
    "write_page",
    "write_pages",
    "load_page",
    "load_pages",
    "flush",
    "group_flush",
    "end_of_load",
}

ALLOWED_PATHS = (
    "repro/sharding/driver.py",
    "repro/sharding/executor.py",
    "repro/sharding/executor_proc.py",
    "repro/sharding/recovery.py",
)


def _is_shards_expr(node: ast.AST) -> bool:
    dotted = astutil.dotted_name(node)
    if dotted is None:
        return False
    return dotted.split(".")[-1] in ("shards", "_shards")


def _is_shard_subscript(node: ast.AST) -> bool:
    return isinstance(node, ast.Subscript) and _is_shards_expr(node.value)


@register_rule
class SingleWriterRule(Rule):
    id = "single-writer"
    summary = "shard-owned driver mutators called outside the executor layer"
    hint = (
        "route the operation through the sharded driver (it owns the "
        "routing and the per-shard mailboxes) instead of mutating "
        "driver.shards[i] directly"
    )

    def run(self, project) -> Iterator[Finding]:
        for mod in project.modules:
            if path_matches(mod.rel, ALLOWED_PATHS):
                continue
            for func in astutil.walk_functions(mod.tree):
                yield from self._check_scope(
                    mod, list(astutil.local_nodes(func))
                )
            yield from self._check_scope(mod, self._module_level_nodes(mod.tree))
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.Lambda):
                    yield from self._check_lambda(mod, node)

    @staticmethod
    def _module_level_nodes(tree) -> list:
        nodes = []
        for stmt in getattr(tree, "body", []):
            if isinstance(stmt, astutil.FUNCTION_TYPES + (ast.ClassDef,)):
                continue
            nodes.extend(ast.walk(stmt))
        return nodes

    def _check_scope(self, mod, nodes) -> Iterator[Finding]:
        shard_names: Set[str] = set()
        for node in nodes:
            if isinstance(node, ast.For):
                shard_names.update(self._loop_bindings(node))
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                for target, value in astutil.assign_targets(node):
                    if isinstance(target, ast.Name) and _is_shard_subscript(value):
                        shard_names.add(target.id)
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            yield from self._check_call(mod, node, shard_names)

    @staticmethod
    def _loop_bindings(loop: ast.For) -> Set[str]:
        names: Set[str] = set()
        iter_expr = loop.iter
        target = loop.target
        if isinstance(iter_expr, ast.Call) and astutil.call_func_name(iter_expr) in (
            "enumerate",
            "reversed",
            "list",
        ):
            if iter_expr.args:
                inner = iter_expr.args[0]
                if _is_shards_expr(inner):
                    if (
                        astutil.call_func_name(iter_expr) == "enumerate"
                        and isinstance(target, ast.Tuple)
                        and len(target.elts) == 2
                        and isinstance(target.elts[1], ast.Name)
                    ):
                        names.add(target.elts[1].id)
                    elif isinstance(target, ast.Name):
                        names.add(target.id)
        elif _is_shards_expr(iter_expr) and isinstance(target, ast.Name):
            names.add(target.id)
        return names

    def _check_call(
        self, mod, call: ast.Call, shard_names: Set[str]
    ) -> Iterator[Finding]:
        attr = astutil.call_attr(call)
        if attr not in MUTATORS:
            return
        receiver = call.func.value  # type: ignore[union-attr]
        described: Optional[str] = None
        if _is_shard_subscript(receiver):
            described = astutil.dotted_name(receiver.value)  # type: ignore[union-attr]
            described = f"{described}[...]"
        elif isinstance(receiver, ast.Name) and receiver.id in shard_names:
            described = receiver.id
        if described is not None:
            yield self.finding(
                mod,
                call,
                f"direct call to shard mutator {described}.{attr}() outside "
                "the sharding layer violates single-writer ownership",
            )

    def _check_lambda(self, mod, lam: ast.Lambda) -> Iterator[Finding]:
        bound: Set[str] = set()
        args = lam.args
        positional = args.posonlyargs + args.args
        defaults = args.defaults
        if defaults:
            for arg, default in zip(positional[-len(defaults):], defaults):
                if _is_shard_subscript(default) or _is_shards_expr(default):
                    bound.add(arg.arg)
        for kwarg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None and (
                _is_shard_subscript(default) or _is_shards_expr(default)
            ):
                bound.add(kwarg.arg)
        if not bound:
            return
        for node in ast.walk(lam.body):
            if isinstance(node, ast.Call):
                yield from self._check_call(mod, node, bound)
