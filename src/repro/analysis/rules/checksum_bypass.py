"""checksum-bypass: ``verify=False`` reads outside fsck/recovery.

Spare-area checksums (PR 6) only protect readers who check them.
``FlashChip.read_page(..., verify=False)`` exists for exactly one
consumer: the repair path, which must be able to *look at* a corrupt
page to heal it (``core/fsck.py`` reads whole blocks unverified and
re-verifies per-page to localise damage).  Anywhere else, skipping
verification turns a detectable single-page failure into silent data
corruption — the failure mode the paper's Section 6 durability argument
assumes away.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .. import astutil
from ..findings import Finding
from ..registry import Rule, register_rule
from . import path_matches

READ_CALLS = {"read_page", "read_pages"}

ALLOWED_PATHS = (
    "repro/core/fsck.py",
    "repro/core/recovery.py",
)


@register_rule
class ChecksumBypassRule(Rule):
    id = "checksum-bypass"
    summary = "verify=False flash reads outside the fsck/recovery modules"
    hint = (
        "read with verify=True (the default) and let IntegrityError surface, "
        "or move the unverified read into core/fsck.py / core/recovery.py"
    )

    def run(self, project) -> Iterator[Finding]:
        for mod in project.modules:
            if path_matches(mod.rel, ALLOWED_PATHS):
                continue
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = astutil.call_func_name(node)
                if name not in READ_CALLS:
                    continue
                verify = astutil.keyword_arg(node, "verify")
                if verify is not None and astutil.is_false(verify):
                    yield self.finding(
                        mod,
                        node,
                        f"{name}(..., verify=False) bypasses spare-area "
                        "checksum verification outside the repair modules",
                    )
