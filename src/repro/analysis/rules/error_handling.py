"""bare-except: bare ``except:`` and silently swallowed broad catches.

Worker and daemon loops are where swallowed errors hurt most: a worker
that eats an exception keeps draining its mailbox and acking tasks, so
the parent never learns the shard is corrupt (the PR 7 executor went
through review precisely to route worker errors back through the result
channel).  Two shapes are flagged everywhere:

* bare ``except:`` — also catches ``KeyboardInterrupt``/``SystemExit``,
  making workers unkillable;
* ``except Exception:`` / ``except BaseException:`` whose body is only
  ``pass``/``...`` — the error vanishes without a trace.

Deliberate best-effort swallows (e.g. closing an already-broken chip in
a worker's cleanup path) must carry an inline
``# repro: allow[bare-except] -- why`` justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import Rule, register_rule

BROAD = {"Exception", "BaseException"}


def _is_broad(expr) -> bool:
    if isinstance(expr, ast.Name) and expr.id in BROAD:
        return True
    if isinstance(expr, ast.Tuple):
        return any(_is_broad(e) for e in expr.elts)
    return False


def _only_pass(body) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


@register_rule
class BareExceptRule(Rule):
    id = "bare-except"
    summary = "bare except clauses and silently swallowed broad exceptions"
    hint = (
        "catch a specific exception, or record/re-raise the error; best-effort "
        "cleanup swallows need `# repro: allow[bare-except] -- reason`"
    )

    def run(self, project) -> Iterator[Finding]:
        for mod in project.modules:
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if node.type is None:
                    yield self.finding(
                        mod,
                        node,
                        "bare `except:` also catches KeyboardInterrupt and "
                        "SystemExit; catch a specific exception type",
                    )
                elif _is_broad(node.type) and _only_pass(node.body):
                    name = (
                        node.type.id
                        if isinstance(node.type, ast.Name)
                        else "a broad tuple"
                    )
                    yield self.finding(
                        mod,
                        node,
                        f"`except {name}: pass` swallows the error with no "
                        "trace; log, collect, or re-raise it",
                    )
