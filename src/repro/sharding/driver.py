"""The sharded multi-chip driver: N page-update methods behind one façade.

:class:`ShardedDriver` implements the :class:`PageUpdateMethod` contract
over a fleet of per-shard drivers, each owning its own chip, allocator,
GC engine and (for PDL) differential write buffer.  A
:class:`~repro.sharding.router.ShardRouter` decides which shard owns
each logical page; shard drivers index their tables by the *global* pid,
so no id translation happens anywhere — the router is the only routing
state, which is what keeps recovery trivial (rebuild each shard, reuse
the router).

Because every shard is an independent device with its own free-space
pool, sharding multiplies the paper's mechanisms for free:

* **GC parallelism** — each shard reclaims its own blocks; a GC storm on
  one shard never stalls traffic routed to the others;
* **recovery parallelism** — the Figure-11 scan is per-chip, so an
  N-shard array recovers in the wall-clock time of one shard's scan;
* **group flush** — the Section-4.5 write-through generalizes to
  :meth:`group_flush`, which drains every shard's differential write
  buffer in one batched call, the natural commit point for a DBMS
  checkpoint running above the array.

This base class executes everything on the calling thread, one shard
after another; parallelism appears only in the simulated clock model
(the busiest chip's share of a window).  Its subclass
:class:`~repro.sharding.executor.ParallelShardedDriver` executes shards
on real worker threads — see ``docs/concurrency.md`` for the execution
model and how the two time metrics relate.

The driver is method-agnostic: any mix of PDL/OPU/IPU/IPL shards built
by :func:`repro.methods.make_method` works, although homogeneous fleets
(the ``"PDL (256B) x4"`` labels) are the measured configuration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..flash.chip import FlashChip
from ..flash.spec import FlashSpec
from ..ftl.base import ChangeRun, PageUpdateMethod
from ..ftl.errors import ConfigurationError
from .router import HashRouter, ShardRouter
from .stats import AggregateStats


class ShardedDriver(PageUpdateMethod):
    """A :class:`PageUpdateMethod` routing pages across shard drivers."""

    def __init__(
        self,
        shards: Sequence[PageUpdateMethod],
        router: Optional[ShardRouter] = None,
    ):
        # No super().__init__: there is no single chip; spec/stats/page_size
        # are overridden below instead.
        if not shards:
            raise ConfigurationError("ShardedDriver needs at least one shard")
        self.shards: List[PageUpdateMethod] = list(shards)
        self.router = router if router is not None else HashRouter(len(self.shards))
        if self.router.n_shards != len(self.shards):
            raise ConfigurationError(
                f"router partitions {self.router.n_shards} shards but "
                f"{len(self.shards)} shard drivers were supplied"
            )
        sizes = {shard.page_size for shard in self.shards}
        if len(sizes) != 1:
            raise ConfigurationError(
                f"shards disagree on logical page size: {sorted(sizes)}"
            )
        self.name = f"{self.shards[0].name} x{len(self.shards)}"
        self.tightly_coupled = any(s.tightly_coupled for s in self.shards)
        self._stats = AggregateStats([s.stats for s in self.shards])
        self.group_flushes = 0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_index(self, pid: int) -> int:
        """The shard index owning ``pid`` (validated against the fleet)."""
        index = self.router.shard_of(pid)
        if not 0 <= index < len(self.shards):
            raise ConfigurationError(
                f"router sent pid {pid} to shard {index} of {len(self.shards)}"
            )
        return index

    def shard_for(self, pid: int) -> PageUpdateMethod:
        return self.shards[self.shard_index(pid)]

    # ------------------------------------------------------------------
    # PageUpdateMethod contract
    # ------------------------------------------------------------------
    def load_page(self, pid: int, data: bytes) -> None:
        self.shard_for(pid).load_page(pid, data)

    def end_of_load(self) -> None:
        for shard in self.shards:
            shard.end_of_load()

    def read_page(self, pid: int) -> bytes:
        return self.shard_for(pid).read_page(pid)

    def write_page(
        self, pid: int, data: bytes, update_logs: Optional[List[ChangeRun]] = None
    ) -> None:
        self.shard_for(pid).write_page(pid, data, update_logs=update_logs)

    def load_pages(self, pages) -> None:
        """Bulk-load a batch by fanning it out shard-by-shard.

        Each shard receives its members of the batch in order and loads
        them through its own batched path (PDL shards program a whole
        allocation block per chip call).
        """
        per_shard: Dict[int, List] = {}
        for pid, data in pages:
            per_shard.setdefault(self.shard_index(pid), []).append((pid, data))
        for index, group in per_shard.items():
            self.shards[index].load_pages(group)

    def write_pages(self, pages, update_logs=None) -> None:
        """Reflect a batch shard-by-shard (the sharded buffer-pool flush).

        Pages owned by the same shard keep their relative order;
        cross-shard order is immaterial because shards are independent
        devices.  Each shard sees one batched call, so per-shard batching
        (PDL's prefetched base reads) still applies.
        """
        per_shard: Dict[int, List] = {}
        for pid, data in pages:
            per_shard.setdefault(self.shard_index(pid), []).append((pid, data))
        for index, group in per_shard.items():
            logs = None
            if update_logs is not None:
                logs = {pid: update_logs[pid] for pid, _ in group if pid in update_logs}
            self.shards[index].write_pages(group, update_logs=logs)

    def flush(self) -> None:
        """Write-through over the whole array (see :meth:`group_flush`)."""
        self.group_flush()

    def _split_by_shard(self, pages, update_logs=None) -> Dict[int, tuple]:
        """Group ``(pid, data)`` pairs (and their logs) by owning shard."""
        per_shard: Dict[int, List] = {}
        for pid, data in pages:
            per_shard.setdefault(self.shard_index(pid), []).append((pid, data))
        out: Dict[int, tuple] = {}
        for index, group in per_shard.items():
            logs = None
            if update_logs is not None:
                logs = {pid: update_logs[pid] for pid, _ in group if pid in update_logs}
            out[index] = (group, logs)
        return out

    def group_flush(self, pages=None, update_logs=None) -> None:
        """Batched flush: drain every shard's buffers in one call.

        All shards flush before control returns, so a caller observing
        the return has a single durability horizon across the array —
        the sharded generalization of Section 4.5's write-through.  The
        flushes are independent per-chip programs; this serial façade
        runs them one after another (simulated parallel time is still
        the slowest shard's share), while
        :class:`~repro.sharding.executor.ParallelShardedDriver`
        overrides this method to fan them out across its worker threads
        for real wall-clock overlap — see ``docs/concurrency.md``.

        ``pages`` (with optional ``update_logs``) is the buffer-pool
        flush entry point: the batch is reflected shard-by-shard and
        each shard's buffers are drained in the same pass, so a pool's
        ``flush_all`` is one driver call instead of a ``write_pages``
        followed by a separate flush sweep.  Per-shard operation order
        is identical to the two-call sequence (writes, then flush).
        """
        if pages is None:
            for shard in self.shards:
                shard.flush()
        else:
            split = self._split_by_shard(pages, update_logs)
            for index, shard in enumerate(self.shards):
                entry = split.get(index)
                if entry is not None:
                    group, logs = entry
                    shard.write_pages(group, update_logs=logs)
                shard.flush()
        self.group_flushes += 1

    # ------------------------------------------------------------------
    # Aggregated introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def chips(self) -> List[FlashChip]:
        return [shard.chip for shard in self.shards]

    @property
    def spec(self) -> FlashSpec:
        """The per-shard chip spec (shards share one geometry in practice)."""
        return self.shards[0].spec

    @property
    def stats(self) -> AggregateStats:  # type: ignore[override]
        return self._stats

    @property
    def page_size(self) -> int:
        return self.shards[0].page_size

    @property
    def total_blocks(self) -> int:
        """Erase blocks across the whole array (capacity planning, GC
        steady-state targets)."""
        return sum(shard.spec.n_blocks for shard in self.shards)

    # ------------------------------------------------------------------
    # Lifecycle (persistent backends)
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Push every shard chip's backend to durable media."""
        for chip in self.chips:
            chip.sync()

    def close(self) -> None:
        """Sync and close every shard chip's backend."""
        for chip in self.chips:
            chip.close()

    def chip_clocks(self) -> List[float]:
        """Each shard chip's monotonic clock; ``max`` of window deltas is
        the array's parallel elapsed time."""
        return [chip.clock_us for chip in self.chips]

    def gc_report(self) -> Dict[str, object]:
        """Aggregated space-management health across the array.

        Per shard: completed collections, pages relocated, incremental
        steps taken, current GC debt (blocks below the trigger level,
        in-flight victim included) and cumulative reclamation time.
        Array-wide: the same counters summed, plus the pooled per-write
        stall tail (p99 / max) — the number incremental GC exists to
        shrink.  Shards without a pluggable collector (e.g. IPU) report
        ``None``.
        """
        per_shard: List[Optional[Dict[str, object]]] = []
        for shard in self.shards:
            gc = getattr(shard, "gc", None)
            if gc is None:
                per_shard.append(None)
                continue
            per_shard.append(
                {
                    "policy": gc.policy_label,
                    "collections": gc.collections,
                    "pages_relocated": gc.pages_relocated,
                    "incremental_steps": gc.steps,
                    "debt_blocks": gc.gc_debt(),
                    "gc_time_us": gc.gc_time_us,
                }
            )
        present = [entry for entry in per_shard if entry is not None]
        return {
            "per_shard": per_shard,
            "total_collections": sum(e["collections"] for e in present),
            "total_pages_relocated": sum(e["pages_relocated"] for e in present),
            "total_incremental_steps": sum(e["incremental_steps"] for e in present),
            "total_debt_blocks": sum(e["debt_blocks"] for e in present),
            "write_stall_p99_us": self._stats.write_stall_percentile(99),
            "write_stall_max_us": self._stats.max_write_stall_us,
        }

    def wear_report(self) -> Dict[str, object]:
        """Aggregated wear: per-shard erase totals and worst block."""
        per_shard = [shard.stats.total_erases for shard in self.shards]
        worst = max(
            (max(shard.stats.block_erases, default=0) for shard in self.shards),
            default=0,
        )
        return {
            "per_shard_erases": per_shard,
            "total_erases": sum(per_shard),
            "max_block_erases": worst,
        }

    def fsck(self, repair: bool = True):
        """Run :func:`repro.core.fsck.fsck_driver` over every shard.

        Returns one merged :class:`~repro.core.fsck.FsckReport` whose
        ``per_shard`` list holds the individual shard reports (in shard
        order; shards without an fsck-capable driver contribute an empty
        report).  This serial façade scans shards one after another;
        :class:`~repro.sharding.executor.ParallelShardedDriver` overrides
        it to fan the scans out across its workers.
        """
        from ..core.fsck import FsckReport

        reports = []
        for shard in self.shards:
            if hasattr(shard, "fsck"):
                reports.append(shard.fsck(repair=repair))
            else:
                reports.append(FsckReport())
        return FsckReport.merge(reports)

    def differential_page_count(self) -> int:
        """Referenced differential pages, summed over PDL shards."""
        return sum(
            shard.differential_page_count()
            for shard in self.shards
            if hasattr(shard, "differential_page_count")
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ShardedDriver {self.name!r} router={type(self.router).__name__} "
            f"shards={len(self.shards)}>"
        )
