"""Process-per-shard execution: shard parallelism past the GIL.

:class:`~repro.sharding.executor.ShardExecutor` made shard independence
real in wall-clock time — but only up to the GIL: with device waits
disabled, its worker *threads* time-slice one core and eight shards
deliver ~1x.  This module moves each shard into its own **worker
process**, so pure-Python shard work (differential encoding, mapping
table updates, GC) runs on separate cores:

* :class:`ShardFactory` — a picklable recipe for building one shard's
  driver *inside* its worker (fresh memory chip, reopened file image,
  or a Figure-11 recovery of an existing image).  Shipping a recipe
  instead of a live driver is what spawn-safety means here: nothing
  crosses the process boundary except plain data.
* :class:`ProcessShardExecutor` — one spawned worker process per shard,
  honoring the thread executor's mailbox/futures contract: tasks are
  submitted to a per-shard mailbox, return
  :class:`~concurrent.futures.Future` objects, and execute in FIFO
  order on their shard's single writer.  A parent-side *channel thread*
  per worker drains the mailbox and speaks the pipe protocol.
* **Shared-memory page frames** — page payloads travel through a
  per-worker :class:`multiprocessing.shared_memory.SharedMemory` ring
  (``frames_per_worker`` frames of one page each), not through pickle.
  A batch larger than the ring is sent in ring-sized chunks.  Because a
  channel thread has at most one command in flight, frames are reusable
  the moment the worker's reply arrives (see ``docs/concurrency.md``
  for the full frame lifecycle).
* :class:`ProcessShardedDriver` — the
  :class:`~repro.sharding.driver.ShardedDriver`-shaped façade on top:
  same routing, batched fan-out, fsck/GC/wear reporting and label
  round-tripping (``"PDL (256B) x8 proc"``), with per-shard
  :class:`~repro.flash.stats.FlashStats` accumulated worker-side and
  merged into an :class:`~repro.sharding.stats.AggregateStats` view on
  read (and snapshotted once more on shutdown, so post-close reporting
  still works).

Commands and results travel over pipes; exceptions raised in a worker
are pickled back and re-raised in the caller (with the worker traceback
attached as a note on Python ≥ 3.11), so error handling looks exactly
like the thread executor's.
"""

from __future__ import annotations

import pickle
import threading
import traceback
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import get_context, shared_memory
from queue import SimpleQueue
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..flash.spec import FlashSpec
from ..flash.stats import DEFAULT_PHASE
from ..ftl.base import ChangeRun, PageUpdateMethod
from ..ftl.errors import ConcurrencyError, ConfigurationError
from .executor import gather
from .router import HashRouter, ShardRouter
from .stats import AggregateStats

#: Sentinel dropped into a mailbox to stop its channel thread.
_STOP = None


class WorkerCrashError(ConcurrencyError):
    """A shard worker process died or failed to start."""


# ----------------------------------------------------------------------
# Spawn-safe shard recipes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardFactory:
    """Picklable recipe for building one shard's driver in its worker.

    ``path=None`` builds a fresh in-memory chip; a path reopens that
    :class:`~repro.flash.backend.FileBackend` image (created by the
    parent, so geometry errors surface before any process is spawned).
    ``recover=True`` additionally runs the Figure-11 spare-area scan
    over the image instead of building a fresh driver — the process
    variant of :func:`repro.core.recovery.recover_driver`.

    Every field must be picklable (the spawn start method re-imports
    the module and unpickles the factory in the child); ``driver_kwargs``
    carries per-shard constructor tuning such as ``gc_config``.
    """

    label: str
    spec: FlashSpec
    path: Optional[str] = None
    recover: bool = False
    max_differential_size: int = 256
    read_cache_pages: int = 0
    realtime_scale: float = 0.0
    driver_kwargs: Dict[str, Any] = field(default_factory=dict)

    def build(self) -> Tuple[PageUpdateMethod, Optional[object]]:
        """Construct ``(driver, recovery_report_or_None)`` — worker-side."""
        from ..flash.backend import FileBackend
        from ..flash.chip import FlashChip

        backend = None
        if self.path is not None:
            backend = FileBackend.open(self.path, self.spec)
        chip = FlashChip(
            self.spec,
            backend=backend,
            read_cache_pages=self.read_cache_pages,
            realtime_scale=self.realtime_scale,
        )
        if self.recover:
            from ..core.recovery import recover_driver

            driver, report = recover_driver(
                chip,
                max_differential_size=self.max_differential_size,
                **self.driver_kwargs,
            )
            return driver, report
        from ..methods import make_method

        return make_method(self.label, chip, **self.driver_kwargs), None


def factories_from_chips(
    chips: Sequence, label: str, driver_kwargs: Dict[str, Any]
) -> List[ShardFactory]:
    """Describe parent-built *pristine* chips as worker recipes.

    A worker cannot adopt a live parent object, so the chips are used
    only as configuration donors: geometry, backend kind (memory or
    file path), read-cache size and realtime scale.  File handles are
    closed here — the worker owns the image from now on.  Chips that
    already hold programmed pages are rejected: their content would be
    silently lost for memory backends, so existing images must go
    through ``recover_all(..., parallel="process")`` instead.
    """
    from ..flash.backend import FileBackend, MemoryBackend

    factories = []
    for i, chip in enumerate(chips):
        if next(iter(chip.iter_programmed_pages()), None) is not None:
            raise ConfigurationError(
                "process-backed shards rebuild their drivers inside worker "
                f"processes, but chip {i} already holds programmed pages; "
                "use recover_all(..., parallel='process') to adopt existing "
                "images"
            )
        path = None
        if isinstance(chip.backend, FileBackend):
            path = chip.backend.path
            chip.close()  # hand the image over to the worker
        elif not isinstance(chip.backend, MemoryBackend):
            raise ConfigurationError(
                "process-backed shards support memory and file backends, "
                f"not {type(chip.backend).__name__} (fault injection and "
                "other wrappers are parent-process state)"
            )
        factories.append(
            ShardFactory(
                label=label,
                spec=chip.spec,
                path=path,
                read_cache_pages=chip.cache.capacity if chip.cache is not None else 0,
                realtime_scale=chip.realtime_scale,
                driver_kwargs=dict(driver_kwargs),
            )
        )
    return factories


def recovery_factories_from_chips(
    chips: Sequence,
    max_differential_size: int,
    driver_kwargs: Dict[str, Any],
) -> List[ShardFactory]:
    """Describe existing file-backed chips as worker *recovery* recipes.

    The Figure-11 scan runs inside each worker over its reopened image;
    the parent's handles are closed here and must not be used again.
    Memory chips cannot cross the boundary (their content lives in the
    parent's address space), so they are rejected with a pointer to the
    thread executor.
    """
    from ..flash.backend import FileBackend

    factories = []
    for i, chip in enumerate(chips):
        if not isinstance(chip.backend, FileBackend):
            raise ConfigurationError(
                f"process recovery needs file-backed chips (chip {i} is "
                f"{type(chip.backend).__name__}-backed; a worker process "
                "cannot see parent memory — use parallel=True for threads)"
            )
        path = chip.backend.path
        cache_pages = chip.cache.capacity if chip.cache is not None else 0
        scale = chip.realtime_scale
        chip.close()
        factories.append(
            ShardFactory(
                label="PDL",
                spec=chip.spec,
                path=path,
                recover=True,
                max_differential_size=max_differential_size,
                read_cache_pages=cache_pages,
                realtime_scale=scale,
                driver_kwargs=dict(driver_kwargs),
            )
        )
    return factories


# ----------------------------------------------------------------------
# Worker-side protocol (module-level: resolvable after spawn re-import)
# ----------------------------------------------------------------------
def _sanitize_exc(exc: BaseException) -> Tuple[BaseException, str]:
    """Make an exception safe to send; keep the traceback as text."""
    tb = traceback.format_exc()
    try:
        pickle.loads(pickle.dumps(exc))
        return exc, tb
    except Exception:
        return ConcurrencyError(f"unpicklable worker exception: {exc!r}"), tb


def _worker_main(conn, shm_name: str, factory: ShardFactory) -> None:
    """Entry point of one shard worker process."""
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        try:
            driver, report = factory.build()
            meta = {
                "name": driver.name,
                "page_size": driver.page_size,
                "tightly_coupled": bool(getattr(driver, "tightly_coupled", False)),
                "effective_max": getattr(driver, "effective_max", None),
                "report": report,
            }
        except BaseException as exc:
            safe, tb = _sanitize_exc(exc)
            conn.send(("error", safe, tb))
            return
        conn.send(("ready", meta))
        try:
            _serve(driver, conn, shm.buf)
        finally:
            # Sync file-backed images even when the parent stops the pool
            # without an explicit close broadcast.  Double-close (after an
            # _op_close) is harmless but guarded anyway.
            try:
                driver.chip.close()
            # repro: allow[bare-except] -- worker exit path: the parent is
            # gone or stopping, there is nowhere left to report a close error
            except Exception:
                pass
    finally:
        shm.close()
        conn.close()


def _serve(driver: PageUpdateMethod, conn, buf: memoryview) -> None:
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            return  # parent died; daemon exit
        if msg[0] == "stop":
            try:
                conn.send(("ok", None))
            except OSError:
                pass
            return
        try:
            phase = msg[1]
            if phase is not None:
                with driver.stats.phase(phase):
                    result = _execute(driver, buf, msg)
            else:
                result = _execute(driver, buf, msg)
        except BaseException as exc:
            safe, tb = _sanitize_exc(exc)
            conn.send(("error", safe, tb))
        else:
            conn.send(("ok", result))


def _execute(driver: PageUpdateMethod, buf: memoryview, msg) -> object:
    op = msg[0]
    if op == "write_pages":
        _, _, metas, logs = msg
        pages = [(pid, bytes(buf[off : off + n])) for pid, off, n in metas]
        driver.write_pages(pages, update_logs=logs)
        return None
    if op == "load_pages":
        metas = msg[2]
        pages = [(pid, bytes(buf[off : off + n])) for pid, off, n in metas]
        driver.load_pages(pages)
        return None
    if op == "read_page":
        data = driver.read_page(msg[2])
        n = len(data)
        buf[:n] = data
        return n
    if op == "write_page":
        _, _, pid, n, logs = msg
        driver.write_page(pid, bytes(buf[:n]), update_logs=logs)
        return None
    if op == "load_page":
        driver.load_page(msg[2], bytes(buf[: msg[3]]))
        return None
    if op == "call":
        _, _, fn, args, kwargs = msg
        return fn(driver, *args, **kwargs)
    raise ConcurrencyError(f"unknown worker op {op!r}")


# Worker-side operations dispatched through the generic "call" command.
# They must live at module level so pickle can resolve them by name in
# the spawned child.
def _op_flush(driver):
    driver.flush()


def _op_end_of_load(driver):
    driver.end_of_load()


def _op_sync(driver):
    driver.chip.sync()


def _op_close(driver):
    driver.chip.close()


def _op_stats(driver):
    return driver.stats


def _op_reset_stats(driver):
    driver.stats.reset()


def _op_clock(driver):
    return driver.chip.clock_us


def _op_fsck(driver, repair):
    from ..core.fsck import FsckReport

    if hasattr(driver, "fsck"):
        return driver.fsck(repair=repair)
    return FsckReport()


def _op_diff_count(driver):
    if hasattr(driver, "differential_page_count"):
        return driver.differential_page_count()
    return 0


def _op_horizon(driver):
    ppmt = getattr(driver, "ppmt", None)
    if ppmt is None:
        return 0
    top = getattr(ppmt, "max_pid", None)
    if top is not None:
        # Tiered tables track the horizon; a full walk would demand-page
        # every snapshot page of the shard just to find the max.
        return top + 1
    return max((pid for pid, _entry in ppmt.items()), default=-1) + 1


def _op_gc_info(driver):
    gc = getattr(driver, "gc", None)
    if gc is None:
        return None
    return {
        "policy": gc.policy_label,
        "collections": gc.collections,
        "pages_relocated": gc.pages_relocated,
        "incremental_steps": gc.steps,
        "debt_blocks": gc.gc_debt(),
        "gc_time_us": gc.gc_time_us,
    }


def _op_final_state(driver):
    """Everything the parent may still ask about after shutdown."""
    return {
        "clock_us": driver.chip.clock_us,
        "stats": driver.stats,
        "gc": _op_gc_info(driver),
        "differential_pages": _op_diff_count(driver),
        "horizon": _op_horizon(driver),
    }


def _op_dump_image(driver):
    """Flash image of the shard's chip, for equivalence testing."""
    chip = driver.chip
    pages = {}
    for addr in chip.iter_programmed_pages():
        pages[addr] = (chip.peek_data(addr), chip.peek_spare(addr))
    erases = [chip.erase_count(b) for b in range(chip.spec.n_blocks)]
    return {"pages": pages, "erase_counts": erases}


def dump_chip_image(chip) -> Dict[str, object]:
    """Parent-side twin of the worker image dump (thread/serial drivers)."""
    pages = {}
    for addr in chip.iter_programmed_pages():
        pages[addr] = (chip.peek_data(addr), chip.peek_spare(addr))
    erases = [chip.erase_count(b) for b in range(chip.spec.n_blocks)]
    return {"pages": pages, "erase_counts": erases}


# ----------------------------------------------------------------------
# Parent-side executor
# ----------------------------------------------------------------------
def _await_reply(conn):
    msg = conn.recv()  # EOFError handled by the channel loop
    if msg[0] == "error":
        exc, tb = msg[1], msg[2]
        if tb and hasattr(exc, "add_note"):
            exc.add_note(f"shard worker traceback:\n{tb}")
        raise exc
    return msg[1]


def _call_task(phase, fn, args, kwargs):
    def task(conn, _buf):
        conn.send(("call", phase, fn, args, kwargs))
        return _await_reply(conn)

    return task


def _stop_task(conn, _buf):
    conn.send(("stop",))
    try:
        conn.recv()
    except EOFError:
        pass


class ProcessShardExecutor:
    """One spawned worker process per shard, mailbox/futures on top.

    Mirrors :class:`~repro.sharding.executor.ShardExecutor`'s contract —
    per-shard FIFO mailboxes, ``Future`` results, ``map``/``gather``
    fan-out/join — with the execution surface adapted to the process
    boundary: a submitted callable must be *picklable* and is invoked
    in the worker as ``fn(driver, *args, **kwargs)`` against the shard
    driver the worker built from its :class:`ShardFactory`.

    One parent channel thread per worker drains the mailbox and speaks
    the pipe protocol synchronously, so a worker has at most one
    command in flight — which is what makes the shared-memory frame
    ring trivially reusable between commands.
    """

    def __init__(
        self,
        factories: Sequence[ShardFactory],
        name: str = "shard-proc",
        frames_per_worker: int = 64,
        start_timeout_s: float = 120.0,
    ):
        self.factories = list(factories)
        if not self.factories:
            raise ConfigurationError(
                "ProcessShardExecutor needs at least one shard factory"
            )
        if frames_per_worker < 1:
            raise ConfigurationError("frames_per_worker must be at least 1")
        ctx = get_context("spawn")
        n = len(self.factories)
        self._mailboxes: List[SimpleQueue] = [SimpleQueue() for _ in range(n)]
        self._threads: List[threading.Thread] = []
        self._procs: List = []
        self._conns: List = []
        self._shms: List[shared_memory.SharedMemory] = []
        self._shutdown = False
        self._shutdown_started = False
        self._reaped = False
        self._submit_lock = threading.Lock()
        self._finalizers: List[Callable[[], None]] = []
        #: Per-worker build metadata from the ready handshake (driver
        #: name, page size, effective_max, recovery report).
        self.meta: List[dict] = [{} for _ in range(n)]
        try:
            for i, factory in enumerate(self.factories):
                # Each resource is registered the moment it exists, so
                # the except-reap below can release it even when a later
                # step of the same iteration (Pipe, Process.start) is
                # what raised.
                frame = max(1, factory.spec.page_data_size)
                shm = shared_memory.SharedMemory(
                    create=True, size=frame * frames_per_worker
                )
                self._shms.append(shm)
                parent_conn, child_conn = ctx.Pipe()
                self._conns.append(parent_conn)
                try:
                    proc = ctx.Process(
                        target=_worker_main,
                        args=(child_conn, shm.name, factory),
                        name=f"{name}-{i}",
                        daemon=True,  # a forgotten shutdown must not hang exit
                    )
                    proc.start()
                    self._procs.append(proc)
                finally:
                    # The child end must stay open until start() has
                    # pickled it into the worker; close it in the parent
                    # on success and failure alike.
                    child_conn.close()
            for i, conn in enumerate(self._conns):
                if not conn.poll(start_timeout_s):
                    raise WorkerCrashError(
                        f"shard worker {i} did not report ready within "
                        f"{start_timeout_s:.0f}s"
                    )
                try:
                    msg = conn.recv()
                except EOFError:
                    raise WorkerCrashError(
                        f"shard worker {i} died during startup"
                    ) from None
                if msg[0] == "error":
                    exc, tb = msg[1], msg[2]
                    if tb and hasattr(exc, "add_note"):
                        exc.add_note(f"shard worker traceback:\n{tb}")
                    raise exc
                self.meta[i] = msg[1]
        except BaseException:
            self._reap(force=True)
            raise
        for i in range(n):
            thread = threading.Thread(
                target=self._channel,
                args=(i,),
                name=f"{name}-chan-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    # ------------------------------------------------------------------
    # Channel threads
    # ------------------------------------------------------------------
    def _channel(self, index: int) -> None:
        conn = self._conns[index]
        buf = self._shms[index].buf
        mailbox = self._mailboxes[index]
        while True:
            item = mailbox.get()
            if item is _STOP:
                return
            future, task = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                result = task(conn, buf)
            except (EOFError, BrokenPipeError, ConnectionResetError):
                future.set_exception(
                    WorkerCrashError(f"shard worker {index} died mid-command")
                )
            except BaseException as exc:
                future.set_exception(exc)
            else:
                future.set_result(result)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return len(self._mailboxes)

    @property
    def is_shutdown(self) -> bool:
        return self._shutdown_started

    def submit_task(self, index: int, task: Callable) -> Future:
        """Enqueue a raw ``task(conn, frame_buf)`` on a channel thread.

        The task runs on worker ``index``'s channel thread with
        exclusive use of that worker's pipe and frame ring; everything
        else builds on this.
        """
        if not 0 <= index < len(self._mailboxes):
            raise ValueError(
                f"worker index {index} outside pool of {len(self._mailboxes)}"
            )
        future: Future = Future()
        with self._submit_lock:
            if self._shutdown:
                raise ConcurrencyError("executor is shut down")
            self._mailboxes[index].put((future, task))
        return future

    def submit(self, index: int, fn: Callable, *args, **kwargs) -> Future:
        """Enqueue picklable ``fn(driver, *args, **kwargs)`` on a worker."""
        return self.submit_task(index, _call_task(None, fn, args, kwargs))

    def run(self, index: int, fn: Callable, *args, **kwargs):
        """Submit to worker ``index`` and wait for the result."""
        return self.submit(index, fn, *args, **kwargs).result()

    def map(self, tasks: Sequence[Tuple[int, Callable]]) -> List[object]:
        """Run ``(worker index, fn)`` calls concurrently; join all."""
        futures = [self.submit(index, fn) for index, fn in tasks]
        return gather(futures)

    def broadcast(self, fn: Callable, *args, **kwargs) -> List[object]:
        """Run ``fn(driver, ...)`` on every worker concurrently."""
        futures = [
            self.submit(i, fn, *args, **kwargs)
            for i in range(len(self._mailboxes))
        ]
        return gather(futures)

    def add_finalizer(self, fn: Callable[[], None]) -> None:
        """Register a hook to run (once) at shutdown, before workers stop.

        The driver uses this to snapshot worker-side state (stats,
        clocks) while the workers still exist, so benchmarks can shut
        the pool down and *then* read counters — the same call order
        the thread executor supports for free.
        """
        self._finalizers.append(fn)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Drain mailboxes, stop workers, reap processes.  Idempotent.

        ``shutdown(wait=False)`` only initiates the stop; a later
        ``shutdown()`` (or ``__exit__``) still reaps — the
        started/reaped states are tracked separately so no call order
        can leak processes or shared-memory segments.
        """
        with self._submit_lock:
            already_started = self._shutdown_started
            self._shutdown_started = True
        if not already_started:
            for finalizer in self._finalizers:
                try:
                    finalizer()
                # repro: allow[bare-except] -- best-effort snapshot hooks: a
                # dead worker must not block reaping the rest
                except Exception:
                    pass
            stop_futures = []
            with self._submit_lock:
                self._shutdown = True
                for mailbox in self._mailboxes:
                    future: Future = Future()
                    mailbox.put((future, _stop_task))
                    stop_futures.append(future)
                    mailbox.put(_STOP)
            for future in stop_futures:
                try:
                    future.result(timeout=30)
                # repro: allow[bare-except] -- a worker that died mid-stop is
                # handled by _reap's terminate path; errors surfaced earlier
                except Exception:
                    pass
        if wait:
            self._reap()

    def _reap(self, force: bool = False) -> None:
        with self._submit_lock:
            if self._reaped:
                return
            self._reaped = True
        for thread in self._threads:
            thread.join(timeout=30)
        for proc in self._procs:
            if force:
                proc.terminate()
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for shm in self._shms:
            try:
                shm.close()
            except BufferError:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _batch_task(op, group, logs, phase, do_flush):
    """Send a page batch through the frame ring, chunked to its size."""

    def task(conn, buf):
        cap = len(buf)
        i = 0
        while i < len(group):
            metas = []
            off = 0
            j = i
            while j < len(group):
                pid, data = group[j]
                n = len(data)
                if n > cap:
                    raise ConfigurationError(
                        f"page of {n} bytes exceeds the {cap}-byte "
                        "shared-memory frame ring"
                    )
                if off + n > cap:
                    break
                buf[off : off + n] = data
                metas.append((pid, off, n))
                off += n
                j += 1
            if op == "write_pages":
                chunk_logs = None
                if logs is not None:
                    chunk_logs = {
                        pid: logs[pid] for pid, _o, _n in metas if pid in logs
                    }
                conn.send((op, phase, metas, chunk_logs))
            else:
                conn.send((op, phase, metas))
            _await_reply(conn)
            i = j
        if do_flush:
            conn.send(("call", phase, _op_flush, (), {}))
            _await_reply(conn)

    return task


def _page_task(op, phase, pid, data, logs):
    """One page through frame 0 (single-op mailbox path)."""

    def task(conn, buf):
        n = len(data)
        if n > len(buf):
            raise ConfigurationError(
                f"page of {n} bytes exceeds the {len(buf)}-byte "
                "shared-memory frame ring"
            )
        buf[:n] = data
        if op == "write_page":
            conn.send((op, phase, pid, n, logs))
        else:
            conn.send((op, phase, pid, n))
        return _await_reply(conn)

    return task


def _read_task(phase, pid):
    def task(conn, buf):
        conn.send(("read_page", phase, pid))
        n = _await_reply(conn)
        return bytes(buf[:n])

    return task


# ----------------------------------------------------------------------
# Stats façade
# ----------------------------------------------------------------------
class ProcessAggregateStats:
    """An :class:`AggregateStats`-shaped view over worker-side collectors.

    Reads fetch the per-shard :class:`~repro.flash.stats.FlashStats`
    from the workers (or from the shutdown snapshot) and delegate to a
    real :class:`AggregateStats` built on the fetch, so every derived
    metric stays consistent with the thread executor.  ``phase`` is
    parent-side state: the innermost name rides along with each command
    and is re-pushed around the operation inside the worker — the
    process twin of the thread driver's phase capture.
    """

    def __init__(self, driver: "ProcessShardedDriver"):
        self._driver = driver
        self._phases = threading.local()

    def _stack(self) -> List[str]:
        stack = getattr(self._phases, "stack", None)
        if stack is None:
            stack = self._phases.stack = []
        return stack

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        stack = self._stack()
        stack.append(name)
        try:
            yield
        finally:
            stack.pop()

    @property
    def current_phase(self) -> str:
        stack = self._stack()
        return stack[-1] if stack else DEFAULT_PHASE

    def _agg(self) -> AggregateStats:
        return AggregateStats(self._driver._fetch_shard_stats())

    def reset(self) -> None:
        self._driver._broadcast(_op_reset_stats)

    def __getattr__(self, name: str):
        # Properties resolve to values, methods to bound methods of a
        # freshly fetched aggregate — one fetch per access either way.
        # Private/dunder lookups (pickle, copy) must not fan out.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._agg(), name)


class _RemoteChip:
    """Parent-side stand-in for a worker-owned chip (introspection only).

    Exposes the two attributes measurement code reads off
    ``driver.chips`` — the simulated clock and the stats collector —
    plus sync/close, all marshalled to the owning worker (or served
    from the shutdown snapshot once the pool has stopped).
    """

    def __init__(self, owner: "ProcessShardedDriver", index: int):
        self._owner = owner
        self._index = index
        self.spec = owner.executor.factories[index].spec

    @property
    def clock_us(self) -> float:
        return self._owner._chip_clock(self._index)

    @property
    def stats(self):
        return self._owner._shard_stats(self._index)

    def sync(self) -> None:
        self._owner._run(self._index, _op_sync)

    def close(self) -> None:
        self._owner._run(self._index, _op_close)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RemoteChip shard={self._index}>"


# ----------------------------------------------------------------------
# The driver façade
# ----------------------------------------------------------------------
class ProcessShardedDriver:
    """A sharded driver whose shards live in worker processes.

    Presents the :class:`~repro.sharding.driver.ShardedDriver` surface —
    routing, batched fan-out entry points, aggregated stats/GC/wear/fsck
    reporting — over a :class:`ProcessShardExecutor`.  There are no
    local shard driver objects: every operation is marshalled to the
    owning shard's worker, with page payloads in shared memory.

    Construction happens through :func:`repro.methods.make_method` with
    a ``proc`` label (fresh shards), ``recover_all(...,
    parallel="process")`` (existing images) or ``Database.open(...,
    parallel="process")``.
    """

    def __init__(
        self,
        factories: Optional[Sequence[ShardFactory]] = None,
        router: Optional[ShardRouter] = None,
        executor: Optional[ProcessShardExecutor] = None,
        frames_per_worker: int = 64,
    ):
        if executor is None:
            if not factories:
                raise ConfigurationError(
                    "ProcessShardedDriver needs shard factories or a "
                    "running ProcessShardExecutor"
                )
            executor = ProcessShardExecutor(
                factories, frames_per_worker=frames_per_worker
            )
        self.executor = executor
        n = executor.n_workers
        self.router = router if router is not None else HashRouter(n)
        if self.router.n_shards != n:
            raise ConfigurationError(
                f"router partitions {self.router.n_shards} shards but the "
                f"executor runs {n} workers"
            )
        metas = executor.meta
        sizes = {meta["page_size"] for meta in metas}
        if len(sizes) != 1:
            raise ConfigurationError(
                f"shards disagree on logical page size: {sorted(sizes)}"
            )
        self.name = f"{metas[0]['name']} x{n} proc"
        self.tightly_coupled = any(meta["tightly_coupled"] for meta in metas)
        self.group_flushes = 0
        self._counter_lock = threading.Lock()
        self._stats = ProcessAggregateStats(self)
        self._final_state: List[Optional[dict]] = [None] * n
        self._chips = [_RemoteChip(self, i) for i in range(n)]
        executor.add_finalizer(self._capture_final_state)

    # ------------------------------------------------------------------
    # Routing + marshalling
    # ------------------------------------------------------------------
    def shard_index(self, pid: int) -> int:
        index = self.router.shard_of(pid)
        if not 0 <= index < self.n_shards:
            raise ConfigurationError(
                f"router sent pid {pid} to shard {index} of {self.n_shards}"
            )
        return index

    def _phase(self) -> Optional[str]:
        phase = self._stats.current_phase
        return None if phase == DEFAULT_PHASE else phase

    def _run(self, index: int, fn: Callable, *args):
        return self.executor.submit_task(
            index, _call_task(self._phase(), fn, args, {})
        ).result()

    def _broadcast(self, fn: Callable, *args) -> List[object]:
        phase = self._phase()
        futures = [
            self.executor.submit_task(i, _call_task(phase, fn, args, {}))
            for i in range(self.n_shards)
        ]
        return gather(futures)

    # ------------------------------------------------------------------
    # PageUpdateMethod contract — single-page paths
    # ------------------------------------------------------------------
    def load_page(self, pid: int, data: bytes) -> None:
        index = self.shard_index(pid)
        self.executor.submit_task(
            index, _page_task("load_page", self._phase(), pid, data, None)
        ).result()

    def read_page(self, pid: int) -> bytes:
        index = self.shard_index(pid)
        return self.executor.submit_task(
            index, _read_task(self._phase(), pid)
        ).result()

    def write_page(
        self, pid: int, data: bytes, update_logs: Optional[List[ChangeRun]] = None
    ) -> None:
        index = self.shard_index(pid)
        self.executor.submit_task(
            index,
            _page_task("write_page", self._phase(), pid, data, update_logs),
        ).result()

    # ------------------------------------------------------------------
    # Fan-out paths
    # ------------------------------------------------------------------
    def end_of_load(self) -> None:
        self._broadcast(_op_end_of_load)

    def _split_by_shard(self, pages) -> Dict[int, List]:
        per_shard: Dict[int, List] = {}
        for pid, data in pages:
            per_shard.setdefault(self.shard_index(pid), []).append((pid, data))
        return per_shard

    def _fan_out_batches(
        self, op: str, pages, update_logs, flush_all: bool
    ) -> None:
        per_shard = self._split_by_shard(pages)
        phase = self._phase()
        futures = []
        for index in range(self.n_shards) if flush_all else sorted(per_shard):
            group = per_shard.get(index, [])
            logs = None
            if op == "write_pages" and update_logs is not None:
                logs = {
                    pid: update_logs[pid] for pid, _ in group if pid in update_logs
                }
            futures.append(
                self.executor.submit_task(
                    index, _batch_task(op, group, logs, phase, flush_all)
                )
            )
        gather(futures)

    def load_pages(self, pages) -> None:
        self._fan_out_batches("load_pages", pages, None, flush_all=False)

    def write_pages(self, pages, update_logs=None) -> None:
        self._fan_out_batches("write_pages", pages, update_logs, flush_all=False)

    def flush(self) -> None:
        self.group_flush()

    def group_flush(self, pages=None, update_logs=None) -> None:
        """Drain every shard's buffers concurrently and join.

        Same durability horizon as the serial driver's group flush;
        with ``pages``, each shard's slice of the batch is written and
        its buffers drained inside one worker command sequence, and
        shards with no pages in the batch still flush.
        """
        if pages is None:
            self._broadcast(_op_flush)
        else:
            self._fan_out_batches("write_pages", pages, update_logs, flush_all=True)
        with self._counter_lock:
            self.group_flushes += 1

    def fsck(self, repair: bool = True):
        """Scan and repair every shard concurrently; join, then merge."""
        from ..core.fsck import FsckReport

        reports = self._broadcast(_op_fsck, repair)
        return FsckReport.merge(list(reports))

    def sync(self) -> None:
        self._broadcast(_op_sync)

    def close(self) -> None:
        """Close every shard chip in its worker, then stop the pool.

        Benchmarks may stop the executor first and read counters from
        the final-state snapshot before closing; in that case the
        workers already closed their chips on the way out, so there is
        nothing left to broadcast.
        """
        try:
            if not self.executor.is_shutdown:
                self._broadcast(_op_close)
        finally:
            self.executor.shutdown()

    # ------------------------------------------------------------------
    # Worker-state access (live before shutdown, snapshot after)
    # ------------------------------------------------------------------
    def _capture_final_state(self) -> None:
        for i in range(self.n_shards):
            try:
                self._final_state[i] = self._run(i, _op_final_state)
            except Exception:
                self._final_state[i] = None

    def _final(self, index: int) -> dict:
        state = self._final_state[index]
        if state is None:
            raise WorkerCrashError(
                f"shard worker {index} stopped before its state was captured"
            )
        return state

    def _chip_clock(self, index: int) -> float:
        if self.executor.is_shutdown:
            return self._final(index)["clock_us"]
        return self._run(index, _op_clock)

    def _shard_stats(self, index: int):
        if self.executor.is_shutdown:
            return self._final(index)["stats"]
        return self._run(index, _op_stats)

    def _fetch_shard_stats(self) -> List:
        if self.executor.is_shutdown:
            return [self._final(i)["stats"] for i in range(self.n_shards)]
        return list(self._broadcast(_op_stats))

    def chip_clocks(self) -> List[float]:
        if self.executor.is_shutdown:
            return [self._final(i)["clock_us"] for i in range(self.n_shards)]
        return list(self._broadcast(_op_clock))

    def allocation_horizon(self) -> int:
        """Highest recovered pid + 1 across all shards (post-recovery)."""
        if self.executor.is_shutdown:
            horizons = [self._final(i)["horizon"] for i in range(self.n_shards)]
        else:
            horizons = self._broadcast(_op_horizon)
        return max(horizons, default=0)

    def differential_page_count(self) -> int:
        if self.executor.is_shutdown:
            return sum(
                self._final(i)["differential_pages"] for i in range(self.n_shards)
            )
        return sum(self._broadcast(_op_diff_count))

    def dump_images(self) -> List[Dict[str, object]]:
        """Per-shard flash images (equivalence testing; memory backends)."""
        return list(self._broadcast(_op_dump_image))

    # ------------------------------------------------------------------
    # Aggregated introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.executor.n_workers

    @property
    def chips(self) -> List[_RemoteChip]:
        return list(self._chips)

    @property
    def spec(self) -> FlashSpec:
        return self.executor.factories[0].spec

    @property
    def stats(self) -> ProcessAggregateStats:
        return self._stats

    @property
    def page_size(self) -> int:
        return self.executor.meta[0]["page_size"]

    @property
    def effective_max(self) -> Optional[int]:
        """Representative PDL Case-3 horizon (None for non-PDL shards)."""
        return self.executor.meta[0]["effective_max"]

    @property
    def total_blocks(self) -> int:
        return sum(f.spec.n_blocks for f in self.executor.factories)

    @property
    def recovery_reports(self) -> List[object]:
        """Per-shard Figure-11 reports from the ready handshake."""
        return [meta.get("report") for meta in self.executor.meta]

    def gc_report(self) -> Dict[str, object]:
        """Aggregated space-management health across the array."""
        if self.executor.is_shutdown:
            per_shard = [self._final(i)["gc"] for i in range(self.n_shards)]
        else:
            per_shard = list(self._broadcast(_op_gc_info))
        present = [entry for entry in per_shard if entry is not None]
        agg = self._stats._agg()
        return {
            "per_shard": per_shard,
            "total_collections": sum(e["collections"] for e in present),
            "total_pages_relocated": sum(e["pages_relocated"] for e in present),
            "total_incremental_steps": sum(e["incremental_steps"] for e in present),
            "total_debt_blocks": sum(e["debt_blocks"] for e in present),
            "write_stall_p99_us": agg.write_stall_percentile(99),
            "write_stall_max_us": agg.max_write_stall_us,
        }

    def wear_report(self) -> Dict[str, object]:
        """Aggregated wear: per-shard erase totals and worst block."""
        shard_stats = self._fetch_shard_stats()
        per_shard = [stats.total_erases for stats in shard_stats]
        worst = max(
            (max(stats.block_erases, default=0) for stats in shard_stats),
            default=0,
        )
        return {
            "per_shard_erases": per_shard,
            "total_erases": sum(per_shard),
            "max_block_erases": worst,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ProcessShardedDriver {self.name!r} "
            f"router={type(self.router).__name__} shards={self.n_shards}>"
        )
