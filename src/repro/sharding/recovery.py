"""Sharded crash recovery: rebuild every shard's tables, reuse the router.

After a power failure the array's volatile state — every shard's
physical page mapping table, valid differential count table, allocator
pools and write buffer — is gone.  :func:`recover_all` runs Figure 11's
single-chip reconstruction (:func:`repro.core.recovery.recover_driver`)
over each chip independently and reassembles a working
:class:`~repro.sharding.driver.ShardedDriver` on top.

Two properties make this composition sound:

* shard drivers index their tables by *global* pid, so a shard's scan
  rebuilds exactly the entries the router will route back to it — no
  cross-shard reconciliation is needed;
* the router must be the **same stable partition** used before the
  crash (same kind, same shard count, same parameters).  Routing is
  pure configuration, not state, so callers persist it as part of
  deployment config rather than on flash.

The per-chip scans are independent (each reads only its own chip), so
they can run concurrently: ``recover_all(..., parallel=True)`` executes
the Figure-11 scans on one worker thread per shard and returns a
:class:`~repro.sharding.executor.ParallelShardedDriver`, making the
1/N-of-~60 s/GB recovery estimate a *measured* wall-clock property
rather than a modeling claim (``benchmarks/bench_parallel.py`` records
the serial-vs-threaded scan times; see ``docs/concurrency.md``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..core.recovery import RecoveryReport, recover_driver
from ..flash.chip import FlashChip
from ..ftl.errors import ConfigurationError
from .driver import ShardedDriver
from .router import HashRouter, ShardRouter


def recover_all(
    chips: Sequence[FlashChip],
    router: Optional[ShardRouter] = None,
    max_differential_size: int = 256,
    parallel: Union[bool, str] = False,
    **driver_kwargs,
) -> Tuple[ShardedDriver, List[RecoveryReport]]:
    """Rebuild a sharded PDL array from post-crash flash contents.

    ``chips`` are the shard chips in shard order; ``router`` must match
    the pre-crash partition (defaults to :class:`HashRouter` over
    ``len(chips)`` shards, the :func:`repro.methods.make_method`
    default).  Remaining keyword arguments are forwarded to each
    shard's :func:`recover_driver` (e.g. ``coalesce_gap``,
    ``victim_policy``).

    With ``parallel=True`` (or ``parallel="thread"``) the per-shard
    scans run concurrently on a
    :class:`~repro.sharding.executor.ShardExecutor` (one worker per
    chip — each scan reads and heals only its own device, so the scans
    share nothing), and the worker pool is kept to drive the returned
    :class:`~repro.sharding.executor.ParallelShardedDriver`.

    With ``parallel="process"`` each scan runs inside its own spawned
    worker process over a *reopened* file image (the parent's chip
    handles are closed here and must not be used again), and the
    returned driver is a
    :class:`~repro.sharding.executor_proc.ProcessShardedDriver` — the
    GIL-free variant; memory-backed chips are rejected because a worker
    cannot see parent memory.

    Returns the operational driver plus one :class:`RecoveryReport` per
    shard, in shard order.
    """
    chips = list(chips)
    if not chips:
        raise ConfigurationError("recover_all needs at least one chip")
    if router is not None and router.n_shards != len(chips):
        raise ConfigurationError(
            f"router partitions {router.n_shards} shards but {len(chips)} "
            "chips were supplied"
        )
    if parallel == "process":
        from .executor_proc import (
            ProcessShardedDriver,
            recovery_factories_from_chips,
        )

        factories = recovery_factories_from_chips(
            chips, max_differential_size, driver_kwargs
        )
        driver = ProcessShardedDriver(
            factories, router=router or HashRouter(len(chips))
        )
        return driver, list(driver.recovery_reports)
    if parallel:
        from .executor import ParallelShardedDriver, ShardExecutor

        executor = ShardExecutor(len(chips))
        try:
            recovered = executor.map(
                [
                    (
                        i,
                        lambda c=chip: recover_driver(
                            c,
                            max_differential_size=max_differential_size,
                            **driver_kwargs,
                        ),
                    )
                    for i, chip in enumerate(chips)
                ]
            )
        except BaseException:
            executor.shutdown()
            raise
        shards = [driver for driver, _report in recovered]
        reports = [report for _driver, report in recovered]
        sharded: ShardedDriver = ParallelShardedDriver(
            shards, router or HashRouter(len(chips)), executor=executor
        )
        return sharded, reports
    shards = []
    reports = []
    for chip in chips:
        driver, report = recover_driver(
            chip, max_differential_size=max_differential_size, **driver_kwargs
        )
        shards.append(driver)
        reports.append(report)
    sharded = ShardedDriver(shards, router or HashRouter(len(chips)))
    return sharded, reports
