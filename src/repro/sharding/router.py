"""Shard routing: partitioning the logical page-id space.

A :class:`ShardRouter` maps every logical page id to exactly one shard —
a *total, stable partition* of the pid space.  Totality (every
non-negative pid routes somewhere) and stability (the answer never
changes between calls or process restarts) are what make sharded
recovery sound: after a crash each shard's chip is scanned
independently, and the rebuilt mapping tables are only reachable again
because the router still sends each pid to the shard that owns its
pages.

Two concrete routers cover the standard choices:

* :class:`HashRouter` — a splitmix64-style mix of the pid modulo the
  shard count.  Spreads any workload (sequential, clustered, skewed)
  near-uniformly; the right default for update-heavy traffic because it
  balances GC pressure across shards.
* :class:`RangeRouter` — contiguous pid ranges of a fixed width, with
  the tail clamped onto the last shard so the partition stays total.
  Preserves locality (a sequential scan touches one shard at a time),
  which matters when shards are backed by devices with different wear
  budgets or when range-partitioned workloads should not fan out.

Routers deliberately hold no reference to drivers or chips: they are
pure functions plus a shard count, so the same router instance can be
used to build a :class:`~repro.sharding.driver.ShardedDriver`, to replay
a trace, and to re-attach after :func:`~repro.sharding.recovery.recover_all`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

_MASK64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """The splitmix64 finalizer: a cheap, high-quality 64-bit mixer."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class ShardRouter(ABC):
    """Maps logical page ids to shard indices in ``[0, n_shards)``."""

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError(f"n_shards must be at least 1, got {n_shards}")
        self.n_shards = n_shards

    @abstractmethod
    def shard_of(self, pid: int) -> int:
        """The shard owning logical page ``pid`` (total and stable)."""

    def _check_pid(self, pid: int) -> int:
        if pid < 0:
            raise ValueError(f"logical page id {pid} must be non-negative")
        return pid

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} n_shards={self.n_shards}>"


class HashRouter(ShardRouter):
    """Hash partitioning: ``mix64(pid) % n_shards``.

    The mixer decorrelates the shard index from low pid bits, so
    striding workloads (every 4th page, B+tree fan-out patterns) still
    balance.  With one shard it degenerates to the identity routing.
    """

    def shard_of(self, pid: int) -> int:
        return _mix64(self._check_pid(pid)) % self.n_shards


class RangeRouter(ShardRouter):
    """Range partitioning: shard ``i`` owns pids ``[i*w, (i+1)*w)``.

    ``pages_per_shard`` is the range width ``w``; pids at or beyond the
    last boundary are clamped onto the final shard, keeping the
    partition total over all non-negative pids.
    """

    def __init__(self, n_shards: int, pages_per_shard: int):
        super().__init__(n_shards)
        if pages_per_shard < 1:
            raise ValueError(
                f"pages_per_shard must be at least 1, got {pages_per_shard}"
            )
        self.pages_per_shard = pages_per_shard

    @classmethod
    def for_database(cls, n_shards: int, database_pages: int) -> "RangeRouter":
        """A router splitting ``database_pages`` ids into equal ranges."""
        if database_pages < 1:
            raise ValueError("database_pages must be positive")
        width = -(-database_pages // n_shards)  # ceil division
        return cls(n_shards, width)

    def shard_of(self, pid: int) -> int:
        return min(self._check_pid(pid) // self.pages_per_shard, self.n_shards - 1)


def make_router(kind: str, n_shards: int, **kwargs) -> ShardRouter:
    """Build a router by name (``"hash"`` or ``"range"``).

    ``range`` requires either ``pages_per_shard`` or ``database_pages``
    (equal split) as a keyword argument.
    """
    plain = kind.strip().lower()
    if plain == "hash":
        if kwargs:
            raise ValueError(f"hash router takes no extra options, got {kwargs}")
        return HashRouter(n_shards)
    if plain == "range":
        if "pages_per_shard" in kwargs:
            return RangeRouter(n_shards, kwargs.pop("pages_per_shard"))
        if "database_pages" in kwargs:
            return RangeRouter.for_database(n_shards, kwargs.pop("database_pages"))
        raise ValueError("range router needs pages_per_shard or database_pages")
    raise ValueError(f"unknown router kind {kind!r}; expected 'hash' or 'range'")
