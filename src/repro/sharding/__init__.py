"""Sharded multi-chip storage: scale PDL across independent flash devices.

The paper's driver is DBMS-independent so it can sit below any
page-oriented engine; this package makes it *device-count independent*
too.  A :class:`ShardedDriver` presents N per-shard drivers (each with
its own chip, allocator, GC and write buffer) as one
:class:`~repro.ftl.base.PageUpdateMethod`; a :class:`ShardRouter`
partitions the logical page space; :func:`recover_all` rebuilds every
shard's mapping tables after a crash.

* :mod:`repro.sharding.router` — hash and range partitioning, pluggable.
* :mod:`repro.sharding.driver` — the façade, batched group flush,
  aggregated wear reporting.
* :mod:`repro.sharding.executor` — real thread parallelism: a
  single-writer worker thread per shard (:class:`ShardExecutor`) and
  the :class:`ParallelShardedDriver` built on it (see
  ``docs/concurrency.md``).
* :mod:`repro.sharding.executor_proc` — process-per-shard execution
  past the GIL: spawn-safe :class:`ShardFactory` recipes, a
  :class:`ProcessShardExecutor` with shared-memory page frames, and
  the :class:`ProcessShardedDriver` façade (``"... x8 proc"`` labels).
* :mod:`repro.sharding.stats` — merged :class:`FlashStats` view plus
  per-chip clocks for serial-vs-parallel time accounting.
* :mod:`repro.sharding.recovery` — per-shard Figure-11 scans composed
  into array recovery (optionally scanning all shards concurrently).

Build sharded configurations from paper-style labels::

    from repro.flash.chip import FlashChip
    from repro.flash.spec import FlashSpec
    from repro.methods import make_method

    chips = [FlashChip(FlashSpec(n_blocks=64)) for _ in range(4)]
    driver = make_method("PDL (256B) x4", chips)
"""

from .driver import ShardedDriver
from .executor import ParallelShardedDriver, ShardExecutor, make_executor
from .executor_proc import (
    ProcessShardedDriver,
    ProcessShardExecutor,
    ShardFactory,
)
from .recovery import recover_all
from .router import HashRouter, RangeRouter, ShardRouter, make_router
from .stats import AggregateStats

__all__ = [
    "AggregateStats",
    "HashRouter",
    "ParallelShardedDriver",
    "ProcessShardExecutor",
    "ProcessShardedDriver",
    "RangeRouter",
    "ShardExecutor",
    "ShardFactory",
    "ShardRouter",
    "ShardedDriver",
    "make_executor",
    "make_router",
    "recover_all",
]
