"""Aggregated accounting across the chips of a sharded deployment.

:class:`AggregateStats` presents N per-chip :class:`FlashStats` as one —
the same read surface (``totals``, ``of_phase``, ``snapshot`` /
``delta_since``, ``reset``) the single-chip experiment code already
uses, so the workload runner and benchmarks measure a
:class:`~repro.sharding.driver.ShardedDriver` without special-casing.

Two *simulated* time metrics matter for a multi-chip array:

* **serial time** — the sum of all chips' busy time: total device work,
  what a single chip would have taken.  This is what the merged phase
  counters report, consistent with :class:`FlashStats`.
* **parallel time** — the busy time of the *busiest* chip: elapsed
  time with the chips serving their queues concurrently, the paper's
  simulated-I/O-time metric generalized to an array.  Exposed via
  :meth:`chip_clocks` (per-chip monotonic clocks); the scaling
  benchmark reports ``max(clock deltas)`` as the parallel cost.

Since the :class:`~repro.sharding.executor.ShardExecutor`, the parallel
model is no longer only simulated: a
:class:`~repro.sharding.executor.ParallelShardedDriver` really executes
shards concurrently, and ``measure_sharded_updates`` reports measured
wall-clock time next to these simulated metrics so the model can be
validated (``benchmarks/bench_parallel.py``; see
``docs/concurrency.md``).  The per-shard collectors merged here double
as the per-worker accumulators — each :class:`FlashStats` is mutated
only by its shard's single worker thread, and every aggregate property
below (op totals, stall histograms, GC step counters) merges them on
read, which is safe once the fan-out has joined.

``block_erases`` concatenates the shards' per-block wear counters in
shard order, so wear reports and Figure-16-style histograms extend to
arrays unchanged.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager
from typing import Dict, Iterator, List, Sequence

from ..flash.stats import FlashStats, OpCounts, StatsSnapshot, percentile


class AggregateStats:
    """A read-mostly merged view over per-shard :class:`FlashStats`."""

    def __init__(self, shard_stats: Sequence[FlashStats]):
        if not shard_stats:
            raise ValueError("AggregateStats needs at least one shard")
        self._shards = list(shard_stats)

    # ------------------------------------------------------------------
    # Phase management (pushed onto every shard, for cross-shard work
    # such as the initial bulk load or a group flush)
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        with ExitStack() as stack:
            for stats in self._shards:
                stack.enter_context(stats.phase(name))
            yield

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    @property
    def phases(self) -> Dict[str, OpCounts]:
        """Per-phase counters summed over all shards.

        Iterates each shard's locked :meth:`FlashStats.phase_items`
        snapshot, so a monitoring thread never races a worker creating
        its first bucket for a phase name.
        """
        merged: Dict[str, OpCounts] = {}
        for stats in self._shards:
            for name, counts in stats.phase_items():
                merged[name] = merged.get(name, OpCounts()).add(counts)
        return merged

    @property
    def block_erases(self) -> List[int]:
        """Per-block erase counts, shards concatenated in order."""
        flat: List[int] = []
        for stats in self._shards:
            flat.extend(stats.block_erases)
        return flat

    def totals(self) -> OpCounts:
        total = OpCounts()
        for stats in self._shards:
            total = total.add(stats.totals())
        return total

    def of_phase(self, name: str) -> OpCounts:
        total = OpCounts()
        for stats in self._shards:
            total = total.add(stats.of_phase(name))
        return total

    @property
    def total_time_us(self) -> float:
        return self.totals().time_us

    @property
    def total_erases(self) -> int:
        return self.totals().erases

    def per_shard(self) -> List[FlashStats]:
        """The underlying per-shard collectors (read-only use)."""
        return list(self._shards)

    # ------------------------------------------------------------------
    # GC / write-stall aggregation
    # ------------------------------------------------------------------
    @property
    def write_stall_us(self) -> List[float]:
        """Per-write GC stall samples pooled across all shards."""
        merged: List[float] = []
        for stats in self._shards:
            merged.extend(stats.write_stall_us)
        return merged

    def write_stall_percentile(self, pct: float) -> float:
        """Nearest-rank stall percentile over the pooled samples — the
        array-level tail, since a client write lands on exactly one
        shard and stalls only on that shard's collector."""
        return percentile(self.write_stall_us, pct)

    @property
    def max_write_stall_us(self) -> float:
        return max((s.max_write_stall_us for s in self._shards), default=0.0)

    @property
    def gc_steps(self) -> int:
        return sum(stats.gc_steps for stats in self._shards)

    @property
    def gc_step_pages(self) -> int:
        return sum(stats.gc_step_pages for stats in self._shards)

    # ------------------------------------------------------------------
    # Read-cache aggregation
    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return sum(stats.cache_hits for stats in self._shards)

    @property
    def cache_misses(self) -> int:
        return sum(stats.cache_misses for stats in self._shards)

    @property
    def cache_hit_ratio(self) -> float:
        accesses = self.cache_hits + self.cache_misses
        return self.cache_hits / accesses if accesses else 0.0

    # ------------------------------------------------------------------
    # Integrity aggregation
    # ------------------------------------------------------------------
    @property
    def checksum_checks(self) -> int:
        return sum(stats.checksum_checks for stats in self._shards)

    @property
    def checksum_failures(self) -> int:
        return sum(stats.checksum_failures for stats in self._shards)

    # ------------------------------------------------------------------
    # Mapping-tier aggregation (demand-paged translation cache)
    # ------------------------------------------------------------------
    @property
    def mapping_hits(self) -> int:
        return sum(stats.mapping_hits for stats in self._shards)

    @property
    def mapping_misses(self) -> int:
        return sum(stats.mapping_misses for stats in self._shards)

    @property
    def mapping_writebacks(self) -> int:
        return sum(stats.mapping_writebacks for stats in self._shards)

    @property
    def mapping_hit_ratio(self) -> float:
        lookups = self.mapping_hits + self.mapping_misses
        return self.mapping_hits / lookups if lookups else 0.0

    # ------------------------------------------------------------------
    # Merged reporting (flash totals + optional buffer-pool counters)
    # ------------------------------------------------------------------
    def report(self, buffer_stats=None) -> Dict[str, object]:
        """One dict with the array's flash totals and tail metrics.

        ``buffer_stats`` — a
        :class:`~repro.storage.bufferpool.stats.BufferStats` — embeds
        the buffer-pool view under ``"buffer"``, so a workload report
        shows cache behaviour, write-back activity and eviction stalls
        next to the device traffic they caused (the Experiment-7
        coupling, as one artifact).
        """
        totals = self.totals()
        out: Dict[str, object] = {
            "n_shards": len(self._shards),
            "reads": totals.reads,
            "writes": totals.writes,
            "erases": totals.erases,
            "io_time_us": totals.time_us,
            "write_stall_p99_us": self.write_stall_percentile(99),
            "write_stall_max_us": self.max_write_stall_us,
            "gc_steps": self.gc_steps,
            "gc_step_pages": self.gc_step_pages,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "checksum_checks": self.checksum_checks,
            "checksum_failures": self.checksum_failures,
            "mapping_hits": self.mapping_hits,
            "mapping_misses": self.mapping_misses,
            "mapping_writebacks": self.mapping_writebacks,
        }
        if buffer_stats is not None:
            out["buffer"] = buffer_stats.as_dict()
        return out

    # ------------------------------------------------------------------
    # Snapshots (the steady-state measurement window protocol)
    # ------------------------------------------------------------------
    def snapshot(self) -> StatsSnapshot:
        return StatsSnapshot(
            phases={name: counts.copy() for name, counts in self.phases.items()},
            block_erases=self.block_erases,
        )

    def delta_since(self, snap: StatsSnapshot) -> StatsSnapshot:
        phases: Dict[str, OpCounts] = {}
        for name, counts in self.phases.items():
            before = snap.phases.get(name, OpCounts())
            diff = counts.sub(before)
            if diff.total_ops or diff.time_us:
                phases[name] = diff
        erases = [
            now - then for now, then in zip(self.block_erases, snap.block_erases)
        ]
        return StatsSnapshot(phases=phases, block_erases=erases)

    def reset(self) -> None:
        for stats in self._shards:
            stats.reset()
