"""Real thread-parallel shard execution: worker pool + parallel driver.

:class:`~repro.sharding.driver.ShardedDriver` routes operations to
independent per-shard drivers, but executes them one after another on
the calling thread — parallelism existed only in the *simulated* clock
model (the busiest chip's share of a window).  This module makes shard
independence real in wall-clock time:

* :class:`ShardExecutor` — one persistent **single-writer worker
  thread per shard**, fed through a thread-safe mailbox of
  :class:`~concurrent.futures.Future` tasks.  Everything that touches a
  shard's driver, allocator, GC engine or write buffer runs on that
  shard's one worker, so each chip keeps exactly the sequential
  execution its crash/GC invariants assume — no fine-grained locks
  anywhere in the drivers.
* :class:`ParallelShardedDriver` — a drop-in
  :class:`~repro.sharding.driver.ShardedDriver` whose batched entry
  points (``load_pages``/``write_pages``/``group_flush``/``sync``) fan
  out across the workers and join, and whose single-page operations are
  marshalled through the owning shard's mailbox — which also makes the
  driver safe to hammer from many client threads at once.

Per-shard :class:`~repro.flash.stats.FlashStats` collectors double as
the per-worker accumulators: each is only ever mutated by its shard's
worker, and :class:`~repro.sharding.stats.AggregateStats` merges them
(stall histograms included) when the caller reads after a join.

See ``docs/concurrency.md`` for the full execution model, including how
measured wall-clock time relates to the simulated parallel clock and
why speedup is largest on the file backend's real I/O waits.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from queue import SimpleQueue
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..flash.stats import DEFAULT_PHASE
from ..ftl.base import ChangeRun, PageUpdateMethod
from ..ftl.errors import ConcurrencyError
from .driver import ShardedDriver
from .router import ShardRouter

#: Sentinel dropped into a mailbox to stop its worker thread.
_STOP = None


class ShardExecutor:
    """A pool of persistent single-writer worker threads, one per shard.

    Tasks are submitted to a specific worker's mailbox and return
    :class:`~concurrent.futures.Future` objects; a worker drains its
    mailbox in FIFO order, so all tasks for one shard execute
    sequentially on one thread (the single-writer invariant), while
    tasks on *different* workers run genuinely concurrently.

    The executor is intentionally dumb: it knows nothing about drivers
    or routing.  :class:`ParallelShardedDriver` supplies the policy.
    """

    def __init__(self, n_workers: int, name: str = "shard"):
        if n_workers < 1:
            raise ValueError("ShardExecutor needs at least one worker")
        self._mailboxes: List[SimpleQueue] = [SimpleQueue() for _ in range(n_workers)]
        self._idents: List[Optional[int]] = [None] * n_workers
        self._started = threading.Event()
        self._shutdown = False
        #: Serializes submit() against shutdown(): without it a task
        #: could be enqueued behind the stop sentinel and its future
        #: would never complete (the caller would block forever).
        self._submit_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        remaining = [n_workers]
        lock = threading.Lock()

        def _note_started(index: int) -> None:
            self._idents[index] = threading.get_ident()
            with lock:
                remaining[0] -= 1
                if remaining[0] == 0:
                    self._started.set()

        for i in range(n_workers):
            thread = threading.Thread(
                target=self._worker,
                args=(i, _note_started),
                name=f"{name}-worker-{i}",
                daemon=True,  # a forgotten shutdown must not hang exit
            )
            thread.start()
            self._threads.append(thread)
        self._started.wait()

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _worker(self, index: int, note_started: Callable[[int], None]) -> None:
        note_started(index)
        mailbox = self._mailboxes[index]
        while True:
            item = mailbox.get()
            if item is _STOP:
                return
            future, fn, args, kwargs = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                result = fn(*args, **kwargs)
            except BaseException as exc:  # delivered via future.result()
                future.set_exception(exc)
            else:
                future.set_result(result)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return len(self._mailboxes)

    def worker_ident(self, index: int) -> int:
        """Thread identity of worker ``index`` (for ownership guards)."""
        ident = self._idents[index]
        assert ident is not None, "workers are started in __init__"
        return ident

    def submit(self, index: int, fn: Callable, *args, **kwargs) -> Future:
        """Enqueue ``fn(*args, **kwargs)`` on worker ``index``'s mailbox."""
        if not 0 <= index < len(self._mailboxes):
            raise ValueError(
                f"worker index {index} outside pool of {len(self._mailboxes)}"
            )
        future: Future = Future()
        with self._submit_lock:
            if self._shutdown:
                raise ConcurrencyError("executor is shut down")
            self._mailboxes[index].put((future, fn, args, kwargs))
        return future

    def run(self, index: int, fn: Callable, *args, **kwargs):
        """Submit to worker ``index`` and wait for the result.

        Calls from the worker's own thread execute inline instead —
        waiting on the mailbox from inside it would deadlock (the task
        behind you in the queue can never run while you block).
        """
        if threading.get_ident() == self._idents[index]:
            return fn(*args, **kwargs)
        return self.submit(index, fn, *args, **kwargs).result()

    def map(self, tasks: Sequence[Tuple[int, Callable]]) -> List[object]:
        """Run ``(worker index, thunk)`` tasks concurrently; join all.

        Every task is awaited even when an earlier one fails — a fan-out
        must not leave half the fleet still mutating state when control
        returns — then the first exception (in task order) is re-raised.
        """
        futures = [self.submit(index, fn) for index, fn in tasks]
        return gather(futures)

    def broadcast(self, fn_of_index: Callable[[int], object]) -> List[object]:
        """Run ``fn_of_index(i)`` on every worker ``i`` concurrently."""
        futures = [
            self.submit(i, fn_of_index, i) for i in range(len(self._mailboxes))
        ]
        return gather(futures)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop every worker after its queued tasks drain.  Idempotent."""
        with self._submit_lock:
            if self._shutdown:
                return
            self._shutdown = True
            for mailbox in self._mailboxes:
                mailbox.put(_STOP)
        if wait:
            for thread in self._threads:
                thread.join()

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def make_executor(
    kind: str = "thread",
    *,
    n_workers: Optional[int] = None,
    factories=None,
    name: str = "shard",
    frames_per_worker: int = 64,
):
    """Build a shard executor of the requested kind.

    ``kind="thread"`` returns a :class:`ShardExecutor` over
    ``n_workers`` worker threads (defaulting to ``len(factories)`` when
    recipes are supplied).  ``kind="process"`` returns a
    :class:`~repro.sharding.executor_proc.ProcessShardExecutor`, which
    needs one spawn-safe
    :class:`~repro.sharding.executor_proc.ShardFactory` per shard —
    the workers rebuild their drivers from the recipes, so there is
    nothing else a process pool could be built from.  See
    ``docs/concurrency.md`` for the thread-vs-process decision table.
    """
    from ..ftl.errors import ConfigurationError

    if kind == "thread":
        if n_workers is None:
            if factories is None:
                raise ConfigurationError(
                    "make_executor(kind='thread') needs n_workers (or "
                    "factories to count)"
                )
            n_workers = len(list(factories))
        return ShardExecutor(n_workers, name=name)
    if kind == "process":
        from .executor_proc import ProcessShardExecutor

        if factories is None:
            raise ConfigurationError(
                "make_executor(kind='process') needs per-shard ShardFactory "
                "recipes (see repro.sharding.executor_proc)"
            )
        if n_workers is not None and n_workers != len(list(factories)):
            raise ConfigurationError(
                f"n_workers={n_workers} disagrees with "
                f"{len(list(factories))} shard factories"
            )
        return ProcessShardExecutor(
            factories, name=name, frames_per_worker=frames_per_worker
        )
    raise ConfigurationError(
        f"unknown executor kind {kind!r}; expected 'thread' or 'process'"
    )


def gather(futures: Sequence[Future]) -> List[object]:
    """Wait for every future; re-raise the first failure (in order)."""
    results: List[object] = []
    first_exc: Optional[BaseException] = None
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as exc:
            if first_exc is None:
                first_exc = exc
            results.append(None)
    if first_exc is not None:
        raise first_exc
    return results


class ParallelShardedDriver(ShardedDriver):
    """A :class:`ShardedDriver` whose shards execute on worker threads.

    Construction pins each shard's GC engine to its worker thread
    (:meth:`~repro.ftl.gc.GarbageCollector.bind_owner_thread`), so any
    code path that would run ``on_write_begin``/``on_write_end`` hooks
    off the owning worker fails loudly instead of corrupting shard
    state.  ``close()`` shuts the pool down; the driver (like its
    serial parent) must not be used afterwards.

    Single-page operations marshal through the owning shard's mailbox —
    one client thread gains nothing, but *many* client threads are
    serialized per shard and overlap across shards, which is the
    stress-test configuration.  The fan-out entry points
    (``load_pages``/``write_pages``/``flush``/``group_flush``/
    ``sync``/``end_of_load``) are where a single caller sees wall-clock
    parallelism: all shards work at once and the call joins them.
    """

    def __init__(
        self,
        shards: Sequence[PageUpdateMethod],
        router: Optional[ShardRouter] = None,
        executor: Optional[ShardExecutor] = None,
    ):
        super().__init__(shards, router)
        if executor is not None and executor.n_workers != len(self.shards):
            raise ConcurrencyError(
                f"executor has {executor.n_workers} workers for "
                f"{len(self.shards)} shards"
            )
        self.executor = executor if executor is not None else ShardExecutor(
            len(self.shards)
        )
        self.name += " par"
        for index, shard in enumerate(self.shards):
            gc = getattr(shard, "gc", None)
            if gc is not None:
                gc.bind_owner_thread(self.executor.worker_ident(index))
        #: Guards the cross-shard counters the fan-out paths update
        #: (``group_flushes``) against racing client threads.
        self._counter_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Task marshalling
    # ------------------------------------------------------------------
    def _task(self, index: int, fn: Callable, *args, **kwargs) -> Callable[[], object]:
        """Bind a shard task, propagating the caller's stats phase.

        Phase stacks are thread-local (see
        :class:`~repro.flash.stats.FlashStats`), so a phase the *client*
        thread pushed — e.g. ``AggregateStats.phase("load")`` around a
        bulk load — would not attribute work executed on a worker.  The
        innermost phase is captured here, on the submitting thread, and
        re-pushed around the task on the worker.
        """
        phase = self.shards[index].stats.current_phase

        def run() -> object:
            if phase == DEFAULT_PHASE:
                return fn(*args, **kwargs)
            with self.shards[index].stats.phase(phase):
                return fn(*args, **kwargs)

        return run

    def _run_on(self, index: int, fn: Callable, *args, **kwargs):
        return self.executor.run(index, self._task(index, fn, *args, **kwargs))

    def _fan_out(self, tasks: Dict[int, Callable]) -> List[object]:
        ordered = sorted(tasks.items())
        return self.executor.map(
            [(index, self._task(index, fn)) for index, fn in ordered]
        )

    # ------------------------------------------------------------------
    # PageUpdateMethod contract — single-page paths (mailbox-serialized)
    # ------------------------------------------------------------------
    def load_page(self, pid: int, data: bytes) -> None:
        index = self.shard_index(pid)
        self._run_on(index, self.shards[index].load_page, pid, data)

    def read_page(self, pid: int) -> bytes:
        index = self.shard_index(pid)
        return self._run_on(index, self.shards[index].read_page, pid)

    def write_page(
        self, pid: int, data: bytes, update_logs: Optional[List[ChangeRun]] = None
    ) -> None:
        index = self.shard_index(pid)
        self._run_on(
            index, self.shards[index].write_page, pid, data, update_logs
        )

    # ------------------------------------------------------------------
    # Fan-out paths (parallel across shards, joined before returning)
    # ------------------------------------------------------------------
    def end_of_load(self) -> None:
        self._fan_out(
            {i: shard.end_of_load for i, shard in enumerate(self.shards)}
        )

    def load_pages(self, pages) -> None:
        per_shard: Dict[int, List] = {}
        for pid, data in pages:
            per_shard.setdefault(self.shard_index(pid), []).append((pid, data))
        self._fan_out(
            {
                index: (lambda s=self.shards[index], g=group: s.load_pages(g))
                for index, group in per_shard.items()
            }
        )

    def write_pages(self, pages, update_logs=None) -> None:
        per_shard: Dict[int, List] = {}
        for pid, data in pages:
            per_shard.setdefault(self.shard_index(pid), []).append((pid, data))
        tasks: Dict[int, Callable] = {}
        for index, group in per_shard.items():
            logs = None
            if update_logs is not None:
                logs = {pid: update_logs[pid] for pid, _ in group if pid in update_logs}
            tasks[index] = (
                lambda s=self.shards[index], g=group, l=logs: s.write_pages(
                    g, update_logs=l
                )
            )
        self._fan_out(tasks)

    def group_flush(self, pages=None, update_logs=None) -> None:
        """Drain every shard's buffers *concurrently* and join.

        Same durability horizon as the serial
        :meth:`~repro.sharding.driver.ShardedDriver.group_flush` —
        nothing returns until every shard has flushed — but the shard
        flushes overlap in wall-clock time, not only on the simulated
        clock.

        With ``pages``, each shard's slice of the batch is written *and*
        its buffers drained inside one worker task, so a buffer pool's
        ``flush_all`` costs a single fan-out/join across the array
        instead of two.
        """
        if pages is None:
            self._fan_out(
                {i: shard.flush for i, shard in enumerate(self.shards)}
            )
        else:
            split = self._split_by_shard(pages, update_logs)

            def write_then_flush(shard, entry):
                if entry is not None:
                    group, logs = entry
                    shard.write_pages(group, update_logs=logs)
                shard.flush()

            self._fan_out(
                {
                    i: (
                        lambda s=shard, e=split.get(i): write_then_flush(s, e)
                    )
                    for i, shard in enumerate(self.shards)
                }
            )
        with self._counter_lock:
            self.group_flushes += 1

    def fsck(self, repair: bool = True):
        """Scan and repair every shard concurrently; join, then merge.

        Each shard's scan runs on its own worker (the single-writer
        invariant covers fsck's repair writes too), so an array fscks in
        the wall-clock time of its slowest shard.
        """
        from ..core.fsck import FsckReport

        def shard_task(shard):
            if hasattr(shard, "fsck"):
                return shard.fsck(repair=repair)
            return FsckReport()

        reports = self._fan_out(
            {
                i: (lambda s=shard: shard_task(s))
                for i, shard in enumerate(self.shards)
            }
        )
        return FsckReport.merge(list(reports))

    def sync(self) -> None:
        self._fan_out({i: chip.sync for i, chip in enumerate(self.chips)})

    def close(self) -> None:
        """Close every shard chip in parallel, then stop the workers."""
        try:
            self._fan_out({i: chip.close for i, chip in enumerate(self.chips)})
        finally:
            self.executor.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ParallelShardedDriver {self.name!r} "
            f"router={type(self.router).__name__} shards={len(self.shards)}>"
        )
