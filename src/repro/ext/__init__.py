"""Extensions (S11 in DESIGN.md): the paper's future-work items.

* :mod:`repro.ext.checkpoint` — clean-shutdown mapping-table snapshots so
  restarts avoid the full Figure-11 scan (Section 4.5's "further study").
* :mod:`repro.ext.wear_leveling` — alternative GC victim policies
  (footnote 4's orthogonal wear-leveling).
"""

from .checkpoint import CheckpointManager, RestartReport
from .wear_leveling import round_robin_policy, wear_aware_policy

__all__ = [
    "CheckpointManager",
    "RestartReport",
    "round_robin_policy",
    "wear_aware_policy",
]
