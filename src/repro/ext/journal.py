"""Journaled mapping snapshots — crash restart in O(dirty tail).

Section 4.5 of the paper sketches the missing piece of mapping-table
persistence: "we have to log the changes in the mapping table into flash
memory".  :mod:`repro.ext.checkpoint` implements the clean-shutdown half;
this module implements the logging half, which together with the
demand-paged table of :mod:`repro.core.mapping` turns crash restart from
the O(device) Figure-11 scan into snapshot-load + journal-tail replay.

Layout — ``region_blocks`` blocks right after the checkpoint region::

    [ journal blocks | snapshot half 0 | snapshot half 1 ]

* The **journal** is an append-only sequence of fixed-size delta records
  (ppmt/vdct mutations plus OPEN_BLOCK markers), group-committed a page
  at a time.  Records pend in RAM and are flushed only at points where
  losing them is provably safe: before the first program of a freshly
  opened block, before a GC victim's erase, and at ``driver.flush()`` /
  ``end_of_load()``.  Everything pending at a crash is re-derived by the
  tail scan (see below).  The journal's last page is reserved for an
  overflow marker: once written, restart ignores the journal and falls
  back to the full scan — overflow degrades performance, never safety.
* A **snapshot** is the whole mapping table as a pid-sorted run of
  packed pages (:mod:`repro.core.mapping` codec), followed by meta pages
  (page directory, active blocks, vdct rows, validity bitmap) and a
  **seal** page programmed *last* at the half's fixed final page — NAND
  imposes no intra-block program order, so seal-last gives atomicity: a
  seal exists iff every page before it does.  Halves ping-pong, so the
  snapshot being replaced survives until its successor is sealed.

Restart (:func:`restart_driver`) reads two seal pages, the meta pages,
and the journal — O(dirty-since-snapshot), never O(device) — then
replays the records and runs a *seeded* Figure-11 scan over only the
snapshot-active and journaled-open blocks to recover mutations whose
records were still pending at the crash.  Any structural damage beyond
a torn tail demotes to the full scan, which is always sound, and ends
with a fresh repair snapshot.  ``docs/recovery.md`` walks the decision
tree and every crash window.
"""

from __future__ import annotations

import struct
import zlib
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core.differential import DifferentialError, decode_differential_page
from ..core.mapping import (
    ENTRY,
    MAPPING_PHASE,
    PAGE_HEADER,
    REC_CLEAR_DIFF,
    REC_MOVE_BASE,
    REC_OPEN_BLOCK,
    REC_REMOVE,
    REC_SET_BASE,
    REC_SET_DIFF,
    REC_VDCT_DEC,
    REC_VDCT_DROP,
    REC_VDCT_INC,
    RECORD,
    MappingConfig,
    MappingFormatError,
    TieredMappingTable,
    decode_mapping_page,
    directory_index,
    encode_mapping_page,
)
from ..core.pdl import PdlDriver
from ..core.recovery import (
    RECOVERY_PHASE,
    RecoveryReport,
    recover_tables,
)
from ..core.tables import (
    MappingEntry,
    PhysicalPageMappingTable,
    ValidDifferentialCountTable,
)
from ..flash.chip import FlashChip
from ..flash.errors import ChecksumError, ProgramError, SpareProgramError
from ..flash.spare import PageType, SpareArea
from ..flash.stats import FlashStats
from ..ftl.errors import ConfigurationError
from ..ftl.gc import VictimPolicy

#: Journal page header: magic, snapshot epoch, page index, record count,
#: CRC32 of the packed records.
_JHDR = struct.Struct("<IIIHI")

#: Seal page: magic, seq, data pages, meta pages, live entries, CRC32 of
#: the concatenated meta payload, max driver timestamp, max pid + 1.
_SEAL = struct.Struct("<IIIIIIQQ")

#: Meta payload prologue: directory length, active-block count, vdct row
#: count, validity-bitmap bytes.
_META_HDR = struct.Struct("<IIII")
_VDCT_ROW = struct.Struct("<II")

JOURNAL_MAGIC = 0x50444C4A  # "PDLJ"
OVERFLOW_MAGIC = 0x50444C4F  # "PDLO"
SEAL_MAGIC = 0x50444C53  # "PDLS"
META_MAGIC = 0x50444C4D  # "PDLM"


class MappingStore:
    """Flash persistence of the tiered mapping table: journal + snapshots.

    Constructed by :class:`~repro.core.pdl.PdlDriver` when a
    :class:`~repro.core.mapping.MappingConfig` is supplied, then bound
    back to the driver (:meth:`bind`) once the tables exist.  All flash
    traffic is charged to the ``mapping`` phase and counted in
    ``FlashStats.mapping_misses`` / ``mapping_writebacks``.
    """

    def __init__(
        self, chip: FlashChip, config: MappingConfig, base_block: int = 0
    ) -> None:
        spec = chip.spec
        if base_block + config.region_blocks >= spec.n_blocks:
            raise ConfigurationError(
                f"mapping region of {config.region_blocks} blocks at "
                f"{base_block} leaves no data blocks on a chip of "
                f"{spec.n_blocks}"
            )
        self.chip = chip
        self.spec = spec
        self.config = config
        self.base_block = base_block
        self.driver: Optional[PdlDriver] = None
        #: Current snapshot sequence number (0 = the implicit empty
        #: snapshot a fresh device starts from).
        self.seq = 0
        #: First pid of each snapshot data page (RAM; bisected on lookup).
        self.directory: List[int] = []
        self._n_data = 0
        self._n_meta = 0
        #: Blocks that were open for appends when the snapshot was taken.
        self.snapshot_active_blocks: List[int] = []
        self.journaling = True
        self._pending: List[bytes] = []
        self._cursor = 0
        self._records_since_snapshot = 0
        self._overflowed = False
        self.snapshot_due = False
        # Lifetime counters (RAM-side; flash-side ones live in FlashStats).
        self.journal_records = 0
        self.journal_flushes = 0
        self.snapshots_taken = 0

    def bind(self, driver: PdlDriver) -> None:
        self.driver = driver

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def stats(self) -> FlashStats:
        return self.chip.stats

    @property
    def entries_per_page(self) -> int:
        return (self.spec.page_data_size - PAGE_HEADER.size) // ENTRY.size

    @property
    def records_per_page(self) -> int:
        return (self.spec.page_data_size - _JHDR.size) // RECORD.size

    @property
    def data_page_count(self) -> int:
        return self._n_data

    @property
    def journal_pages(self) -> int:
        """Total journal pages, including the reserved overflow page."""
        return self.config.journal_blocks * self.spec.pages_per_block

    @property
    def usable_journal_pages(self) -> int:
        return self.journal_pages - 1

    @property
    def half_pages(self) -> int:
        return self.config.half_blocks * self.spec.pages_per_block

    def journal_page_addr(self, index: int) -> int:
        return self.base_block * self.spec.pages_per_block + index

    def half_blocks_of(self, half: int) -> range:
        start = self.base_block + self.config.journal_blocks
        start += half * self.config.half_blocks
        return range(start, start + self.config.half_blocks)

    def half_start_page(self, half: int) -> int:
        return self.half_blocks_of(half)[0] * self.spec.pages_per_block

    def seal_addr(self, half: int) -> int:
        return self.half_start_page(half) + self.half_pages - 1

    # ------------------------------------------------------------------
    # Demand paging (the table's clean-tier backend)
    # ------------------------------------------------------------------
    def page_index_of(self, pid: int) -> Optional[int]:
        return directory_index(self.directory, pid)

    def load_data_page(self, index: int) -> Dict[int, MappingEntry]:
        # Every load is a miss by definition — a mapping page read from
        # flash because it was not resident — so the counter is recorded
        # here, keeping ``mapping_misses`` equal to the mapping region's
        # raw device reads during normal operation (the stress audit).
        self.stats.record_mapping_miss()
        addr = self.half_start_page(self.seq % 2) + index
        with self.stats.phase(MAPPING_PHASE):
            data, _spare = self.chip.read_page(addr)
        return decode_mapping_page(data, expect_seq=self.seq, expect_index=index)

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------
    def record(self, kind: int, a: int, b: int = 0, ts: int = 0) -> None:
        """Append one delta record (buffered until a group commit)."""
        if not self.journaling:
            return
        self._pending.append(RECORD.pack(kind, a, b, ts))
        self.journal_records += 1
        self._records_since_snapshot += 1
        if self._records_since_snapshot >= self.config.snapshot_interval:
            self.snapshot_due = True

    @contextmanager
    def suppressed(self) -> Iterator[None]:
        """Disable journaling (replay/restore applies mutations that are
        already represented on flash)."""
        previous = self.journaling
        self.journaling = False
        try:
            yield
        finally:
            self.journaling = previous

    def note_block_open(self, block: int) -> None:
        """Allocator callback: a stream opened ``block``.

        The OPEN_BLOCK record is committed *before* the caller can
        program the block's first page.  This ordering is load-bearing:
        a durable base or differential page in a block the journal never
        acknowledged would be invisible to the restart tail scan, and
        its data silently lost.
        """
        if not self.journaling:
            return
        self.record(REC_OPEN_BLOCK, block)
        self.commit()

    def commit(self) -> None:
        """Group commit: flush pending records to journal pages.

        Once the journal is full an overflow marker is written instead
        and pending records are discarded — the next restart takes the
        full-scan fallback, so discarding is safe — and a snapshot is
        armed to reclaim the journal at the next safe point.
        """
        if not self._pending:
            return
        if self._overflowed:
            self._pending.clear()
            return
        per_page = self.records_per_page
        with self.stats.phase(MAPPING_PHASE):
            while self._pending:
                if self._cursor >= self.usable_journal_pages:
                    self._write_overflow()
                    self._pending.clear()
                    break
                chunk = self._pending[:per_page]
                del self._pending[:per_page]
                body = b"".join(chunk)
                header = _JHDR.pack(
                    JOURNAL_MAGIC, self.seq, self._cursor, len(chunk),
                    zlib.crc32(body),
                )
                self.chip.program_page(
                    self.journal_page_addr(self._cursor),
                    header + body,
                    SpareArea(
                        type=PageType.CHECKPOINT, pid=self._cursor,
                        timestamp=self.seq,
                    ),
                )
                self.stats.record_mapping_writeback()
                self._cursor += 1
        self.journal_flushes += 1

    def _write_overflow(self) -> None:
        if self._overflowed:
            return
        header = _JHDR.pack(OVERFLOW_MAGIC, self.seq, self.usable_journal_pages, 0, 0)
        self.chip.program_page(
            self.journal_page_addr(self.usable_journal_pages),
            header,
            SpareArea(
                type=PageType.CHECKPOINT, pid=self.usable_journal_pages,
                timestamp=self.seq,
            ),
        )
        self.stats.record_mapping_writeback()
        self._overflowed = True
        self.snapshot_due = True

    # ------------------------------------------------------------------
    # Driver pacing
    # ------------------------------------------------------------------
    def tick(self, force: bool = False) -> None:
        """Driver safe point: snapshot when due, else force-commit.

        Snapshots are deferred while a GC victim is in flight — the
        compaction buffer and wholesale-dropped vdct rows are mid-step
        state the snapshot must never capture.
        """
        if self.driver is None:
            return
        if self.snapshot_due and self._safe_to_snapshot():
            self.snapshot()
            return
        if force:
            self.commit()

    def _safe_to_snapshot(self) -> bool:
        driver = self.driver
        assert driver is not None
        return driver.gc.in_flight_victim is None and driver._gc_buffer.is_empty

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> int:
        """Write a full snapshot to the inactive half; seal it; reset the
        journal.  Returns the new sequence number.

        The write is a streaming merge: old snapshot pages are read in
        pid order and merged with the table's dirty overlay (tombstones
        drop rows), so cost is one pass over the table, not over the
        device.  Crash safety is ordering: data, meta, seal *last*, then
        the journal erase — until the seal lands, restart still sees the
        previous snapshot with its epoch-matched journal intact.
        """
        driver = self.driver
        if driver is None:
            raise ConfigurationError("mapping store is not bound to a driver")
        table = driver.ppmt
        if not isinstance(table, TieredMappingTable):  # pragma: no cover - guard
            raise ConfigurationError("snapshot requires a TieredMappingTable")
        new_seq = self.seq + 1
        per_page = self.entries_per_page

        payloads: List[bytes] = []
        directory: List[int] = []
        rows: List[Tuple[int, MappingEntry]] = []
        count = 0
        max_pid = -1

        def flush_rows() -> None:
            nonlocal rows
            if rows:
                directory.append(rows[0][0])
                payloads.append(
                    encode_mapping_page(
                        new_seq, len(payloads), rows, self.spec.page_data_size
                    )
                )
                rows = []

        for pid, entry in self._merged_rows(table):
            rows.append((pid, entry))
            count += 1
            if pid > max_pid:
                max_pid = pid
            if len(rows) == per_page:
                flush_rows()
        flush_rows()

        meta_chunks = self._encode_meta(directory)
        n_data = len(payloads)
        n_meta = len(meta_chunks)
        if n_data + n_meta + 1 > self.half_pages:
            raise ConfigurationError(
                f"snapshot needs {n_data} data + {n_meta} meta pages; half "
                f"holds {self.half_pages} (raise MappingConfig.region_blocks)"
            )
        meta_crc = zlib.crc32(b"".join(meta_chunks))
        seal = _SEAL.pack(
            SEAL_MAGIC, new_seq, n_data, n_meta, count, meta_crc,
            driver.current_ts, max_pid + 1,
        )
        half = new_seq % 2
        start = self.half_start_page(half)
        with self.stats.phase(MAPPING_PHASE):
            for block in self.half_blocks_of(half):
                if not self.chip.is_block_erased(block):
                    self.chip.erase_block(block)
            items = [
                (
                    start + index,
                    payload,
                    SpareArea(
                        type=PageType.CHECKPOINT, pid=index, timestamp=new_seq
                    ),
                )
                for index, payload in enumerate(payloads)
            ]
            for offset, chunk in enumerate(meta_chunks):
                index = n_data + offset
                header = PAGE_HEADER.pack(META_MAGIC, new_seq, index, len(chunk))
                items.append(
                    (
                        start + index,
                        header + chunk,
                        SpareArea(
                            type=PageType.CHECKPOINT, pid=index, timestamp=new_seq
                        ),
                    )
                )
            self.chip.program_pages(items)
            # The seal goes down last: its existence certifies every page
            # above.  NAND has no intra-block program-order constraint,
            # so programming the half's final page after a gap is legal.
            self.chip.program_page(
                self.seal_addr(half),
                seal,
                SpareArea(
                    type=PageType.CHECKPOINT,
                    pid=self.half_pages - 1,
                    timestamp=new_seq,
                ),
            )
            for block in range(
                self.base_block, self.base_block + self.config.journal_blocks
            ):
                if not self.chip.is_block_erased(block):
                    self.chip.erase_block(block)
            self.stats.record_mapping_writeback(n_data + n_meta + 1)

        self.seq = new_seq
        self.directory = directory
        self._n_data = n_data
        self._n_meta = n_meta
        self.snapshot_active_blocks = sorted(driver.blocks.active_blocks())
        table.on_snapshot()
        self._pending.clear()
        self._cursor = 0
        self._records_since_snapshot = 0
        self._overflowed = False
        self.snapshot_due = False
        self.snapshots_taken += 1
        return new_seq

    def _merged_rows(
        self, table: TieredMappingTable
    ) -> Iterator[Tuple[int, MappingEntry]]:
        """Old snapshot pages merged with the overlay, in pid order."""
        overlay = iter(table.overlay_items())
        cursor = next(overlay, None)
        for index in range(self._n_data):
            for pid, entry in self.load_data_page(index).items():
                while cursor is not None and cursor[0] < pid:
                    if cursor[1] is not None:
                        yield cursor
                    cursor = next(overlay, None)
                if cursor is not None and cursor[0] == pid:
                    if cursor[1] is not None:
                        yield cursor
                    cursor = next(overlay, None)
                else:
                    yield pid, entry
        while cursor is not None:
            if cursor[1] is not None:
                yield cursor
            cursor = next(overlay, None)

    def _encode_meta(self, directory: List[int]) -> List[bytes]:
        driver = self.driver
        assert driver is not None
        active = sorted(driver.blocks.active_blocks())
        vdct_rows = sorted(driver.vdct.items())
        bitmap = bytearray((self.spec.n_pages + 7) // 8)
        for addr in driver.blocks.valid_addresses():
            bitmap[addr >> 3] |= 1 << (addr & 7)
        blob = b"".join(
            (
                _META_HDR.pack(len(directory), len(active), len(vdct_rows), len(bitmap)),
                b"".join(struct.pack("<I", pid) for pid in directory),
                b"".join(struct.pack("<I", block) for block in active),
                b"".join(_VDCT_ROW.pack(addr, n) for addr, n in vdct_rows),
                bytes(bitmap),
            )
        )
        room = self.spec.page_data_size - PAGE_HEADER.size
        return [blob[i : i + room] for i in range(0, len(blob), room)] or [b""]


def _decode_meta(blob: bytes) -> Tuple[List[int], List[int], List[Tuple[int, int]], bytes]:
    directory_len, n_active, n_vdct, n_bitmap = _META_HDR.unpack_from(blob, 0)
    offset = _META_HDR.size
    need = offset + 4 * directory_len + 4 * n_active + _VDCT_ROW.size * n_vdct + n_bitmap
    if need > len(blob):
        raise MappingFormatError("snapshot meta payload truncated")
    directory = list(struct.unpack_from(f"<{directory_len}I", blob, offset))
    offset += 4 * directory_len
    active = list(struct.unpack_from(f"<{n_active}I", blob, offset))
    offset += 4 * n_active
    vdct_rows = [
        _VDCT_ROW.unpack_from(blob, offset + i * _VDCT_ROW.size) for i in range(n_vdct)
    ]
    offset += _VDCT_ROW.size * n_vdct
    bitmap = blob[offset : offset + n_bitmap]
    return directory, active, vdct_rows, bitmap


# ----------------------------------------------------------------------
# Restart
# ----------------------------------------------------------------------
def restart_driver(
    chip: FlashChip,
    max_differential_size: int = 256,
    victim_policy: Optional[VictimPolicy] = None,
    mapping: Optional[MappingConfig] = None,
    **driver_kwargs,
) -> Tuple[PdlDriver, RecoveryReport]:
    """Restart a mapping-enabled PDL driver after a crash or shutdown.

    Fast path: newest valid seal → meta load → journal-tail replay →
    seeded Figure-11 scan over only snapshot-active and journaled-open
    blocks.  Structural journal damage (mid-journal rot, an overflow
    marker, a stale-epoch journal) demotes to the full-device scan.
    Either way the driver comes back fully operational and, when the
    journal could not simply continue, a fresh repair snapshot is
    written so the *next* restart is fast again.

    The return contract matches :func:`repro.core.recovery.recover_driver`
    (which delegates here when ``mapping`` is set).
    """
    if mapping is None:
        raise ConfigurationError("restart_driver requires a mapping configuration")
    driver = PdlDriver(
        chip,
        max_differential_size=max_differential_size,
        victim_policy=victim_policy,
        mapping=mapping,
        **driver_kwargs,
    )
    store = driver.mapping
    assert store is not None
    report = RecoveryReport()
    with store.suppressed():
        restored = _try_fast_restart(driver, store, report)
        if not restored:
            _full_scan_restart(driver, store, report)
    if report.repaired:
        # One repair snapshot re-arms the fast path; it runs only when
        # the journal could not be continued, so the common clean-prefix
        # restart stays strictly O(dirty tail).
        store.snapshot()
    return driver, report


def _read_seal(
    store: MappingStore, half: int, report: RecoveryReport
) -> Optional[Tuple[int, int, int, int, int, int, int]]:
    """Parse one half's seal page; None when absent/invalid."""
    chip = store.chip
    report.pages_scanned += 1
    try:
        data, spare = chip.read_page(store.seal_addr(half))
    except ChecksumError:
        return None
    if spare.is_erased or spare.type is not PageType.CHECKPOINT:
        return None
    try:
        magic, seq, n_data, n_meta, count, meta_crc, max_ts, max_pid1 = (
            _SEAL.unpack_from(data, 0)
        )
    except struct.error:
        return None
    if magic != SEAL_MAGIC or seq % 2 != half:
        return None
    if n_data + n_meta + 1 > store.half_pages:
        return None
    return seq, n_data, n_meta, count, meta_crc, max_ts, max_pid1


def _load_snapshot(
    driver: PdlDriver, store: MappingStore, report: RecoveryReport
) -> Optional[Tuple[Set[int], int]]:
    """Adopt the newest sealed snapshot.  Returns (valid set, max_ts), or
    None when no usable snapshot exists (the implicit empty snapshot of
    sequence 0 is then in effect, or the caller falls back to a scan)."""
    chip = store.chip
    with chip.stats.phase(MAPPING_PHASE):
        seals = [(half, _read_seal(store, half, report)) for half in (0, 1)]
    best = None
    for half, seal in seals:
        if seal is not None and (best is None or seal[0] > best[1][0]):
            best = (half, seal)
    if best is None:
        # Fresh device (or both halves rotted — the stale-epoch journal
        # check demotes that case to the full scan).
        return set(), 0
    half, (seq, n_data, n_meta, count, meta_crc, max_ts, max_pid1) = best
    start = store.half_start_page(half)
    meta_addrs = [start + n_data + i for i in range(n_meta)]
    chunks: List[bytes] = []
    with chip.stats.phase(MAPPING_PHASE):
        try:
            pages = chip.read_pages(meta_addrs)
        except ChecksumError:
            report.pages_scanned += len(meta_addrs)
            return None
    report.pages_scanned += len(meta_addrs)
    for offset, (data, _spare) in enumerate(pages):
        try:
            magic, page_seq, index, size = PAGE_HEADER.unpack_from(data, 0)
        except struct.error:
            return None
        if magic != META_MAGIC or page_seq != seq or index != n_data + offset:
            return None
        chunks.append(data[PAGE_HEADER.size : PAGE_HEADER.size + size])
    blob = b"".join(chunks)
    if zlib.crc32(blob) != meta_crc:
        return None
    try:
        directory, active, vdct_rows, bitmap = _decode_meta(blob)
    except (MappingFormatError, struct.error):
        return None
    if len(directory) != n_data:
        return None
    store.seq = seq
    store.directory = directory
    store._n_data = n_data
    store._n_meta = n_meta
    store.snapshot_active_blocks = list(active)
    table = driver.ppmt
    assert isinstance(table, TieredMappingTable)
    table.seed_counts(count, max_pid1 - 1)
    driver.vdct.seed(vdct_rows)
    valid: Set[int] = set()
    for addr in range(store.spec.n_pages):
        if bitmap[addr >> 3] & (1 << (addr & 7)):
            valid.add(addr)
    report.snapshot_seq = seq
    return valid, max_ts


def _classify_journal(
    store: MappingStore, report: RecoveryReport
) -> Optional[Tuple[List[Tuple[int, int, int, int]], int]]:
    """Read and validate the journal; returns (records, valid prefix pages).

    ``None`` means the journal is structurally unusable (overflow marker,
    a valid page after damage, or a stale-epoch journal while a newer
    seal exists) and the caller must take the full-scan fallback.
    A torn tail after a valid prefix is fine — the prefix replays and
    ``report.repaired`` arms the repair snapshot.
    """
    chip = store.chip
    addrs = [store.journal_page_addr(i) for i in range(store.journal_pages)]
    with chip.stats.phase(MAPPING_PHASE):
        spares = chip.read_spares(addrs)
    report.pages_scanned += len(addrs)
    # Reserved overflow page first: if armed for the current epoch, the
    # journal's tail was dropped at runtime and only a scan is sound.
    overflow_spare = spares[-1]
    if not overflow_spare.is_erased:
        with chip.stats.phase(MAPPING_PHASE):
            try:
                data, _ = chip.read_page(addrs[-1])
                magic, epoch, _i, _n, _c = _JHDR.unpack_from(data, 0)
            except (ChecksumError, struct.error):
                magic, epoch = 0, -1
        report.pages_scanned += 1
        if magic == OVERFLOW_MAGIC and epoch == store.seq:
            return None
        report.repaired = True  # stale/damaged marker: reclaim via snapshot
    records: List[Tuple[int, int, int, int]] = []
    prefix = 0
    in_prefix = True
    for index in range(store.usable_journal_pages):
        if spares[index].is_erased:
            in_prefix = False
            continue
        with chip.stats.phase(MAPPING_PHASE):
            try:
                data, _spare = chip.read_page(addrs[index])
            except ChecksumError:
                data = None
        report.pages_scanned += 1
        page_records = None
        if data is not None:
            try:
                magic, epoch, page_index, n_records, crc = _JHDR.unpack_from(data, 0)
            except struct.error:
                magic = 0
            if magic == JOURNAL_MAGIC and epoch == store.seq and page_index == index:
                body = data[_JHDR.size : _JHDR.size + n_records * RECORD.size]
                if len(body) == n_records * RECORD.size and zlib.crc32(body) == crc:
                    page_records = [
                        RECORD.unpack_from(body, i * RECORD.size)
                        for i in range(n_records)
                    ]
        if page_records is None:
            # Torn or stale page.  A pure power loss can only tear the
            # append point, so anything valid *after* this is rot — the
            # full scan handles that; either way the journal region gets
            # reclaimed by a repair snapshot.
            report.repaired = True
            in_prefix = False
            continue
        if not in_prefix:
            return None  # valid page after damage: structural rot
        records.extend(page_records)
        prefix = index + 1
    return records, prefix


def _try_fast_restart(
    driver: PdlDriver, store: MappingStore, report: RecoveryReport
) -> bool:
    """Snapshot + journal replay + seeded tail scan.  False → fallback."""
    loaded = _load_snapshot(driver, store, report)
    if loaded is None:
        return False
    valid, seal_max_ts = loaded
    classified = _classify_journal(store, report)
    if classified is None:
        return False
    records, prefix = classified
    report.journal_pages = prefix
    report.journal_records = len(records)
    table = driver.ppmt
    assert isinstance(table, TieredMappingTable)
    vdct = driver.vdct
    retire: Set[int] = set()
    scan_blocks: Set[int] = set(store.snapshot_active_blocks)
    max_ts = seal_max_ts
    try:
        for kind, a, b, ts in records:
            max_ts = max(max_ts, ts)
            if kind == REC_SET_BASE:
                old = table.get(a)
                table.set_base(a, b, ts)
                valid.add(b)
                if old is not None and old.base_addr >= 0 and old.base_addr != b:
                    valid.discard(old.base_addr)
                    retire.add(old.base_addr)
            elif kind == REC_MOVE_BASE:
                old = table.require(a)
                if old.base_addr != b:
                    valid.discard(old.base_addr)
                    retire.add(old.base_addr)
                table.move_base(a, b)
                valid.add(b)
            elif kind == REC_SET_DIFF:
                table.set_diff(a, b, ts)
            elif kind == REC_CLEAR_DIFF:
                table.set_diff(a, None)
            elif kind == REC_REMOVE:
                old = table.get(a)
                if old is not None:
                    table.remove(a)
                    if old.base_addr >= 0:
                        valid.discard(old.base_addr)
                        retire.add(old.base_addr)
            elif kind == REC_VDCT_INC:
                if vdct.count(a) == 0:
                    valid.add(a)
                vdct.increment(a)
            elif kind == REC_VDCT_DEC:
                if vdct.decrement(a):
                    valid.discard(a)
                    retire.add(a)
            elif kind == REC_VDCT_DROP:
                vdct.remove(a)
                valid.discard(a)
                retire.add(a)
            elif kind == REC_OPEN_BLOCK:
                scan_blocks.add(a)
            else:
                raise MappingFormatError(f"unknown journal record kind {kind}")
    except (KeyError, MappingFormatError):
        # A record stream the tables reject is corrupt in a way the CRCs
        # could not see; the scan remains sound.
        return False
    report.fast_path = True
    max_ts = max(
        max_ts, _tail_scan(driver, store, valid, retire, scan_blocks, report)
    )
    _retire_sweep(driver, retire, valid, report)
    driver.blocks.rebuild(valid)
    driver.resume_ts(max_ts)
    store._cursor = prefix
    store._records_since_snapshot = len(records)
    return True


def _tail_scan(
    driver: PdlDriver,
    store: MappingStore,
    valid: Set[int],
    retire: Set[int],
    scan_blocks: Set[int],
    report: RecoveryReport,
) -> int:
    """Seeded Figure-11 scan over only the blocks writes could have
    reached since the snapshot: re-derives every mutation whose journal
    record was still pending (unflushed) at the crash."""
    chip = driver.chip
    table = driver.ppmt
    assert isinstance(table, TieredMappingTable)
    vdct = driver.vdct
    spec = chip.spec
    placeholders: Set[int] = set()
    max_ts = 0

    def drop_ref(addr: int) -> None:
        if vdct.decrement(addr):
            valid.discard(addr)
            retire.add(addr)

    with chip.stats.phase(RECOVERY_PHASE):
        for block in sorted(scan_blocks):
            if block < driver.blocks.exclude_blocks or block >= spec.n_blocks:
                continue
            start = block * spec.pages_per_block
            addrs = range(start, start + spec.pages_per_block)
            spares = chip.read_spares(addrs)
            report.tail_pages_scanned += len(addrs)
            report.pages_scanned += len(addrs)
            for addr, spare in zip(addrs, spares):
                if spare.is_erased:
                    continue
                max_ts = max(max_ts, spare.timestamp or 0)
                if spare.obsolete or spare.type is PageType.CHECKPOINT:
                    continue
                if spare.is_corrupt or (
                    spare.type is PageType.BASE and spare.pid is None
                ):
                    retire.add(addr)
                    valid.discard(addr)
                    continue
                if spare.type is PageType.BASE:
                    _tail_scan_base(
                        table, addr, spare.pid, spare.timestamp or 0,
                        valid, retire, drop_ref, report,
                    )
                elif spare.type is PageType.DIFFERENTIAL:
                    if vdct.count(addr) > 0:
                        continue  # fully described by replayed records
                    try:
                        data, _ = chip.read_page(addr)
                        diffs = decode_differential_page(data)
                    except (ChecksumError, DifferentialError):
                        retire.add(addr)
                        valid.discard(addr)
                        continue
                    report.pages_scanned += 1
                    adopted = 0
                    for diff in diffs:
                        entry = table.get(diff.pid)
                        base_ts = (
                            entry.base_ts
                            if entry is not None and entry.base_addr >= 0
                            else -1
                        )
                        if diff.timestamp <= base_ts:
                            continue
                        current = (
                            entry.diff_ts
                            if entry is not None and entry.diff_ts is not None
                            else -1
                        )
                        if diff.timestamp <= current:
                            continue
                        if entry is None:
                            table.set_base(diff.pid, -1, -1)
                            placeholders.add(diff.pid)
                        elif entry.diff_addr is not None:
                            drop_ref(entry.diff_addr)
                        table.set_diff(diff.pid, addr, diff.timestamp)
                        vdct.increment(addr)
                        adopted += 1
                        max_ts = max(max_ts, diff.timestamp)
                    report.differentials_adopted += adopted
                    if vdct.count(addr) > 0:
                        valid.add(addr)
                    else:
                        retire.add(addr)
        # Differentials whose base never materialized (torn load).
        for pid in placeholders:
            entry = table.get(pid)
            if entry is not None and entry.base_addr < 0:
                if entry.diff_addr is not None:
                    drop_ref(entry.diff_addr)
                table.remove(pid)
                report.orphan_pids.append(pid)
    return max_ts


def _tail_scan_base(
    table: TieredMappingTable,
    addr: int,
    pid: int,
    ts: int,
    valid: Set[int],
    retire: Set[int],
    drop_ref,
    report: RecoveryReport,
) -> None:
    entry = table.get(pid)
    if entry is not None and addr == entry.base_addr:
        return  # already adopted via the snapshot or a replayed record
    if entry is None or entry.base_addr < 0 or ts > entry.base_ts:
        old_addr = entry.base_addr if entry is not None else None
        old_diff = entry.diff_addr if entry is not None else None
        old_diff_ts = entry.diff_ts if entry is not None else None
        table.set_base(pid, addr, ts)
        valid.add(addr)
        report.base_pages_adopted += 1
        if old_addr is not None and old_addr >= 0:
            valid.discard(old_addr)
            retire.add(old_addr)
        if old_diff is not None:
            if ts > (old_diff_ts if old_diff_ts is not None else -1):
                drop_ref(old_diff)  # the newer base supersedes it
            else:
                table.set_diff(pid, old_diff, old_diff_ts)
        return
    # Stale or tie (identical GC copy): the adopted mapping wins.
    valid.discard(addr)
    retire.add(addr)


def _retire_sweep(
    driver: PdlDriver, retire: Set[int], valid: Set[int], report: RecoveryReport
) -> None:
    """Obsolete pages that lost their last reference during replay/scan.

    All checks are cost-free peeks; only the actual obsolete mark is
    charged.  Pages the final tables still reference, and pages already
    obsolete or erased (the runtime mark landed before the crash, or the
    block was erased), are skipped — the sweep is idempotent across
    repeated crashes and never burns spare-program budget twice.
    """
    chip = driver.chip
    table = driver.ppmt
    vdct = driver.vdct
    with chip.stats.phase(RECOVERY_PHASE):
        for addr in sorted(retire):
            if addr < 0 or addr in valid:
                continue
            spare = chip.peek_spare(addr)
            if spare.is_erased or spare.obsolete:
                continue
            if spare.type is PageType.BASE and spare.pid is not None:
                entry = table.get(spare.pid)
                if entry is not None and entry.base_addr == addr:
                    continue  # pragma: no cover - defensive
            if spare.type is PageType.DIFFERENTIAL and vdct.count(addr) > 0:
                continue  # pragma: no cover - defensive
            if spare.type is PageType.CHECKPOINT:
                continue
            try:
                chip.mark_obsolete(addr)
            except (ProgramError, SpareProgramError):
                continue
            report.stale_pages_obsoleted += 1


def _full_scan_restart(
    driver: PdlDriver, store: MappingStore, report: RecoveryReport
) -> None:
    """Figure-11 fallback for a mapping-enabled driver.

    The scan runs against plain RAM tables — its adoption logic is the
    verified reference implementation — and the result is transferred
    into the tiered table as one big dirty overlay, which the repair
    snapshot then persists.  Sequence numbers continue above anything
    either half holds, so the repair seal outranks every stale one.
    """
    report.fallback = True
    report.repaired = True
    chip = store.chip
    plain_ppmt = PhysicalPageMappingTable()
    plain_vdct = ValidDifferentialCountTable()
    scan = recover_tables(chip, plain_ppmt, plain_vdct, driver=None)
    for name in (
        "pages_scanned",
        "base_pages_adopted",
        "differentials_adopted",
        "stale_pages_obsoleted",
        "corrupt_differential_pages",
        "corrupt_base_pages",
        "corrupt_spare_pages",
        "diff_pages_read",
        "diff_read_batches",
    ):
        setattr(report, name, getattr(report, name) + getattr(scan, name))
    report.orphan_pids.extend(scan.orphan_pids)
    report.max_timestamp = max(report.max_timestamp, scan.max_timestamp)
    # Newest epoch visible anywhere, so the repair snapshot outranks it.
    best_seq = store.seq
    for half in (0, 1):
        seal = _read_seal(store, half, report)
        if seal is not None:
            best_seq = max(best_seq, seal[0])
    store.seq = best_seq
    store.directory = []
    store._n_data = 0
    store._n_meta = 0
    table = driver.ppmt
    assert isinstance(table, TieredMappingTable)
    valid: Set[int] = set()
    for pid, entry in plain_ppmt.items():
        table.set_base(pid, entry.base_addr, entry.base_ts)
        valid.add(entry.base_addr)
        if entry.diff_addr is not None:
            table.set_diff(pid, entry.diff_addr, entry.diff_ts)
    driver.vdct.seed(list(plain_vdct.items()))
    for diff_page in plain_vdct.pages():
        valid.add(diff_page)
    driver.blocks.rebuild(valid)
    driver.resume_ts(scan.max_timestamp)
