"""Alternative GC victim-selection policies (the paper's footnote 4).

The paper defers wear-leveling to orthogonal work but notes that such
techniques "can be applied to the storage system independently of the
page update methods".  The cost-benefit and wear-aware compromises now
live in :mod:`repro.ftl.gc` next to the registry (select them with
``GcConfig(policy="cb")`` / ``"wear"`` or a ``gc=`` label token);
:func:`wear_aware_policy` is re-exported here for compatibility.

This module keeps the pure wear-leveling extreme:

* :func:`round_robin_policy` — cycle through candidate blocks, spreading
  erases evenly regardless of garbage density.  Importing this module
  registers it as ``"rr"``.
"""

from __future__ import annotations

from typing import Optional

from ..ftl.allocator import BlockManager
from ..ftl.gc import VictimPolicy, register_victim_policy, wear_aware_policy

__all__ = ["round_robin_policy", "wear_aware_policy"]


def round_robin_policy() -> VictimPolicy:
    """A stateful policy cycling through candidates in block order."""
    cursor = 0

    def policy(blocks: BlockManager) -> Optional[int]:
        nonlocal cursor
        candidates = sorted(blocks.victim_candidates())
        usable = [b for b in candidates if blocks.garbage_in(b) > 0]
        if not usable:
            return None
        for block in usable:
            if block >= cursor:
                cursor = block + 1
                return block
        cursor = usable[0] + 1
        return usable[0]

    return policy


register_victim_policy("rr", round_robin_policy)
