"""Alternative GC victim-selection policies (the paper's footnote 4).

The paper defers wear-leveling to orthogonal work but notes that such
techniques "can be applied to the storage system independently of the
page update methods".  These policies plug into the same
:class:`GarbageCollector` used by OPU and PDL:

* :func:`round_robin_policy` — cycle through candidate blocks, spreading
  erases evenly regardless of garbage density (pure wear-leveling);
* :func:`wear_aware_policy` — the classic cost-benefit compromise:
  garbage reclaimed per erase, discounted by the block's wear.
"""

from __future__ import annotations

from typing import Optional

from ..ftl.allocator import BlockManager
from ..ftl.gc import VictimPolicy


def round_robin_policy() -> VictimPolicy:
    """A stateful policy cycling through candidates in block order."""
    cursor = 0

    def policy(blocks: BlockManager) -> Optional[int]:
        nonlocal cursor
        candidates = sorted(blocks.victim_candidates())
        usable = [b for b in candidates if blocks.garbage_in(b) > 0]
        if not usable:
            return None
        for block in usable:
            if block >= cursor:
                cursor = block + 1
                return block
        cursor = usable[0] + 1
        return usable[0]

    return policy


def wear_aware_policy(wear_weight: float = 1.0) -> VictimPolicy:
    """Cost-benefit selection: maximize garbage / (1 + weight × wear).

    With ``wear_weight=0`` this degenerates to the greedy policy; larger
    weights trade reclamation efficiency for evener wear (lower maximum
    per-block erase counts — the longevity metric of Experiment 6).
    """

    def policy(blocks: BlockManager) -> Optional[int]:
        best: Optional[int] = None
        best_score = 0.0
        for block in blocks.victim_candidates():
            garbage = blocks.garbage_in(block)
            if garbage <= 0:
                continue
            wear = blocks.chip.erase_count(block)
            score = garbage / (1.0 + wear_weight * wear)
            if score > best_score:
                best = block
                best_score = score
        return best

    return policy
