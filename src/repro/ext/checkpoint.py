"""Mapping-table checkpointing — the paper's "further study" extension.

Section 4.5 ends: "To recover the physical page mapping table without
scanning all the physical pages in flash memory, we have to log the
changes in the mapping table into flash memory.  We leave this extension
as a further study."  This module implements the production-standard form
of that idea: a **clean-shutdown checkpoint**.

A small region of blocks (excluded from the allocator/GC) is managed as a
ping-pong pair of snapshot areas.  ``checkpoint()`` flushes the driver
and serializes the entire physical page mapping table (the valid
differential count table is derivable from it) into one area, sealed
with a CRC.  Restart logic:

* a *complete, newest* snapshot with no newer session marker ⇒ restart by
  reading a handful of pages (milliseconds) instead of scanning the chip
  (the paper estimates ~60 s per GB);
* otherwise (crash after the checkpoint — a *session marker* written at
  open time outranks the snapshot) ⇒ fall back to the full Figure-11
  scan, which is always sound.

Incremental journaling of table changes between checkpoints lives in
:mod:`repro.ext.journal` (periodic snapshots + a delta journal, restart
in O(dirty tail)); this module remains the clean-shutdown-only variant
for drivers without a mapping region.  The fallback keeps the fast path
strictly an optimization either way.

Snapshot wire format, version 2 (little-endian)::

    header page : u32 magic | u32 seq | u32 kind (1=snapshot, 2=marker)
                  | u32 n_entries | u32 n_pages | u32 crc | u64 max_ts
    entry       : u32 pid | u32 base_addr | u64 base_ts
                  | u32 diff_addr+1 | u64 diff_ts+1

Version 1 entries lacked ``diff_ts``, so a restored differential lost
its timestamp and a subsequent crash-recovery scan could mis-order it
against the on-flash copy.  The magic was bumped ("PDLC" → "PDLD"):
version-1 images simply fail validation and take the always-sound scan.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.pdl import PdlDriver
from ..core.recovery import RecoveryReport, recover_driver
from ..flash.chip import FlashChip
from ..flash.errors import ChecksumError
from ..flash.spare import PageType, SpareArea
from ..ftl.errors import ConfigurationError
from ..ftl.gc import VictimPolicy

_HEADER = struct.Struct("<IIIIIIQ")
_ENTRY = struct.Struct("<IIQIQ")

MAGIC = 0x50444C44  # "PDLD" (v2: entries carry diff_ts)
KIND_SNAPSHOT = 1
KIND_MARKER = 2

#: Accounting phase for checkpoint I/O.
CHECKPOINT_PHASE = "checkpoint"


@dataclass
class RestartReport:
    """How a restart was satisfied."""

    fast_path: bool
    snapshot_seq: Optional[int]
    pages_read: int
    fallback: Optional[RecoveryReport] = None


class CheckpointManager:
    """Clean-shutdown snapshots of a PDL driver's mapping table."""

    def __init__(self, driver: PdlDriver, region_blocks: Optional[int] = None):
        region = (
            driver.checkpoint_region_blocks
            if region_blocks is None
            else region_blocks
        )
        if region < 2 or region % 2 != 0:
            raise ConfigurationError(
                "checkpoint region must be an even number of blocks >= 2"
            )
        if driver.checkpoint_region_blocks != region:
            raise ConfigurationError(
                "driver must be created with checkpoint_region_blocks="
                f"{region} so the allocator excludes the region"
            )
        self.driver = driver
        self.chip = driver.chip
        self.region_blocks = region
        self._seq = 0
        self._writing_marker = False

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def _half_blocks(self, seq: int) -> range:
        half = self.region_blocks // 2
        start = 0 if seq % 2 == 0 else half
        return range(start, start + half)

    def _half_page_capacity(self) -> int:
        return (self.region_blocks // 2) * self.chip.spec.pages_per_block

    def entries_per_page(self) -> int:
        return (self.chip.spec.page_data_size - _HEADER.size) // _ENTRY.size

    def capacity_entries(self) -> int:
        return (self._half_page_capacity() - 0) * self.entries_per_page()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Flush the driver and snapshot its tables; returns the sequence."""
        self.driver.flush()
        self._seq += 1
        seq = self._seq
        entries = sorted(
            (pid, e.base_addr, e.base_ts, e.diff_addr, e.diff_ts)
            for pid, e in self.driver.ppmt.items()
        )
        per_page = self.entries_per_page()
        payloads: List[bytes] = []
        for start in range(0, len(entries), per_page):
            chunk = entries[start : start + per_page]
            body = b"".join(
                _ENTRY.pack(
                    pid,
                    base,
                    ts,
                    (diff + 1) if diff is not None else 0,
                    (diff_ts + 1) if diff_ts is not None else 0,
                )
                for pid, base, ts, diff, diff_ts in chunk
            )
            payloads.append(body)
        if not payloads:
            payloads = [b""]
        n_pages = len(payloads)
        if n_pages > self._half_page_capacity():
            raise ConfigurationError(
                f"snapshot needs {n_pages} pages; region half holds "
                f"{self._half_page_capacity()}"
            )
        crc = zlib.crc32(b"".join(payloads))
        with self.chip.stats.phase(CHECKPOINT_PHASE):
            for block in self._half_blocks(seq):
                if not self.chip.is_block_erased(block):
                    self.chip.erase_block(block)
            pages = self._half_pages(seq)
            for index, body in enumerate(payloads):
                n_entries = len(body) // _ENTRY.size
                header = _HEADER.pack(
                    MAGIC, seq, KIND_SNAPSHOT, n_entries, n_pages, crc,
                    self.driver.current_ts,
                )
                self.chip.program_page(
                    pages[index],
                    header + body,
                    SpareArea(type=PageType.CHECKPOINT, pid=index, timestamp=seq),
                )
        # Any further mutation makes this snapshot stale.  Arm a one-shot
        # observer that writes a session marker *before* the next mutating
        # operation lands, so a later crash can never be mistaken for a
        # clean shutdown.
        self.chip.on_operation(self._on_mutation_after_checkpoint)
        return seq

    def _on_mutation_after_checkpoint(self, _op: str) -> None:
        if self._writing_marker:
            return
        self.chip.on_operation(None)
        self._writing_marker = True
        try:
            self.write_session_marker()
        finally:
            self._writing_marker = False

    def write_session_marker(self) -> int:
        """Invalidate the snapshot for future restarts (session opened)."""
        self._seq += 1
        seq = self._seq
        with self.chip.stats.phase(CHECKPOINT_PHASE):
            for block in self._half_blocks(seq):
                if not self.chip.is_block_erased(block):
                    self.chip.erase_block(block)
            header = _HEADER.pack(MAGIC, seq, KIND_MARKER, 0, 1, 0, 0)
            self.chip.program_page(
                self._half_pages(seq)[0],
                header,
                SpareArea(type=PageType.CHECKPOINT, pid=0, timestamp=seq),
            )
        return seq

    def _half_pages(self, seq: int) -> List[int]:
        ppb = self.chip.spec.pages_per_block
        return [
            block * ppb + page
            for block in self._half_blocks(seq)
            for page in range(ppb)
        ]

    # ------------------------------------------------------------------
    # Restart
    # ------------------------------------------------------------------
    @classmethod
    def restart(
        cls,
        chip: FlashChip,
        region_blocks: int = 2,
        max_differential_size: int = 256,
        victim_policy: Optional[VictimPolicy] = None,
        **driver_kwargs,
    ) -> Tuple[PdlDriver, "CheckpointManager", RestartReport]:
        """Restart a PDL driver, fast when a valid snapshot exists.

        Returns the driver, a manager resumed at the right sequence, and
        a report saying which path was taken.  After a fast restart a new
        session marker is written so a subsequent crash cannot be
        mistaken for a clean shutdown.
        """
        if driver_kwargs.get("mapping") is not None:
            raise ConfigurationError(
                "mapping-enabled drivers restart via "
                "repro.ext.journal.restart_driver (or recover_driver, "
                "which delegates); CheckpointManager snapshots only the "
                "clean-shutdown case"
            )
        ppb = chip.spec.pages_per_block
        half = region_blocks // 2
        newest: Optional[Tuple[int, int, int]] = None  # (seq, kind, half_idx)
        pages_read = 0
        with chip.stats.phase(CHECKPOINT_PHASE):
            for half_idx in (0, 1):
                addr = half_idx * half * ppb
                try:
                    data, spare = chip.read_page(addr)
                except ChecksumError:
                    # A rotted snapshot header is just an invalid snapshot:
                    # the full Figure-11 scan below is always sound.
                    pages_read += 1
                    continue
                pages_read += 1
                if spare.type is not PageType.CHECKPOINT:
                    continue
                try:
                    magic, seq, kind, _n, _pages, _crc, _ts = _HEADER.unpack_from(
                        data, 0
                    )
                except struct.error:
                    continue
                if magic != MAGIC:
                    continue
                if newest is None or seq > newest[0]:
                    newest = (seq, kind, half_idx)
        snapshot = None
        if newest is not None and newest[1] == KIND_SNAPSHOT:
            snapshot, extra_reads = cls._load_snapshot(chip, newest[2], half)
            pages_read += extra_reads
        if snapshot is None:
            driver, report = recover_driver(
                chip,
                max_differential_size=max_differential_size,
                victim_policy=victim_policy,
                checkpoint_region_blocks=region_blocks,
                **driver_kwargs,
            )
            manager = cls(driver, region_blocks)
            manager._seq = (newest[0] if newest else 0) + 1
            manager.write_session_marker()
            return driver, manager, RestartReport(
                fast_path=False,
                snapshot_seq=None,
                pages_read=pages_read,
                fallback=report,
            )
        seq, entries, max_ts = snapshot
        driver = PdlDriver(
            chip,
            max_differential_size=max_differential_size,
            victim_policy=victim_policy,
            checkpoint_region_blocks=region_blocks,
            **driver_kwargs,
        )
        from ..core.tables import PhysicalPageMappingTable, ValidDifferentialCountTable

        driver.ppmt = PhysicalPageMappingTable()
        driver.vdct = ValidDifferentialCountTable()
        valid = set()
        for pid, base_addr, base_ts, diff_plus1, diff_ts_plus1 in entries:
            driver.ppmt.set_base(pid, base_addr, base_ts)
            valid.add(base_addr)
            if diff_plus1:
                driver.ppmt.set_diff(
                    pid,
                    diff_plus1 - 1,
                    (diff_ts_plus1 - 1) if diff_ts_plus1 else None,
                )
                driver.vdct.increment(diff_plus1 - 1)
                valid.add(diff_plus1 - 1)
        driver.blocks.rebuild(valid)
        driver.resume_ts(max_ts)
        manager = cls(driver, region_blocks)
        manager._seq = seq
        manager.write_session_marker()
        return driver, manager, RestartReport(
            fast_path=True, snapshot_seq=seq, pages_read=pages_read
        )

    @classmethod
    def _load_snapshot(
        cls, chip: FlashChip, half_idx: int, half: int
    ) -> Tuple[Optional[Tuple[int, List[Tuple[int, int, int, int, int]], int]], int]:
        """Read and validate one snapshot half; None when corrupt."""
        ppb = chip.spec.pages_per_block
        start = half_idx * half * ppb
        try:
            first, _ = chip.read_page(start)
        except ChecksumError:
            return None, 1
        reads = 1
        magic, seq, kind, _n0, n_pages, crc, max_ts = _HEADER.unpack_from(first, 0)
        if magic != MAGIC or kind != KIND_SNAPSHOT:
            return None, reads
        bodies: List[bytes] = []
        entries: List[Tuple[int, int, int, int, int]] = []
        for index in range(n_pages):
            if index:
                reads += 1
                try:
                    data = chip.read_page(start + index)[0]
                except ChecksumError:
                    return None, reads
            else:
                data = first
            m, s, k, n_entries, _p, _c, _t = _HEADER.unpack_from(data, 0)
            if m != MAGIC or s != seq or k != KIND_SNAPSHOT:
                return None, reads
            body = data[_HEADER.size : _HEADER.size + n_entries * _ENTRY.size]
            bodies.append(body)
            for offset in range(0, len(body), _ENTRY.size):
                entries.append(_ENTRY.unpack_from(body, offset))
        if zlib.crc32(b"".join(bodies)) != crc:
            return None, reads
        return (seq, entries, max_ts), reads
