"""Driver registry: build any of the paper's methods from its figure label.

The experiments compare six configurations; this module maps the paper's
labels to constructed drivers so workloads and benchmarks can be written
against names::

    make_method("PDL (256B)", chip)
    make_method("IPL (18KB)", chip)

Labels are case-insensitive and whitespace-tolerant; sizes accept ``B``
and ``KB`` suffixes.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional

from .core.pdl import PdlDriver
from .flash.chip import FlashChip
from .ftl.base import PageUpdateMethod
from .ftl.ipl import IplDriver
from .ftl.ipu import IpuDriver
from .ftl.opu import OpuDriver

#: The six configurations of the paper's evaluation (Figure 12's legend).
PAPER_METHODS = (
    "IPL (18KB)",
    "IPL (64KB)",
    "PDL (2KB)",
    "PDL (256B)",
    "OPU",
    "IPU",
)

#: The five methods of Figure 17/18 (IPU excluded, as in the paper).
PAPER_METHODS_NO_IPU = tuple(m for m in PAPER_METHODS if m != "IPU")

_LABEL_RE = re.compile(
    r"^\s*(?P<kind>PDL|IPL)\s*\(\s*(?P<size>\d+)\s*(?P<unit>B|KB)?\s*\)\s*$",
    re.IGNORECASE,
)


def parse_size(size: str, unit: Optional[str]) -> int:
    value = int(size)
    if unit and unit.upper() == "KB":
        value *= 1024
    return value


def make_method(label: str, chip: FlashChip, **kwargs) -> PageUpdateMethod:
    """Construct the driver named by a paper-style label.

    ``kwargs`` are forwarded to the driver constructor (e.g.
    ``victim_policy`` for the GC ablations).
    """
    plain = label.strip().upper()
    if plain == "OPU":
        return OpuDriver(chip, **kwargs)
    if plain == "IPU":
        return IpuDriver(chip, **kwargs)
    match = _LABEL_RE.match(label)
    if match is None:
        raise ValueError(
            f"unknown method label {label!r}; expected OPU, IPU, "
            "PDL(<size>) or IPL(<size>)"
        )
    size = parse_size(match.group("size"), match.group("unit"))
    kind = match.group("kind").upper()
    if kind == "PDL":
        return PdlDriver(chip, max_differential_size=size, **kwargs)
    return IplDriver(chip, log_region_bytes=size, **kwargs)


def method_labels(include_ipu: bool = True) -> List[str]:
    """The standard comparison set, in the paper's plotting order."""
    return list(PAPER_METHODS if include_ipu else PAPER_METHODS_NO_IPU)
