"""Driver registry: build any of the paper's methods from its figure label.

The experiments compare six configurations; this module maps the paper's
labels to constructed drivers so workloads and benchmarks can be written
against names::

    make_method("PDL (256B)", chip)
    make_method("IPL (18KB)", chip)

Labels are case-insensitive and whitespace-tolerant; sizes accept ``B``
and ``KB`` suffixes.

Sharded configurations append an ``xN`` shard count and take a sequence
of N chips instead of one::

    chips = [FlashChip(spec) for _ in range(4)]
    make_method("PDL (256B) x4", chips)          # hash-routed by default
    make_method("OPU x2", chips[:2], router=RangeRouter(2, 1024))

A ``gc=<policy>`` token anywhere after the base label selects a
registered GC victim policy (see :mod:`repro.ftl.gc`) for the driver —
per shard, on sharded labels::

    make_method("PDL (256B) x4 gc=cb", chips)    # cost-benefit GC
    make_method("OPU gc=wear", chip)             # wear-aware GC

A ``par`` token on a sharded label builds a
:class:`~repro.sharding.executor.ParallelShardedDriver`: the same array,
but with one worker thread per shard so group flush, bulk loads and
buffer-pool flushes execute concurrently in wall-clock time (see
``docs/concurrency.md``)::

    make_method("PDL (256B) x4 par", chips)      # thread-parallel array
    make_method("PDL (256B) x4 par gc=cb", chips)

A ``proc`` token instead builds a
:class:`~repro.sharding.executor_proc.ProcessShardedDriver`: one worker
*process* per shard, so shard work runs on separate cores past the GIL.
The chips must be pristine (the workers rebuild the drivers from
spawn-safe recipes; use ``recover_all(..., parallel="process")`` for
existing images) and memory- or file-backed::

    make_method("PDL (256B) x8 proc", chips)     # process-parallel array

Each chip gets its own per-shard driver (any base method works); the
result is a :class:`~repro.sharding.driver.ShardedDriver`.  ``x1`` is
accepted and still builds the sharded façade, which benchmarks use to
measure the façade's (zero-flash-cost) overhead against the bare driver.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple, Union

from .core.pdl import PdlDriver
from .flash.chip import FlashChip
from .ftl.base import PageUpdateMethod
from .ftl.errors import ConfigurationError
from .ftl.gc import GcConfig
from .ftl.ipl import IplDriver
from .ftl.ipu import IpuDriver
from .ftl.opu import OpuDriver
from .sharding.driver import ShardedDriver
from .sharding.router import ShardRouter

#: The six configurations of the paper's evaluation (Figure 12's legend).
PAPER_METHODS = (
    "IPL (18KB)",
    "IPL (64KB)",
    "PDL (2KB)",
    "PDL (256B)",
    "OPU",
    "IPU",
)

#: The five methods of Figure 17/18 (IPU excluded, as in the paper).
PAPER_METHODS_NO_IPU = tuple(m for m in PAPER_METHODS if m != "IPU")

_LABEL_RE = re.compile(
    r"^\s*(?P<kind>PDL|IPL)\s*\(\s*(?P<size>\d+)\s*(?P<unit>B|KB)?\s*\)\s*$",
    re.IGNORECASE,
)

_SHARDED_RE = re.compile(r"^(?P<base>.*\S)\s*[xX]\s*(?P<n>\d+)\s*$")

_GC_RE = re.compile(r"\bgc\s*=\s*(?P<policy>[A-Za-z_][\w\-]*)", re.IGNORECASE)

_PAR_RE = re.compile(r"\bpar\b", re.IGNORECASE)

_PROC_RE = re.compile(r"\bproc\b", re.IGNORECASE)


def parse_size(size: str, unit: Optional[str]) -> int:
    value = int(size)
    if unit and unit.upper() == "KB":
        value *= 1024
    return value


def parse_gc_label(label: str) -> Tuple[str, Optional[str]]:
    """Split a ``gc=<policy>`` token off a label.

    ``"PDL (256B) x4 gc=cb"`` → ``("PDL (256B) x4", "cb")``; labels
    without the token return ``(label, None)``.  The token may sit
    before or after the ``xN`` shard suffix, so driver names built as
    ``"PDL (256B) gc=cb x4"`` round-trip through the parser.
    """
    match = _GC_RE.search(label)
    if match is None:
        return label, None
    rest = (label[: match.start()] + label[match.end() :]).strip()
    rest = re.sub(r"\s{2,}", " ", rest)  # heal the seam the token left
    if _GC_RE.search(rest) is not None:
        raise ValueError(f"label {label!r} has more than one gc= token")
    return rest, match.group("policy").lower()


def parse_parallel_label(label: str) -> Tuple[str, Union[bool, str]]:
    """Split a ``par`` or ``proc`` token off a label.

    ``"PDL (256B) x4 par"`` → ``("PDL (256B) x4", "thread")`` and
    ``"PDL (256B) x8 proc"`` → ``("PDL (256B) x8", "process")``; labels
    without either token return ``(label, False)``.  The returned mode
    is truthy exactly when the label requests parallel execution, so
    callers that only care whether the driver is parallel can keep
    treating it as a boolean.  Like ``gc=``, the tokens may sit
    anywhere after the base label, so driver names built as
    ``"PDL (256B) x4 par"`` / ``"... x8 proc"`` round-trip through the
    parser.  A label may carry at most one of the two tokens.
    """
    parallel: Union[bool, str] = False
    rest = label
    match = _PAR_RE.search(rest)
    if match is not None:
        rest = (rest[: match.start()] + rest[match.end() :]).strip()
        rest = re.sub(r"\s{2,}", " ", rest)
        if _PAR_RE.search(rest) is not None:
            raise ValueError(f"label {label!r} has more than one par token")
        parallel = "thread"
    match = _PROC_RE.search(rest)
    if match is not None:
        if parallel:
            raise ValueError(
                f"label {label!r} asks for both thread (par) and process "
                "(proc) execution; pick one"
            )
        rest = (rest[: match.start()] + rest[match.end() :]).strip()
        rest = re.sub(r"\s{2,}", " ", rest)
        if _PROC_RE.search(rest) is not None:
            raise ValueError(f"label {label!r} has more than one proc token")
        parallel = "process"
    return rest, parallel


def parse_sharded_label(label: str) -> Tuple[str, Optional[int]]:
    """Split ``"PDL (256B) x4"`` into ``("PDL (256B)", 4)``.

    Returns ``(label, None)`` for unsharded labels; an explicit ``x1``
    still counts as sharded (one-shard array).
    """
    match = _SHARDED_RE.match(label.strip())
    if match is None:
        return label, None
    return match.group("base"), int(match.group("n"))


def _make_single(label: str, chip: FlashChip, **kwargs) -> PageUpdateMethod:
    plain = label.strip().upper()
    if plain == "OPU":
        return OpuDriver(chip, **kwargs)
    if plain == "IPU":
        if "gc_config" in kwargs:
            raise ConfigurationError(
                "IPU updates in place and owns no garbage collector; "
                "a gc= token / gc_config does not apply"
            )
        return IpuDriver(chip, **kwargs)
    match = _LABEL_RE.match(label)
    if match is None:
        raise ValueError(
            f"unknown method label {label!r}; expected OPU, IPU, "
            "PDL(<size>) or IPL(<size>), optionally suffixed ' xN', "
            "' gc=<policy>' and/or ' par'"
        )
    size = parse_size(match.group("size"), match.group("unit"))
    kind = match.group("kind").upper()
    if kind == "PDL":
        return PdlDriver(chip, max_differential_size=size, **kwargs)
    if "gc_config" in kwargs:
        raise ConfigurationError(
            "IPL reclaims via block merges, not the pluggable collector; "
            "a gc= token / gc_config does not apply"
        )
    return IplDriver(chip, log_region_bytes=size, **kwargs)


def make_method(
    label: str,
    chip: Union[FlashChip, Sequence[FlashChip]],
    *,
    router: Optional[ShardRouter] = None,
    **kwargs,
) -> PageUpdateMethod:
    """Construct the driver named by a paper-style label.

    ``kwargs`` are forwarded to the (per-shard) driver constructor (e.g.
    ``victim_policy`` or ``gc_config`` for the GC ablations).  Sharded
    labels (``xN``) require ``chip`` to be a sequence of exactly N
    chips; ``router`` overrides the default :class:`HashRouter`
    partition.  A ``gc=<policy>`` token builds a :class:`GcConfig` for
    every (per-shard) driver and may not be combined with an explicit
    ``gc_config``/``victim_policy`` keyword.
    """
    stripped, gc_policy = parse_gc_label(label)
    if gc_policy is not None:
        if "gc_config" in kwargs or kwargs.get("victim_policy") is not None:
            raise ConfigurationError(
                f"label {label!r} selects a GC policy, but gc_config/"
                "victim_policy was also passed explicitly"
            )
        kwargs["gc_config"] = GcConfig(policy=gc_policy)
        label = stripped
    label, parallel = parse_parallel_label(label)
    base_label, n_shards = parse_sharded_label(label)
    if parallel and n_shards is None:
        raise ConfigurationError(
            f"label {label!r} requests parallel execution but is unsharded; "
            "parallelism is per shard — use an 'xN' label (x1 gives a "
            "one-worker array)"
        )
    if n_shards is not None:
        if isinstance(chip, FlashChip):
            raise ConfigurationError(
                f"sharded label {label!r} needs a sequence of {n_shards} "
                "chips, got a single FlashChip"
            )
        chips = list(chip)
        if len(chips) != n_shards:
            raise ConfigurationError(
                f"sharded label {label!r} needs {n_shards} chips, "
                f"got {len(chips)}"
            )
        if parallel == "process":
            # No local shard drivers: the chips only donate configuration
            # and the workers rebuild everything from spawn-safe recipes.
            from .sharding.executor_proc import (
                ProcessShardedDriver,
                factories_from_chips,
            )

            factories = factories_from_chips(chips, base_label, kwargs)
            return ProcessShardedDriver(factories, router=router)
        shards = [_make_single(base_label, shard_chip, **kwargs) for shard_chip in chips]
        if parallel:
            from .sharding.executor import ParallelShardedDriver

            return ParallelShardedDriver(shards, router=router)
        return ShardedDriver(shards, router=router)
    if router is not None:
        raise ConfigurationError(
            f"label {label!r} is unsharded; a router only applies to 'xN' labels"
        )
    if not isinstance(chip, FlashChip):
        chips = list(chip)
        if len(chips) != 1:
            raise ConfigurationError(
                f"unsharded label {label!r} takes one chip, got {len(chips)}; "
                f"did you mean '{label} x{len(chips)}'?"
            )
        chip = chips[0]
    return _make_single(base_label, chip, **kwargs)


def method_labels(include_ipu: bool = True) -> List[str]:
    """The standard comparison set, in the paper's plotting order."""
    return list(PAPER_METHODS if include_ipu else PAPER_METHODS_NO_IPU)


def sharded_labels(base: str, shard_counts: Sequence[int]) -> List[str]:
    """Labels for a shard-scaling sweep, e.g. ``["PDL (256B) x1", ...]``."""
    return [f"{base} x{n}" for n in shard_counts]
