"""OPU — the page-based method with the out-place update scheme.

This is the paper's strongest page-based baseline (Section 3): page-level
logical-to-physical mapping, writing each reflected logical page to a
fresh physical page, and marking the superseded copy obsolete.  Per
update it costs exactly one read to recreate a page and two writes to
reflect one (program new copy + obsolete the old copy), plus amortized
garbage collection — matching Figure 12's accounting.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..flash.chip import FlashChip
from ..flash.spare import PageType, SpareArea
from ..flash.stats import READ_STEP, WRITE_STEP
from .allocator import COLD_STREAM, HOT_STREAM, BlockManager
from .base import ChangeRun, PageUpdateMethod
from .errors import UnknownPageError
from .gc import GarbageCollector, GcConfig, VictimPolicy


class OpuDriver(PageUpdateMethod):
    """Out-place update with a page-level mapping table."""

    tightly_coupled = False

    def __init__(
        self,
        chip: FlashChip,
        reserve_blocks: int = 2,
        victim_policy: Optional[VictimPolicy] = None,
        gc_config: Optional[GcConfig] = None,
    ):
        super().__init__(chip)
        self.name = "OPU"
        self.gc_config = gc_config if gc_config is not None else GcConfig()
        if victim_policy is None and self.gc_config.policy != "greedy":
            self.name += f" gc={self.gc_config.policy}"
        self.blocks = BlockManager(chip, reserve_blocks=reserve_blocks)
        self.gc = GarbageCollector(
            chip, self.blocks, handler=self, policy=victim_policy,
            config=self.gc_config,
        )
        # Hot/cold separation for a page-mapping FTL: fresh updates are
        # hot, pages that survived a collection are cold — the classic
        # generational split that keeps victims garbage-dense.
        self._write_stream = HOT_STREAM if self.gc_config.hot_cold else COLD_STREAM
        self._gc_stream = COLD_STREAM
        #: Logical-to-physical mapping table (the FTL's page-level map).
        self.mapping: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # PageUpdateMethod
    # ------------------------------------------------------------------
    def load_page(self, pid: int, data: bytes) -> None:
        self._check_page(pid, data)
        if pid in self.mapping:
            raise ValueError(f"logical page {pid} already loaded")
        with self.stats.phase("load"):
            self._program(pid, data)

    def read_page(self, pid: int) -> bytes:
        addr = self._addr_of(pid)
        with self.stats.phase(READ_STEP):
            data, _spare = self.chip.read_page(addr)
        return data

    def write_page(
        self, pid: int, data: bytes, update_logs: Optional[List[ChangeRun]] = None
    ) -> None:
        self._check_page(pid, data)
        with self.stats.phase(WRITE_STEP):
            self.gc.on_write_begin()
            try:
                # Allocate first: allocation may trigger GC, which can
                # relocate this very page — the superseded address must be
                # read *after* any collection so the obsolete mark hits
                # the live copy.
                addr = self.blocks.allocate(stream=self._write_stream)
                old = self.mapping.get(pid)
                spare = SpareArea(type=PageType.DATA, pid=pid)
                self.chip.program_page(addr, data, spare)
                self.blocks.note_valid(addr)
                self.mapping[pid] = addr
                if old is not None:
                    # Out-place update: the superseded copy is marked
                    # obsolete with a spare program, the paper's second
                    # write per update.
                    self.chip.mark_obsolete(old)
                    self.blocks.note_invalid(old)
            finally:
                self.gc.on_write_end()

    # ------------------------------------------------------------------
    # GC relocation handler
    # ------------------------------------------------------------------
    def relocate_page(self, addr: int, data: bytes, spare: SpareArea) -> None:
        pid = spare.pid
        if pid is None or self.mapping.get(pid) != addr:
            # The validity bitmap and the mapping table must agree; a
            # mismatch means FTL state corruption, not a recoverable event.
            raise UnknownPageError(f"GC found unmapped valid page at {addr}")
        new = self.blocks.allocate(for_gc=True, stream=self._gc_stream)
        self.chip.program_page(new, data, spare)
        self.blocks.note_valid(new)
        self.mapping[pid] = new
        # No obsolete mark: the victim block is erased once fully drained.

    def finish_victim(self, block: int) -> None:
        """OPU relocates page-at-a-time; nothing is buffered."""

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _program(self, pid: int, data: bytes) -> None:
        addr = self.blocks.allocate(stream=self._write_stream)
        spare = SpareArea(type=PageType.DATA, pid=pid)
        self.chip.program_page(addr, data, spare)
        self.blocks.note_valid(addr)
        self.mapping[pid] = addr

    def _addr_of(self, pid: int) -> int:
        try:
            return self.mapping[pid]
        except KeyError:
            raise UnknownPageError(f"logical page {pid} was never written") from None
