"""Errors raised by the FTL layer (drivers, allocator, GC)."""

from __future__ import annotations

from ..flash.errors import FlashError


class FtlError(FlashError):
    """Base class for FTL-layer failures."""


class OutOfSpaceError(FtlError):
    """No free page can be produced, even after garbage collection.

    Raised when the chip is genuinely full of valid data — typically a
    sign the workload exceeded the provisioned utilization (the paper
    loads the database at ~25 % of chip capacity).
    """


class UnknownPageError(FtlError):
    """A logical page id was read before ever being loaded or written."""


class UnallocatedPageError(UnknownPageError):
    """A logical page id outside the allocated id space was requested.

    Raised by the storage layer (:meth:`repro.storage.db.Database.page`)
    and by sharded routing checks, so "the caller asked for a page that
    does not exist" is distinguishable from driver-internal mapping
    corruption (plain :class:`UnknownPageError`) and from arbitrary
    caller bugs (:class:`ValueError`)."""


class ConfigurationError(FtlError):
    """A driver was configured inconsistently with the chip geometry."""


class ConcurrencyError(FtlError):
    """The thread-execution contract of the parallel layer was violated.

    Raised when shard state is touched from the wrong thread — e.g. a GC
    engine bound to a shard worker sees its write hooks run elsewhere —
    or when tasks are submitted to a shut-down
    :class:`~repro.sharding.executor.ShardExecutor`.  Single-writer-per-
    shard is what lets the drivers stay lock-free; see
    ``docs/concurrency.md``.
    """
