"""Errors raised by the FTL layer (drivers, allocator, GC)."""

from __future__ import annotations

from ..flash.errors import FlashError


class FtlError(FlashError):
    """Base class for FTL-layer failures."""


class OutOfSpaceError(FtlError):
    """No free page can be produced, even after garbage collection.

    Raised when the chip is genuinely full of valid data — typically a
    sign the workload exceeded the provisioned utilization (the paper
    loads the database at ~25 % of chip capacity).
    """


class UnknownPageError(FtlError):
    """A logical page id was read before ever being loaded or written."""


class ConfigurationError(FtlError):
    """A driver was configured inconsistently with the chip geometry."""
