"""Free-space management for out-place drivers (OPU and PDL).

NAND forbids in-place overwrite, so out-place drivers append new physical
pages and leave superseded copies behind as garbage.  :class:`BlockManager`
owns that lifecycle:

* blocks start *free* (erased); an *active* block per append stream
  serves allocations page-by-page — the default is one ``cold`` stream,
  and drivers practising hot/cold separation open a second ``hot``
  stream so short-lived pages (differential pages, fresh OPU writes) and
  long-lived ones (base pages, GC survivors) never share a block;
* a RAM validity bitmap tracks which physical pages hold live data —
  drivers call :meth:`note_valid` when they program a page and
  :meth:`note_invalid` when its contents are superseded;
* per-block metadata for victim selection: the last-write clock reading
  (block *age* for cost-benefit policies) and the erase count (wear for
  wear-aware policies), both readable without charging I/O time;
* when the free-block pool falls to the reserve level, the registered
  garbage collector is invoked *before* the pool is tapped, and GC
  relocations allocate with ``for_gc=True`` so they can dip into the
  reserve without recursing.

The reserve (default 2 blocks) guarantees GC can always relocate a
victim's valid pages: a victim holds at most one block's worth of valid
data, which fits in the active blocks' tails plus the reserve — one
fresh block per stream the relocations may append to.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Set

from ..flash.chip import FlashChip
from ..flash.spec import FlashSpec
from .errors import OutOfSpaceError

#: Append stream for long-lived data: base pages, GC-relocated survivors.
COLD_STREAM = "cold"

#: Append stream for short-lived data: differential pages, fresh updates.
HOT_STREAM = "hot"


class BlockManager:
    """Tracks free blocks, per-stream allocation points, and page validity."""

    def __init__(
        self, chip: FlashChip, reserve_blocks: int = 2, exclude_blocks: int = 0
    ):
        if reserve_blocks < 1:
            raise ValueError("reserve_blocks must be at least 1")
        if exclude_blocks < 0:
            raise ValueError("exclude_blocks must be non-negative")
        if chip.spec.n_blocks <= reserve_blocks + exclude_blocks:
            raise ValueError(
                f"chip of {chip.spec.n_blocks} blocks cannot sustain a reserve "
                f"of {reserve_blocks} plus {exclude_blocks} excluded blocks"
            )
        self.chip = chip
        self.spec: FlashSpec = chip.spec
        self.reserve_blocks = reserve_blocks
        #: The first ``exclude_blocks`` blocks are owned by someone else
        #: (e.g. the checkpoint region) and never allocated or collected.
        self.exclude_blocks = exclude_blocks
        self._free: Deque[int] = deque(range(exclude_blocks, self.spec.n_blocks))
        self._is_free: List[bool] = [
            block >= exclude_blocks for block in range(self.spec.n_blocks)
        ]
        #: stream name -> its open active block (absent until first use).
        self._active: Dict[str, int] = {}
        self._next_page: Dict[str, int] = {}
        self._valid: List[bool] = [False] * self.spec.n_pages
        self._valid_per_block: List[int] = [0] * self.spec.n_blocks
        #: Chip-clock reading of each block's most recent page program —
        #: the "age" input of cost-benefit victim selection.
        self._last_write_us: List[float] = [0.0] * self.spec.n_blocks
        self._gc: Optional[Callable[[], None]] = None
        #: Fired with the block id every time a stream opens a fresh
        #: block, *before* any page of it is programmed.  The mapping
        #: journal uses this to make its OPEN_BLOCK record durable before
        #: the first data program can land in the block — the tail-scan
        #: set after a crash is exactly the journaled open blocks.
        self.on_block_open: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_gc(self, collect: Callable[[], None]) -> None:
        """Register the GC entry point invoked when free blocks run low."""
        self._gc = collect

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, for_gc: bool = False, stream: str = COLD_STREAM) -> int:
        """Return the next free physical page address on ``stream``.

        Regular allocations trigger GC when the pool is at the reserve
        level; GC relocations (``for_gc=True``) may consume the reserve.
        Streams are independent append points over one shared free pool.
        """
        if (
            stream not in self._active
            or self._next_page[stream] >= self.spec.pages_per_block
        ):
            self._open_new_block(for_gc, stream)
        addr = (
            self._active[stream] * self.spec.pages_per_block
            + self._next_page[stream]
        )
        self._next_page[stream] += 1
        return addr

    def _open_new_block(self, for_gc: bool, stream: str) -> None:
        if not for_gc and self._gc is not None and len(self._free) <= self.reserve_blocks:
            self._gc()
            # GC relocations may have opened a fresh block on this very
            # stream and left room in it; abandoning that tail (by
            # unconditionally popping another block) would strand
            # unprogrammed pages as instant garbage and inflate the
            # erase count.
            if (
                stream in self._active
                and self._next_page[stream] < self.spec.pages_per_block
            ):
                return
        if not self._free:
            raise OutOfSpaceError("no free blocks remain on the chip")
        block = self._free.popleft()
        self._is_free[block] = False
        self._active[stream] = block
        self._next_page[stream] = 0
        if self.on_block_open is not None:
            self.on_block_open(block)

    # ------------------------------------------------------------------
    # Validity tracking
    # ------------------------------------------------------------------
    def note_valid(self, addr: int) -> None:
        """Record that ``addr`` now holds live data."""
        block = addr // self.spec.pages_per_block
        if not self._valid[addr]:
            self._valid[addr] = True
            self._valid_per_block[block] += 1
        self._last_write_us[block] = self.chip.clock_us

    def note_invalid(self, addr: int) -> None:
        """Record that ``addr`` no longer holds live data."""
        if self._valid[addr]:
            self._valid[addr] = False
            self._valid_per_block[addr // self.spec.pages_per_block] -= 1

    def is_valid(self, addr: int) -> bool:
        return self._valid[addr]

    def valid_count(self, block: int) -> int:
        return self._valid_per_block[block]

    def valid_addresses(self) -> List[int]:
        """Every physical page currently marked valid (snapshot input)."""
        return [addr for addr, valid in enumerate(self._valid) if valid]

    def valid_pages_in(self, block: int) -> List[int]:
        start = block * self.spec.pages_per_block
        return [
            addr
            for addr in range(start, start + self.spec.pages_per_block)
            if self._valid[addr]
        ]

    # ------------------------------------------------------------------
    # Per-block metadata (victim-policy inputs)
    # ------------------------------------------------------------------
    def block_age(self, block: int) -> float:
        """Simulated microseconds since the block last took a program."""
        return self.chip.clock_us - self._last_write_us[block]

    def erase_count(self, block: int) -> int:
        """Lifetime erases of ``block`` (wear), from the device backend."""
        return self.chip.erase_count(block)

    # ------------------------------------------------------------------
    # Block lifecycle
    # ------------------------------------------------------------------
    @property
    def active_block(self) -> Optional[int]:
        """The cold (default) stream's active block."""
        return self._active.get(COLD_STREAM)

    def active_blocks(self) -> List[int]:
        """Every stream's open active block."""
        return list(self._active.values())

    def pages_left(self, stream: str = COLD_STREAM) -> int:
        """Allocations ``stream``'s active block can still serve without
        opening a new block (and therefore without any chance of
        triggering GC).  Batched writers use this to bound a batch so GC
        never runs while staged-but-unprogrammed allocations exist."""
        if stream not in self._active:
            return 0
        return self.spec.pages_per_block - self._next_page[stream]

    @property
    def pages_left_in_active(self) -> int:
        """``pages_left`` of the cold (default) stream."""
        return self.pages_left(COLD_STREAM)

    @property
    def free_block_count(self) -> int:
        return len(self._free)

    def is_free(self, block: int) -> bool:
        return self._is_free[block]

    def victim_candidates(self) -> Iterable[int]:
        """Blocks eligible for GC: programmed, not active, with garbage.

        Garbage includes both obsolete pages and never-programmed tail
        pages of sealed blocks (e.g. the active block at crash time).
        """
        active = set(self._active.values())
        for block in range(self.exclude_blocks, self.spec.n_blocks):
            if self._is_free[block] or block in active:
                continue
            if self._valid_per_block[block] < self.spec.pages_per_block:
                yield block

    def garbage_in(self, block: int) -> int:
        return self.spec.pages_per_block - self._valid_per_block[block]

    def on_block_erased(self, block: int) -> None:
        """Return an erased block to the free pool and clear its validity."""
        start = block * self.spec.pages_per_block
        for addr in range(start, start + self.spec.pages_per_block):
            self._valid[addr] = False
        self._valid_per_block[block] = 0
        self._last_write_us[block] = self.chip.clock_us
        self._is_free[block] = True
        self._free.append(block)

    # ------------------------------------------------------------------
    # Recovery support
    # ------------------------------------------------------------------
    def rebuild(self, valid_addrs: Set[int]) -> None:
        """Reconstruct allocator state after a crash.

        ``valid_addrs`` is the set of live physical pages determined by the
        recovery scan.  Fully-erased blocks return to the free pool; every
        other block is sealed (its unprogrammed tail is treated as garbage
        until GC reclaims it), and allocation resumes from a fresh block.
        """
        self._free.clear()
        self._active.clear()
        self._next_page.clear()
        self._valid = [False] * self.spec.n_pages
        self._valid_per_block = [0] * self.spec.n_blocks
        # Pre-crash write times are unknowable; restart every block's age
        # clock at "now" so cost-benefit scores stay well-defined.
        self._last_write_us = [self.chip.clock_us] * self.spec.n_blocks
        for addr in valid_addrs:
            self._valid[addr] = True
            self._valid_per_block[addr // self.spec.pages_per_block] += 1
        for block in range(self.spec.n_blocks):
            if block < self.exclude_blocks:
                self._is_free[block] = False
                continue
            erased = self.chip.is_block_erased(block)
            self._is_free[block] = erased
            if erased:
                self._free.append(block)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of chip pages currently valid."""
        return sum(self._valid_per_block) / self.spec.n_pages
