"""IPU — the page-based method with the in-place update scheme.

The paper describes (and then dismisses) in-place update: a logical page
always lives at the same physical page, so reflecting it requires reading
every other page in the block, erasing the whole block, and re-programming
everything (Section 3, the four-step sequence).  It exists here as the
worst-case baseline of Figures 12–14: one erase plus ``Npage`` writes plus
``Npage − 1`` reads per reflected page, independent of how little data
changed.

IPU needs no garbage collection and no obsolete marking — there is never
more than one physical copy of a logical page.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..flash.chip import FlashChip
from ..flash.spare import PageType, SpareArea
from ..flash.stats import READ_STEP, WRITE_STEP
from .base import ChangeRun, PageUpdateMethod
from .errors import OutOfSpaceError, UnknownPageError


class IpuDriver(PageUpdateMethod):
    """In-place update: fixed logical-to-physical placement."""

    tightly_coupled = False

    def __init__(self, chip: FlashChip):
        super().__init__(chip)
        self.name = "IPU"
        #: Fixed mapping assigned at load time.
        self.mapping: Dict[int, int] = {}
        self._next_addr = 0
        #: In-block page slots occupied per block (needed to rewrite the
        #: block's survivors after the erase).
        self._occupied: Dict[int, Set[int]] = {}
        #: pid stored at each occupied physical address.
        self._pid_at: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # PageUpdateMethod
    # ------------------------------------------------------------------
    def load_page(self, pid: int, data: bytes) -> None:
        self._check_page(pid, data)
        if pid in self.mapping:
            raise ValueError(f"logical page {pid} already loaded")
        if self._next_addr >= self.spec.n_pages:
            raise OutOfSpaceError("chip full during in-place load")
        addr = self._next_addr
        self._next_addr += 1
        with self.stats.phase("load"):
            self.chip.program_page(addr, data, SpareArea(type=PageType.DATA, pid=pid))
        self.mapping[pid] = addr
        self._pid_at[addr] = pid
        block = addr // self.spec.pages_per_block
        self._occupied.setdefault(block, set()).add(addr % self.spec.pages_per_block)

    def read_page(self, pid: int) -> bytes:
        addr = self._addr_of(pid)
        with self.stats.phase(READ_STEP):
            data, _spare = self.chip.read_page(addr)
        return data

    def write_page(
        self, pid: int, data: bytes, update_logs: Optional[List[ChangeRun]] = None
    ) -> None:
        """The paper's four-step in-place overwrite.

        (1) read every other occupied page of the block, (2) erase the
        block, (3) write the updated page back in place, (4) rewrite the
        pages read in step (1).
        """
        self._check_page(pid, data)
        if pid not in self.mapping:
            # First write of a page never loaded: claim the next in-place
            # slot, identical to a load but attributed to the write step.
            if self._next_addr >= self.spec.n_pages:
                raise OutOfSpaceError("chip full during in-place first write")
            addr = self._next_addr
            self._next_addr += 1
            with self.stats.phase(WRITE_STEP):
                self.chip.program_page(
                    addr, data, SpareArea(type=PageType.DATA, pid=pid)
                )
            self.mapping[pid] = addr
            self._pid_at[addr] = pid
            block = addr // self.spec.pages_per_block
            self._occupied.setdefault(block, set()).add(
                addr % self.spec.pages_per_block
            )
            return
        addr = self._addr_of(pid)
        block = addr // self.spec.pages_per_block
        base = block * self.spec.pages_per_block
        with self.stats.phase(WRITE_STEP):
            survivors = []
            for slot in sorted(self._occupied.get(block, ())):
                other = base + slot
                if other == addr:
                    continue
                other_data, other_spare = self.chip.read_page(other)
                survivors.append((other, other_data, other_spare))
            self.chip.erase_block(block)
            self.chip.program_page(addr, data, SpareArea(type=PageType.DATA, pid=pid))
            for other, other_data, other_spare in survivors:
                self.chip.program_page(other, other_data, other_spare)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _addr_of(self, pid: int) -> int:
        try:
            return self.mapping[pid]
        except KeyError:
            raise UnknownPageError(f"logical page {pid} was never written") from None
