"""Garbage collection engine shared by the out-place drivers.

The paper (Section 4.1) describes the standard reclamation cycle: when no
free page remains, select a block, move its still-valid pages to a block
reserved for GC, then erase it.  PDL additionally *compacts* differential
pages — only valid differentials are copied forward.

The engine is driver-agnostic: a :class:`RelocationHandler` supplied by
the driver decides how to move each valid page (OPU re-programs it and
updates its mapping entry; PDL either relocates a base page or filters a
differential page through a compaction buffer).  ``finish_victim`` runs
*before* the victim is erased so handlers can flush any relocation
buffers — guaranteeing every valid byte exists somewhere in flash at all
times, which is what makes crash recovery during GC sound.

All work here is attributed to the ``gc`` accounting phase; because GC is
only ever triggered from a write path, its cost is "amortized into the
write cost" exactly as the paper reports (Figure 12(b)'s slashed areas).
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from ..flash.chip import FlashChip
from ..flash.spare import SpareArea
from ..flash.stats import GC
from .allocator import BlockManager
from .errors import OutOfSpaceError

#: A victim-selection policy: given the block manager, return the block to
#: reclaim next, or None when no candidate exists.
VictimPolicy = Callable[[BlockManager], Optional[int]]


class RelocationHandler(Protocol):
    """Driver-side hooks used by the GC engine."""

    def relocate_page(self, addr: int, data: bytes, spare: SpareArea) -> None:
        """Move one valid page out of the victim block."""

    def finish_victim(self, block: int) -> None:
        """Flush any relocation buffers before the victim is erased."""


def greedy_policy(blocks: BlockManager) -> Optional[int]:
    """The default policy: reclaim the block with the most garbage.

    This is the behaviour the paper inherits from Woodhouse's JFFS
    collector — maximise pages reclaimed per erase.
    """
    best: Optional[int] = None
    best_garbage = 0
    for block in blocks.victim_candidates():
        garbage = blocks.garbage_in(block)
        if garbage > best_garbage:
            best = block
            best_garbage = garbage
    return best


class GarbageCollector:
    """Reclaims blocks until the free pool is above the reserve level."""

    def __init__(
        self,
        chip: FlashChip,
        blocks: BlockManager,
        handler: RelocationHandler,
        policy: VictimPolicy = greedy_policy,
    ):
        self.chip = chip
        self.blocks = blocks
        self.handler = handler
        self.policy = policy
        self.collections = 0
        self.pages_relocated = 0
        blocks.set_gc(self.collect)

    def collect(self) -> None:
        """Reclaim blocks until ``free > reserve`` (or raise OutOfSpace)."""
        with self.chip.stats.phase(GC):
            while self.blocks.free_block_count <= self.blocks.reserve_blocks:
                victim = self.policy(self.blocks)
                if victim is None or self.blocks.garbage_in(victim) <= 0:
                    raise OutOfSpaceError(
                        "garbage collection found no reclaimable block; "
                        "the chip is full of valid data"
                    )
                self._reclaim(victim)
                self.collections += 1

    def _reclaim(self, victim: int) -> None:
        # One batched read for the victim's valid pages (they are
        # contiguous runs within the block, which the file backend turns
        # into a handful of sequential reads); same N × Tread charge.
        addrs = self.blocks.valid_pages_in(victim)
        for addr, (data, spare) in zip(addrs, self.chip.read_pages(addrs)):
            self.handler.relocate_page(addr, data, spare)
            self.pages_relocated += 1
        self.handler.finish_victim(victim)
        self.chip.erase_block(victim)
        self.blocks.on_block_erased(victim)
