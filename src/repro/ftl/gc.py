"""Space management for the out-place drivers: victim policies + GC engine.

The paper (Section 4.1) describes the standard reclamation cycle: when no
free page remains, select a block, move its still-valid pages to a block
reserved for GC, then erase it.  PDL additionally *compacts* differential
pages — only valid differentials are copied forward.

The engine is driver-agnostic: a :class:`RelocationHandler` supplied by
the driver decides how to move each valid page (OPU re-programs it and
updates its mapping entry; PDL either relocates a base page or filters a
differential page through a compaction buffer).  ``finish_victim`` runs
*before* the victim is erased so handlers can flush any relocation
buffers — guaranteeing every valid byte exists somewhere in flash at all
times, which is what makes crash recovery during GC sound.

Two execution modes share one engine, selected by :class:`GcConfig`:

* **stop-the-world** (the paper's behaviour, ``incremental_steps=0``) —
  reclamation happens only when the free pool hits the reserve, inside
  the allocation that needed a block, and runs whole victims to
  completion.  A single unlucky write absorbs an entire multi-block
  collection cycle.
* **incremental** (``incremental_steps=N``) — reclamation starts early,
  when the pool falls to ``trigger_blocks``, and each write relocates at
  most N victim pages before doing its own work.  A victim block stays
  *in flight* across many writes: its relocated pages coexist with their
  new copies (GC copies preserve timestamps, so recovery may keep
  either) and it is only erased once every valid page has moved and the
  handler's buffers are flushed.  The stop-the-world path remains as the
  backstop when the pool is exhausted faster than the steps drain debt;
  it first finishes any in-flight victim, so the two modes compose.

All reclamation work is attributed to the ``gc`` accounting phase;
because GC only ever runs from a write path, its cost is "amortized into
the write cost" exactly as the paper reports (Figure 12(b)'s slashed
areas).  The engine additionally meters the GC time each individual
write absorbed (the *write stall*) into
:meth:`~repro.flash.stats.FlashStats.record_write_stall`, which is the
tail-latency metric ``benchmarks/bench_gc.py`` compares across modes.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Protocol

from ..flash.chip import FlashChip
from ..flash.spare import SpareArea
from ..flash.stats import GC
from .allocator import BlockManager
from .errors import ConcurrencyError, ConfigurationError, OutOfSpaceError

#: A victim-selection policy: given the block manager, return the block to
#: reclaim next, or None when no candidate exists.
VictimPolicy = Callable[[BlockManager], Optional[int]]

#: Free-block headroom above the reserve at which incremental collection
#: starts.  Zero means steps begin exactly when the pool reaches the
#: reserve — the same instant the stop-the-world collector would run —
#: so victims are selected with identical garbage density and
#: incremental mode pays no extra erases for its latency; raise it (via
#: ``GcConfig.trigger_blocks``) to trade a few early, denser-victim
#: erases for even fewer backstop stalls.
GC_TRIGGER_HEADROOM = 0


# ----------------------------------------------------------------------
# Victim-policy registry
# ----------------------------------------------------------------------
#: name -> zero-argument factory returning a fresh policy instance, so
#: stateful policies never share state between drivers.
_POLICY_FACTORIES: Dict[str, Callable[[], VictimPolicy]] = {}


def register_victim_policy(
    name: str, factory: Callable[[], VictimPolicy]
) -> None:
    """Register a victim-policy factory under ``name`` (case-insensitive).

    Registered names are selectable through :class:`GcConfig`, method
    labels (``"PDL (256B) x4 gc=cb"``) and :meth:`Database.open`'s
    driver keyword arguments.
    """
    _POLICY_FACTORIES[name.lower()] = factory


def make_victim_policy(name: str) -> VictimPolicy:
    """Build a fresh policy instance from its registered name."""
    factory = _POLICY_FACTORIES.get(name.lower())
    if factory is None:
        raise ConfigurationError(
            f"unknown victim policy {name!r}; registered policies: "
            f"{', '.join(sorted(_POLICY_FACTORIES))}"
        )
    return factory()


def victim_policy_names() -> tuple:
    """Registered policy names, sorted (for error messages and docs)."""
    return tuple(sorted(_POLICY_FACTORIES))


def _tie_break(blocks: BlockManager, block: int) -> tuple:
    """Deterministic preference among equal-score candidates.

    Higher is better: prefer the lower erase count (spreads wear), then
    the lower block id.  Depending on ``victim_candidates()`` iteration
    order instead would make victim choice an accident of the allocator's
    internals — and it must not be, because memory- and file-backed chips
    replaying the same workload have to erase the same blocks.
    """
    return (-blocks.erase_count(block), -block)


def greedy_policy(blocks: BlockManager) -> Optional[int]:
    """The default policy: reclaim the block with the most garbage.

    This is the behaviour the paper inherits from Woodhouse's JFFS
    collector — maximise pages reclaimed per erase.  Ties are broken by
    lowest erase count, then lowest block id.
    """
    best: Optional[int] = None
    best_key: Optional[tuple] = None
    for block in blocks.victim_candidates():
        garbage = blocks.garbage_in(block)
        if garbage <= 0:
            continue
        key = (garbage, *_tie_break(blocks, block))
        if best_key is None or key > best_key:
            best, best_key = block, key
    return best


def cost_benefit_policy(blocks: BlockManager) -> Optional[int]:
    """Cost-benefit selection: age × free space per unit relocation cost.

    The classic page-mapping-FTL score (Kawaguchi et al., carried into
    Dayan & Bonnet's GC survey): ``age * (1 - u) / (2u)`` where ``u`` is
    the block's valid-page utilization and ``age`` the simulated time
    since the block was last written.  Old, half-empty blocks win over
    young ones with slightly more garbage — on skewed workloads that
    leaves hot blocks alone until their churn has turned them into
    cheap, garbage-dense victims.  Fully-garbage blocks (``u = 0``) cost
    nothing to reclaim and always win.
    """
    best: Optional[int] = None
    best_key: Optional[tuple] = None
    ppb = blocks.spec.pages_per_block
    for block in blocks.victim_candidates():
        garbage = blocks.garbage_in(block)
        if garbage <= 0:
            continue
        u = blocks.valid_count(block) / ppb
        if u == 0.0:
            score = float("inf")
        else:
            score = blocks.block_age(block) * (1.0 - u) / (2.0 * u)
        key = (score, garbage, *_tie_break(blocks, block))
        if best_key is None or key > best_key:
            best, best_key = block, key
    return best


def wear_aware_policy(wear_weight: float = 1.0) -> VictimPolicy:
    """Greedy discounted by wear: maximize garbage / (1 + weight × erases).

    The compromise the paper defers to footnote 4: reclamation efficiency
    traded against evener wear.  ``wear_weight=0`` degenerates to the
    greedy policy; larger weights steer erases away from worn blocks
    (the longevity metric of Experiment 6).
    """

    def policy(blocks: BlockManager) -> Optional[int]:
        best: Optional[int] = None
        best_key: Optional[tuple] = None
        for block in blocks.victim_candidates():
            garbage = blocks.garbage_in(block)
            if garbage <= 0:
                continue
            score = garbage / (1.0 + wear_weight * blocks.erase_count(block))
            key = (score, *_tie_break(blocks, block))
            if best_key is None or key > best_key:
                best, best_key = block, key
        return best

    return policy


register_victim_policy("greedy", lambda: greedy_policy)
register_victim_policy("cb", lambda: cost_benefit_policy)
register_victim_policy("cost-benefit", lambda: cost_benefit_policy)
register_victim_policy("wear", wear_aware_policy)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GcConfig:
    """Tuning knobs of the space-management subsystem.

    ``policy`` names a registered victim policy.  ``incremental_steps``
    bounds the relocations a single write performs (0 keeps the paper's
    stop-the-world collector).  ``trigger_blocks`` is the free-pool
    level at which incremental work starts (default: the allocator's
    reserve plus :data:`GC_TRIGGER_HEADROOM`).  ``hot_cold`` splits the
    append point into separate hot and cold active blocks — drivers
    route short-lived pages (PDL differential pages, OPU fresh writes)
    to the hot stream and long-lived ones (base pages, GC survivors) to
    the cold stream, so blocks die together and compaction relocates
    less.
    """

    policy: str = "greedy"
    incremental_steps: int = 0
    trigger_blocks: Optional[int] = None
    hot_cold: bool = False

    def __post_init__(self) -> None:
        if self.incremental_steps < 0:
            raise ValueError("incremental_steps must be non-negative")
        if self.trigger_blocks is not None and self.trigger_blocks < 1:
            raise ValueError("trigger_blocks must be at least 1")

    @property
    def incremental(self) -> bool:
        return self.incremental_steps > 0


class RelocationHandler(Protocol):
    """Driver-side hooks used by the GC engine."""

    def relocate_page(self, addr: int, data: bytes, spare: SpareArea) -> None:
        """Move one valid page out of the victim block."""

    def finish_victim(self, block: int) -> None:
        """Flush any relocation buffers before the victim is erased."""


class GarbageCollector:
    """Reclaims blocks — whole victims at the reserve level, or in
    bounded per-write steps when configured incrementally."""

    def __init__(
        self,
        chip: FlashChip,
        blocks: BlockManager,
        handler: RelocationHandler,
        policy: Optional[VictimPolicy] = None,
        config: Optional[GcConfig] = None,
    ):
        self.chip = chip
        self.blocks = blocks
        self.handler = handler
        self.config = config if config is not None else GcConfig()
        # An explicit policy callable (the legacy ``victim_policy``
        # ablation hook) wins over the config's registered name.
        self.policy: VictimPolicy = (
            policy if policy is not None else make_victim_policy(self.config.policy)
        )
        #: What actually selects victims, for reports: the registered
        #: name, or the explicit callable's name when one overrides it.
        self.policy_label: str = (
            self.config.policy
            if policy is None
            else getattr(policy, "__name__", repr(policy))
        )
        if self.config.trigger_blocks is not None:
            trigger = self.config.trigger_blocks
        else:
            trigger = blocks.reserve_blocks + GC_TRIGGER_HEADROOM
        #: Incremental work starts when the free pool is at or below this.
        self.trigger_blocks = max(trigger, blocks.reserve_blocks)
        self.collections = 0
        self.pages_relocated = 0
        #: Incremental steps that performed any reclamation work.
        self.steps = 0
        #: Simulated time spent reclaiming, cumulative (stall metering).
        self.gc_time_us = 0.0
        self._victim: Optional[int] = None
        self._pending: Deque[int] = deque()
        self._write_mark = 0.0
        self._owner_ident: Optional[int] = None
        blocks.set_gc(self.collect)

    # ------------------------------------------------------------------
    # Write-path hooks (stall metering + incremental pacing)
    # ------------------------------------------------------------------
    def bind_owner_thread(self, ident: Optional[int]) -> None:
        """Pin this engine's write hooks to one thread (``None`` unpins).

        The parallel shard executor binds each shard's engine to that
        shard's single worker thread; the hooks then refuse to run
        anywhere else, so incremental pacing, stall metering and the
        in-flight victim can never be mutated concurrently — the guard
        that keeps GC state shard-local under real threading.
        """
        self._owner_ident = ident

    def _check_owner(self) -> None:
        if (
            self._owner_ident is not None
            and threading.get_ident() != self._owner_ident
        ):
            raise ConcurrencyError(
                "GC write hook invoked off the owning shard worker thread; "
                "route all shard operations through its executor mailbox"
            )

    def on_write_begin(self) -> None:
        """Driver hook at the start of one logical write: run the write's
        incremental step budget, and mark the stall-meter baseline."""
        self._check_owner()
        self._write_mark = self.gc_time_us
        if self.config.incremental and (
            self._victim is not None or self._below_trigger()
        ):
            self.step(self.config.incremental_steps)

    def on_write_end(self) -> None:
        """Driver hook at the end of one logical write: record how much
        GC time the write absorbed (its stall), backstop runs included."""
        self._check_owner()
        self.chip.stats.record_write_stall(self.gc_time_us - self._write_mark)

    # ------------------------------------------------------------------
    # Reclamation
    # ------------------------------------------------------------------
    def collect(self) -> None:
        """Reclaim blocks until ``free > reserve`` (or raise OutOfSpace).

        The stop-the-world entry point, registered with the allocator as
        the out-of-blocks backstop.  An in-flight incremental victim is
        finished first so the free pool sees its erase."""
        start = self.chip.clock_us
        try:
            with self.chip.stats.phase(GC):
                while self.blocks.free_block_count <= self.blocks.reserve_blocks:
                    if self._victim is None and not self._select_victim():
                        raise OutOfSpaceError(
                            "garbage collection found no reclaimable block; "
                            "the chip is full of valid data"
                        )
                    self._advance(self.blocks.spec.n_pages)
        finally:
            self.gc_time_us += self.chip.clock_us - start

    def step(self, max_pages: int) -> int:
        """Relocate up to ``max_pages`` victim pages; returns the count.

        Victims are erased as soon as their last valid page has moved
        (the erase rides in the same step).  New victims are only
        selected while the free pool is at or below the trigger level;
        an in-flight victim is always driven to completion so its
        relocated copies stop occupying two blocks' worth of space."""
        relocated = 0
        start = self.chip.clock_us
        try:
            with self.chip.stats.phase(GC):
                while relocated < max_pages:
                    if self._victim is None:
                        if not self._below_trigger() or not self._select_victim():
                            break
                    relocated += self._advance(max_pages - relocated)
        finally:
            elapsed = self.chip.clock_us - start
            self.gc_time_us += elapsed
            if elapsed > 0.0:
                self.steps += 1
                self.chip.stats.record_gc_step(relocated)
        return relocated

    def drain_victim(self) -> None:
        """Drive any in-flight incremental victim to completion.

        Mid-compaction the tables are transiently inconsistent — a
        relocated differential page's vdct row is dropped while mapping
        entries still point into the victim until the compaction buffer
        flushes.  Consistency points (mapping snapshots, checkpoints)
        call this first so they never serialize that state.
        """
        if self._victim is None:
            return
        start = self.chip.clock_us
        try:
            with self.chip.stats.phase(GC):
                while self._victim is not None:
                    self._advance(self.blocks.spec.n_pages)
        finally:
            self.gc_time_us += self.chip.clock_us - start

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def in_flight_victim(self) -> Optional[int]:
        """The partially-relocated victim block, if any."""
        return self._victim

    def gc_debt(self) -> int:
        """How far below the trigger level the free pool is, in blocks
        (an in-flight victim counts as at least one block of debt)."""
        debt = max(0, self.trigger_blocks + 1 - self.blocks.free_block_count)
        if self._victim is not None:
            debt = max(debt, 1)
        return debt

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _below_trigger(self) -> bool:
        return self.blocks.free_block_count <= self.trigger_blocks

    def _select_victim(self) -> bool:
        victim = self.policy(self.blocks)
        if victim is None or self.blocks.garbage_in(victim) <= 0:
            return False
        self._victim = victim
        # Snapshot of the victim's valid pages; entries invalidated by
        # ordinary writes between incremental steps are re-checked (and
        # skipped) at relocation time.
        self._pending = deque(self.blocks.valid_pages_in(victim))
        return True

    def _advance(self, budget: int) -> int:
        """Relocate up to ``budget`` pages of the in-flight victim; when
        the victim drains, flush handler buffers, erase it, and return
        the block to the free pool."""
        victim = self._victim
        assert victim is not None
        batch: list = []
        while self._pending and len(batch) < budget:
            addr = self._pending.popleft()
            if self.blocks.is_valid(addr):
                batch.append(addr)
            # else: superseded by a write since selection — skip
        # One batched read for the chunk (contiguous runs within the
        # block, which the file backend turns into a few sequential
        # reads); same N × Tread charge.  Relocating one victim page
        # never invalidates another of the same victim, so the images
        # read up front cannot go stale inside the batch.
        for addr, (data, spare) in zip(batch, self.chip.read_pages(batch)):
            self.handler.relocate_page(addr, data, spare)
            self.blocks.note_invalid(addr)
            self.pages_relocated += 1
        relocated = len(batch)
        if not self._pending:
            self.handler.finish_victim(victim)
            self.chip.erase_block(victim)
            self.blocks.on_block_erased(victim)
            self.collections += 1
            self._victim = None
        return relocated

    def _reclaim(self, victim: int) -> None:
        """Reclaim one specific block to completion (tests/ablations)."""
        assert self._victim is None, "a victim is already in flight"
        self._victim = victim
        self._pending = deque(self.blocks.valid_pages_in(victim))
        self._advance(self.blocks.spec.n_pages)
