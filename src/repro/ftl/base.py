"""The page-update-method driver contract (Figure 10's seam).

Every method the paper compares — OPU, IPU, IPL, and PDL — implements
:class:`PageUpdateMethod`.  The contract mirrors the paper's architecture
discussion:

* ``read_page`` recreates a logical page from flash (the *reading step*);
* ``write_page`` reflects an updated logical page into flash (the
  *writing step*), optionally with the DBMS-provided update logs that only
  the tightly-coupled log-based method consumes;
* ``flush`` is the write-through command of Section 4.5;
* ``load_page`` bulk-loads the initial database image.

Loosely-coupled drivers (OPU, IPU, PDL) ignore ``update_logs`` entirely —
they can sit below an unmodified disk-based DBMS.  IPL requires them; when
a caller cannot supply logs, IPL degrades to logging the whole page as one
change, which is exactly the penalty of coupling the paper describes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..flash.chip import FlashChip
from ..flash.spec import FlashSpec
from ..flash.stats import FlashStats


class ChangeRun(NamedTuple):
    """One contiguous modification to a logical page.

    ``offset`` is the byte position within the page; ``data`` is the new
    content written there.  A DBMS update command produces one or more
    runs; log-based methods persist them as update logs.
    """

    offset: int
    data: bytes

    @property
    def length(self) -> int:
        return len(self.data)

    @property
    def end(self) -> int:
        return self.offset + len(self.data)


def apply_runs(page: bytes, runs: Sequence[ChangeRun]) -> bytes:
    """Apply change runs to a page image, returning the new image."""
    if not runs:
        return page
    buf = bytearray(page)
    for run in runs:
        if run.offset < 0 or run.end > len(buf):
            raise ValueError(
                f"change run [{run.offset}, {run.end}) outside page of {len(buf)} bytes"
            )
        buf[run.offset : run.end] = run.data
    return bytes(buf)


class PageUpdateMethod(ABC):
    """Abstract base for the four page-update methods.

    Subclasses must set :attr:`name` (the label used in the paper's
    figures, e.g. ``"PDL (256B)"``) and implement the three page
    operations.  The shared helpers validate page sizes and expose the
    chip's stats, so experiment code never touches driver internals.
    """

    #: Figure label, set by each subclass constructor.
    name: str = "abstract"

    #: True when the driver consumes DBMS update logs (Table 2's coupling
    #: row); used by reports and by the storage layer to decide whether
    #: change-log recording is needed.
    tightly_coupled: bool = False

    def __init__(self, chip: FlashChip):
        self.chip = chip

    # ------------------------------------------------------------------
    # Required operations
    # ------------------------------------------------------------------
    @abstractmethod
    def load_page(self, pid: int, data: bytes) -> None:
        """Bulk-load a logical page during initial database creation."""

    @abstractmethod
    def read_page(self, pid: int) -> bytes:
        """Recreate logical page ``pid`` from flash memory."""

    @abstractmethod
    def write_page(
        self, pid: int, data: bytes, update_logs: Optional[List[ChangeRun]] = None
    ) -> None:
        """Reflect the updated logical page ``pid`` into flash memory."""

    # ------------------------------------------------------------------
    # Optional operations
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write-through: push any buffered state into flash (no-op by
        default; PDL flushes its differential write buffer, IPL its
        in-memory log buffers)."""

    def end_of_load(self) -> None:
        """Hook invoked once after the initial bulk load completes."""

    # ------------------------------------------------------------------
    # Batched operations (semantically N single calls; drivers override
    # them to reach the chip's batched entry points where they can)
    # ------------------------------------------------------------------
    def load_pages(self, pages: Sequence[Tuple[int, bytes]]) -> None:
        """Bulk-load many ``(pid, data)`` pairs.

        The default loops :meth:`load_page`; PDL batches the programs
        into :meth:`repro.flash.chip.FlashChip.program_pages` calls.
        """
        for pid, data in pages:
            self.load_page(pid, data)

    def write_pages(
        self,
        pages: Sequence[Tuple[int, bytes]],
        update_logs: Optional[Dict[int, List[ChangeRun]]] = None,
    ) -> None:
        """Reflect many updated logical pages (a buffer-pool flush).

        ``update_logs`` maps pid → change runs for tightly-coupled
        drivers.  The default loops :meth:`write_page`; PDL batches the
        base-page re-reads the differential computation needs.
        """
        for pid, data in pages:
            logs = update_logs.get(pid) if update_logs else None
            self.write_page(pid, data, update_logs=logs)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @property
    def spec(self) -> FlashSpec:
        return self.chip.spec

    @property
    def stats(self) -> FlashStats:
        return self.chip.stats

    @property
    def page_size(self) -> int:
        """Logical page size; equal to the physical data area size, as the
        paper assumes for ease of exposition."""
        return self.chip.spec.page_data_size

    @property
    def total_blocks(self) -> int:
        """Erase blocks behind this driver; multi-chip drivers override
        this with the whole array's count."""
        return self.spec.n_blocks

    def _check_page(self, pid: int, data: bytes) -> None:
        if pid < 0:
            raise ValueError(f"logical page id {pid} must be non-negative")
        if len(data) != self.page_size:
            raise ValueError(
                f"logical page must be exactly {self.page_size} bytes, got {len(data)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
