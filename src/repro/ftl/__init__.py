"""FTL layer: driver contract, allocator/GC framework, baseline methods.

* :class:`PageUpdateMethod` — the driver contract all methods implement.
* :class:`BlockManager` / :class:`GarbageCollector` — out-place free-space
  management shared by OPU and PDL.
* :class:`OpuDriver` / :class:`IpuDriver` — the page-based baselines.
* :class:`IplDriver` — the log-based baseline (in-page logging).
"""

from .allocator import BlockManager
from .base import ChangeRun, PageUpdateMethod, apply_runs
from .errors import (
    ConfigurationError,
    FtlError,
    OutOfSpaceError,
    UnallocatedPageError,
    UnknownPageError,
)
from .gc import GarbageCollector, RelocationHandler, VictimPolicy, greedy_policy
from .ipl import IplDriver, decode_slot, encode_slot
from .ipu import IpuDriver
from .opu import OpuDriver

__all__ = [
    "BlockManager",
    "ChangeRun",
    "ConfigurationError",
    "FtlError",
    "GarbageCollector",
    "IplDriver",
    "IpuDriver",
    "OpuDriver",
    "OutOfSpaceError",
    "PageUpdateMethod",
    "RelocationHandler",
    "UnallocatedPageError",
    "UnknownPageError",
    "VictimPolicy",
    "apply_runs",
    "decode_slot",
    "encode_slot",
    "greedy_policy",
]
