"""FTL layer: driver contract, allocator/GC framework, baseline methods.

* :class:`PageUpdateMethod` — the driver contract all methods implement.
* :class:`BlockManager` / :class:`GarbageCollector` — out-place free-space
  management shared by OPU and PDL.
* :class:`OpuDriver` / :class:`IpuDriver` — the page-based baselines.
* :class:`IplDriver` — the log-based baseline (in-page logging).
"""

from .allocator import COLD_STREAM, HOT_STREAM, BlockManager
from .base import ChangeRun, PageUpdateMethod, apply_runs
from .errors import (
    ConfigurationError,
    FtlError,
    OutOfSpaceError,
    UnallocatedPageError,
    UnknownPageError,
)
from .gc import (
    GarbageCollector,
    GcConfig,
    RelocationHandler,
    VictimPolicy,
    cost_benefit_policy,
    greedy_policy,
    make_victim_policy,
    register_victim_policy,
    victim_policy_names,
    wear_aware_policy,
)
from .ipl import IplDriver, decode_slot, encode_slot
from .ipu import IpuDriver
from .opu import OpuDriver

__all__ = [
    "BlockManager",
    "COLD_STREAM",
    "ChangeRun",
    "ConfigurationError",
    "FtlError",
    "GarbageCollector",
    "GcConfig",
    "HOT_STREAM",
    "IplDriver",
    "IpuDriver",
    "OpuDriver",
    "OutOfSpaceError",
    "PageUpdateMethod",
    "RelocationHandler",
    "UnallocatedPageError",
    "UnknownPageError",
    "VictimPolicy",
    "apply_runs",
    "cost_benefit_policy",
    "decode_slot",
    "encode_slot",
    "greedy_policy",
    "make_victim_policy",
    "register_victim_policy",
    "victim_policy_names",
    "wear_aware_policy",
]
