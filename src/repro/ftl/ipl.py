"""IPL — the log-based baseline (in-page logging, Lee & Moon 2007).

Section 3 of the paper: IPL divides every block into *original pages* and
*log pages* (``IPL(y)`` reserves ``y`` bytes of log region per block).
Logical pages map statically to block-local slots; updates append *update
logs* — the per-command change records the DBMS must expose, which is why
the method is tightly coupled — into a per-logical-page log buffer of
1/16 of a page (footnote 13).  Reflecting a page writes
``⌈log bytes / log-buffer size⌉`` flash operations into the block's log
region; recreating a page reads the original page plus every distinct log
page holding its logs.  When a block's log region fills, the block is
*merged*: originals + logs are read, merged images are written into a
fresh block, and the old block is erased (the paper counts merging as
IPL's garbage collection, footnote 11).

Log-region writes use slot-granular partial page programming
(``FlashSpec.max_log_page_programs``); see DESIGN.md for why this matches
the paper's cost model.

On-flash slot format (little-endian)::

    u32 pid | u16 n_runs | n_runs × (u16 offset, u16 length, data…)
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..flash.chip import FlashChip
from ..flash.spare import PageType, SpareArea
from ..flash.stats import GC, READ_STEP, WRITE_STEP
from .base import ChangeRun, PageUpdateMethod, apply_runs
from .errors import ConfigurationError, OutOfSpaceError, UnknownPageError

_SLOT_HEADER = struct.Struct("<IH")
_RUN_HEADER = struct.Struct("<HH")

SLOT_HEADER_SIZE = _SLOT_HEADER.size  # 6 bytes
RUN_HEADER_SIZE = _RUN_HEADER.size  # 4 bytes

#: The paper sets the per-logical-page log buffer to page size / 16.
LOG_BUFFER_DIVISOR = 16


def encode_slot(pid: int, runs: List[ChangeRun]) -> bytes:
    """Serialize one log-slot payload."""
    parts = [_SLOT_HEADER.pack(pid, len(runs))]
    for run in runs:
        parts.append(_RUN_HEADER.pack(run.offset, len(run.data)))
        parts.append(run.data)
    return b"".join(parts)


def decode_slot(raw: bytes) -> Tuple[int, List[ChangeRun]]:
    """Parse a log-slot payload back into ``(pid, runs)``."""
    pid, n_runs = _SLOT_HEADER.unpack_from(raw, 0)
    pos = SLOT_HEADER_SIZE
    runs: List[ChangeRun] = []
    for _ in range(n_runs):
        offset, length = _RUN_HEADER.unpack_from(raw, pos)
        pos += RUN_HEADER_SIZE
        runs.append(ChangeRun(offset, bytes(raw[pos : pos + length])))
        pos += length
    return pid, runs


@dataclass
class _Group:
    """State of one block group (a physical block's worth of pages)."""

    block: int
    #: In-block data slots that hold loaded logical pages.
    loaded: Set[int] = field(default_factory=set)
    #: Log slots consumed so far.
    log_fill: int = 0
    #: pid -> ordered slot indices holding its update logs.
    placements: Dict[int, List[int]] = field(default_factory=dict)


class IplDriver(PageUpdateMethod):
    """In-page logging with a ``log_region_bytes`` log area per block."""

    tightly_coupled = True

    def __init__(self, chip: FlashChip, log_region_bytes: int, spare_blocks: int = 2):
        super().__init__(chip)
        spec = chip.spec
        if log_region_bytes <= 0:
            raise ConfigurationError("log region must be positive")
        self.log_pages_per_block = -(-log_region_bytes // spec.page_data_size)
        self.data_pages_per_block = spec.pages_per_block - self.log_pages_per_block
        if self.data_pages_per_block <= 0:
            raise ConfigurationError(
                f"log region of {log_region_bytes} bytes leaves no data pages "
                f"in a {spec.block_data_size}-byte block"
            )
        self.log_region_bytes = log_region_bytes
        self.slot_size = spec.page_data_size // LOG_BUFFER_DIVISOR
        if self.slot_size <= SLOT_HEADER_SIZE + RUN_HEADER_SIZE:
            raise ConfigurationError("pages too small for IPL log slots")
        self.slots_per_page = spec.page_data_size // self.slot_size
        self.total_slots = self.log_pages_per_block * self.slots_per_page
        if spec.max_log_page_programs < self.slots_per_page:
            raise ConfigurationError(
                f"chip allows {spec.max_log_page_programs} partial programs per "
                f"page but IPL needs {self.slots_per_page}"
            )
        self.name = f"IPL ({_format_size(log_region_bytes)})"
        self.spare_blocks = spare_blocks
        self._free: Deque[int] = deque(range(spec.n_blocks))
        self._groups: Dict[int, _Group] = {}
        self.merges = 0

    # ------------------------------------------------------------------
    # Capacity helper
    # ------------------------------------------------------------------
    def max_database_pages(self) -> int:
        """Largest database this chip/configuration can host."""
        usable_blocks = self.spec.n_blocks - self.spare_blocks
        return usable_blocks * self.data_pages_per_block

    # ------------------------------------------------------------------
    # PageUpdateMethod
    # ------------------------------------------------------------------
    def load_page(self, pid: int, data: bytes) -> None:
        self._check_page(pid, data)
        gid, slot = divmod(pid, self.data_pages_per_block)
        group = self._groups.get(gid)
        if group is None:
            group = _Group(block=self._take_free_block())
            self._groups[gid] = group
        if slot in group.loaded:
            raise ValueError(f"logical page {pid} already loaded")
        addr = group.block * self.spec.pages_per_block + slot
        with self.stats.phase("load"):
            self.chip.program_page(addr, data, SpareArea(type=PageType.DATA, pid=pid))
        group.loaded.add(slot)

    def read_page(self, pid: int) -> bytes:
        group, slot = self._locate(pid)
        with self.stats.phase(READ_STEP):
            return self._recreate(group, slot, pid)

    def write_page(
        self, pid: int, data: bytes, update_logs: Optional[List[ChangeRun]] = None
    ) -> None:
        """Reflect a page by appending its update logs to the log region.

        Without DBMS-provided logs the whole page becomes a single change
        run — the degradation a loosely-coupled deployment would suffer.
        """
        self._check_page(pid, data)
        gid, slot = divmod(pid, self.data_pages_per_block)
        group = self._groups.get(gid)
        if group is None or slot not in group.loaded:
            # First write of a page never loaded: program the original page
            # in its static slot, attributed to the write step.
            if group is None:
                group = _Group(block=self._take_free_block())
                self._groups[gid] = group
            addr = group.block * self.spec.pages_per_block + slot
            with self.stats.phase(WRITE_STEP):
                self.chip.program_page(
                    addr, data, SpareArea(type=PageType.DATA, pid=pid)
                )
            group.loaded.add(slot)
            return
        runs = update_logs if update_logs else [ChangeRun(0, data)]
        with self.stats.phase(WRITE_STEP):
            for chunk in self._chunk_runs(runs):
                self._flush_slot(group, pid, chunk)

    # ------------------------------------------------------------------
    # Log management
    # ------------------------------------------------------------------
    def _chunk_runs(self, runs: List[ChangeRun]) -> List[List[ChangeRun]]:
        """Split runs into slot-sized payload chunks of whole (sub-)runs.

        A run longer than a slot's payload is divided into sub-runs so
        each slot decodes independently; chunk count approximates the
        paper's ⌈log size / log buffer size⌉ write formula.
        """
        max_run_data = self.slot_size - SLOT_HEADER_SIZE - RUN_HEADER_SIZE
        flat: List[ChangeRun] = []
        for run in runs:
            if run.offset < 0 or run.end > self.page_size:
                raise ValueError(f"update log {run.offset}+{run.length} outside page")
            data = run.data
            pos = 0
            while pos < len(data):
                piece = data[pos : pos + max_run_data]
                flat.append(ChangeRun(run.offset + pos, piece))
                pos += len(piece)
        chunks: List[List[ChangeRun]] = []
        current: List[ChangeRun] = []
        used = SLOT_HEADER_SIZE
        for run in flat:
            need = RUN_HEADER_SIZE + len(run.data)
            if current and used + need > self.slot_size:
                chunks.append(current)
                current = []
                used = SLOT_HEADER_SIZE
            current.append(run)
            used += need
        if current:
            chunks.append(current)
        return chunks

    def _flush_slot(self, group: _Group, pid: int, runs: List[ChangeRun]) -> None:
        if group.log_fill >= self.total_slots:
            self._merge(group)
        slot = group.log_fill
        group.log_fill += 1
        page_idx = self.data_pages_per_block + slot // self.slots_per_page
        offset = (slot % self.slots_per_page) * self.slot_size
        addr = group.block * self.spec.pages_per_block + page_idx
        payload = encode_slot(pid, runs)
        assert len(payload) <= self.slot_size
        self.chip.program_partial(
            addr, offset, payload, spare=SpareArea(type=PageType.LOG)
        )
        group.placements.setdefault(pid, []).append(slot)

    def _recreate(self, group: _Group, slot: int, pid: int) -> bytes:
        """Original page + replayed logs (charges one read per distinct
        log page holding this pid's logs)."""
        addr = group.block * self.spec.pages_per_block + slot
        data, _spare = self.chip.read_page(addr)
        slots = group.placements.get(pid)
        if not slots:
            return data
        pages = sorted({self.data_pages_per_block + s // self.slots_per_page for s in slots})
        raw_pages: Dict[int, bytes] = {}
        for page_idx in pages:
            log_addr = group.block * self.spec.pages_per_block + page_idx
            raw_pages[page_idx], _ = self.chip.read_page(log_addr)
        image = data
        for s in slots:
            page_idx = self.data_pages_per_block + s // self.slots_per_page
            offset = (s % self.slots_per_page) * self.slot_size
            raw = raw_pages[page_idx][offset : offset + self.slot_size]
            slot_pid, runs = decode_slot(raw)
            if slot_pid != pid:
                raise UnknownPageError(
                    f"log slot {s} of group block {group.block} holds pid "
                    f"{slot_pid}, expected {pid}"
                )
            image = apply_runs(image, runs)
        return image

    # ------------------------------------------------------------------
    # Merging (IPL's garbage collection)
    # ------------------------------------------------------------------
    def _merge(self, group: _Group) -> None:
        """Merge originals with logs into a fresh block, erase the old."""
        with self.stats.phase(GC):
            new_block = self._take_free_block(for_merge=True)
            # Read every used log page once.
            used_log_pages = sorted(
                {
                    self.data_pages_per_block + s // self.slots_per_page
                    for slots in group.placements.values()
                    for s in slots
                }
            )
            raw_pages: Dict[int, bytes] = {}
            for page_idx in used_log_pages:
                addr = group.block * self.spec.pages_per_block + page_idx
                raw_pages[page_idx], _ = self.chip.read_page(addr)
            for slot in sorted(group.loaded):
                old_addr = group.block * self.spec.pages_per_block + slot
                data, spare = self.chip.read_page(old_addr)
                pid = spare.pid
                image = data
                for s in group.placements.get(pid, ()):
                    page_idx = self.data_pages_per_block + s // self.slots_per_page
                    offset = (s % self.slots_per_page) * self.slot_size
                    raw = raw_pages[page_idx][offset : offset + self.slot_size]
                    _slot_pid, runs = decode_slot(raw)
                    image = apply_runs(image, runs)
                new_addr = new_block * self.spec.pages_per_block + slot
                self.chip.program_page(
                    new_addr, image, SpareArea(type=PageType.DATA, pid=pid)
                )
            old_block = group.block
            self.chip.erase_block(old_block)
            self._free.append(old_block)
            group.block = new_block
            group.log_fill = 0
            group.placements = {}
            self.merges += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _take_free_block(self, for_merge: bool = False) -> int:
        """Pop a free block.

        Group creation must leave ``spare_blocks`` free so merging always
        has a relocation target; merges themselves may use the reserve.
        """
        available = len(self._free) - (0 if for_merge else self.spare_blocks)
        if available <= 0:
            raise OutOfSpaceError(
                "IPL has no free blocks; database exceeds "
                f"{self.max_database_pages()} pages for this log-region size"
            )
        return self._free.popleft()

    def _locate(self, pid: int) -> Tuple[_Group, int]:
        gid, slot = divmod(pid, self.data_pages_per_block)
        group = self._groups.get(gid)
        if group is None or slot not in group.loaded:
            raise UnknownPageError(f"logical page {pid} was never written")
        return group, slot


def _format_size(n_bytes: int) -> str:
    """Format a byte count the way the paper labels methods (18KB, 64KB)."""
    if n_bytes % 1024 == 0:
        return f"{n_bytes // 1024}KB"
    return f"{n_bytes}B"
