"""Measurement harness for the synthetic experiments.

Builds a chip + driver for a method label, loads the database, warms it
into steady state (the paper re-executes until GC has touched every block
repeatedly; we warm by overwriting a multiple of the database), then
measures a window of operations and reports per-operation simulated I/O
time split the way Figure 12 splits it: read step, write step, and the
GC share amortized into writes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.pdl import PdlDriver
from ..flash.chip import FlashChip
from ..flash.spec import FlashSpec, spec_for_database
from ..flash.stats import GC, READ_STEP, WRITE_STEP
from ..ftl.base import PageUpdateMethod
from ..methods import make_method
from .synthetic import SyntheticConfig, SyntheticWorkload


@dataclass
class MethodMeasurement:
    """Per-operation simulated I/O costs of one method under one workload."""

    label: str
    n_ops: int
    read_us: float
    write_us: float
    gc_us: float
    erases: int
    reads: int
    writes: int

    @property
    def overall_us(self) -> float:
        """Total time per operation (read + write + amortized GC)."""
        return self.read_us + self.write_us + self.gc_us

    @property
    def write_with_gc_us(self) -> float:
        """The writing-step bar of Figure 12(b), GC included."""
        return self.write_us + self.gc_us

    @property
    def erases_per_op(self) -> float:
        """Figure 17's longevity metric."""
        return self.erases / self.n_ops if self.n_ops else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "label": self.label,
            "n_ops": self.n_ops,
            "read_us": self.read_us,
            "write_us": self.write_us,
            "gc_us": self.gc_us,
            "overall_us": self.overall_us,
            "erases_per_op": self.erases_per_op,
        }


@dataclass
class RunnerConfig:
    """Knobs shared by all synthetic experiments."""

    database_pages: int = 2048
    utilization: float = 0.25  # the paper's 1 GB DB on the Table-1 chip
    measure_ops: int = 1000
    warmup_multiplier: float = 1.5  # warm-up cycles = multiplier × DB pages
    seed: int = 20100121
    verify: bool = True
    base_spec: Optional[FlashSpec] = None

    def spec(self) -> FlashSpec:
        if self.base_spec is not None:
            base = self.base_spec
        else:
            from ..flash.spec import SAMSUNG_K9L8G08U0M

            base = SAMSUNG_K9L8G08U0M
        return spec_for_database(self.database_pages, self.utilization, base)

    def warmup_ops_for(self, label: str) -> int:
        """IPU reaches steady state immediately (no GC, no log regions);
        everyone else needs the free space churned."""
        if label.strip().upper() == "IPU":
            return min(64, int(self.database_pages * 0.02) + 8)
        return int(self.database_pages * self.warmup_multiplier)


def aging_horizon(driver: PageUpdateMethod, change_size: int) -> int:
    """How many accumulated updates a page carries in steady state.

    PDL's state per page is its position in the Case-3 cycle: updates
    accumulate into the differential until it exceeds
    Max_Differential_Size, when a fresh base resets it.  With updates of
    ``change_size`` random bytes, expected coverage after k updates is
    ``1 - (1 - s)^k`` of the page, so the cycle length solves
    ``coverage × page = effective_max``.  Other methods carry no
    accumulated per-page flash state, so their horizon is 1.
    """
    if not isinstance(driver, PdlDriver):
        return 1
    page = driver.page_size
    s = min(change_size / page, 0.98)
    frac = min(driver.effective_max / page, 0.98)
    if s >= frac:
        return 1
    horizon = math.log(1.0 - frac) / math.log(1.0 - s)
    return max(1, int(math.ceil(horizon)))


def warm_to_steady_state(workload: SyntheticWorkload, runner: RunnerConfig) -> int:
    """Bring the database to the paper's steady state; returns ops used.

    Two phases:

    1. *Aging*: every page receives one collapsed reflection of
       ``k ~ U(1, K_max)`` accumulated updates, seeding PDL's
       differential-size distribution (uniform position in the Case-3
       cycle) without replaying the full history.
    2. *Churn*: regular update cycles until the chip's erase count
       reaches its block count (every block reclaimed once on average —
       GC/merging active and the allocator wrapped), bounded by
       ``16 × database_pages`` cycles.

    The paper instead re-executes until GC has hit each block ten times;
    the aging pass reproduces the same per-page state directly (see
    DESIGN.md, substitutions).
    """
    driver = workload.driver
    ops = 0
    k_max = aging_horizon(driver, workload.change_size)
    rng = workload.rng
    pids = list(range(workload.config.database_pages))
    rng.shuffle(pids)
    for pid in pids:
        workload.update_cycle(pid, n_updates=rng.randint(1, k_max))
        ops += 1
    if driver.name.strip().upper() == "IPU":
        return ops  # in-place update has no free-space state to churn
    target_erases = driver.spec.n_blocks
    max_ops = 16 * workload.config.database_pages
    chunk = max(64, workload.config.database_pages // 4)
    while driver.stats.total_erases < target_erases and ops < max_ops:
        workload.run_updates(chunk)
        ops += chunk
    return ops


def build_workload(
    label: str,
    runner: RunnerConfig,
    pct_changed: float,
    n_updates_till_write: int,
    method_kwargs: Optional[Dict] = None,
) -> SyntheticWorkload:
    """Chip + driver + loaded synthetic database for one method.

    ``method_kwargs`` are forwarded to the driver constructor (ablations:
    ``diff_unit``, ``victim_policy``, …).
    """
    chip = FlashChip(runner.spec())
    driver = make_method(label, chip, **(method_kwargs or {}))
    config = SyntheticConfig(
        database_pages=runner.database_pages,
        pct_changed=pct_changed,
        n_updates_till_write=n_updates_till_write,
        seed=runner.seed,
        verify=runner.verify,
    )
    workload = SyntheticWorkload(driver, config)
    workload.load()
    return workload


def measure_updates(
    label: str,
    runner: RunnerConfig,
    pct_changed: float = 2.0,
    n_updates_till_write: int = 1,
    method_kwargs: Optional[Dict] = None,
) -> MethodMeasurement:
    """Steady-state cost of pure update cycles (Experiments 1–3, 5, 6)."""
    workload = build_workload(
        label, runner, pct_changed, n_updates_till_write, method_kwargs
    )
    warm_to_steady_state(workload, runner)
    stats = workload.driver.stats
    snap = stats.snapshot()
    workload.run_updates(runner.measure_ops)
    delta = stats.delta_since(snap)
    return _measurement(label, runner.measure_ops, delta)


def measure_mix(
    label: str,
    runner: RunnerConfig,
    pct_update: float,
    pct_changed: float = 2.0,
    n_updates_till_write: int = 1,
    method_kwargs: Optional[Dict] = None,
) -> MethodMeasurement:
    """Steady-state cost of a read-only/update mix (Experiment 4).

    The warm-up is pure updates so that the database is in its updated
    steady state even when the measured mix is read-only — the paper's
    "read-only on updated pages" special case.
    """
    workload = build_workload(
        label, runner, pct_changed, n_updates_till_write, method_kwargs
    )
    warm_to_steady_state(workload, runner)
    stats = workload.driver.stats
    snap = stats.snapshot()
    workload.run_mix(runner.measure_ops, pct_update)
    delta = stats.delta_since(snap)
    return _measurement(label, runner.measure_ops, delta)


def _measurement(label: str, n_ops: int, delta) -> MethodMeasurement:
    read = delta.of_phase(READ_STEP)
    write = delta.of_phase(WRITE_STEP)
    gc = delta.of_phase(GC)
    return MethodMeasurement(
        label=label,
        n_ops=n_ops,
        read_us=read.time_us / n_ops,
        write_us=write.time_us / n_ops,
        gc_us=gc.time_us / n_ops,
        erases=delta.total_erases,
        reads=delta.totals().reads,
        writes=delta.totals().writes,
    )
