"""Measurement harness for the synthetic experiments.

Builds a chip + driver for a method label, loads the database, warms it
into steady state (the paper re-executes until GC has touched every block
repeatedly; we warm by overwriting a multiple of the database), then
measures a window of operations and reports per-operation simulated I/O
time split the way Figure 12 splits it: read step, write step, and the
GC share amortized into writes.

Sharded labels (``"PDL (256B) x4"``) build one chip per shard, each
sized so its slice of the database keeps the paper's utilization ratio;
:func:`measure_sharded_updates` additionally reports *parallel* time
(the busiest chip's share of the window) next to the serial total, the
metric the shard-scaling benchmark plots.  A ``par`` label executes the
shards on real worker threads, and the measurement window is always
wall-clock timed (``ShardScalingPoint.wall_s``) so the simulated
parallel model can be compared against observed elapsed time — with
``client_threads > 1`` driving a parallel driver from several
concurrent clients (see ``docs/concurrency.md``).
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..flash.chip import FlashChip
from ..flash.spec import FlashSpec, spec_for_database
from ..flash.stats import GC, READ_STEP, WRITE_STEP
from ..ftl.base import PageUpdateMethod
from ..ftl.errors import ConfigurationError
from ..methods import make_method, parse_gc_label, parse_parallel_label, parse_sharded_label
from ..sharding.driver import ShardedDriver
from ..storage.db import Database
from .synthetic import SyntheticConfig, SyntheticWorkload


@dataclass
class MethodMeasurement:
    """Per-operation simulated I/O costs of one method under one workload."""

    label: str
    n_ops: int
    read_us: float
    write_us: float
    gc_us: float
    erases: int
    reads: int
    writes: int

    @property
    def overall_us(self) -> float:
        """Total time per operation (read + write + amortized GC)."""
        return self.read_us + self.write_us + self.gc_us

    @property
    def write_with_gc_us(self) -> float:
        """The writing-step bar of Figure 12(b), GC included."""
        return self.write_us + self.gc_us

    @property
    def erases_per_op(self) -> float:
        """Figure 17's longevity metric."""
        return self.erases / self.n_ops if self.n_ops else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "label": self.label,
            "n_ops": self.n_ops,
            "read_us": self.read_us,
            "write_us": self.write_us,
            "gc_us": self.gc_us,
            "overall_us": self.overall_us,
            "erases_per_op": self.erases_per_op,
        }


@dataclass
class RunnerConfig:
    """Knobs shared by all synthetic experiments."""

    database_pages: int = 2048
    utilization: float = 0.25  # the paper's 1 GB DB on the Table-1 chip
    measure_ops: int = 1000
    warmup_multiplier: float = 1.5  # warm-up cycles = multiplier × DB pages
    seed: int = 20100121
    verify: bool = True
    base_spec: Optional[FlashSpec] = None

    def _base_spec(self) -> FlashSpec:
        if self.base_spec is not None:
            return self.base_spec
        from ..flash.spec import SAMSUNG_K9L8G08U0M

        return SAMSUNG_K9L8G08U0M

    def spec(self) -> FlashSpec:
        return spec_for_database(self.database_pages, self.utilization, self._base_spec())

    def shard_spec(self, n_shards: int) -> FlashSpec:
        """Per-shard chip spec: each shard holds ~1/N of the database at
        the same utilization ratio, so GC pressure per shard matches the
        single-chip setup."""
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        pages = -(-self.database_pages // n_shards)  # ceil division
        spec = spec_for_database(pages, self.utilization, self._base_spec())
        # Tiny shards need allocation headroom beyond the utilization
        # fit: an active block, the 2-block GC reserve, and at least one
        # reclaimable victim — otherwise a shard can wedge with all its
        # data in the active block and nothing to collect.
        min_blocks = -(-pages // spec.pages_per_block) + 4
        if spec.n_blocks < min_blocks:
            spec = spec.scaled(min_blocks)
        return spec



def aging_horizon(driver: PageUpdateMethod, change_size: int) -> int:
    """How many accumulated updates a page carries in steady state.

    PDL's state per page is its position in the Case-3 cycle: updates
    accumulate into the differential until it exceeds
    Max_Differential_Size, when a fresh base resets it.  With updates of
    ``change_size`` random bytes, expected coverage after k updates is
    ``1 - (1 - s)^k`` of the page, so the cycle length solves
    ``coverage × page = effective_max``.  Other methods carry no
    accumulated per-page flash state, so their horizon is 1.
    """
    if isinstance(driver, ShardedDriver):
        # Shards age independently but identically; use a representative.
        driver = driver.shards[0]
    # Duck-typed on the PDL Case-3 horizon rather than the class: a
    # process-backed array has no local shard drivers, only the
    # representative effective_max its workers reported.
    effective_max = getattr(driver, "effective_max", None)
    if effective_max is None:
        return 1
    page = driver.page_size
    s = min(change_size / page, 0.98)
    frac = min(effective_max / page, 0.98)
    if s >= frac:
        return 1
    horizon = math.log(1.0 - frac) / math.log(1.0 - s)
    return max(1, int(math.ceil(horizon)))


def warm_to_steady_state(workload: SyntheticWorkload, runner: RunnerConfig) -> int:
    """Bring the database to the paper's steady state; returns ops used.

    Two phases:

    1. *Aging*: every page receives one collapsed reflection of
       ``k ~ U(1, K_max)`` accumulated updates, seeding PDL's
       differential-size distribution (uniform position in the Case-3
       cycle) without replaying the full history.
    2. *Churn*: regular update cycles until the chip's erase count
       reaches its block count (every block reclaimed once on average —
       GC/merging active and the allocator wrapped), bounded by
       ``16 × database_pages`` cycles.

    The paper instead re-executes until GC has hit each block ten times;
    the aging pass reproduces the same per-page state directly (see
    DESIGN.md, substitutions).
    """
    driver = workload.driver
    ops = 0
    k_max = aging_horizon(driver, workload.change_size)
    rng = workload.rng
    pids = list(range(workload.config.database_pages))
    rng.shuffle(pids)
    for pid in pids:
        workload.update_cycle(pid, n_updates=rng.randint(1, k_max))
        ops += 1
    plain, _gc = parse_gc_label(driver.name)
    plain, _par = parse_parallel_label(plain)
    base_name, _ = parse_sharded_label(plain)
    if base_name.strip().upper() == "IPU":
        return ops  # in-place update has no free-space state to churn
    # total_blocks covers the whole array for sharded drivers.
    target_erases = driver.total_blocks
    max_ops = 16 * workload.config.database_pages
    chunk = max(64, workload.config.database_pages // 4)
    while driver.stats.total_erases < target_erases and ops < max_ops:
        workload.run_updates(chunk)
        ops += chunk
    return ops


def build_workload(
    label: str,
    runner: RunnerConfig,
    pct_changed: float,
    n_updates_till_write: int,
    method_kwargs: Optional[Dict] = None,
) -> SyntheticWorkload:
    """Chip + driver + loaded synthetic database for one method.

    ``method_kwargs`` are forwarded to the driver constructor (ablations:
    ``diff_unit``, ``victim_policy``, …).  Sharded labels build one chip
    per shard via :meth:`RunnerConfig.shard_spec`; a ``router`` entry in
    ``method_kwargs`` overrides the default hash partition.
    """
    plain, _gc = parse_gc_label(label)
    plain, _par = parse_parallel_label(plain)
    _base, n_shards = parse_sharded_label(plain)
    if n_shards is None:
        chip = FlashChip(runner.spec())
    else:
        shard_spec = runner.shard_spec(n_shards)
        chip = [FlashChip(shard_spec) for _ in range(n_shards)]
    driver = make_method(label, chip, **(method_kwargs or {}))
    config = SyntheticConfig(
        database_pages=runner.database_pages,
        pct_changed=pct_changed,
        n_updates_till_write=n_updates_till_write,
        seed=runner.seed,
        verify=runner.verify,
    )
    workload = SyntheticWorkload(driver, config)
    workload.load()
    return workload


def measure_updates(
    label: str,
    runner: RunnerConfig,
    pct_changed: float = 2.0,
    n_updates_till_write: int = 1,
    method_kwargs: Optional[Dict] = None,
) -> MethodMeasurement:
    """Steady-state cost of pure update cycles (Experiments 1–3, 5, 6)."""
    workload = build_workload(
        label, runner, pct_changed, n_updates_till_write, method_kwargs
    )
    warm_to_steady_state(workload, runner)
    stats = workload.driver.stats
    snap = stats.snapshot()
    workload.run_updates(runner.measure_ops)
    delta = stats.delta_since(snap)
    return _measurement(label, runner.measure_ops, delta)


def measure_mix(
    label: str,
    runner: RunnerConfig,
    pct_update: float,
    pct_changed: float = 2.0,
    n_updates_till_write: int = 1,
    method_kwargs: Optional[Dict] = None,
) -> MethodMeasurement:
    """Steady-state cost of a read-only/update mix (Experiment 4).

    The warm-up is pure updates so that the database is in its updated
    steady state even when the measured mix is read-only — the paper's
    "read-only on updated pages" special case.
    """
    workload = build_workload(
        label, runner, pct_changed, n_updates_till_write, method_kwargs
    )
    warm_to_steady_state(workload, runner)
    stats = workload.driver.stats
    snap = stats.snapshot()
    workload.run_mix(runner.measure_ops, pct_update)
    delta = stats.delta_since(snap)
    return _measurement(label, runner.measure_ops, delta)


@dataclass
class ShardScalingPoint:
    """One point of the shard-scaling sweep (``bench_sharding``).

    ``serial_us_per_op`` is total device busy time per operation (the
    single-chip metric, invariant-ish in the shard count);
    ``parallel_us_per_op`` is the busiest chip's busy time per operation
    — elapsed time with the chips operating concurrently, the number
    that should shrink ~linearly as shards are added.
    """

    label: str
    n_shards: int
    n_ops: int
    serial_us_per_op: float
    parallel_us_per_op: float
    gc_us_per_op: float
    erases: int
    per_shard_erases: List[int] = field(default_factory=list)
    #: Erase totals since chip creation (includes warm-up): short
    #: measurement windows may see no GC at all, but reclamation history
    #: still shows how many shards collect independently.
    lifetime_shard_erases: List[int] = field(default_factory=list)
    group_flushes: int = 0
    #: Measured host wall-clock seconds of the measurement window — the
    #: *observed* counterpart of the simulated parallel model, so the
    #: two can be compared (see docs/concurrency.md).  Unlike the
    #: simulated numbers this depends on host speed and, for pure
    #: in-memory work, on the GIL.
    wall_s: float = 0.0
    #: Client threads that drove the window (1 = single caller; more
    #: requires a thread-safe ParallelShardedDriver).
    client_threads: int = 1
    #: Whether shard operations actually executed on worker threads.
    measured_parallel: bool = False

    @property
    def parallel_speedup(self) -> float:
        """How much of the fleet the workload keeps busy (≤ n_shards)."""
        if self.parallel_us_per_op == 0.0:
            return 1.0
        return self.serial_us_per_op / self.parallel_us_per_op

    @property
    def wall_us_per_op(self) -> float:
        """Measured wall-clock per operation, in host microseconds."""
        return self.wall_s * 1e6 / self.n_ops if self.n_ops else 0.0

    @property
    def gc_parallelism(self) -> int:
        """Shards whose GC has done work so far (reclamation spread)."""
        return sum(1 for erases in self.lifetime_shard_erases if erases > 0)

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "n_shards": self.n_shards,
            "n_ops": self.n_ops,
            "serial_us_per_op": self.serial_us_per_op,
            "parallel_us_per_op": self.parallel_us_per_op,
            "parallel_speedup": self.parallel_speedup,
            "gc_us_per_op": self.gc_us_per_op,
            "erases": self.erases,
            "gc_parallelism": self.gc_parallelism,
            "wall_s": self.wall_s,
            "wall_us_per_op": self.wall_us_per_op,
            "client_threads": self.client_threads,
            "measured_parallel": self.measured_parallel,
        }


def measure_sharded_updates(
    label: str,
    runner: RunnerConfig,
    pct_changed: float = 2.0,
    n_updates_till_write: int = 1,
    method_kwargs: Optional[Dict] = None,
    client_threads: int = 1,
) -> ShardScalingPoint:
    """Steady-state update cost with per-chip parallel-time accounting.

    Works for sharded *and* plain labels (a plain label reports equal
    serial and parallel time), so a sweep can include the bare
    single-chip driver as its baseline.

    Besides the simulated serial/parallel split, the measurement window
    is timed with the host clock (``wall_s``), so the simulated model
    can be compared against observed elapsed time.  ``client_threads``
    greater than 1 drives the window from that many concurrent client
    threads on disjoint pid partitions of one pre-drawn plan — the same
    seeded operation stream a serial window executes, so the measured
    work (and final database state) is thread-count-invariant.  Only
    valid for ``par``/``proc`` labels, whose sharded executors serialize
    each shard's operations on its own worker.
    """
    workload = build_workload(
        label, runner, pct_changed, n_updates_till_write, method_kwargs
    )
    driver = workload.driver
    # Parallel drivers (thread or process) expose their worker pool as
    # .executor; duck-typing covers ProcessShardedDriver, which shares
    # no base class with the thread-backed driver.
    is_parallel = getattr(driver, "executor", None) is not None
    if client_threads > 1 and not is_parallel:
        raise ConfigurationError(
            f"label {label!r} builds a serial driver; concurrent client "
            "threads need a parallel one (append ' par' or ' proc' to the "
            "label)"
        )
    warm_to_steady_state(workload, runner)
    chips = getattr(driver, "chips", None) or [driver.chip]
    stats = driver.stats
    clocks_before = [chip.clock_us for chip in chips]
    erases_before = [chip.stats.total_erases for chip in chips]
    cycles_before = workload.update_cycles
    snap = stats.snapshot()
    wall_start = time.perf_counter()
    try:
        if client_threads > 1:
            workload.run_updates_threaded(runner.measure_ops, client_threads)
        else:
            workload.run_updates(runner.measure_ops)
        wall_s = time.perf_counter() - wall_start
    finally:
        if is_parallel:
            # The workload is done with the driver; stop the worker
            # pool so repeated measurements do not leak threads (or
            # processes).  The chips stay open for the counter reads
            # below — a process pool snapshots its workers' clocks and
            # stats before stopping, so the reads still resolve.
            driver.executor.shutdown()
    delta = stats.delta_since(snap)
    clock_deltas = [
        chip.clock_us - before for chip, before in zip(chips, clocks_before)
    ]
    per_shard_erases = [
        chip.stats.total_erases - before
        for chip, before in zip(chips, erases_before)
    ]
    n_ops = workload.update_cycles - cycles_before
    return ShardScalingPoint(
        label=label,
        n_shards=len(chips),
        n_ops=n_ops,
        serial_us_per_op=sum(clock_deltas) / n_ops,
        parallel_us_per_op=max(clock_deltas) / n_ops,
        gc_us_per_op=delta.of_phase(GC).time_us / n_ops,
        erases=delta.total_erases,
        per_shard_erases=per_shard_erases,
        lifetime_shard_erases=[chip.stats.total_erases for chip in chips],
        group_flushes=getattr(driver, "group_flushes", 0),
        wall_s=wall_s,
        client_threads=client_threads,
        measured_parallel=is_parallel,
    )


@dataclass
class BufferPoolMeasurement:
    """One point of the buffer-pool sweep (``bench_exp7_fig18 --tiny``).

    Captures what the subsystem's knobs actually move: how evictions
    were served (clean reclaim vs synchronous backstop), the
    client-visible eviction-stall tail in host microseconds, the hit
    ratio, and the flash traffic behind it all.
    """

    label: str
    workload: str  # "skewed-update" or "scan-mix"
    policy: str
    writeback: str  # "sync" or "background"
    buffer_pages: int
    n_ops: int
    hit_ratio: float
    eviction_stall_p99_us: float
    eviction_stall_max_us: float
    evictions: int
    clean_reclaims: int
    sync_writebacks: int
    writeback_batches: int
    writeback_pages: int
    flash_reads: int
    flash_writes: int
    io_time_us: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "workload": self.workload,
            "policy": self.policy,
            "writeback": self.writeback,
            "buffer_pages": self.buffer_pages,
            "n_ops": self.n_ops,
            "hit_ratio": self.hit_ratio,
            "eviction_stall_p99_us": self.eviction_stall_p99_us,
            "eviction_stall_max_us": self.eviction_stall_max_us,
            "evictions": self.evictions,
            "clean_reclaims": self.clean_reclaims,
            "sync_writebacks": self.sync_writebacks,
            "writeback_batches": self.writeback_batches,
            "writeback_pages": self.writeback_pages,
            "flash_reads": self.flash_reads,
            "flash_writes": self.flash_writes,
            "io_time_us": self.io_time_us,
        }


def build_buffered_db(
    label: str,
    runner: RunnerConfig,
    buffer_pages: int,
    *,
    policy: str = "lru",
    writeback=None,
    method_kwargs: Optional[Dict] = None,
) -> Database:
    """Chip(s) + driver + loaded database behind a configured pool.

    The initial image is bulk-loaded straight through the driver (not
    the pool), then a :class:`~repro.storage.db.Database` is resumed on
    top with the requested eviction policy and write-back mode, and the
    stats are reset so measurements see only buffered traffic.
    """
    plain, _gc = parse_gc_label(label)
    plain, _par = parse_parallel_label(plain)
    _base, n_shards = parse_sharded_label(plain)
    if n_shards is None:
        chip = FlashChip(runner.spec())
    else:
        shard_spec = runner.shard_spec(n_shards)
        chip = [FlashChip(shard_spec) for _ in range(n_shards)]
    driver = make_method(label, chip, **(method_kwargs or {}))
    rng = random.Random(runner.seed)
    driver.load_pages(
        [(pid, rng.randbytes(driver.page_size)) for pid in range(runner.database_pages)]
    )
    driver.end_of_load()
    driver.stats.reset()
    return Database.resume(
        driver,
        buffer_pages,
        runner.database_pages,
        buffer_policy=policy,
        writeback=writeback,
    )


def _pool_measurement(
    db: Database, label: str, workload: str, n_ops: int
) -> BufferPoolMeasurement:
    stats = db.buffer_stats
    totals = db.driver.stats.totals()
    return BufferPoolMeasurement(
        label=label,
        workload=workload,
        policy=stats.policy,
        writeback="background" if db.pool.writeback is not None else "sync",
        buffer_pages=db.pool.capacity,
        n_ops=n_ops,
        hit_ratio=stats.hit_ratio,
        eviction_stall_p99_us=stats.eviction_stall_percentile(99),
        eviction_stall_max_us=stats.max_eviction_stall_us,
        evictions=stats.evictions,
        clean_reclaims=stats.clean_reclaims,
        sync_writebacks=stats.sync_writebacks,
        writeback_batches=stats.writeback_batches,
        writeback_pages=stats.writeback_pages,
        flash_reads=totals.reads,
        flash_writes=totals.writes,
        io_time_us=totals.time_us,
    )


def measure_buffered_updates(
    label: str,
    runner: RunnerConfig,
    *,
    buffer_fraction: float = 0.15,
    policy: str = "lru",
    writeback=None,
    hot_fraction: float = 0.9,
    change_bytes: int = 16,
    method_kwargs: Optional[Dict] = None,
) -> BufferPoolMeasurement:
    """Skewed updates through the buffer pool (the write-back workload).

    90 % of updates hit 10 % of the pages (the shape heavy user traffic
    has); the pool is far smaller than the working set, so almost every
    miss needs an eviction.  With synchronous write-back each dirty
    eviction stalls the client on flash; with the background daemon the
    eviction path mostly reclaims frames the daemon already cleaned —
    ``eviction_stall_p99_us`` is the comparison the buffer-pool
    benchmark asserts.
    """
    buffer_pages = max(4, int(runner.database_pages * buffer_fraction))
    db = build_buffered_db(
        label, runner, buffer_pages,
        policy=policy, writeback=writeback, method_kwargs=method_kwargs,
    )
    try:
        rng = random.Random(runner.seed + 1)
        n_pages = runner.database_pages
        hot_pages = max(1, n_pages // 10)
        for _ in range(runner.measure_ops):
            if rng.random() < hot_fraction:
                pid = rng.randrange(hot_pages)
            else:
                pid = rng.randrange(n_pages)
            with db.pool.pinned(pid) as page:
                offset = rng.randrange(page.size - change_bytes)
                page.write(offset, rng.randbytes(change_bytes))
        db.flush()
        return _pool_measurement(db, label, "skewed-update", runner.measure_ops)
    finally:
        db.pool.close()
        close = getattr(db.driver, "close", None)
        if close is not None:
            close()


def measure_scan_mix(
    label: str,
    runner: RunnerConfig,
    *,
    buffer_fraction: float = 0.15,
    policy: str = "lru",
    writeback=None,
    scan_every: int = 400,
    write_fraction: float = 0.5,
    warmup_cycles: int = 2,
    method_kwargs: Optional[Dict] = None,
) -> BufferPoolMeasurement:
    """A TPC-C-shaped mix: hot-record traffic with table scans underneath.

    Point accesses hammer a hot set that fits in the pool; full
    sequential scans (the STOCK-LEVEL / reporting shape) sweep every
    page *while the point traffic keeps running*, which is how a real
    system meets a scan.  Under LRU every sweep floods the pool and
    flushes the hot set; the scan-resistant 2Q policy keeps scan pages
    in its FIFO probation queue while re-referenced hot pages live in
    the protected LRU, so the hot set survives the sweep — higher hit
    ratio *and* fewer dirty evictions, hence no extra flash writes.
    Measured over a steady window after ``warmup_cycles`` scan cycles.
    """
    buffer_pages = max(8, int(runner.database_pages * buffer_fraction))
    db = build_buffered_db(
        label, runner, buffer_pages,
        policy=policy, writeback=writeback, method_kwargs=method_kwargs,
    )
    try:
        rng = random.Random(runner.seed + 2)
        n_pages = runner.database_pages
        hot_pages = max(1, n_pages // 10)

        def hot_access() -> None:
            pid = rng.randrange(hot_pages)
            with db.pool.pinned(pid) as page:
                if rng.random() < write_fraction:
                    offset = rng.randrange(page.size - 8)
                    page.write(offset, rng.randbytes(8))
                else:
                    page.read(0, 8)

        def one_cycle() -> int:
            ops = 0
            for _ in range(scan_every):  # pure OLTP burst
                hot_access()
                ops += 1
            for pid in range(n_pages):  # the scan, OLTP still running
                db.page(pid).read(0, 8)
                ops += 1
                if pid % 2 == 0:
                    hot_access()
                    ops += 1
            return ops

        for _ in range(warmup_cycles):
            one_cycle()
        # Everything below is windowed past the warm-up — buffer
        # counters included, so stall/eviction columns describe the
        # same steady window as the hit ratio and flash traffic.
        stats = db.buffer_stats
        before = stats.as_dict()
        stalls0 = stats.eviction_stalls.count
        snap = db.driver.stats.snapshot()
        n_ops = 0
        cycles = max(2, runner.measure_ops // (scan_every + n_pages))
        for _ in range(cycles):
            n_ops += one_cycle()
        db.flush()
        delta = db.driver.stats.delta_since(snap)
        after = stats.as_dict()

        def window(key: str) -> int:
            return after[key] - before[key]

        hits, misses = window("hits"), window("misses")
        accesses = hits + misses
        window_stalls = stats.eviction_stalls.samples[stalls0:]
        from ..flash.stats import percentile

        return BufferPoolMeasurement(
            label=label,
            workload="scan-mix",
            policy=stats.policy,
            writeback="background" if db.pool.writeback is not None else "sync",
            buffer_pages=db.pool.capacity,
            n_ops=n_ops,
            hit_ratio=hits / accesses if accesses else 0.0,
            eviction_stall_p99_us=percentile(window_stalls, 99),
            eviction_stall_max_us=max(window_stalls, default=0.0),
            evictions=window("evictions"),
            clean_reclaims=window("clean_reclaims"),
            sync_writebacks=window("sync_writebacks"),
            writeback_batches=window("writeback_batches"),
            writeback_pages=window("writeback_pages"),
            flash_reads=delta.totals().reads,
            flash_writes=delta.totals().writes,
            io_time_us=delta.totals().time_us,
        )
    finally:
        db.pool.close()
        close = getattr(db.driver, "close", None)
        if close is not None:
            close()


def _measurement(label: str, n_ops: int, delta) -> MethodMeasurement:
    read = delta.of_phase(READ_STEP)
    write = delta.of_phase(WRITE_STEP)
    gc = delta.of_phase(GC)
    return MethodMeasurement(
        label=label,
        n_ops=n_ops,
        read_us=read.time_us / n_ops,
        write_us=write.time_us / n_ops,
        gc_us=gc.time_us / n_ops,
        erases=delta.total_erases,
        reads=delta.totals().reads,
        writes=delta.totals().writes,
    )
