"""The paper's synthetic workload (Section 5.1).

An *update operation* consists of (1) reading the addressed page,
(2) changing ``%ChangedByOneU_Op`` percent of its data at a randomly
selected position, and (3) writing the updated page — executed directly
against the driver "to exclude the buffering effect in the DBMS".

``N_updates_till_write`` is the number of update operations applied to a
page in memory between recreating it from flash and reflecting it back:
one measured cycle performs one read step, ``N`` in-memory changes (each
a fresh random region of the page), and one write step.  Figures 12–17
report time per such cycle; OPU's flatness across N in Figure 13 is the
tell-tale that this is the paper's normalization.

The workload keeps a shadow copy of every page and verifies each read
against it, so every benchmark run is simultaneously an end-to-end
correctness check of the driver under test (disable with
``verify=False`` for speed).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..ftl.base import ChangeRun, PageUpdateMethod


class VerificationError(AssertionError):
    """A driver returned page contents different from the shadow copy."""


@dataclass(frozen=True)
class PlannedCycle:
    """One pre-drawn update cycle: the pid and its in-memory mutations.

    Runs are content-independent overwrites, so a cycle can be replayed
    on any thread as long as per-pid plan order is preserved.
    """

    pid: int
    runs: Tuple[ChangeRun, ...]


@dataclass
class SyntheticConfig:
    """Parameters of Table 3's experiments."""

    database_pages: int
    pct_changed: float = 2.0  # %ChangedByOneU_Op
    n_updates_till_write: int = 1  # N_updates_till_write
    seed: int = 20100121  # the paper's arXiv date, for reproducibility
    verify: bool = True

    def __post_init__(self) -> None:
        if self.database_pages <= 0:
            raise ValueError("database_pages must be positive")
        if not 0.0 < self.pct_changed <= 100.0:
            raise ValueError("pct_changed must be in (0, 100]")
        if self.n_updates_till_write < 1:
            raise ValueError("n_updates_till_write must be at least 1")


class SyntheticWorkload:
    """Drives one page-update method with the paper's update operations."""

    def __init__(self, driver: PageUpdateMethod, config: SyntheticConfig):
        self.driver = driver
        self.config = config
        self.rng = random.Random(config.seed)
        self._shadow: List[bytes] = []
        self.update_cycles = 0
        self.read_ops = 0
        page = driver.page_size
        self.change_size = max(1, round(page * config.pct_changed / 100.0))

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self) -> None:
        """Populate the database with random page images.

        Loading goes through the driver's batched :meth:`load_pages`
        path — the bulk-load hot path the file backend amortizes into a
        few large writes per allocation block.
        """
        page_size = self.driver.page_size
        pages = []
        for pid in range(self.config.database_pages):
            data = self.rng.randbytes(page_size)
            pages.append((pid, data))
            self._shadow.append(data)
        self.driver.load_pages(pages)
        self.driver.end_of_load()

    @property
    def shadow(self) -> List[bytes]:
        return self._shadow

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def update_cycle(
        self, pid: Optional[int] = None, n_updates: Optional[int] = None
    ) -> None:
        """One read-modify-write cycle with N in-memory updates.

        ``n_updates`` overrides the configured ``N_updates_till_write``
        (used by the steady-state aging pass, which collapses a page's
        accumulated update history into one reflection).
        """
        if pid is None:
            pid = self.rng.randrange(self.config.database_pages)
        if n_updates is None:
            n_updates = self.config.n_updates_till_write
        data = self.driver.read_page(pid)
        self._verify(pid, data)
        image = bytearray(data)
        logs: List[ChangeRun] = []
        for _ in range(n_updates):
            logs.append(self._mutate(image))
        new_data = bytes(image)
        self._shadow[pid] = new_data
        self.driver.write_page(pid, new_data, update_logs=logs)
        self.update_cycles += 1

    def read_only_op(self, pid: Optional[int] = None) -> bytes:
        """A read-only operation (Experiment 4's mixes)."""
        if pid is None:
            pid = self.rng.randrange(self.config.database_pages)
        data = self.driver.read_page(pid)
        self._verify(pid, data)
        self.read_ops += 1
        return data

    def _mutate(self, image: bytearray) -> ChangeRun:
        """Change ``%ChangedByOneU_Op`` of the page at a random offset.

        Draws offset then payload from the workload RNG — the exact
        order :meth:`plan_updates` replicates; keep the two in sync.
        """
        rng = self.rng
        page_size = len(image)
        size = min(self.change_size, page_size)
        offset = rng.randrange(page_size - size + 1)
        new_bytes = rng.randbytes(size)
        image[offset : offset + size] = new_bytes
        return ChangeRun(offset, new_bytes)

    # ------------------------------------------------------------------
    # Batch helpers
    # ------------------------------------------------------------------
    def run_updates(self, n_cycles: int) -> None:
        for _ in range(n_cycles):
            self.update_cycle()

    def plan_updates(self, n_cycles: int) -> List["PlannedCycle"]:
        """Pre-draw ``n_cycles`` update cycles from the workload RNG.

        The draws happen in exactly the order :meth:`update_cycle` makes
        them — pid first, then each mutation's offset and payload — so a
        workload that plans and executes ``n`` cycles consumes the same
        RNG stream as one that runs them directly.  Mutations depend only
        on the RNG and the page size, never on page contents, which is
        what makes the plan executable out of order across pids: applying
        one pid's runs in plan order yields the same final image no
        matter how other pids interleave.
        """
        page_size = self.driver.page_size
        size = min(self.change_size, page_size)
        plan: List[PlannedCycle] = []
        for _ in range(n_cycles):
            pid = self.rng.randrange(self.config.database_pages)
            runs: List[ChangeRun] = []
            for _ in range(self.config.n_updates_till_write):
                offset = self.rng.randrange(page_size - size + 1)
                runs.append(ChangeRun(offset, self.rng.randbytes(size)))
            plan.append(PlannedCycle(pid, tuple(runs)))
        return plan

    def run_updates_threaded(self, n_cycles: int, n_threads: int) -> None:
        """Run update cycles from ``n_threads`` concurrent client threads.

        The whole operation stream is pre-drawn with :meth:`plan_updates`
        and partitioned by ``pid % n_threads``: an identical seed yields
        the identical set of update cycles — same pids, same mutations —
        regardless of the client-thread count, and the same stream a
        serial :meth:`run_updates` call would execute.  Each thread owns
        a disjoint pid partition and replays its cycles in plan order, so
        the shadow copy stays race-free (threads write disjoint list
        slots), verification remains exact, and the final database state
        matches the serial run bit-for-bit.  Only the interleaving
        across pids is nondeterministic — which is the point: this
        drives a thread-safe driver (e.g. a
        :class:`~repro.sharding.executor.ParallelShardedDriver`) the way
        concurrent DBMS clients would.  Serial drivers are not safe
        under this entry point; use :meth:`run_updates`.
        """
        if n_threads < 1:
            raise ValueError("n_threads must be at least 1")
        if n_threads == 1:
            self.run_updates(n_cycles)
            return
        plan = self.plan_updates(n_cycles)
        partitions: List[List[PlannedCycle]] = [[] for _ in range(n_threads)]
        for cycle in plan:
            partitions[cycle.pid % n_threads].append(cycle)
        errors: List[BaseException] = []
        lock = threading.Lock()

        def client(t: int) -> None:
            try:
                for cycle in partitions[t]:
                    pid = cycle.pid
                    data = self.driver.read_page(pid)
                    self._verify(pid, data)
                    image = bytearray(data)
                    # Same cycle shape as update_cycle: N in-memory
                    # mutations, change runs collected so tightly-coupled
                    # drivers (IPL) see real update logs, not a
                    # degenerate whole-page log.
                    for run in cycle.runs:
                        image[run.offset : run.offset + len(run.data)] = run.data
                    new_data = bytes(image)
                    self._shadow[pid] = new_data
                    self.driver.write_page(
                        pid, new_data, update_logs=list(cycle.runs)
                    )
            except BaseException as exc:
                with lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(t,), name=f"client-{t}")
            for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        self.update_cycles += len(plan)

    def run_mix(self, n_ops: int, pct_update: float) -> None:
        """Execute a read-only/update mix (``%UpdateOps`` of Table 3)."""
        if not 0.0 <= pct_update <= 100.0:
            raise ValueError("pct_update must be within [0, 100]")
        for _ in range(n_ops):
            if self.rng.uniform(0.0, 100.0) < pct_update:
                self.update_cycle()
            else:
                self.read_only_op()

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def _verify(self, pid: int, data: bytes) -> None:
        if self.config.verify and data != self._shadow[pid]:
            raise VerificationError(
                f"{self.driver.name} returned wrong contents for page {pid}"
            )

    def verify_all(self) -> None:
        """Full database consistency check against the shadow copy."""
        for pid in range(self.config.database_pages):
            data = self.driver.read_page(pid)
            if data != self._shadow[pid]:
                raise VerificationError(
                    f"{self.driver.name} corrupted page {pid}"
                )
