"""Named access patterns: the trace-driven scenario vocabulary.

The paper's evaluation (Sections 6–7) sweeps update ratios, localities
and buffer sizes; this module names those access shapes so every harness
— the scenario matrix, benchmarks, tests — can request "the same
workload" by a string instead of re-rolling its own loop:

* ``sequential`` — ascending pid order, wrapping (pure update churn);
* ``strided`` — a fixed prime stride, the classic index-walk shape;
* ``zipf-<theta>`` — Zipfian-skewed updates at several pre-registered
  thetas (``zipf-0.6`` mild … ``zipf-1.2`` heavy), ranks scattered over
  pids so hot pages are not physically clustered;
* ``scan-hot`` — full sequential read scans interleaved with a hot-set
  update stream (the STOCK-LEVEL / reporting mix of ``bench_exp7``);
* ``ycsb-a`` … ``ycsb-f`` — the YCSB core-workload read/update mixes
  (A 50/50, B 95/5, C read-only, D read-latest, E scan-heavy,
  F read-modify-write), with "insert" mapped to an update of the
  coldest page (the page array is fixed-size);
* trace replay — :class:`TracePattern` re-executes a recorded operation
  stream from the small line-based trace format documented in
  ``docs/workloads.md`` (write traces with :class:`TraceRecorder`).

A pattern is only a *shape*: it yields logical :class:`Op` records
(``read``/``update`` + pid) from a supplied RNG and never touches a
driver.  The scenario layer (:mod:`repro.scenarios`) resolves each
update into concrete page mutations, which is what makes the same
pattern replayable bit-for-bit against every engine configuration.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

READ = "read"
UPDATE = "update"

_KINDS = (READ, UPDATE)


@dataclass(frozen=True)
class Op:
    """One logical operation of a pattern: read or update page ``pid``."""

    kind: str
    pid: int

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.pid < 0:
            raise ValueError(f"negative pid {self.pid}")


class AccessPattern:
    """Base class: a named, deterministic generator of :class:`Op`s.

    Subclasses implement :meth:`ops`; all randomness must come from the
    supplied ``rng`` so the same (pattern, seed) pair always yields the
    identical stream — the property the differential-equivalence oracle
    is built on.
    """

    #: Registry name; parameterized instances refine it (``zipf-0.9``).
    name: str = "abstract"

    def ops(self, n_pages: int, n_ops: int, rng: random.Random) -> Iterator[Op]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[[], AccessPattern]] = {}


def register_pattern(name: str, factory: Callable[[], AccessPattern]) -> None:
    """Register a named zero-argument pattern factory.

    Mirrors the GC victim-policy and buffer eviction-policy registries:
    re-registering a taken name is an error, so two subsystems cannot
    silently fight over what a scenario name means.
    """
    key = name.lower()
    if key in _REGISTRY:
        raise ValueError(f"pattern {name!r} is already registered")
    _REGISTRY[key] = factory


def make_pattern(name: str) -> AccessPattern:
    """Instantiate a registered pattern by name (case-insensitive)."""
    key = name.lower()
    factory = _REGISTRY.get(key)
    if factory is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown pattern {name!r}; registered: {known}")
    return factory()


def pattern_names() -> List[str]:
    """All registered pattern names, sorted."""
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# Synthetic shapes
# ----------------------------------------------------------------------


class SequentialPattern(AccessPattern):
    """Ascending-pid updates, wrapping around the page array."""

    name = "sequential"

    def ops(self, n_pages: int, n_ops: int, rng: random.Random) -> Iterator[Op]:
        for i in range(n_ops):
            yield Op(UPDATE, i % n_pages)


class StridedPattern(AccessPattern):
    """Fixed-stride updates (an index walk); stride co-prime with the
    page count so every page is eventually visited."""

    def __init__(self, stride: int = 7):
        if stride < 1:
            raise ValueError("stride must be positive")
        self.stride = stride
        self.name = f"strided-{stride}"

    def _effective_stride(self, n_pages: int) -> int:
        stride = self.stride
        while _gcd(stride, n_pages) != 1:
            stride += 1
        return stride

    def ops(self, n_pages: int, n_ops: int, rng: random.Random) -> Iterator[Op]:
        stride = self._effective_stride(n_pages)
        for i in range(n_ops):
            yield Op(UPDATE, (i * stride) % n_pages)


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


class ZipfPattern(AccessPattern):
    """Zipfian-skewed updates: rank r drawn with probability ∝ 1/r^theta.

    Ranks are scattered over pids by a seeded shuffle so the hot set is
    not a physically contiguous prefix (contiguity would hand sharded
    configs a degenerate single-shard hot spot under range routing).
    """

    def __init__(self, theta: float = 0.9, pct_read: float = 0.0):
        if theta < 0.0:
            raise ValueError("theta must be non-negative")
        if not 0.0 <= pct_read <= 100.0:
            raise ValueError("pct_read must be within [0, 100]")
        self.theta = theta
        self.pct_read = pct_read
        self.name = f"zipf-{theta:g}"

    def _cdf(self, n_pages: int) -> List[float]:
        weights = [1.0 / (rank**self.theta) for rank in range(1, n_pages + 1)]
        total = sum(weights)
        cdf, acc = [], 0.0
        for w in weights:
            acc += w / total
            cdf.append(acc)
        cdf[-1] = 1.0  # guard against float drift at the tail
        return cdf

    def ops(self, n_pages: int, n_ops: int, rng: random.Random) -> Iterator[Op]:
        cdf = self._cdf(n_pages)
        rank_to_pid = list(range(n_pages))
        rng.shuffle(rank_to_pid)
        for _ in range(n_ops):
            rank = bisect.bisect_left(cdf, rng.random())
            pid = rank_to_pid[min(rank, n_pages - 1)]
            if self.pct_read and rng.uniform(0.0, 100.0) < self.pct_read:
                yield Op(READ, pid)
            else:
                yield Op(UPDATE, pid)


class ScanHotPattern(AccessPattern):
    """Full sequential read scans with a hot-set update stream underneath.

    Every ``scan_every`` hot-set updates, a complete ascending read scan
    sweeps the page array while hot updates keep interleaving (one per
    two scanned pages) — the shape a reporting query has against live
    OLTP traffic, and the workload scan-resistant buffer policies exist
    for.
    """

    name = "scan-hot"

    def __init__(self, scan_every: int = 40, hot_fraction: float = 0.1):
        if scan_every < 1:
            raise ValueError("scan_every must be positive")
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        self.scan_every = scan_every
        self.hot_fraction = hot_fraction

    def ops(self, n_pages: int, n_ops: int, rng: random.Random) -> Iterator[Op]:
        hot_pages = max(1, int(n_pages * self.hot_fraction))
        emitted = 0
        while emitted < n_ops:
            for _ in range(self.scan_every):
                if emitted >= n_ops:
                    return
                yield Op(UPDATE, rng.randrange(hot_pages))
                emitted += 1
            for pid in range(n_pages):
                if emitted >= n_ops:
                    return
                yield Op(READ, pid)
                emitted += 1
                if pid % 2 == 0 and emitted < n_ops:
                    yield Op(UPDATE, rng.randrange(hot_pages))
                    emitted += 1


class YcsbPattern(AccessPattern):
    """The YCSB core-workload mixes, adapted to a fixed page array.

    ``workload`` selects the letter; reads and updates follow the
    published proportions over a Zipfian (theta 0.99) request
    distribution.  Two adaptations, both noted in ``docs/workloads.md``:
    *insert* becomes an update of the least-recently-touched page (the
    array cannot grow), and D's "latest" distribution reads from the
    most recently updated pages.
    """

    #: (pct_read, pct_update, flavour) per YCSB letter.
    MIXES: Dict[str, Tuple[float, float, str]] = {
        "a": (50.0, 50.0, "zipfian"),
        "b": (95.0, 5.0, "zipfian"),
        "c": (100.0, 0.0, "zipfian"),
        "d": (95.0, 5.0, "latest"),
        "e": (95.0, 5.0, "scan"),
        "f": (50.0, 50.0, "rmw"),
    }

    def __init__(self, workload: str, theta: float = 0.99, scan_len: int = 8):
        key = workload.lower()
        if key not in self.MIXES:
            raise ValueError(f"unknown YCSB workload {workload!r} (a–f)")
        self.workload = key
        self.theta = theta
        self.scan_len = scan_len
        self.name = f"ycsb-{key}"

    def ops(self, n_pages: int, n_ops: int, rng: random.Random) -> Iterator[Op]:
        pct_read, _pct_update, flavour = self.MIXES[self.workload]
        zipf = ZipfPattern(self.theta)
        cdf = zipf._cdf(n_pages)
        rank_to_pid = list(range(n_pages))
        rng.shuffle(rank_to_pid)
        recent: List[int] = []  # most recently updated pids, newest last

        def draw_pid() -> int:
            rank = bisect.bisect_left(cdf, rng.random())
            return rank_to_pid[min(rank, n_pages - 1)]

        emitted = 0
        while emitted < n_ops:
            roll = rng.uniform(0.0, 100.0)
            if flavour == "latest" and roll < pct_read and recent:
                # Read-latest: zipf over the recency stack, newest first.
                rank = bisect.bisect_left(cdf, rng.random())
                pid = recent[-1 - min(rank, len(recent) - 1)]
                yield Op(READ, pid)
                emitted += 1
            elif flavour == "scan" and roll < pct_read:
                start = draw_pid()
                for i in range(self.scan_len):
                    if emitted >= n_ops:
                        return
                    yield Op(READ, (start + i) % n_pages)
                    emitted += 1
            elif roll < pct_read:
                yield Op(READ, draw_pid())
                emitted += 1
            else:
                pid = draw_pid()
                if flavour == "rmw":
                    yield Op(READ, pid)
                    emitted += 1
                    if emitted >= n_ops:
                        return
                yield Op(UPDATE, pid)
                emitted += 1
                recent.append(pid)
                if len(recent) > n_pages:
                    del recent[: n_pages // 2]


# ----------------------------------------------------------------------
# Trace replay
# ----------------------------------------------------------------------

TRACE_MAGIC = "repro-trace"
TRACE_VERSION = 1

_OP_CODES = {READ: "r", UPDATE: "u"}
_CODE_OPS = {code: kind for kind, code in _OP_CODES.items()}


class TraceError(ValueError):
    """A trace file violated the format contract."""


@dataclass
class Trace:
    """A parsed operation trace: a page-count header plus an op list."""

    n_pages: int
    ops: List[Op]

    def __len__(self) -> int:
        return len(self.ops)


class TraceRecorder:
    """Records logical operations and writes them in trace format v1.

    The format is line-based and human-diffable (see
    ``docs/workloads.md``)::

        repro-trace v1 pages=64
        # free-form comments anywhere after the header
        r 12
        u 3

    The recorder is how scenario workloads become repeatable artifacts:
    run any pattern (or a live system's page accesses) through it once,
    check the file in, and :class:`TracePattern` replays it forever.
    """

    def __init__(self, n_pages: int):
        if n_pages < 1:
            raise ValueError("n_pages must be positive")
        self.n_pages = n_pages
        self.ops: List[Op] = []

    def record(self, kind: str, pid: int) -> None:
        if not 0 <= pid < self.n_pages:
            raise TraceError(f"pid {pid} outside the declared {self.n_pages} pages")
        self.ops.append(Op(kind, pid))

    def record_op(self, op: Op) -> None:
        self.record(op.kind, op.pid)

    def save(self, path: Union[str, Path], comment: Optional[str] = None) -> Path:
        path = Path(path)
        lines = [f"{TRACE_MAGIC} v{TRACE_VERSION} pages={self.n_pages}"]
        if comment:
            lines.extend(f"# {line}" for line in comment.splitlines())
        lines.extend(f"{_OP_CODES[op.kind]} {op.pid}" for op in self.ops)
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path


def load_trace(path: Union[str, Path]) -> Trace:
    """Parse a trace file, validating the header and every pid."""
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        raise TraceError(f"{path}: empty trace file")
    header = lines[0].split()
    if (
        len(header) != 3
        or header[0] != TRACE_MAGIC
        or header[1] != f"v{TRACE_VERSION}"
        or not header[2].startswith("pages=")
    ):
        raise TraceError(f"{path}: bad header {lines[0]!r}")
    try:
        n_pages = int(header[2].removeprefix("pages="))
    except ValueError as exc:
        raise TraceError(f"{path}: bad page count in header") from exc
    if n_pages < 1:
        raise TraceError(f"{path}: page count must be positive")
    ops: List[Op] = []
    for lineno, line in enumerate(lines[1:], start=2):
        text = line.strip()
        if not text or text.startswith("#"):
            continue
        parts = text.split()
        if len(parts) != 2 or parts[0] not in _CODE_OPS:
            raise TraceError(f"{path}:{lineno}: bad op line {line!r}")
        try:
            pid = int(parts[1])
        except ValueError as exc:
            raise TraceError(f"{path}:{lineno}: bad pid {parts[1]!r}") from exc
        if not 0 <= pid < n_pages:
            raise TraceError(
                f"{path}:{lineno}: pid {pid} outside the declared {n_pages} pages"
            )
        ops.append(Op(_CODE_OPS[parts[0]], pid))
    return Trace(n_pages=n_pages, ops=ops)


class TracePattern(AccessPattern):
    """Replays a recorded trace, cycling when more ops are requested.

    Trace pids index *the trace's own* page space; replaying against a
    smaller database folds them with a modulo (and notes it in the
    name), so a checked-in trace stays usable at CI's tiny scales.
    """

    def __init__(self, source: Union[str, Path, Trace], name: Optional[str] = None):
        if isinstance(source, Trace):
            self.trace = source
            stem = "trace"
        else:
            self.trace = load_trace(source)
            stem = Path(source).stem
        if not self.trace.ops:
            raise TraceError("trace holds no operations")
        self.name = name or f"trace-{stem}"

    def ops(self, n_pages: int, n_ops: int, rng: random.Random) -> Iterator[Op]:
        recorded = self.trace.ops
        for i in range(n_ops):
            op = recorded[i % len(recorded)]
            pid = op.pid % n_pages
            yield Op(op.kind, pid) if pid != op.pid else op


def record_pattern(
    pattern: AccessPattern, n_pages: int, n_ops: int, seed: int
) -> TraceRecorder:
    """Materialize a pattern into a recorder (ready to ``save``)."""
    recorder = TraceRecorder(n_pages)
    rng = random.Random(seed)
    for op in pattern.ops(n_pages, n_ops, rng):
        recorder.record_op(op)
    return recorder


# ----------------------------------------------------------------------
# Default registrations
# ----------------------------------------------------------------------

register_pattern("sequential", SequentialPattern)
register_pattern("strided", StridedPattern)
for _theta in (0.6, 0.9, 0.99, 1.2):
    register_pattern(
        f"zipf-{_theta:g}", lambda theta=_theta: ZipfPattern(theta)
    )
register_pattern("scan-hot", ScanHotPattern)
for _letter in YcsbPattern.MIXES:
    register_pattern(
        f"ycsb-{_letter}", lambda letter=_letter: YcsbPattern(letter)
    )


def default_pattern_set(names: Optional[Sequence[str]] = None) -> List[AccessPattern]:
    """Instantiate a pattern list by names (defaults to the full registry)."""
    return [make_pattern(name) for name in (names or pattern_names())]
